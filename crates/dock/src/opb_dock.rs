//! The OPB Dock (32-bit system).
//!
//! "A wrapper module that connects the dynamic region to the rest of the
//! system. It connects to the OPB bus in order to provide a 32-bit data
//! channel to the dynamic region. The wrapper is assigned a fixed range of
//! the OPB address space, and acts like an OPB slave peripheral, performing
//! address decoding and I/O operations. The wrapper stores incoming data,
//! so that it is kept available for processing by the components in the
//! dynamic region between write operations."

use crate::module::{DynamicModule, ModuleOutput, NullModule};

/// The OPB dock.
pub struct OpbDock {
    module: Box<dyn DynamicModule>,
    /// Holding register: last datum written (kept available between writes).
    holding: u32,
    /// Slave wait states the dock adds to an OPB transaction.
    pub wait_states: u64,
    /// Writes performed.
    pub writes: u64,
    /// Reads performed.
    pub reads: u64,
}

impl std::fmt::Debug for OpbDock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpbDock")
            .field("module", &self.module.name())
            .field("holding", &self.holding)
            .field("writes", &self.writes)
            .field("reads", &self.reads)
            .finish()
    }
}

impl Default for OpbDock {
    fn default() -> Self {
        Self::new()
    }
}

impl OpbDock {
    /// New dock with an empty dynamic region.
    pub fn new() -> Self {
        OpbDock {
            module: Box::new(NullModule),
            holding: 0,
            wait_states: 1,
            writes: 0,
            reads: 0,
        }
    }

    /// Binds the behavioural model of the freshly configured module (the
    /// module manager calls this after a successful reconfiguration).
    pub fn bind_module(&mut self, module: Box<dyn DynamicModule>) {
        self.module = module;
    }

    /// Unbinds, leaving the region empty.
    pub fn unbind(&mut self) {
        self.module = Box::new(NullModule);
    }

    /// Name of the bound module.
    pub fn module_name(&self) -> &str {
        self.module.name()
    }

    /// MMIO write: stores to the holding register and pulses the write
    /// strobe into the region, presenting the decoded offset. Returns the
    /// module output (visible on a subsequent read).
    pub fn mmio_write(&mut self, offset: u32, data: u32) -> ModuleOutput {
        self.holding = data;
        self.writes += 1;
        self.module.poke_at(offset, u64::from(data))
    }

    /// MMIO read: the region's 32-bit read channel (with read-strobe, so
    /// queue-producing modules advance).
    pub fn mmio_read(&mut self, offset: u32) -> u32 {
        self.reads += 1;
        self.module.read_at(offset) as u32
    }

    /// Holding-register value (what the region sees between writes).
    pub fn holding(&self) -> u32 {
        self.holding
    }

    /// Resets the bound module and statistics.
    pub fn reset(&mut self) {
        self.module.reset();
        self.holding = 0;
        self.writes = 0;
        self.reads = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubler module: read channel = 2 × last write.
    struct Doubler(u64);
    impl DynamicModule for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn poke(&mut self, data: u64) -> ModuleOutput {
            self.0 = data * 2;
            ModuleOutput {
                data: self.0,
                valid: true,
            }
        }
        fn peek(&self) -> u64 {
            self.0
        }
        fn reset(&mut self) {
            self.0 = 0;
        }
    }

    #[test]
    fn empty_region_reads_zero() {
        let mut dock = OpbDock::new();
        dock.mmio_write(0, 123);
        assert_eq!(dock.mmio_read(0), 0);
        assert_eq!(dock.module_name(), "(empty)");
    }

    #[test]
    fn bound_module_processes_writes() {
        let mut dock = OpbDock::new();
        dock.bind_module(Box::new(Doubler(0)));
        dock.mmio_write(0, 21);
        assert_eq!(dock.mmio_read(0), 42);
        assert_eq!(dock.holding(), 21, "data kept available between writes");
        assert_eq!(dock.writes, 1);
        assert_eq!(dock.reads, 1);
    }

    #[test]
    fn unbind_restores_empty() {
        let mut dock = OpbDock::new();
        dock.bind_module(Box::new(Doubler(0)));
        dock.mmio_write(0, 5);
        dock.unbind();
        assert_eq!(dock.mmio_read(0), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut dock = OpbDock::new();
        dock.bind_module(Box::new(Doubler(0)));
        dock.mmio_write(0, 5);
        dock.reset();
        assert_eq!(dock.mmio_read(0), 0);
        assert_eq!(dock.holding(), 0);
        assert_eq!(dock.writes, 0);
    }
}
