//! The dynamic-module interface.
//!
//! The connection interface between a dock and the dynamic region consists
//! of two unidirectional data channels (write and read) and a write-strobe
//! signal: "the connection interface generates an additional signal that
//! indicates the occurrence of a write operation … this signal can be used
//! as a clock enable signal for any flip-flop in the dynamic region."
//!
//! [`DynamicModule`] is the behavioural contract for whatever currently
//! occupies the region: each dock write *pokes* the module (one strobed
//! clock), each dock read *peeks* the read channel.

/// Result of one strobed clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleOutput {
    /// Read-channel value after the clock edge.
    pub data: u64,
    /// Did the module flag this output as valid? (Drives FIFO capture in
    /// the PLB dock.)
    pub valid: bool,
}

/// A module loaded into the dynamic region.
pub trait DynamicModule: Send {
    /// Module name (diagnostics).
    fn name(&self) -> &str;

    /// Presents `data` on the write channel and pulses the write strobe for
    /// one module clock; returns the read channel afterwards.
    fn poke(&mut self, data: u64) -> ModuleOutput;

    /// Addressed write: the docks decode the low address bits of their data
    /// window and present them to the region alongside the data, which
    /// modules use for commands (load pattern, set constant, init, ...).
    /// Defaults to ignoring the offset.
    fn poke_at(&mut self, _offset: u32, data: u64) -> ModuleOutput {
        self.poke(data)
    }

    /// Addressed read with read-strobe. Defaults to ignoring the offset.
    fn read_at(&mut self, _offset: u32) -> u64 {
        self.read_pop()
    }

    /// Current read-channel value (no strobe).
    fn peek(&self) -> u64;

    /// A dock read: returns the read channel and gives the module a chance
    /// to advance (modules with an output queue pop the head here, using
    /// the dock's read-strobe the same way writes use the write-strobe).
    /// Defaults to a plain [`DynamicModule::peek`].
    fn read_pop(&mut self) -> u64 {
        self.peek()
    }

    /// Returns the module to its post-configuration state.
    fn reset(&mut self);
}

/// The empty region: reads as zero, swallows writes. What the dock sees
/// after a blank configuration is loaded.
#[derive(Debug, Default, Clone)]
pub struct NullModule;

impl DynamicModule for NullModule {
    fn name(&self) -> &str {
        "(empty)"
    }

    fn poke(&mut self, _data: u64) -> ModuleOutput {
        ModuleOutput {
            data: 0,
            valid: false,
        }
    }

    fn peek(&self) -> u64 {
        0
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_module_is_inert() {
        let mut m = NullModule;
        assert_eq!(m.peek(), 0);
        let out = m.poke(0xFFFF_FFFF_FFFF_FFFF);
        assert_eq!(out.data, 0);
        assert!(!out.valid);
        m.reset();
        assert_eq!(m.name(), "(empty)");
    }
}
