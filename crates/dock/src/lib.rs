//! # dock — the dynamic-region wrapper modules
//!
//! The paper's two wrapper designs:
//!
//! * **OPB Dock** (32-bit system, section 3.1): an OPB slave occupying a
//!   fixed address range; performs address decoding and I/O, and *stores
//!   incoming data so it is kept available between write operations*. Data
//!   crosses into the dynamic region over two unidirectional 32-bit
//!   channels plus a write-strobe that modules can use as a clock enable.
//!
//! * **PLB Dock** (64-bit system, section 4.1): a PLB master/slave with the
//!   same channel interface widened to 64 bits plus three additions — a
//!   scatter-gather **DMA controller**, a 2047-entry 64-bit **output FIFO**
//!   for results awaiting DMA to memory, and an **interrupt generator** so
//!   the CPU need not poll.
//!
//! Modules plugged into the region implement [`DynamicModule`]. Two
//! implementations exist: fast behavioural models (`rtr-apps`) and
//! [`GateLevelModule`], which drives a placed netlist in the gate-level
//! simulator — the two are property-tested for cycle equivalence.

pub mod gate;
pub mod module;
pub mod opb_dock;
pub mod plb_dock;

pub use gate::GateLevelModule;
pub use module::{DynamicModule, ModuleOutput, NullModule};
pub use opb_dock::OpbDock;
pub use plb_dock::{PlbDock, FIFO_CAPACITY};
