//! The PLB Dock (64-bit system).
//!
//! Everything the OPB dock does, widened to 64 bits and connected directly
//! to the processor local bus as a master/slave, plus the three additions
//! section 4.1 lists:
//!
//! 1. **DMA controller** — direct transfers between memory and dock without
//!    CPU intervention (the engine itself lives in `coreconnect-sim`; the
//!    dock owns an instance and the machine model executes its bursts);
//! 2. **Output FIFO** — results from the dynamic area are stored for
//!    subsequent DMA transfer to memory; "the current output FIFO stores up
//!    to 2047 64-bit values";
//! 3. **Interrupt generator** — completion interrupts instead of polling.

use crate::module::{DynamicModule, ModuleOutput, NullModule};
use coreconnect_sim::dma::DmaEngine;
use std::collections::VecDeque;

/// FIFO capacity in 64-bit entries (paper: 2047).
pub const FIFO_CAPACITY: usize = 2047;

/// The PLB dock.
pub struct PlbDock {
    module: Box<dyn DynamicModule>,
    /// 64-bit holding register.
    holding: u64,
    /// Output FIFO awaiting DMA drain.
    fifo: VecDeque<u64>,
    /// Capture module outputs into the FIFO on each write strobe?
    pub fifo_capture: bool,
    /// The scatter-gather DMA engine.
    pub dma: DmaEngine,
    /// Interrupt generator output (level; cleared by acknowledge).
    irq: bool,
    /// Slave wait states for direct (CPU) accesses.
    pub wait_states: u64,
    /// Writes through the data window (CPU or DMA beats).
    pub writes: u64,
    /// Reads through the data window.
    pub reads: u64,
    /// Entries dropped because the FIFO was full (a driver bug indicator —
    /// correct drivers throttle on FIFO-full).
    pub fifo_overruns: u64,
}

impl std::fmt::Debug for PlbDock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlbDock")
            .field("module", &self.module.name())
            .field("fifo_level", &self.fifo.len())
            .field("fifo_capture", &self.fifo_capture)
            .field("irq", &self.irq)
            .finish()
    }
}

impl Default for PlbDock {
    fn default() -> Self {
        Self::new()
    }
}

impl PlbDock {
    /// New dock with an empty region.
    pub fn new() -> Self {
        PlbDock {
            module: Box::new(NullModule),
            holding: 0,
            fifo: VecDeque::with_capacity(FIFO_CAPACITY),
            fifo_capture: false,
            dma: DmaEngine::new64(),
            irq: false,
            wait_states: 0,
            writes: 0,
            reads: 0,
            fifo_overruns: 0,
        }
    }

    /// Binds a module's behavioural model.
    pub fn bind_module(&mut self, module: Box<dyn DynamicModule>) {
        self.module = module;
    }

    /// Unbinds, leaving the region empty.
    pub fn unbind(&mut self) {
        self.module = Box::new(NullModule);
    }

    /// Name of the bound module.
    pub fn module_name(&self) -> &str {
        self.module.name()
    }

    /// A 64-bit beat into the write channel (CPU 32-bit stores are
    /// zero-extended by the wrapper; DMA presents full 64-bit beats).
    /// Captures valid module outputs into the FIFO when enabled.
    pub fn write_data(&mut self, data: u64) -> ModuleOutput {
        self.write_data_at(0, data)
    }

    /// Addressed variant of [`Self::write_data`] for CPU stores into the
    /// decoded data window.
    pub fn write_data_at(&mut self, offset: u32, data: u64) -> ModuleOutput {
        self.holding = data;
        self.writes += 1;
        let out = self.module.poke_at(offset, data);
        if self.fifo_capture && out.valid {
            if self.fifo.len() >= FIFO_CAPACITY {
                self.fifo_overruns += 1;
            } else {
                self.fifo.push_back(out.data);
            }
        }
        out
    }

    /// A beat from the read channel (direct, not FIFO; with read-strobe).
    pub fn read_data(&mut self) -> u64 {
        self.reads += 1;
        self.module.read_pop()
    }

    /// Addressed read for CPU loads from the decoded data window.
    pub fn read_data_at(&mut self, offset: u32) -> u64 {
        self.reads += 1;
        self.module.read_at(offset)
    }

    /// Read channel without a strobe (the high-half view of 32-bit CPU
    /// loads — must not advance queue-producing modules).
    pub fn peek_data(&self) -> u64 {
        self.module.peek()
    }

    /// FIFO occupancy.
    pub fn fifo_level(&self) -> usize {
        self.fifo.len()
    }

    /// Free FIFO entries.
    pub fn fifo_room(&self) -> usize {
        FIFO_CAPACITY - self.fifo.len()
    }

    /// Is the FIFO full? (The block-interleave condition: "when the FIFO
    /// becomes full, the write operation stops and the data contained in
    /// the FIFO is transferred to the external memory by a DMA operation.")
    pub fn fifo_full(&self) -> bool {
        self.fifo.len() >= FIFO_CAPACITY
    }

    /// Pops up to `n` entries for a DMA drain burst.
    pub fn fifo_pop(&mut self, n: usize) -> Vec<u64> {
        let take = n.min(self.fifo.len());
        self.fifo.drain(..take).collect()
    }

    /// Raises the completion interrupt.
    pub fn raise_irq(&mut self) {
        self.irq = true;
    }

    /// Interrupt line level.
    pub fn irq(&self) -> bool {
        self.irq
    }

    /// Acknowledges (clears) the interrupt.
    pub fn ack_irq(&mut self) {
        self.irq = false;
    }

    /// Status word per the CSR map: bit 0 DMA busy, bit 1 DMA done, bit 2
    /// FIFO full, bit 3 FIFO empty.
    pub fn status(&self) -> u32 {
        use coreconnect_sim::dma::DmaStatus;
        let mut s = 0;
        match self.dma.status() {
            DmaStatus::Busy => s |= 1,
            DmaStatus::Done => s |= 2,
            DmaStatus::Idle => {}
        }
        if self.fifo_full() {
            s |= 4;
        }
        if self.fifo.is_empty() {
            s |= 8;
        }
        s
    }

    /// Resets module, FIFO and statistics.
    pub fn reset(&mut self) {
        self.module.reset();
        self.holding = 0;
        self.fifo.clear();
        self.fifo_capture = false;
        self.irq = false;
        self.writes = 0;
        self.reads = 0;
        self.fifo_overruns = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coreconnect_sim::dma::{DmaDirection, DmaStatus};

    /// Pass-through module that flags every output valid.
    struct Echo(u64);
    impl DynamicModule for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn poke(&mut self, data: u64) -> ModuleOutput {
            self.0 = data;
            ModuleOutput { data, valid: true }
        }
        fn peek(&self) -> u64 {
            self.0
        }
        fn reset(&mut self) {
            self.0 = 0;
        }
    }

    #[test]
    fn fifo_captures_valid_outputs() {
        let mut dock = PlbDock::new();
        dock.bind_module(Box::new(Echo(0)));
        dock.fifo_capture = true;
        for i in 0..10u64 {
            dock.write_data(i);
        }
        assert_eq!(dock.fifo_level(), 10);
        assert_eq!(dock.fifo_pop(4), vec![0, 1, 2, 3]);
        assert_eq!(dock.fifo_level(), 6);
    }

    #[test]
    fn capture_disabled_by_default() {
        let mut dock = PlbDock::new();
        dock.bind_module(Box::new(Echo(0)));
        dock.write_data(7);
        assert_eq!(dock.fifo_level(), 0);
        assert_eq!(dock.read_data(), 7);
    }

    #[test]
    fn fifo_capacity_is_2047() {
        let mut dock = PlbDock::new();
        dock.bind_module(Box::new(Echo(0)));
        dock.fifo_capture = true;
        for i in 0..FIFO_CAPACITY as u64 {
            dock.write_data(i);
        }
        assert!(dock.fifo_full());
        assert_eq!(dock.fifo_level(), 2047);
        assert_eq!(dock.fifo_room(), 0);
        // One more: overrun counter (drivers must not do this).
        dock.write_data(9999);
        assert_eq!(dock.fifo_overruns, 1);
        assert_eq!(dock.fifo_level(), 2047);
    }

    #[test]
    fn status_bits() {
        let mut dock = PlbDock::new();
        assert_eq!(dock.status() & 8, 8, "FIFO empty");
        dock.dma.program(0, 64, DmaDirection::MemToDock);
        assert_eq!(dock.dma.status(), DmaStatus::Busy);
        assert_eq!(dock.status() & 1, 1, "DMA busy");
    }

    #[test]
    fn irq_lifecycle() {
        let mut dock = PlbDock::new();
        assert!(!dock.irq());
        dock.raise_irq();
        assert!(dock.irq());
        dock.ack_irq();
        assert!(!dock.irq());
    }

    #[test]
    fn reset_clears_everything() {
        let mut dock = PlbDock::new();
        dock.bind_module(Box::new(Echo(0)));
        dock.fifo_capture = true;
        dock.write_data(1);
        dock.raise_irq();
        dock.reset();
        assert_eq!(dock.fifo_level(), 0);
        assert!(!dock.irq());
        assert!(!dock.fifo_capture);
        assert_eq!(dock.writes, 0);
    }
}
