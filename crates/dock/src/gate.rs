//! Gate-level module adapter.
//!
//! Wraps a placed netlist (simulated cycle-by-cycle in `vp2-netlist`) as a
//! [`DynamicModule`]. Port convention for dock-attachable netlists:
//!
//! * `din`  — write-channel input (≤ 64 bits),
//! * `wr`   — 1-bit write strobe (the dock's clock-enable signal),
//! * `dout` — read-channel output (≤ 64 bits),
//! * `valid` — optional 1-bit output-valid flag.
//!
//! The adapter is the reference implementation that the fast behavioural
//! models are property-tested against.

use crate::module::{DynamicModule, ModuleOutput};
use vp2_netlist::{Netlist, NetlistError, Simulator};

/// A netlist-backed dynamic module.
#[derive(Debug, Clone)]
pub struct GateLevelModule {
    name: String,
    sim: Simulator,
    has_valid: bool,
    has_rd: bool,
    has_addr: bool,
    has_busy: bool,
}

impl GateLevelModule {
    /// Builds the adapter; validates the netlist and the port convention.
    ///
    /// # Errors
    /// Returns the netlist's validation error, or panics if the mandatory
    /// ports are missing (that is a build bug, not a data condition).
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        let sim = Simulator::new(netlist)?;
        assert!(sim.input_width("din") > 0, "module must have a din port");
        assert_eq!(sim.input_width("wr"), 1, "module must have a 1-bit wr port");
        assert!(sim.output_width("dout") > 0, "module must have a dout port");
        let has_valid = sim.output_width("valid") == 1;
        let has_rd = sim.input_width("rd") == 1;
        let has_addr = sim.input_width("addr") > 0;
        let has_busy = sim.output_width("busy") == 1;
        Ok(GateLevelModule {
            name: netlist.name.clone(),
            sim,
            has_valid,
            has_rd,
            has_addr,
            has_busy,
        })
    }

    /// Runs free-running clock cycles while the module's `busy` output is
    /// high (multi-cycle modules — e.g. SHA-1's 80 rounds — compute between
    /// bus transfers on the always-running module clock; the dock's
    /// write-strobe only gates *data* capture).
    fn drain_busy(&mut self) {
        if !self.has_busy {
            return;
        }
        let mut guard = 0;
        while self.sim.output("busy") == 1 {
            self.sim.set_input("wr", 0);
            self.sim.step();
            guard += 1;
            assert!(guard < 65536, "module stuck busy");
        }
    }

    /// Width of the write channel.
    pub fn din_width(&self) -> usize {
        self.sim.input_width("din")
    }

    /// Clocks the module once *without* the strobe (idle cycle).
    pub fn idle_cycle(&mut self) {
        self.sim.set_input("wr", 0);
        self.sim.step();
    }

    /// Access to the underlying simulator (equivalence tests).
    pub fn simulator_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }
}

impl DynamicModule for GateLevelModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn poke(&mut self, data: u64) -> ModuleOutput {
        self.poke_at(0, data)
    }

    fn poke_at(&mut self, offset: u32, data: u64) -> ModuleOutput {
        if self.has_addr {
            self.sim.set_input("addr", u64::from(offset >> 2));
        }
        self.sim.set_input("din", data);
        self.sim.set_input("wr", 1);
        self.sim.step();
        self.sim.set_input("wr", 0);
        self.drain_busy();
        ModuleOutput {
            data: self.sim.output("dout"),
            valid: !self.has_valid || self.sim.output("valid") == 1,
        }
    }

    fn read_at(&mut self, offset: u32) -> u64 {
        if self.has_addr {
            self.sim.set_input("addr", u64::from(offset >> 2));
            // Address-selected outputs are combinational; settle first.
        }
        self.read_pop()
    }

    fn peek(&self) -> u64 {
        self.sim.output("dout")
    }

    fn read_pop(&mut self) -> u64 {
        let head = self.sim.output("dout");
        if self.has_rd {
            self.sim.set_input("rd", 1);
            self.sim.set_input("wr", 0);
            self.sim.step();
            self.sim.set_input("rd", 0);
        }
        head
    }

    fn reset(&mut self) {
        self.sim.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp2_netlist::components;
    use vp2_netlist::Netlist;

    /// A dock-attachable accumulator: dout += din on each strobe.
    fn accumulator(width: u16) -> Netlist {
        let mut nl = Netlist::new("acc");
        let din = nl.input_bus("din", width);
        let wr = nl.input("wr", 0);
        let d: Vec<_> = (0..width as usize).map(|_| nl.net()).collect();
        let q: Vec<_> = d.iter().map(|&di| nl.ff(di, false, Some(wr))).collect();
        let sum = components::add_mod(&mut nl, &q, &din);
        for (i, &s) in sum.iter().enumerate() {
            nl.lut_into(
                components::truth4(|a, _, _, _| a),
                [Some(s), None, None, None],
                d[i],
            );
        }
        nl.output_bus("dout", &q);
        nl
    }

    #[test]
    fn accumulator_accumulates_on_strobe() {
        let nl = accumulator(16);
        let mut m = GateLevelModule::new(&nl).unwrap();
        assert_eq!(m.peek(), 0);
        m.poke(5);
        assert_eq!(m.peek(), 5);
        m.poke(7);
        assert_eq!(m.peek(), 12);
        m.idle_cycle();
        assert_eq!(m.peek(), 12, "no strobe, no change");
        m.reset();
        assert_eq!(m.peek(), 0);
    }

    #[test]
    fn valid_defaults_to_true_without_port() {
        let nl = accumulator(8);
        let mut m = GateLevelModule::new(&nl).unwrap();
        assert!(m.poke(1).valid);
    }

    #[test]
    fn valid_port_respected() {
        // Module asserting valid only when dout is even: valid = !dout[0].
        let mut nl = Netlist::new("evenvalid");
        let din = nl.input_bus("din", 8);
        let wr = nl.input("wr", 0);
        let q = components::register(&mut nl, &din, Some(wr));
        let inv = components::not(&mut nl, q[0]);
        nl.output_bus("dout", &q);
        nl.output("valid", 0, inv);
        let mut m = GateLevelModule::new(&nl).unwrap();
        assert!(m.poke(2).valid);
        assert!(!m.poke(3).valid);
    }

    #[test]
    #[should_panic(expected = "din port")]
    fn missing_ports_rejected() {
        let mut nl = Netlist::new("bad");
        let c = nl.constant(false);
        nl.output("dout", 0, c);
        let _ = GateLevelModule::new(&nl);
    }
}
