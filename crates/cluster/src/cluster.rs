//! The cluster front-end: streaming admission over a shard pool.

use std::sync::mpsc;

use rtr_apps::request::{Kernel, Request};
use rtr_core::SystemKind;
use rtr_service::{BatchPolicy, Service, ServiceConfig};
use rtr_telemetry::Telemetry;
use rtr_trace::Tracer;
use vp2_sim::SimTime;

use crate::pool::WorkerPool;
use crate::route::{RoutePolicy, Router};
use crate::shard::Shard;
use crate::snapshot::ClusterSnapshot;

/// The worker pool ships services across threads; this fails to compile
/// if any layer of the stack regrows thread-bound state (the old
/// `Rc<RefCell<_>>` tracer ring was exactly that).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Service>();
};

/// How to build one shard of the pool.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Which of the paper's two systems this shard simulates.
    pub kind: SystemKind,
    /// Per-frame configuration-corruption probability on this shard
    /// (0 disables fault injection).
    pub fault_rate: f64,
    /// Seed for the shard's deterministic fault plan.
    pub fault_seed: u64,
    /// Batch-scheduling policy for this shard's service. Per-shard so a
    /// pool can mix policies (e.g. one lanes shard for deadline traffic
    /// in front of swap-aware bulk shards).
    pub batch: BatchPolicy,
    /// Configuration-plane features (bitstream cache, differential frame
    /// compression, multi-module sub-slots) for this shard's service.
    /// Per-shard: a pool can dedicate a multi-module shard to small
    /// co-resident kernels while the rest run whole-region swaps.
    pub plane: rtr_configplane::ConfigPlaneConfig,
    /// Correlated ambient-upset bursts striking this shard's fabric
    /// (`None` disables them). Per-shard so a pool can model one rack
    /// position catching more radiation than another.
    pub burst: Option<rtr_service::BurstConfig>,
    /// Background configuration scrubbing on this shard (`None` leaves
    /// the scrubber off).
    pub scrub: Option<rtr_service::ScrubPolicy>,
}

impl ShardSpec {
    /// A fault-free shard of the given system, scheduling FCFS.
    pub fn new(kind: SystemKind) -> ShardSpec {
        ShardSpec {
            kind,
            fault_rate: 0.0,
            fault_seed: 0x5EED_FA57,
            batch: BatchPolicy::FcfsDrain,
            plane: rtr_configplane::ConfigPlaneConfig::default(),
            burst: None,
            scrub: None,
        }
    }

    /// Same shard with a hostile configuration plane.
    pub fn with_faults(kind: SystemKind, rate: f64, seed: u64) -> ShardSpec {
        ShardSpec {
            fault_rate: rate,
            fault_seed: seed,
            ..ShardSpec::new(kind)
        }
    }

    /// Same shard under a different batch-scheduling policy.
    pub fn with_batch(self, batch: BatchPolicy) -> ShardSpec {
        ShardSpec { batch, ..self }
    }

    /// Same shard with the given configuration-plane features.
    pub fn with_plane(self, plane: rtr_configplane::ConfigPlaneConfig) -> ShardSpec {
        ShardSpec { plane, ..self }
    }

    /// Same shard under correlated ambient-upset bursts.
    pub fn with_burst(self, burst: rtr_service::BurstConfig) -> ShardSpec {
        ShardSpec {
            burst: Some(burst),
            ..self
        }
    }

    /// Same shard with background scrubbing on.
    pub fn with_scrub(self, scrub: rtr_service::ScrubPolicy) -> ShardSpec {
        ShardSpec {
            scrub: Some(scrub),
            ..self
        }
    }
}

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// One spec per shard (mixing 32- and 64-bit profiles is fine).
    pub shards: Vec<ShardSpec>,
    /// Routing policy.
    pub policy: RoutePolicy,
    /// Kernels the cluster accepts (empty defaults to all six). Shards
    /// only calibrate and register what is listed, so a narrow workload
    /// boots a narrow — and cheaper — pool.
    pub kernels: Vec<Kernel>,
    /// Admission-buffer bound per shard: a shard flushes its buffer into
    /// its machine once this many requests are waiting. Peak resident
    /// work is `shards × flush_depth` regardless of stream length.
    pub flush_depth: usize,
    /// Check every response against the Rust reference implementation.
    pub verify: bool,
    /// How long a kernel stays quarantined from a shard's hardware path
    /// after repeated load failures.
    pub quarantine_cooldown: SimTime,
    /// Trace journal handle, fanned out to every shard (each shard's
    /// events carry its id). Disabled by default.
    pub trace: Tracer,
    /// Telemetry handle, fanned out to every shard like the tracer
    /// (each shard samples into its own series, offset by
    /// `shard_base`). Disabled by default; sampling is read-only, so
    /// snapshots are byte-identical with it on or off.
    pub telemetry: Telemetry,
    /// When set, each shard's merged metrics window keeps only this
    /// many of the most recent latency samples — constant memory for
    /// arbitrarily long runs. Counters and busy-time totals stay exact;
    /// cluster-level latency percentiles rank the retained windows
    /// instead of the full history. `None` (the default) keeps the
    /// exact unbounded series, byte-identical to prior builds.
    pub bounded_windows: Option<usize>,
    /// Offset added to every shard's trace id, so several clusters can
    /// share one journal registry with disjoint shard-id spaces (the
    /// federation gives pool `p` base `100·p`). Zero by default.
    pub shard_base: u32,
    /// Compare shards on *stale* ready estimates instead of settling
    /// every in-flight flush per routing decision. Off (the default),
    /// load-estimating policies see exact state but serialize the pool;
    /// on, estimates lag by at most one in-flight flush and the pool
    /// stays fully pipelined. Either way equal seeds stay byte-identical
    /// at any thread count — the stale state is re-synced only at flush
    /// boundaries, which are deterministic in admission order.
    pub stale_estimates: bool,
    /// Worker threads for shard boots and flushes. `1` (the default)
    /// runs everything inline on the caller's thread; `> 1` spawns a
    /// worker pool and ships each shard's flush to it, joining a
    /// shard's outstanding flush only when a routing decision needs its
    /// live state or a second flush targets it. Equal seeds produce
    /// byte-identical snapshots and trace exports at any thread count.
    pub threads: usize,
}

impl ClusterConfig {
    /// `n` identical fault-free shards under the given policy.
    pub fn uniform(kind: SystemKind, n: usize, policy: RoutePolicy) -> ClusterConfig {
        ClusterConfig {
            shards: vec![ShardSpec::new(kind); n],
            policy,
            kernels: Vec::new(),
            flush_depth: 8,
            verify: true,
            quarantine_cooldown: SimTime::from_ms(5),
            trace: Tracer::disabled(),
            telemetry: Telemetry::disabled(),
            bounded_windows: None,
            shard_base: 0,
            stale_estimates: false,
            threads: 1,
        }
    }
}

/// A pool of independent simulated machines behind one admission layer.
pub struct Cluster {
    shards: Vec<Shard>,
    router: Router,
    flush_depth: usize,
    /// Worker threads for shard flushes; `None` runs flushes inline.
    pool: Option<WorkerPool>,
    /// Requests currently resident across all admission buffers, kept
    /// incrementally (+1 on admit, −buffered on flush) so tracking the
    /// peak costs O(1) per request instead of a sum over every shard.
    resident: usize,
    peak_buffered: usize,
    admitted: u64,
}

impl Cluster {
    /// Boots every shard (each builds, calibrates and warms up its own
    /// machine) and an empty front-end.
    ///
    /// # Panics
    /// Panics if `config.shards` is empty or `flush_depth` is zero.
    pub fn new(config: ClusterConfig) -> Cluster {
        assert!(
            !config.shards.is_empty(),
            "a cluster needs at least one shard"
        );
        assert!(config.flush_depth > 0, "flush_depth must be positive");
        let pool = (config.threads > 1).then(|| WorkerPool::new(config.threads));
        let service_configs: Vec<ServiceConfig> = config
            .shards
            .iter()
            .enumerate()
            .map(|(id, spec)| ServiceConfig {
                verify: config.verify,
                kernels: config.kernels.clone(),
                batch: spec.batch,
                plane: spec.plane.clone(),
                quarantine_cooldown: config.quarantine_cooldown,
                burst: spec.burst,
                scrub: spec.scrub,
                trace: config.trace.with_shard(config.shard_base + id as u32),
                telemetry: config.telemetry.with_shard(config.shard_base + id as u32),
                ..ServiceConfig::with_faults(spec.kind, spec.fault_rate, spec.fault_seed)
            })
            .collect();
        // Boot every shard — build, calibrate, warm up its machine.
        // Boots are independent and deterministic per shard, so with a
        // pool they run in parallel; results are collected in shard
        // order, so the outcome is identical either way.
        let services: Vec<Box<Service>> = match &pool {
            Some(pool) => {
                let rxs: Vec<mpsc::Receiver<Box<Service>>> = service_configs
                    .into_iter()
                    .map(|cfg| {
                        let (tx, rx) = mpsc::channel();
                        pool.submit(Box::new(move || {
                            let _ = tx.send(Box::new(Service::new(cfg)));
                        }));
                        rx
                    })
                    .collect();
                rxs.into_iter()
                    .map(|rx| {
                        rx.recv()
                            .expect("shard boot worker disappeared (panicked?)")
                    })
                    .collect()
            }
            None => service_configs
                .into_iter()
                .map(|cfg| Box::new(Service::new(cfg)))
                .collect(),
        };
        let shards: Vec<Shard> = services
            .into_iter()
            .zip(&config.shards)
            .enumerate()
            .map(|(id, (service, spec))| {
                let faulty = spec.fault_rate > 0.0 || spec.burst.is_some();
                Shard::new(id, service, faulty, config.bounded_windows)
            })
            .collect();
        Cluster {
            shards,
            router: Router::new(config.policy, config.stale_estimates),
            flush_depth: config.flush_depth,
            pool,
            resident: 0,
            peak_buffered: 0,
            admitted: 0,
        }
    }

    /// The shard pool.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The active routing policy.
    pub fn policy(&self) -> RoutePolicy {
        self.router.policy()
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Largest number of requests ever resident in admission buffers at
    /// once — bounded by `shards × flush_depth` however long the stream.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Worker threads flushing shards (1 = inline, no pool).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, WorkerPool::threads)
    }

    /// Requests resident in admission buffers right now — the O(1)
    /// backlog signal the federation's watermarks compare pools on.
    pub fn backlog(&self) -> usize {
        self.resident
    }

    /// Estimated queueing delay a request arriving at stream instant
    /// `arrival` would see on this cluster's least-backed shard. Reads
    /// only stale per-shard state (no joins), and is relative to the
    /// arrival rather than any machine clock, so estimates are
    /// comparable across clusters whose shards booted at different
    /// origins.
    pub fn backlog_estimate(&self, arrival: SimTime) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.backlog_stale(arrival))
            .min()
            .expect("at least one shard")
    }

    /// Cheapest snapshot-priced estimate of serving one `(kernel,
    /// bytes)` item anywhere on this cluster, amortizing a hardware
    /// path's measured reconfiguration EWMA over one flush batch. The
    /// federation's per-cluster per-kernel routing input: a Bit64 pool's
    /// cheap reconfiguration (and SHA-1's software-only fate on Bit32
    /// regions) shows up here, fed back from each shard's live
    /// measurements at every flush boundary.
    pub fn kernel_estimate(&self, kernel: Kernel, bytes: usize) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.estimate_for(kernel, bytes, self.flush_depth))
            .min()
            .expect("at least one shard")
    }

    /// Hands back up to `max` of the newest buffered requests from this
    /// cluster's most-backed-up shard (ties to the lowest id), fixing
    /// the admission counters — the requests are no longer this
    /// cluster's. The federation's work-stealing hook; touches no
    /// service state, so stealing never stalls a pipelined pool.
    pub fn give_back(&mut self, max: usize) -> Vec<(SimTime, Request)> {
        let donor = (0..self.shards.len())
            .max_by_key(|&i| (self.shards[i].buffered(), usize::MAX - i))
            .expect("at least one shard");
        let taken = self.shards[donor].take_back(max);
        self.resident -= taken.len();
        self.admitted -= taken.len() as u64;
        taken
    }

    /// Joins every shard and folds their window metrics into one
    /// accumulator — the raw latency series the federation pools across
    /// clusters (percentiles do not merge; samples do).
    pub fn fold_window(&mut self) -> rtr_service::Metrics {
        let mut all = rtr_service::Metrics::new();
        for shard in &mut self.shards {
            shard.join();
        }
        for shard in &self.shards {
            all.absorb(shard.window());
        }
        all
    }

    /// Routes one request into a shard's buffer and returns the shard id;
    /// flushes that shard if its buffer hit the bound (dispatching the
    /// flush to a worker thread when the cluster has a pool).
    pub fn admit(&mut self, arrival: SimTime, request: Request) -> usize {
        let id = self.router.pick(&mut self.shards, request.kernel());
        self.shards[id].admit(arrival, request);
        self.admitted += 1;
        self.resident += 1;
        self.peak_buffered = self.peak_buffered.max(self.resident);
        if self.shards[id].buffered() >= self.flush_depth {
            self.resident -= self.shards[id].buffered();
            self.shards[id].flush(self.pool.as_ref());
        }
        id
    }

    /// Flushes every shard's buffer into its machine and joins every
    /// in-flight flush — afterwards all shards are settled.
    pub fn flush_all(&mut self) {
        for shard in &mut self.shards {
            self.resident -= shard.buffered();
            shard.flush(self.pool.as_ref());
        }
        for shard in &mut self.shards {
            shard.join();
        }
    }

    /// Consumes an arrival stream to completion — the streaming admission
    /// path: requests are routed as they are pulled, so the schedule is
    /// never materialised — and returns the cluster snapshot.
    ///
    /// Arrival times must be nondecreasing (as [`TrafficStream`] yields
    /// them); each shard rejects out-of-order sub-schedules.
    ///
    /// [`TrafficStream`]: rtr_service::TrafficStream
    pub fn run(&mut self, stream: impl IntoIterator<Item = (SimTime, Request)>) -> ClusterSnapshot {
        for (arrival, request) in stream {
            self.admit(arrival, request);
        }
        self.flush_all();
        self.snapshot()
    }

    /// Aggregates per-shard windows into the cluster-level snapshot,
    /// joining any in-flight flushes first so every window is complete.
    /// Buffered-but-unflushed requests are not yet in any window; call
    /// [`Cluster::flush_all`] first (or use [`Cluster::run`]).
    pub fn snapshot(&mut self) -> ClusterSnapshot {
        for shard in &mut self.shards {
            shard.join();
        }
        ClusterSnapshot::aggregate(&self.shards, self.router.stats, self.peak_buffered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_apps::request::Kernel;
    use rtr_service::TrafficConfig;

    #[test]
    fn round_robin_spreads_and_counts_reconcile() {
        let mut cluster = Cluster::new(ClusterConfig {
            flush_depth: 4,
            ..ClusterConfig::uniform(SystemKind::Bit32, 2, RoutePolicy::RoundRobin)
        });
        let cfg = TrafficConfig {
            requests: 16,
            kernels: vec![Kernel::Jenkins, Kernel::PatMatch],
            burst_percent: 0,
            ..TrafficConfig::default()
        };
        let snap = cluster.run(cfg.stream());
        assert_eq!(cluster.admitted(), 16);
        assert_eq!(snap.total.completed, 16);
        assert_eq!(snap.shards.len(), 2);
        // Round-robin alternates strictly when nothing is quarantined.
        assert_eq!(snap.shards[0].admitted, 8);
        assert_eq!(snap.shards[1].admitted, 8);
        assert_eq!(
            snap.total.completed,
            snap.shards.iter().map(|s| s.metrics.completed).sum::<u64>()
        );
        assert_eq!(snap.total.verify_failures, 0);
        assert!(snap.peak_buffered <= 2 * 4);
        assert!(snap.makespan >= snap.shards[0].elapsed);
        // JSON renders the whole breakdown.
        let json = snap.to_json().render();
        assert!(json.contains("\"shard_count\":2"));
        assert!(json.contains("\"latency_histogram\""));
    }

    #[test]
    fn affinity_pins_each_kernel_to_one_shard() {
        let mut cluster = Cluster::new(ClusterConfig {
            flush_depth: 4,
            ..ClusterConfig::uniform(SystemKind::Bit32, 2, RoutePolicy::KernelAffinity)
        });
        let cfg = TrafficConfig {
            requests: 24,
            kernels: vec![Kernel::Jenkins, Kernel::PatMatch],
            burst_percent: 0,
            ..TrafficConfig::default()
        };
        let mut home: [Option<usize>; Kernel::ALL.len()] = [None; Kernel::ALL.len()];
        for (t, req) in cfg.stream() {
            let kernel = req.kernel();
            let id = cluster.admit(t, req);
            // Once a kernel has a home every later request follows it.
            match home[kernel.index()] {
                Some(expected) => assert_eq!(id, expected, "{kernel} moved shards"),
                None => home[kernel.index()] = Some(id),
            }
        }
        cluster.flush_all();
        let snap = cluster.snapshot();
        // Two kernels, two shards: each shard serves exactly one kernel,
        // so neither ever swaps after its first (warm-up or batch) load.
        for shard in &snap.shards {
            assert!(
                shard.metrics.swaps <= 1,
                "shard {} swapped {} times under affinity",
                shard.id,
                shard.metrics.swaps
            );
        }
        assert_eq!(snap.total.completed, 24);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_cluster_is_rejected() {
        let _ = Cluster::new(ClusterConfig {
            shards: Vec::new(),
            ..ClusterConfig::uniform(SystemKind::Bit32, 1, RoutePolicy::RoundRobin)
        });
    }
}
