//! Routing policies for the cluster front-end.
//!
//! The router sees one request at a time (streaming admission) and picks
//! a shard for it. All policies are quarantine-aware: shards whose
//! hardware path for the request's kernel is quarantined are skipped
//! while any healthy candidate exists, so faulted shards shed load
//! instead of accumulating work they can only serve in software.

use rtr_apps::request::Kernel;
use vp2_sim::Json;

use crate::shard::Shard;

/// Which shard gets the next request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Spray requests across shards in admission order.
    RoundRobin,
    /// Route to the shard with the earliest estimated ready time
    /// (machine clock + cost-model estimate of buffered work).
    LeastLoaded,
    /// Route to the shard whose dynamic region already holds (or is
    /// about to hold) the kernel; first-seen kernels fall back to
    /// least-loaded and become sticky. Minimises ICAP swap traffic.
    KernelAffinity,
}

impl RoutePolicy {
    /// Stable lowercase name (JSON, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "round_robin",
            RoutePolicy::LeastLoaded => "least_loaded",
            RoutePolicy::KernelAffinity => "kernel_affinity",
        }
    }
}

impl std::fmt::Display for RoutePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the router's decisions broke down, for the cluster snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoutingStats {
    /// Requests placed by the base policy (rotation or load estimate).
    pub base: u64,
    /// Requests placed on a shard already holding their kernel.
    pub affinity_hits: u64,
    /// Requests diverted off their preferred shard by an active
    /// quarantine.
    pub shed: u64,
}

impl RoutingStats {
    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("base", self.base)
            .field("affinity_hits", self.affinity_hits)
            .field("shed", self.shed)
    }
}

/// Per-cluster routing state: the policy plus whatever it remembers.
#[derive(Debug)]
pub(crate) struct Router {
    policy: RoutePolicy,
    rr_next: usize,
    home: [Option<usize>; Kernel::ALL.len()],
    pub(crate) stats: RoutingStats,
}

impl Router {
    pub(crate) fn new(policy: RoutePolicy) -> Router {
        Router {
            policy,
            rr_next: 0,
            home: [None; Kernel::ALL.len()],
            stats: RoutingStats::default(),
        }
    }

    pub(crate) fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// Picks the shard for one request. Deterministic: ties break on the
    /// lowest shard id.
    pub(crate) fn pick(&mut self, shards: &[Shard], kernel: Kernel) -> usize {
        debug_assert!(!shards.is_empty());
        let healthy = |s: &Shard| !s.sheds(kernel);
        let any_healthy = shards.iter().any(healthy);
        // With every shard quarantined for this kernel there is nothing
        // to shed to — software-path service beats refusing the request.
        let admissible = |s: &Shard| !any_healthy || healthy(s);
        match self.policy {
            RoutePolicy::RoundRobin => {
                for step in 0..shards.len() {
                    let id = (self.rr_next + step) % shards.len();
                    if admissible(&shards[id]) {
                        self.rr_next = (id + 1) % shards.len();
                        if step == 0 {
                            self.stats.base += 1;
                        } else {
                            self.stats.shed += 1;
                        }
                        return id;
                    }
                }
                unreachable!("admissible() accepts every shard when none is healthy");
            }
            RoutePolicy::LeastLoaded => {
                // One pass tracks both minima: the admissible pick (the
                // answer) and the unrestricted pick (the yardstick for
                // counting quarantine diversions). Iteration is in shard-id
                // order and the comparison is strict, so the lowest id
                // wins ties exactly as `least_loaded` would.
                let mut best: Option<&Shard> = None;
                let mut best_overall: Option<&Shard> = None;
                for s in shards {
                    let beats = |b: &Option<&Shard>| {
                        b.is_none_or(|b| (s.ready_at(), s.id()) < (b.ready_at(), b.id()))
                    };
                    if beats(&best_overall) {
                        best_overall = Some(s);
                    }
                    if admissible(s) && beats(&best) {
                        best = Some(s);
                    }
                }
                let id = best.expect("at least one admissible shard").id();
                // If the unrestricted pick is a quarantined shard, this
                // request was diverted by the quarantine — count it as
                // shed, not as a plain load-estimate placement. (With no
                // healthy shard at all nothing is diverted anywhere.)
                if any_healthy && !healthy(best_overall.expect("at least one shard")) {
                    self.stats.shed += 1;
                } else {
                    self.stats.base += 1;
                }
                id
            }
            RoutePolicy::KernelAffinity => {
                // Sticky home first: once a kernel settles on a shard it
                // stays there, so its module stays resident.
                if let Some(id) = self.home[kernel.index()] {
                    if admissible(&shards[id]) {
                        self.stats.affinity_hits += 1;
                        return id;
                    }
                    // Home quarantined: shed to the least-loaded healthy
                    // shard without reassigning home — the shard gets its
                    // kernel back once the cooldown expires.
                    let id = least_loaded(shards, &admissible);
                    self.stats.shed += 1;
                    return id;
                }
                // No home yet: adopt a shard whose region already holds
                // the kernel. Every shard boots with the same warm-up
                // module resident, so prefer holders serving the fewest
                // home kernels — that spreads first-seen kernels instead
                // of piling them onto shard 0.
                let homes = self.homes_per_shard(shards.len());
                // The holder this kernel would adopt were no quarantine
                // in play — the yardstick for counting diversions.
                let unrestricted_holder = shards
                    .iter()
                    .filter(|s| s.holds(kernel))
                    .min_by_key(|s| (homes[s.id()], s.ready_at(), s.id()))
                    .map(Shard::id);
                let adopted = shards
                    .iter()
                    .filter(|s| admissible(s) && s.holds(kernel))
                    .min_by_key(|s| (homes[s.id()], s.ready_at(), s.id()))
                    .map(Shard::id);
                let id = match adopted {
                    Some(id) => {
                        // Quarantine may have pushed the kernel off the
                        // holder it would otherwise have adopted.
                        if unrestricted_holder == Some(id) {
                            self.stats.affinity_hits += 1;
                        } else {
                            self.stats.shed += 1;
                        }
                        id
                    }
                    // First sight of a kernel no admissible shard holds:
                    // the emptiest (fewest homes, then least-loaded)
                    // shard takes it.
                    None => {
                        let id = shards
                            .iter()
                            .filter(|s| admissible(s))
                            .min_by_key(|s| (homes[s.id()], s.ready_at(), s.id()))
                            .expect("at least one admissible shard")
                            .id();
                        let emptiest_unrestricted = shards
                            .iter()
                            .min_by_key(|s| (homes[s.id()], s.ready_at(), s.id()))
                            .expect("at least one shard");
                        // Shed if a quarantined holder existed, or the
                        // emptiest shard was itself quarantined away.
                        if unrestricted_holder.is_some()
                            || (any_healthy && !healthy(emptiest_unrestricted))
                        {
                            self.stats.shed += 1;
                        } else {
                            self.stats.base += 1;
                        }
                        id
                    }
                };
                self.home[kernel.index()] = Some(id);
                id
            }
        }
    }
}

impl Router {
    /// How many kernels call each shard home.
    fn homes_per_shard(&self, shard_count: usize) -> Vec<u64> {
        let mut homes = vec![0u64; shard_count];
        for id in self.home.iter().flatten() {
            homes[*id] += 1;
        }
        homes
    }
}

/// The admissible shard with the earliest ready time (lowest id on ties).
fn least_loaded(shards: &[Shard], admissible: &impl Fn(&Shard) -> bool) -> usize {
    shards
        .iter()
        .filter(|s| admissible(s))
        .min_by_key(|s| (s.ready_at(), s.id()))
        .expect("at least one admissible shard")
        .id()
}
