//! Routing policies for the cluster front-end.
//!
//! The router sees one request at a time (streaming admission) and picks
//! a shard for it. All policies are quarantine-aware: shards whose
//! hardware path for the request's kernel is quarantined are skipped
//! while any healthy candidate exists, so faulted shards shed load
//! instead of accumulating work they can only serve in software.

use rtr_apps::request::Kernel;
use vp2_sim::{Json, SimTime};

use crate::shard::Shard;

/// Which shard gets the next request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Spray requests across shards in admission order.
    RoundRobin,
    /// Route to the shard with the earliest estimated ready time
    /// (machine clock + cost-model estimate of buffered work).
    LeastLoaded,
    /// Route to the shard whose dynamic region already holds (or is
    /// about to hold) the kernel; first-seen kernels fall back to
    /// least-loaded and become sticky. Minimises ICAP swap traffic.
    KernelAffinity,
}

impl RoutePolicy {
    /// Stable lowercase name (JSON, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "round_robin",
            RoutePolicy::LeastLoaded => "least_loaded",
            RoutePolicy::KernelAffinity => "kernel_affinity",
        }
    }
}

impl std::fmt::Display for RoutePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the router's decisions broke down, for the cluster snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoutingStats {
    /// Requests placed by the base policy (rotation or load estimate).
    pub base: u64,
    /// Requests placed on a shard already holding their kernel.
    pub affinity_hits: u64,
    /// Requests diverted off their preferred shard by an active
    /// quarantine.
    pub shed: u64,
}

impl RoutingStats {
    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("base", self.base)
            .field("affinity_hits", self.affinity_hits)
            .field("shed", self.shed)
    }
}

/// Per-cluster routing state: the policy plus whatever it remembers.
#[derive(Debug)]
pub(crate) struct Router {
    policy: RoutePolicy,
    /// Compare shards on stale ready estimates (never joining an
    /// in-flight flush) instead of settling every shard per decision.
    /// Estimates lag reality by at most one in-flight flush; in exchange
    /// load-estimating policies stay fully pipelined.
    stale: bool,
    rr_next: usize,
    home: [Option<usize>; Kernel::ALL.len()],
    pub(crate) stats: RoutingStats,
}

impl Router {
    pub(crate) fn new(policy: RoutePolicy, stale: bool) -> Router {
        Router {
            policy,
            stale,
            rr_next: 0,
            home: [None; Kernel::ALL.len()],
            stats: RoutingStats::default(),
        }
    }

    /// Per-shard ready estimates for load comparison: exact (settling
    /// every shard — the pipeline bottleneck) or stale (no joins at
    /// all), per the cluster's `stale_estimates` mode.
    fn ready_estimates(&self, shards: &mut [Shard]) -> Vec<SimTime> {
        if self.stale {
            shards.iter().map(Shard::ready_at_stale).collect()
        } else {
            shards.iter_mut().map(Shard::ready_at_sync).collect()
        }
    }

    pub(crate) fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// Picks the shard for one request. Deterministic: ties break on the
    /// lowest shard id.
    ///
    /// Takes the pool mutably because reading a shard's live state may
    /// first have to join its in-flight flush. The probes are ordered
    /// cheapest-first to keep a parallel pool pipelined: the quarantine
    /// probe is free on fault-free shards, the buffered-count side of
    /// `holds` never joins, and only `ready_at` (the load estimate)
    /// always settles a shard — so least-loaded routing inherently
    /// serializes, while round-robin and affinity home-hits never wait.
    pub(crate) fn pick(&mut self, shards: &mut [Shard], kernel: Kernel) -> usize {
        debug_assert!(!shards.is_empty());
        let n = shards.len();
        let healthy: Vec<bool> = shards.iter_mut().map(|s| !s.sheds_sync(kernel)).collect();
        let any_healthy = healthy.iter().any(|&h| h);
        // With every shard quarantined for this kernel there is nothing
        // to shed to — software-path service beats refusing the request.
        let admissible = |i: usize| !any_healthy || healthy[i];
        match self.policy {
            RoutePolicy::RoundRobin => {
                for step in 0..n {
                    let id = (self.rr_next + step) % n;
                    if admissible(id) {
                        self.rr_next = (id + 1) % n;
                        if step == 0 {
                            self.stats.base += 1;
                        } else {
                            self.stats.shed += 1;
                        }
                        return id;
                    }
                }
                unreachable!("admissible() accepts every shard when none is healthy");
            }
            RoutePolicy::LeastLoaded => {
                let ready = self.ready_estimates(shards);
                // One pass tracks both minima: the admissible pick (the
                // answer) and the unrestricted pick (the yardstick for
                // counting quarantine diversions). Iteration is in shard-id
                // order and the comparison is strict, so the lowest id
                // wins ties exactly as `least_loaded` would.
                let mut best: Option<usize> = None;
                let mut best_overall: Option<usize> = None;
                for i in 0..n {
                    let beats = |b: &Option<usize>| b.is_none_or(|b| (ready[i], i) < (ready[b], b));
                    if beats(&best_overall) {
                        best_overall = Some(i);
                    }
                    if admissible(i) && beats(&best) {
                        best = Some(i);
                    }
                }
                let id = best.expect("at least one admissible shard");
                // If the unrestricted pick is a quarantined shard, this
                // request was diverted by the quarantine — count it as
                // shed, not as a plain load-estimate placement. (With no
                // healthy shard at all nothing is diverted anywhere.)
                if any_healthy && !healthy[best_overall.expect("at least one shard")] {
                    self.stats.shed += 1;
                } else {
                    self.stats.base += 1;
                }
                id
            }
            RoutePolicy::KernelAffinity => {
                // Sticky home first: once a kernel settles on a shard it
                // stays there, so its module stays resident.
                if let Some(id) = self.home[kernel.index()] {
                    if admissible(id) {
                        self.stats.affinity_hits += 1;
                        return id;
                    }
                    // Home quarantined: shed to the least-loaded healthy
                    // shard without reassigning home — the shard gets its
                    // kernel back once the cooldown expires.
                    let ready = self.ready_estimates(shards);
                    let id = least_loaded(&ready, &admissible);
                    self.stats.shed += 1;
                    return id;
                }
                // No home yet: adopt a shard whose region already holds
                // the kernel. Every shard boots with the same warm-up
                // module resident, so prefer holders serving the fewest
                // home kernels — that spreads first-seen kernels instead
                // of piling them onto shard 0. This is the one affinity
                // path that reads load estimates (and so settles every
                // shard) — it runs once per kernel, not per request.
                let homes = self.homes_per_shard(n);
                let holds: Vec<bool> = shards.iter_mut().map(|s| s.holds_sync(kernel)).collect();
                let ready = self.ready_estimates(shards);
                let adoption_key = |i: &usize| (homes[*i], ready[*i], *i);
                // The holder this kernel would adopt were no quarantine
                // in play — the yardstick for counting diversions.
                let unrestricted_holder = (0..n).filter(|&i| holds[i]).min_by_key(adoption_key);
                let adopted = (0..n)
                    .filter(|&i| admissible(i) && holds[i])
                    .min_by_key(adoption_key);
                let id = match adopted {
                    Some(id) => {
                        // Quarantine may have pushed the kernel off the
                        // holder it would otherwise have adopted.
                        if unrestricted_holder == Some(id) {
                            self.stats.affinity_hits += 1;
                        } else {
                            self.stats.shed += 1;
                        }
                        id
                    }
                    // First sight of a kernel no admissible shard holds:
                    // the emptiest (fewest homes, then least-loaded)
                    // shard takes it.
                    None => {
                        let id = (0..n)
                            .filter(|&i| admissible(i))
                            .min_by_key(adoption_key)
                            .expect("at least one admissible shard");
                        let emptiest_unrestricted =
                            (0..n).min_by_key(adoption_key).expect("at least one shard");
                        // Shed if a quarantined holder existed, or the
                        // emptiest shard was itself quarantined away.
                        if unrestricted_holder.is_some()
                            || (any_healthy && !healthy[emptiest_unrestricted])
                        {
                            self.stats.shed += 1;
                        } else {
                            self.stats.base += 1;
                        }
                        id
                    }
                };
                self.home[kernel.index()] = Some(id);
                id
            }
        }
    }
}

impl Router {
    /// How many kernels call each shard home.
    fn homes_per_shard(&self, shard_count: usize) -> Vec<u64> {
        let mut homes = vec![0u64; shard_count];
        for id in self.home.iter().flatten() {
            homes[*id] += 1;
        }
        homes
    }
}

/// The admissible shard with the earliest ready time (lowest id on ties).
fn least_loaded(ready: &[SimTime], admissible: &impl Fn(usize) -> bool) -> usize {
    (0..ready.len())
        .filter(|&i| admissible(i))
        .min_by_key(|&i| (ready[i], i))
        .expect("at least one admissible shard")
}
