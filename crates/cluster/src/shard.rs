//! One simulated machine of the pool.
//!
//! A shard wraps a complete [`Service`] — its own PPC405, buses, dock,
//! dynamic region and scheduler — behind a bounded admission buffer.
//! The cluster front-end routes requests into the buffer; when it fills
//! (or the stream ends) the shard flushes it as one open-loop schedule
//! into the service and merges the resulting window metrics, so the
//! full cluster workload never exists in memory at once.
//!
//! # Parallel flushes
//!
//! With a worker pool, [`Shard::flush`] ships the service (and the
//! drained schedule) to a worker thread and keeps routing; the shard is
//! then *in flight* until [`Shard::join`] receives the service back
//! along with the window it produced. Determinism rests on a single
//! discipline — **join before read**: any accessor that needs live
//! service state (`ready_at`, a `holds` fallback to the resident
//! module, `sheds` on a fault-injected shard, a second flush) first
//! joins the outstanding flush. Because a flush's outcome depends only
//! on the service state and the schedule — never on coordinator timing
//! — the joined state is byte-identical to what inline execution would
//! have produced, at any thread count.

use std::sync::mpsc;

use rtr_apps::request::{Kernel, Request};
use rtr_service::{CostModel, Metrics, Service};
use rtr_telemetry::{Gauge, Telemetry};
use rtr_trace::EventKind;
use vp2_sim::SimTime;

use crate::pool::WorkerPool;

/// What a flush worker sends back: the service it borrowed and the
/// window metrics the schedule produced.
type FlushResult = (Box<Service>, Metrics);

/// One machine of the cluster: a service plus its admission buffer.
pub struct Shard {
    id: usize,
    /// The service, when settled; `None` while a flush is in flight.
    service: Option<Box<Service>>,
    /// The in-flight flush's result channel, if any.
    inflight: Option<mpsc::Receiver<FlushResult>>,
    origin: SimTime,
    buffer: Vec<(SimTime, Request)>,
    /// Buffered requests per kernel, kept incrementally on admit/flush
    /// so `holds` answers in O(1) instead of scanning the buffer per
    /// routing decision.
    kernel_buffered: [u32; Kernel::ALL.len()],
    /// Cost-model estimate of the buffered work, computed lazily at
    /// `ready_at` (after any join, so it sees the post-flush cost
    /// model — the same model inline execution would have used) and
    /// cached until the next admit or flush.
    cost_cache: Option<SimTime>,
    /// Can this shard ever quarantine a kernel? Strikes only arise from
    /// fault-induced degraded loads or verify fallbacks, so a shard
    /// whose fault plan is empty (`fault_rate == 0`) answers `sheds`
    /// without settling an in-flight flush.
    can_quarantine: bool,
    window: Metrics,
    admitted: u64,
    /// Clone of the service's cost model, re-synced at deterministic
    /// points only (boot and each flush boundary, post-join — where the
    /// service state is byte-identical whether flushes ran inline or on
    /// workers). Stale load estimates and federation routing price work
    /// against this snapshot without ever settling an in-flight flush.
    cost_snapshot: CostModel,
    /// Predicted machine-clock instant at which everything shipped to
    /// the service so far (all past flushes) completes. Updated only at
    /// flush boundaries; between them it drifts by at most one flush's
    /// misprediction — the "bounded staleness" the stale router mode
    /// trades for full pipelining.
    stale_busy_until: SimTime,
    /// Snapshot-priced cost of the current buffer, kept incrementally
    /// on admit and rebuilt on flush/steal.
    stale_buffered_cost: SimTime,
    /// Payload bytes currently buffered, kept incrementally like
    /// `kernel_buffered` — the `buffered_bytes` telemetry gauge.
    buffered_bytes: u64,
    /// The shard's telemetry handle (cloned from the service's, so both
    /// write the same per-shard series).
    telemetry: Telemetry,
}

impl Shard {
    /// Wraps a freshly booted service as shard `id`. With
    /// `bounded_window` set, the shard's merged window keeps only that
    /// many of the most recent latency samples (counters stay exact) —
    /// the constant-memory mode for very long runs.
    pub(crate) fn new(
        id: usize,
        service: Box<Service>,
        can_quarantine: bool,
        bounded_window: Option<usize>,
    ) -> Shard {
        let origin = service.now();
        let cost_snapshot = service.cost_model().clone();
        let telemetry = service.telemetry().clone();
        Shard {
            id,
            service: Some(service),
            inflight: None,
            origin,
            buffer: Vec::new(),
            kernel_buffered: [0; Kernel::ALL.len()],
            cost_cache: None,
            can_quarantine,
            window: bounded_window.map_or_else(Metrics::new, Metrics::bounded),
            admitted: 0,
            cost_snapshot,
            stale_busy_until: origin,
            stale_buffered_cost: SimTime::ZERO,
            buffered_bytes: 0,
            telemetry,
        }
    }

    /// Shard index within the cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The underlying service (cost model, manager, quarantine state).
    ///
    /// # Panics
    /// Panics while a flush is in flight on a worker thread — settle the
    /// cluster first ([`flush_all`]/[`snapshot`] join every shard; with
    /// `threads <= 1` shards are always settled).
    ///
    /// [`flush_all`]: crate::Cluster::flush_all
    /// [`snapshot`]: crate::Cluster::snapshot
    pub fn service(&self) -> &Service {
        self.service
            .as_deref()
            .expect("shard has a flush in flight; settle the cluster before reading live state")
    }

    /// Requests routed to this shard so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests currently buffered (admitted but not yet flushed).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Simulated time this shard has spent serving since cluster boot.
    pub fn elapsed(&self) -> SimTime {
        self.service().now() - self.origin
    }

    /// Estimated instant this shard would finish everything it has been
    /// given: its machine clock plus the cost-model estimate of the
    /// buffered (not yet flushed) work. The least-loaded router compares
    /// shards on this. Panics while a flush is in flight (see
    /// [`Shard::service`]); the router uses the joining variant.
    pub fn ready_at(&self) -> SimTime {
        let service = self.service();
        service.now() + buffered_cost(&self.buffer, service)
    }

    /// Does this shard's dynamic region already hold — or will it, once
    /// the buffer flushes — the kernel's module? Panics while a flush is
    /// in flight (see [`Shard::service`]).
    pub fn holds(&self, kernel: Kernel) -> bool {
        self.kernel_buffered[kernel.index()] > 0
            || self.service().manager().loaded() == Some(kernel.module_name())
    }

    /// Is the kernel's hardware path on this shard currently barred by
    /// an active quarantine? Fault-free shards answer `false` without
    /// touching live state; fault-injected shards panic while a flush
    /// is in flight (see [`Shard::service`]).
    pub fn sheds(&self, kernel: Kernel) -> bool {
        self.can_quarantine && self.service().quarantined(kernel)
    }

    /// Is a flush currently running on a worker thread?
    pub fn in_flight(&self) -> bool {
        self.inflight.is_some()
    }

    /// Waits for the outstanding flush (if any) and folds its window in.
    pub(crate) fn join(&mut self) {
        if let Some(rx) = self.inflight.take() {
            let (service, window) = rx
                .recv()
                .expect("shard flush worker disappeared (panicked?)");
            self.window.absorb(&window);
            self.sample_window(&service, &window);
            self.service = Some(service);
        }
    }

    /// Telemetry `"window"` row at the absorb point, stamped with the
    /// post-window machine clock. Inline and pooled flushes reach this
    /// with byte-identical `(service, window)` state — inline right
    /// after processing, pooled at [`Shard::join`] — and a flush always
    /// joins before emitting its own rows, so the per-shard emission
    /// order is the same at any thread count.
    fn sample_window(&self, service: &Service, window: &Metrics) {
        if self.telemetry.on() {
            self.telemetry.sample(
                service.now(),
                "window",
                &[
                    Gauge::value("window_items", window.completed() as f64),
                    Gauge::value("window_swaps", window.swaps() as f64),
                ],
            );
        }
    }

    /// `ready_at` for the router: joins any in-flight flush first, and
    /// caches the buffered-cost estimate until the buffer changes.
    /// Post-join the estimate reads the same cost model inline
    /// execution would have seen — the model only mutates during this
    /// shard's own flushes, and buffered items never span one.
    pub(crate) fn ready_at_sync(&mut self) -> SimTime {
        self.join();
        let service = self.service.as_deref().expect("joined");
        let cost = *self
            .cost_cache
            .get_or_insert_with(|| buffered_cost(&self.buffer, service));
        service.now() + cost
    }

    /// `ready_at` from stale state only: the last flush boundary's
    /// predicted completion instant plus the snapshot-priced buffer.
    /// Never joins, never blocks — the stale-estimates router mode and
    /// the federation front-end read load through this, so a pool stays
    /// fully pipelined while estimates lag reality by at most one
    /// in-flight flush.
    pub(crate) fn ready_at_stale(&self) -> SimTime {
        self.stale_busy_until + self.stale_buffered_cost
    }

    /// Estimated queueing delay a request arriving at stream instant
    /// `arrival` would see ahead of it on this shard — the stale ready
    /// instant relative to the arrival mapped onto this machine's
    /// timeline. Comparable across shards of *different* clusters, whose
    /// boot origins differ.
    pub(crate) fn backlog_stale(&self, arrival: SimTime) -> SimTime {
        self.ready_at_stale().saturating_sub(self.origin + arrival)
    }

    /// Snapshot-priced estimate of serving one `(kernel, bytes)` item on
    /// this shard: the cheaper of the software path and the hardware
    /// path with the measured reconfiguration EWMA amortized over a
    /// flush batch of `amortize` requests. Reads only the cost snapshot,
    /// so it never settles an in-flight flush.
    pub(crate) fn estimate_for(&self, kernel: Kernel, bytes: usize, amortize: usize) -> SimTime {
        let sw = self.cost_snapshot.sw_estimate(kernel, bytes);
        match self.cost_snapshot.hw_estimate(kernel, bytes) {
            Some(hw) => {
                let share = SimTime::from_ps(
                    self.cost_snapshot.reconfig_estimate_for(kernel).as_ps()
                        / amortize.max(1) as u64,
                );
                sw.min(hw + share)
            }
            None => sw,
        }
    }

    /// `holds` for the router: the O(1) buffered-count check never needs
    /// live state; only the fallback to the resident module joins.
    pub(crate) fn holds_sync(&mut self, kernel: Kernel) -> bool {
        debug_assert_eq!(
            self.kernel_buffered[kernel.index()] > 0,
            self.buffer.iter().any(|(_, r)| r.kernel() == kernel),
            "incremental per-kernel buffered count out of sync with the buffer"
        );
        if self.kernel_buffered[kernel.index()] > 0 {
            return true;
        }
        self.join();
        let service = self.service.as_deref().expect("joined");
        service.manager().loaded() == Some(kernel.module_name())
    }

    /// `sheds` for the router: a shard that cannot quarantine (no fault
    /// injection) answers without joining, which is what keeps
    /// fault-free pools fully pipelined — the healthy-shard probe runs
    /// on every admission for every policy.
    pub(crate) fn sheds_sync(&mut self, kernel: Kernel) -> bool {
        if !self.can_quarantine {
            return false;
        }
        self.join();
        let service = self.service.as_deref().expect("joined");
        service.quarantined(kernel)
    }

    /// Buffers one request that arrived at absolute time `arrival`.
    /// Trace buffer events are stamped at flush time (when the
    /// authoritative next-admission id is in hand and no worker owns
    /// the shard's journal), so admission touches no service state.
    ///
    /// The buffer is kept sorted by arrival. A monotone stream appends
    /// in O(1); only re-admitted stolen work (whose arrivals predate the
    /// buffer tail) pays the ordered insert — which is what lets a
    /// flush's schedule stay monotone after cross-cluster stealing.
    pub(crate) fn admit(&mut self, arrival: SimTime, request: Request) {
        self.kernel_buffered[request.kernel().index()] += 1;
        self.cost_cache = None;
        self.stale_buffered_cost += item_cost(&self.cost_snapshot, &request);
        self.buffered_bytes += request.payload_bytes() as u64;
        let at = if self.buffer.last().is_none_or(|(t, _)| *t <= arrival) {
            self.buffer.len()
        } else {
            // Insert after every equal arrival so admission order is
            // preserved among ties.
            self.buffer.partition_point(|(t, _)| *t <= arrival)
        };
        self.buffer.insert(at, (arrival, request));
        self.admitted += 1;
    }

    /// Hands back up to `max` of the newest buffered requests (the
    /// buffer tail — the work least committed to this shard), fixing the
    /// incremental counters. The federation's work-stealing hook; the
    /// caller re-admits the returned `(arrival, request)` pairs
    /// elsewhere. Touches no service state.
    pub(crate) fn take_back(&mut self, max: usize) -> Vec<(SimTime, Request)> {
        let n = max.min(self.buffer.len());
        let taken: Vec<(SimTime, Request)> = self.buffer.split_off(self.buffer.len() - n);
        for (_, request) in &taken {
            self.kernel_buffered[request.kernel().index()] -= 1;
            self.buffered_bytes -= request.payload_bytes() as u64;
        }
        self.admitted -= taken.len() as u64;
        self.cost_cache = None;
        // Rebuild rather than subtract: the snapshot may have advanced
        // since these items were priced in, and drifting the accumulator
        // negative-ward across many steals would corrupt the estimate.
        self.stale_buffered_cost = self
            .buffer
            .iter()
            .map(|(_, request)| item_cost(&self.cost_snapshot, request))
            .sum();
        taken
    }

    /// Flushes the buffer into the service as one open-loop schedule —
    /// inline without a pool, on a worker thread with one — after
    /// joining any previous flush of this shard. Stream time is mapped
    /// onto the machine clock via the shard's boot origin (stream
    /// instant 0 is the moment the shard finished booting), so
    /// open-loop pacing gaps survive the flush: the machine idles
    /// between arrivals it has kept up with. Arrivals the machine has
    /// already run past (it was busy, or they sat in the admission
    /// buffer) are served immediately, and the wait shows up as
    /// latency, exactly as on a single machine.
    pub(crate) fn flush(&mut self, pool: Option<&WorkerPool>) {
        if self.buffer.is_empty() {
            return;
        }
        self.join();
        let mut service = self.service.take().expect("joined");
        let origin = self.origin;
        // Re-sync the stale-estimate state while the settled service is
        // in hand. Both inputs (the post-join cost model and clock) are
        // byte-identical across inline and pooled execution, so every
        // stale read between here and the next flush is too. The
        // prediction: the machine resumes at its clock or the last
        // arrival (whichever is later — open-loop gaps idle the machine)
        // and then works through the whole buffer.
        self.cost_snapshot = service.cost_model().clone();
        let last_arrival = origin + self.buffer.last().expect("non-empty buffer").0;
        self.stale_busy_until =
            service.now().max(last_arrival) + buffered_cost(&self.buffer, &service);
        self.stale_buffered_cost = SimTime::ZERO;
        // The "buffer" sample is the coordinator's: taken post-join
        // (no worker owns this shard's series) and pre-drain, stamped
        // with the settled machine clock — all inputs byte-identical
        // across inline and pooled execution.
        if self.telemetry.on() {
            self.telemetry.sample(
                service.now(),
                "buffer",
                &[
                    Gauge::value("buffer_depth", self.buffer.len() as f64),
                    Gauge::value("buffered_bytes", self.buffered_bytes as f64),
                ],
            );
        }
        self.buffered_bytes = 0;
        let tracer = service.tracer().clone();
        if tracer.on() {
            // Buffer events, stamped with each request's machine-clock
            // arrival and the id the service *will* assign on flush —
            // read from the authoritative admission counter, so buffer
            // events can never desync from the span ids.
            for (id, (arrival, request)) in (service.next_request_id()..).zip(&self.buffer) {
                let machine_arrival = origin + *arrival;
                tracer.emit(
                    machine_arrival,
                    EventKind::RequestBuffer {
                        id,
                        kernel: request.kernel().module_name(),
                        arrival: machine_arrival,
                    },
                );
            }
            tracer.emit(
                service.now(),
                EventKind::BufferFlush {
                    count: self.buffer.len() as u32,
                },
            );
        }
        let schedule: Vec<(SimTime, Request)> = self
            .buffer
            .drain(..)
            .map(|(arrival, request)| (origin + arrival, request))
            .collect();
        self.kernel_buffered = [0; Kernel::ALL.len()];
        self.cost_cache = None;
        match pool {
            Some(pool) => {
                let (tx, rx) = mpsc::channel();
                pool.submit(Box::new(move || {
                    let window = service
                        .process_window_at(&schedule)
                        .expect("stream arrivals are monotone");
                    let _ = tx.send((service, window));
                }));
                self.inflight = Some(rx);
            }
            None => {
                let window = service
                    .process_window_at(&schedule)
                    .expect("stream arrivals are monotone");
                self.window.absorb(&window);
                self.sample_window(&service, &window);
                self.service = Some(service);
            }
        }
    }

    /// The shard's merged window metrics since cluster boot.
    pub(crate) fn window(&self) -> &Metrics {
        &self.window
    }
}

/// Optimistic cost-model estimate of the buffered work: per item the
/// cheaper path, ignoring swaps (the same per-item estimate admission
/// used to accumulate incrementally — computed lazily now so it never
/// needs the service while a flush is in flight).
fn buffered_cost(buffer: &[(SimTime, Request)], service: &Service) -> SimTime {
    let cost = service.cost_model();
    buffer
        .iter()
        .map(|(_, request)| item_cost(cost, request))
        .sum()
}

/// One request's optimistic estimate — the cheaper path, ignoring swaps
/// — against any cost model (live or a stale snapshot).
fn item_cost(cost: &CostModel, request: &Request) -> SimTime {
    let kernel = request.kernel();
    let bytes = request.payload_bytes();
    let sw = cost.sw_estimate(kernel, bytes);
    match cost.hw_estimate(kernel, bytes) {
        Some(hw) => hw.min(sw),
        None => sw,
    }
}
