//! One simulated machine of the pool.
//!
//! A shard wraps a complete [`Service`] — its own PPC405, buses, dock,
//! dynamic region and scheduler — behind a bounded admission buffer.
//! The cluster front-end routes requests into the buffer; when it fills
//! (or the stream ends) the shard flushes it as one open-loop schedule
//! into the service and merges the resulting window metrics, so the
//! full cluster workload never exists in memory at once.

use rtr_apps::request::{Kernel, Request};
use rtr_service::{Metrics, Service};
use rtr_trace::EventKind;
use vp2_sim::SimTime;

/// One machine of the cluster: a service plus its admission buffer.
pub struct Shard {
    id: usize,
    service: Service,
    origin: SimTime,
    buffer: Vec<(SimTime, Request)>,
    buffered_cost: SimTime,
    window: Metrics,
    admitted: u64,
}

impl Shard {
    /// Wraps a freshly booted service as shard `id`.
    pub(crate) fn new(id: usize, service: Service) -> Shard {
        let origin = service.now();
        Shard {
            id,
            service,
            origin,
            buffer: Vec::new(),
            buffered_cost: SimTime::ZERO,
            window: Metrics::new(),
            admitted: 0,
        }
    }

    /// Shard index within the cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The underlying service (cost model, manager, quarantine state).
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Requests routed to this shard so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests currently buffered (admitted but not yet flushed).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Simulated time this shard has spent serving since cluster boot.
    pub fn elapsed(&self) -> SimTime {
        self.service.now() - self.origin
    }

    /// Estimated instant this shard would finish everything it has been
    /// given: its machine clock plus the cost-model estimate of the
    /// buffered (not yet flushed) work. The least-loaded router compares
    /// shards on this.
    pub fn ready_at(&self) -> SimTime {
        self.service.now() + self.buffered_cost
    }

    /// Does this shard's dynamic region already hold — or will it, once
    /// the buffer flushes — the kernel's module?
    pub fn holds(&self, kernel: Kernel) -> bool {
        if self.service.manager().loaded() == Some(kernel.module_name()) {
            return true;
        }
        // A buffered request of the same kernel means the region is
        // about to be reconfigured for it (if hardware pays off), so
        // joining it amortizes the same swap.
        self.buffer.iter().any(|(_, r)| r.kernel() == kernel)
    }

    /// Is the kernel's hardware path on this shard currently barred by
    /// an active quarantine?
    pub fn sheds(&self, kernel: Kernel) -> bool {
        self.service.quarantined(kernel)
    }

    /// Buffers one request that arrived at absolute time `arrival`.
    pub(crate) fn admit(&mut self, arrival: SimTime, request: Request) {
        let kernel = request.kernel();
        let bytes = request.payload_bytes();
        let cost = self.service.cost_model();
        // Optimistic per-item cost: the cheaper path, ignoring swaps.
        let sw = cost.sw_estimate(kernel, bytes);
        let item = match cost.hw_estimate(kernel, bytes) {
            Some(hw) => hw.min(sw),
            None => sw,
        };
        self.buffered_cost += item;
        let tracer = self.service.tracer();
        if tracer.on() {
            // The id this request will receive when the buffer flushes
            // into the service's queues (admission ids are monotone).
            let id = self.service.submitted() + self.buffer.len() as u64;
            let machine_arrival = self.origin + arrival;
            tracer.emit(
                machine_arrival,
                EventKind::RequestBuffer {
                    id,
                    kernel: kernel.module_name(),
                    arrival: machine_arrival,
                },
            );
        }
        self.buffer.push((arrival, request));
        self.admitted += 1;
    }

    /// Flushes the buffer into the service as one open-loop schedule and
    /// merges the window metrics. Stream time is mapped onto the machine
    /// clock via the shard's boot origin (stream instant 0 is the moment
    /// the shard finished booting), so open-loop pacing gaps survive the
    /// flush: the machine idles between arrivals it has kept up with.
    /// Arrivals the machine has already run past (it was busy, or they
    /// sat in the admission buffer) are served immediately, and the wait
    /// shows up as latency, exactly as on a single machine.
    pub(crate) fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let origin = self.origin;
        let schedule: Vec<(SimTime, Request)> = self
            .buffer
            .drain(..)
            .map(|(arrival, request)| (origin + arrival, request))
            .collect();
        self.buffered_cost = SimTime::ZERO;
        let tracer = self.service.tracer();
        if tracer.on() {
            tracer.emit(
                self.service.now(),
                EventKind::BufferFlush {
                    count: schedule.len() as u32,
                },
            );
        }
        let window = self
            .service
            .process_window_at(&schedule)
            .expect("stream arrivals are monotone");
        self.window.absorb(&window);
    }

    /// The shard's merged window metrics since cluster boot.
    pub(crate) fn window(&self) -> &Metrics {
        &self.window
    }
}
