//! A small fixed-size worker pool for shard flushes (and boots).
//!
//! The shape is the classic queue-worker pipeline: the coordinator
//! produces jobs into one channel, N OS threads drain it, and results
//! travel back through per-job channels the submitter holds. There is
//! deliberately no work stealing, no priorities and no shared mutable
//! state — determinism comes from *where results are joined* (the
//! shard state machine in [`crate::shard::Shard`]), not from how jobs
//! interleave on the workers.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// A unit of work: owns everything it touches.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed worker threads draining one shared injector channel.
pub(crate) struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one).
    pub(crate) fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                thread::Builder::new()
                    .name(format!("rtr-shard-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only for the dequeue, never while
                        // running the job.
                        let job = rx.lock().expect("injector poisoned").recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // coordinator dropped the sender
                        }
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Enqueues one job; some worker will run it.
    pub(crate) fn submit(&self, job: Job) {
        self.tx
            .as_ref()
            .expect("pool already shut down")
            .send(job)
            .expect("all workers died");
    }

    /// Worker-thread count.
    pub(crate) fn threads(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the injector ends each worker's recv loop; joining
        // bounds the process to no stray threads after the cluster drops.
        self.tx.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_run_and_results_return_through_channels() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let mut rxs = Vec::new();
        for i in 0..16u64 {
            let (tx, rx) = mpsc::channel();
            pool.submit(Box::new(move || {
                let _ = tx.send(i * i);
            }));
            rxs.push(rx);
        }
        let squares: Vec<u64> = rxs.iter().map(|rx| rx.recv().unwrap()).collect();
        assert_eq!(squares, (0..16u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move || {
            let _ = tx.send(42u32);
        }));
        assert_eq!(rx.recv().unwrap(), 42);
        drop(pool); // must not hang
    }
}
