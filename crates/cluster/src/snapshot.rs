//! Cluster-level metrics aggregation.
//!
//! Each shard accumulates raw window [`Metrics`] (latency series merge;
//! percentiles do not); the cluster folds them into one cross-shard
//! snapshot plus a per-shard breakdown. Cluster makespan is the slowest
//! shard's elapsed time — shards are independent machines running in
//! parallel — and cluster throughput is total completions over that
//! makespan.
//!
//! [`Metrics`]: rtr_service::Metrics

use rtr_core::SystemKind;
use rtr_service::{Metrics, MetricsSnapshot};
use vp2_sim::{Json, SimTime};

use crate::route::RoutingStats;
use crate::shard::Shard;

/// One shard's contribution.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard index.
    pub id: usize,
    /// System profile the shard simulates.
    pub kind: SystemKind,
    /// Requests routed to this shard.
    pub admitted: u64,
    /// Simulated time the shard spent serving since cluster boot.
    pub elapsed: SimTime,
    /// The shard's merged service metrics over `elapsed`.
    pub metrics: MetricsSnapshot,
}

impl ShardSnapshot {
    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("id", self.id)
            .field("system", format!("{:?}", self.kind))
            .field("admitted", self.admitted)
            .field("elapsed_us", self.elapsed.as_us_f64())
            .field("metrics", self.metrics.to_json())
    }
}

/// Point-in-time summary of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    /// Per-shard breakdown.
    pub shards: Vec<ShardSnapshot>,
    /// Merged metrics across every shard, over the makespan window —
    /// the cross-shard latency distribution lives here.
    pub total: MetricsSnapshot,
    /// Slowest shard's elapsed time (the cluster finishes when its last
    /// machine does).
    pub makespan: SimTime,
    /// Reconfigurations summed across shards.
    pub total_swaps: u64,
    /// How the router placed the traffic.
    pub routing: RoutingStats,
    /// Largest number of requests ever resident in admission buffers.
    pub peak_buffered: usize,
}

impl ClusterSnapshot {
    /// Folds the shard windows into one snapshot.
    pub(crate) fn aggregate(
        shards: &[Shard],
        routing: RoutingStats,
        peak_buffered: usize,
    ) -> ClusterSnapshot {
        let makespan = shards
            .iter()
            .map(Shard::elapsed)
            .max()
            .unwrap_or(SimTime::ZERO);
        let mut all = Metrics::new();
        let mut per_shard = Vec::with_capacity(shards.len());
        for shard in shards {
            all.absorb(shard.window());
            let mut metrics = shard.window().snapshot(shard.elapsed());
            // Per-shard configuration-plane counters ride along (None
            // when the shard's plane features are all off).
            metrics.plane = shard.service().plane_snapshot();
            per_shard.push(ShardSnapshot {
                id: shard.id(),
                kind: shard.service().kind(),
                admitted: shard.admitted(),
                elapsed: shard.elapsed(),
                metrics,
            });
        }
        let total = all.snapshot(makespan);
        ClusterSnapshot {
            total_swaps: total.swaps,
            shards: per_shard,
            total,
            makespan,
            routing,
            peak_buffered,
        }
    }

    /// Machine-readable form (what `cluster_scenario` writes).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("shard_count", self.shards.len())
            .field("makespan_us", self.makespan.as_us_f64())
            .field("total_swaps", self.total_swaps)
            .field("peak_buffered", self.peak_buffered)
            .field("routing", self.routing.to_json())
            .field("total", self.total.to_json())
            .field(
                "shards",
                Json::Arr(self.shards.iter().map(ShardSnapshot::to_json).collect()),
            )
    }
}

impl std::fmt::Display for ClusterSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cluster: {} shards, makespan {}, {:.0} req/s, {} swaps, peak buffer {}",
            self.shards.len(),
            self.makespan,
            self.total.throughput_per_s,
            self.total_swaps,
            self.peak_buffered
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "  shard {} ({:?}): {:>5} reqs, elapsed {:>12}, hw {:>4} / sw {:>4}, swaps {:>3}, region busy {:.1}%",
                s.id,
                s.kind,
                s.admitted,
                s.elapsed.to_string(),
                s.metrics.hw_items,
                s.metrics.sw_items,
                s.metrics.swaps,
                s.metrics.hw_utilization * 100.0
            )?;
        }
        write!(f, "{}", self.total)
    }
}
