//! # rtr-cluster — sharded multi-machine reconfiguration service
//!
//! The paper's two systems are single-CPU, single-dynamic-region designs;
//! this crate scales them out. A [`Cluster`] owns a pool of N independent
//! simulated machines ([`Shard`]s — each a full [`rtr_service::Service`]
//! with its own PPC405, buses, dock and dynamic region, built from either
//! system profile or a mix), fronted by a streaming admission layer:
//! requests are consumed from a lazy `Iterator` and routed one at a time,
//! so the full schedule is never materialised — peak resident work is
//! bounded by `shards × flush_depth`.
//!
//! Routing is pluggable ([`RoutePolicy`]):
//!
//! * **round-robin** — spray requests across shards in admission order;
//! * **least-loaded** — route to the shard whose estimated ready time
//!   (machine clock + cost-model estimate of its buffered work) is
//!   earliest;
//! * **kernel-affinity** — route to the shard whose dynamic region
//!   already holds (or is about to hold) the request's kernel, falling
//!   back to least-loaded for first-seen kernels. Keeping a kernel
//!   resident on its home shard minimises ICAP swap traffic, which
//!   dominates everything else the region does.
//!
//! Every policy is quarantine-aware: a shard whose hardware path for the
//! kernel is quarantined (PR 2's `ModuleHealth` machinery) sheds that
//! kernel's load to healthy shards until its half-open cooldown expires.
//!
//! Per-shard window metrics merge into a cluster-level
//! [`ClusterSnapshot`] — makespan, total throughput, per-shard
//! utilization and swap counts, and the cross-shard latency distribution
//! (full percentile ladder + histogram buckets) — with JSON export.
//!
//! ## Parallel execution
//!
//! With [`ClusterConfig::threads`] > 1, shard flushes run on a small
//! fixed pool of OS worker threads: the coordinator keeps routing
//! single-threaded, ships a shard's buffered schedule to a worker at
//! flush depth, and joins the outstanding flush only when a routing
//! decision needs that shard's live state (or a second flush targets
//! it). Because a flush's outcome depends only on service state and the
//! schedule — never on coordinator timing — equal seeds produce
//! byte-identical snapshots and trace journals at any thread count.

#![warn(missing_docs)]

pub mod cluster;
mod pool;
pub mod route;
pub mod shard;
pub mod snapshot;

pub use cluster::{Cluster, ClusterConfig, ShardSpec};
pub use route::{RoutePolicy, RoutingStats};
pub use shard::Shard;
pub use snapshot::{ClusterSnapshot, ShardSnapshot};
