//! The tracer handle, its per-shard journals, and the streaming sink.
//!
//! The journal used to be one `Rc<RefCell<Ring>>` shared by every
//! handle, which pinned the whole stack to one thread. It is now a
//! registry of **per-shard journals** behind `Arc<Mutex<_>>`: each
//! shard's events land in its own ring (stamped with a per-shard
//! sequence number), handles are `Send`, and a shard's `Service` can
//! run on a worker thread while other shards emit concurrently — no
//! cross-shard ordering is ever observed at emission time.
//! [`Tracer::events`] merges the journals by `(time, shard, seq)`, a
//! total order independent of thread interleaving, so a parallel run
//! exports byte-identical artifacts to a single-threaded one.
//!
//! [`Tracer::stream_to`] attaches a buffered JSONL sink per shard
//! journal, so the ring capacity no longer bounds traced run length:
//! every event is appended to `<base>.shardNNN.jsonl` as it is emitted
//! (deterministic per shard), and [`Tracer::merge_streams`] folds the
//! per-shard files into one `(time, shard, seq)`-ordered journal.

use std::collections::{BTreeMap, VecDeque};
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::{Arc, Mutex};

use vp2_sim::{Json, SimTime};

use crate::event::{EventKind, TraceEvent};

/// Default per-shard ring capacity: big enough for every workload in
/// the repo's benches; a multi-hour stream wraps and keeps the newest
/// events (attach [`Tracer::stream_to`] to keep all of them).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// One shard's journal: a bounded ring plus the optional streaming sink.
struct Journal {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    next_seq: u64,
    sink: Option<BufWriter<File>>,
    sink_path: Option<String>,
}

impl Journal {
    fn new(capacity: usize) -> Journal {
        Journal {
            events: VecDeque::new(),
            capacity,
            dropped: 0,
            next_seq: 0,
            sink: None,
            sink_path: None,
        }
    }

    fn attach_sink(&mut self, path: &str) -> std::io::Result<()> {
        self.sink = Some(BufWriter::new(File::create(path)?));
        self.sink_path = Some(path.to_string());
        Ok(())
    }
}

/// State shared by every clone of an enabled tracer.
struct Shared {
    capacity: usize,
    journals: Mutex<BTreeMap<u32, Arc<Mutex<Journal>>>>,
    /// JSONL stream base path, once [`Tracer::stream_to`] was called;
    /// journals registered later attach their sink on creation.
    stream_base: Mutex<Option<String>>,
}

impl Shared {
    /// The journals in shard order (the deterministic fold order).
    fn journals(&self) -> Vec<(u32, Arc<Mutex<Journal>>)> {
        self.journals
            .lock()
            .expect("journal registry poisoned")
            .iter()
            .map(|(shard, j)| (*shard, Arc::clone(j)))
            .collect()
    }
}

/// The JSONL file one shard's streamed journal lands in.
fn shard_stream_path(base: &str, shard: u32) -> String {
    format!("{base}.shard{shard:03}.jsonl")
}

/// A cheaply cloneable, `Send` handle onto a set of per-shard journals.
///
/// [`Tracer::with_shard`] derives a handle bound to that shard's
/// journal (created on first use), which is how one cluster-level
/// tracer fans out across a pool whose shards flush on worker threads.
/// The disabled tracer is a `None` handle: [`Tracer::on`] is a single
/// branch and [`Tracer::emit`] a no-op, so instrumentation costs
/// nothing when tracing is off.
#[derive(Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
    /// This handle's shard journal, resolved once at handle creation so
    /// the emit path never touches the registry lock.
    journal: Option<Arc<Mutex<Journal>>>,
    shard: u32,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.shared.is_some() {
            write!(
                f,
                "Tracer(shard {}, {} events, {} dropped)",
                self.shard,
                self.len(),
                self.dropped()
            )
        } else {
            write!(f, "Tracer(disabled)")
        }
    }
}

impl Tracer {
    /// The no-op tracer (the default everywhere).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// An enabled tracer with the default per-shard ring capacity.
    pub fn enabled() -> Tracer {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled tracer whose per-shard rings hold at most `capacity`
    /// events each; the oldest are dropped (and counted) once a ring
    /// fills. A streaming sink keeps the full journal regardless.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Tracer {
        assert!(capacity > 0, "a zero-capacity ring records nothing");
        let shared = Arc::new(Shared {
            capacity,
            journals: Mutex::new(BTreeMap::new()),
            stream_base: Mutex::new(None),
        });
        let tracer = Tracer {
            shared: Some(shared),
            journal: None,
            shard: 0,
        };
        tracer.with_shard(0)
    }

    /// A handle bound to `shard`'s journal (created on first use, with
    /// a streaming sink attached when [`Tracer::stream_to`] is active).
    pub fn with_shard(&self, shard: u32) -> Tracer {
        let Some(shared) = &self.shared else {
            return Tracer::disabled();
        };
        let mut journals = shared.journals.lock().expect("journal registry poisoned");
        let journal = journals
            .entry(shard)
            .or_insert_with(|| {
                let mut journal = Journal::new(shared.capacity);
                let base = shared.stream_base.lock().expect("stream base poisoned");
                if let Some(base) = base.as_deref() {
                    let path = shard_stream_path(base, shard);
                    journal
                        .attach_sink(&path)
                        .unwrap_or_else(|e| panic!("journal stream: cannot create {path}: {e}"));
                }
                Arc::new(Mutex::new(journal))
            })
            .clone();
        drop(journals);
        Tracer {
            shared: Some(Arc::clone(shared)),
            journal: Some(journal),
            shard,
        }
    }

    /// Is this handle recording? Check before building an event whose
    /// construction allocates.
    #[inline]
    pub fn on(&self) -> bool {
        self.shared.is_some()
    }

    /// Records one event at simulated instant `time`.
    #[inline]
    pub fn emit(&self, time: SimTime, kind: EventKind) {
        let Some(journal) = &self.journal else { return };
        let mut j = journal.lock().expect("journal poisoned");
        let seq = j.next_seq;
        j.next_seq += 1;
        let event = TraceEvent {
            time,
            shard: self.shard,
            seq,
            kind,
        };
        if let Some(sink) = &mut j.sink {
            let mut line = event.to_json().render();
            line.push('\n');
            sink.write_all(line.as_bytes())
                .expect("journal stream: write failed");
        }
        if j.events.len() == j.capacity {
            j.events.pop_front();
            j.dropped += 1;
        }
        j.events.push_back(event);
    }

    /// Snapshot of the merged journal, ordered by `(time, shard, seq)` —
    /// a total order independent of how shard threads interleaved, so
    /// equal seeds yield identical views at any thread count.
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(shared) = &self.shared else {
            return Vec::new();
        };
        let mut all = Vec::new();
        for (_, journal) in shared.journals() {
            let j = journal.lock().expect("journal poisoned");
            all.extend(j.events.iter().cloned());
        }
        all.sort_by_key(TraceEvent::key);
        all
    }

    /// Events currently held across every shard's ring.
    pub fn len(&self) -> usize {
        let Some(shared) = &self.shared else { return 0 };
        shared
            .journals()
            .iter()
            .map(|(_, j)| j.lock().expect("journal poisoned").events.len())
            .sum()
    }

    /// Is the journal empty (always true when disabled)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the per-shard capacity bound, summed.
    pub fn dropped(&self) -> u64 {
        let Some(shared) = &self.shared else { return 0 };
        shared
            .journals()
            .iter()
            .map(|(_, j)| j.lock().expect("journal poisoned").dropped)
            .sum()
    }

    /// Clears every shard's ring **and** its drop counter, so a
    /// profiler fold over a post-clear window never reports stale
    /// `dropped_events` from before the clear. Sequence numbers keep
    /// counting (streamed journals stay strictly monotone per shard).
    pub fn clear(&self) {
        let Some(shared) = &self.shared else { return };
        for (_, journal) in shared.journals() {
            let mut j = journal.lock().expect("journal poisoned");
            j.events.clear();
            j.dropped = 0;
        }
    }

    /// Attaches a buffered JSONL sink to every journal: each shard's
    /// events append to `<base>.shardNNN.jsonl` as they are emitted, so
    /// the ring capacity no longer bounds traced run length. Journals
    /// created later (new shards) attach their sink on creation. Call
    /// before the run — events emitted earlier are not replayed into
    /// the files.
    pub fn stream_to(&self, base: &str) -> std::io::Result<()> {
        let Some(shared) = &self.shared else {
            return Ok(());
        };
        *shared.stream_base.lock().expect("stream base poisoned") = Some(base.to_string());
        for (shard, journal) in shared.journals() {
            let mut j = journal.lock().expect("journal poisoned");
            if j.sink.is_none() {
                j.attach_sink(&shard_stream_path(base, shard))?;
            }
        }
        Ok(())
    }

    /// Flushes every streaming sink and returns the per-shard file
    /// paths in shard order (empty when streaming is off).
    pub fn flush_streams(&self) -> std::io::Result<Vec<String>> {
        let Some(shared) = &self.shared else {
            return Ok(Vec::new());
        };
        let mut paths = Vec::new();
        for (_, journal) in shared.journals() {
            let mut j = journal.lock().expect("journal poisoned");
            if let Some(sink) = &mut j.sink {
                sink.flush()?;
            }
            if let Some(path) = &j.sink_path {
                paths.push(path.clone());
            }
        }
        Ok(paths)
    }

    /// Merges the per-shard streamed journals into one JSONL file at
    /// `out`, ordered by `(time, shard, seq)` — the same total order as
    /// [`Tracer::events`], so the merged file is byte-identical across
    /// thread counts. Returns the number of merged lines. The merge
    /// holds the lines in memory; per-shard files are the scalable
    /// artifact for very long runs.
    pub fn merge_streams(&self, out: &str) -> std::io::Result<usize> {
        let paths = self.flush_streams()?;
        let mut lines: Vec<((u64, u32, u64), String)> = Vec::new();
        for path in &paths {
            let text = std::fs::read_to_string(path)?;
            for line in text.lines() {
                let doc = Json::parse(line).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{path}: bad journal line: {e}"),
                    )
                })?;
                let num = |key: &str| {
                    doc.get(key)
                        .and_then(Json::as_f64)
                        .map(|x| x as u64)
                        .ok_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!("{path}: journal line missing {key}"),
                            )
                        })
                };
                let key = (num("time_ps")?, num("shard")? as u32, num("seq")?);
                lines.push((key, line.to_string()));
            }
        }
        lines.sort_by_key(|(key, _)| *key);
        let mut f = BufWriter::new(File::create(out)?);
        for (_, line) in &lines {
            f.write_all(line.as_bytes())?;
            f.write_all(b"\n")?;
        }
        f.flush()?;
        Ok(lines.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole point of the per-shard-journal design.
    #[test]
    fn tracer_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Tracer>();
    }

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.on());
        t.emit(SimTime::from_us(1), EventKind::BufferFlush { count: 3 });
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn shard_handles_merge_by_time_shard_seq() {
        let t = Tracer::with_capacity(8);
        let s1 = t.with_shard(1);
        // Emitted out of time order across shards: the merged view is
        // ordered by (time, shard, seq), not by emission interleaving.
        s1.emit(SimTime::from_us(2), EventKind::BufferFlush { count: 2 });
        t.emit(SimTime::from_us(1), EventKind::BufferFlush { count: 1 });
        t.emit(SimTime::from_us(2), EventKind::BufferFlush { count: 3 });
        let ev = t.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(
            (ev[0].time, ev[0].shard, ev[0].seq),
            (SimTime::from_us(1), 0, 0)
        );
        assert_eq!(
            (ev[1].time, ev[1].shard, ev[1].seq),
            (SimTime::from_us(2), 0, 1)
        );
        assert_eq!(
            (ev[2].time, ev[2].shard, ev[2].seq),
            (SimTime::from_us(2), 1, 0)
        );
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::with_capacity(2);
        for i in 0..5u32 {
            t.emit(
                SimTime::from_us(u64::from(i)),
                EventKind::BufferFlush { count: i },
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let ev = t.events();
        assert_eq!(ev[0].kind, EventKind::BufferFlush { count: 3 });
        assert_eq!(ev[1].kind, EventKind::BufferFlush { count: 4 });
    }

    #[test]
    fn clear_resets_the_drop_counter() {
        let t = Tracer::with_capacity(2);
        for i in 0..5u32 {
            t.emit(
                SimTime::from_us(u64::from(i)),
                EventKind::BufferFlush { count: i },
            );
        }
        assert_eq!(t.dropped(), 3);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0, "a post-clear window starts from zero");
        // Sequence numbers keep counting across the clear.
        t.emit(SimTime::from_us(9), EventKind::BufferFlush { count: 9 });
        assert_eq!(t.events()[0].seq, 5);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_is_rejected() {
        let _ = Tracer::with_capacity(0);
    }

    #[test]
    fn streaming_outlives_the_ring_and_merges_sorted() {
        let base = std::env::temp_dir().join(format!("rtr_trace_stream_{}", std::process::id()));
        let base = base.to_str().expect("utf-8 temp path").to_string();
        let t = Tracer::with_capacity(2);
        t.stream_to(&base).expect("attach sinks");
        let s1 = t.with_shard(1);
        for i in 0..6u32 {
            t.emit(
                SimTime::from_us(u64::from(i)),
                EventKind::BufferFlush { count: i },
            );
        }
        s1.emit(SimTime::from_us(3), EventKind::BufferFlush { count: 99 });
        assert_eq!(t.dropped(), 4, "the ring wrapped");
        let paths = t.flush_streams().expect("flush");
        assert_eq!(paths.len(), 2);
        let shard0 = std::fs::read_to_string(&paths[0]).expect("read shard 0");
        assert_eq!(
            shard0.lines().count(),
            6,
            "the stream kept every event the ring dropped"
        );
        assert!(shard0.lines().next().unwrap().contains("\"seq\":0"));
        let merged_path = format!("{base}.merged.jsonl");
        let merged = t.merge_streams(&merged_path).expect("merge");
        assert_eq!(merged, 7);
        let text = std::fs::read_to_string(&merged_path).expect("read merged");
        let keys: Vec<(u64, u64, u64)> = text
            .lines()
            .map(|l| {
                let doc = Json::parse(l).expect("line parses");
                let num = |k: &str| doc.get(k).and_then(Json::as_f64).unwrap() as u64;
                (num("time_ps"), num("shard"), num("seq"))
            })
            .collect();
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "merged journal is strictly (time, shard, seq)-ordered: {keys:?}"
        );
        for path in paths.iter().chain([&merged_path]) {
            let _ = std::fs::remove_file(path);
        }
    }
}
