//! The tracer handle and its bounded ring buffer.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use vp2_sim::SimTime;

use crate::event::{EventKind, TraceEvent};

/// Default ring capacity: big enough for every workload in the repo's
/// benches; a multi-hour stream wraps and keeps the newest events.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// A cheaply cloneable handle onto one shared event journal.
///
/// Clones share the ring; [`Tracer::with_shard`] derives a handle whose
/// events are stamped with a shard id, which is how one cluster-level
/// tracer fans out across the pool. The disabled tracer is a `None`
/// handle: [`Tracer::on`] is a single branch and [`Tracer::emit`] a
/// no-op, so instrumentation costs nothing when tracing is off.
#[derive(Clone, Default)]
pub struct Tracer {
    ring: Option<Rc<RefCell<Ring>>>,
    shard: u32,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.ring {
            Some(r) => {
                let r = r.borrow();
                write!(
                    f,
                    "Tracer(shard {}, {} events, {} dropped)",
                    self.shard,
                    r.events.len(),
                    r.dropped
                )
            }
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// The no-op tracer (the default everywhere).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// An enabled tracer with the default ring capacity.
    pub fn enabled() -> Tracer {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled tracer whose ring holds at most `capacity` events; the
    /// oldest are dropped (and counted) once it fills.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Tracer {
        assert!(capacity > 0, "a zero-capacity ring records nothing");
        Tracer {
            ring: Some(Rc::new(RefCell::new(Ring {
                events: VecDeque::new(),
                capacity,
                dropped: 0,
            }))),
            shard: 0,
        }
    }

    /// A handle onto the same ring whose events carry `shard`.
    pub fn with_shard(&self, shard: u32) -> Tracer {
        Tracer {
            ring: self.ring.clone(),
            shard,
        }
    }

    /// Is this handle recording? Check before building an event whose
    /// construction allocates.
    #[inline]
    pub fn on(&self) -> bool {
        self.ring.is_some()
    }

    /// Records one event at simulated instant `time`.
    #[inline]
    pub fn emit(&self, time: SimTime, kind: EventKind) {
        let Some(ring) = &self.ring else { return };
        let mut r = ring.borrow_mut();
        if r.events.len() == r.capacity {
            r.events.pop_front();
            r.dropped += 1;
        }
        let shard = self.shard;
        r.events.push_back(TraceEvent { time, shard, kind });
    }

    /// Snapshot of the journal, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.ring {
            Some(r) => r.borrow().events.iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.borrow().events.len())
    }

    /// Is the journal empty (always true when disabled)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.borrow().dropped)
    }

    /// Clears the journal (capacity and drop counter are kept).
    pub fn clear(&self) {
        if let Some(r) = &self.ring {
            r.borrow_mut().events.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.on());
        t.emit(SimTime::from_us(1), EventKind::BufferFlush { count: 3 });
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn clones_share_the_ring_and_stamp_their_shard() {
        let t = Tracer::with_capacity(8);
        let s1 = t.with_shard(1);
        t.emit(SimTime::from_us(1), EventKind::BufferFlush { count: 1 });
        s1.emit(SimTime::from_us(2), EventKind::BufferFlush { count: 2 });
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].shard, 0);
        assert_eq!(ev[1].shard, 1);
        assert_eq!(ev[1].time, SimTime::from_us(2));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::with_capacity(2);
        for i in 0..5u32 {
            t.emit(
                SimTime::from_us(u64::from(i)),
                EventKind::BufferFlush { count: i },
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let ev = t.events();
        assert_eq!(ev[0].kind, EventKind::BufferFlush { count: 3 });
        assert_eq!(ev[1].kind, EventKind::BufferFlush { count: 4 });
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_is_rejected() {
        let _ = Tracer::with_capacity(0);
    }
}
