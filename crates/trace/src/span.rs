//! Per-request spans assembled from the event stream.
//!
//! A span splits one request's latency into four phases that sum
//! *exactly* (integer picoseconds, no rounding) to the latency the
//! service metrics recorded:
//!
//! ```text
//! arrival ──buffer──▶ admit ──queue──▶ dispatch ──reconfig──▶ swap_end ──execute──▶ complete
//! ```
//!
//! * **buffer wait** — time between the true arrival and admission into
//!   the service's queues: the cluster admission buffer plus any time
//!   the machine was busy past the arrival.
//! * **queue wait** — time in the per-kernel queue before the batch
//!   dispatched.
//! * **reconfiguration share** — the batch's module swap (zero when the
//!   region already held the kernel or the batch ran in software).
//!   Every member of the batch waited for it, so every member carries it.
//! * **execute** — everything after the swap: earlier batch members'
//!   runs, the request's own run, and any software fallback re-run.

use std::collections::HashMap;

use vp2_sim::SimTime;

use crate::event::{EventKind, TraceEvent};

/// One request's reconstructed lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSpan {
    /// Shard that served the request.
    pub shard: u32,
    /// Service-local request id.
    pub id: u64,
    /// Kernel module name.
    pub kernel: &'static str,
    /// True arrival instant.
    pub arrival: SimTime,
    /// Admission into the service's queues.
    pub admit: SimTime,
    /// Batch dispatch instant.
    pub dispatch: SimTime,
    /// End of the batch's reconfiguration (== `dispatch` when none ran).
    pub swap_end: SimTime,
    /// Completion instant.
    pub complete: SimTime,
    /// Served by the dynamic region.
    pub hw: bool,
}

impl RequestSpan {
    /// Time between arrival and admission into the service.
    pub fn buffer_wait(&self) -> SimTime {
        self.admit - self.arrival
    }

    /// Time in the per-kernel queue.
    pub fn queue_wait(&self) -> SimTime {
        self.dispatch - self.admit
    }

    /// The batch's reconfiguration share.
    pub fn reconfig_share(&self) -> SimTime {
        self.swap_end - self.dispatch
    }

    /// Post-swap service time (in-batch wait + the run itself).
    pub fn execute(&self) -> SimTime {
        self.complete - self.swap_end
    }

    /// End-to-end latency; always equals the sum of the four phases.
    pub fn latency(&self) -> SimTime {
        self.complete - self.arrival
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenBatch {
    dispatch: SimTime,
    swap_end: SimTime,
}

/// Assembles request spans from a journal, in completion order.
///
/// Requests whose admit or batch context fell off a wrapped ring are
/// skipped — a span is only produced when every phase boundary is known.
pub fn spans(events: &[TraceEvent]) -> Vec<RequestSpan> {
    // (shard, id) → (kernel, arrival, admit)
    let mut admitted: HashMap<(u32, u64), (&'static str, SimTime, SimTime)> = HashMap::new();
    // shard → the batch currently dispatching on it
    let mut open: HashMap<u32, OpenBatch> = HashMap::new();
    let mut out = Vec::new();
    for ev in events {
        match &ev.kind {
            EventKind::RequestAdmit {
                id,
                kernel,
                arrival,
            } => {
                admitted.insert((ev.shard, *id), (kernel, *arrival, ev.time));
            }
            EventKind::BatchBegin { .. } => {
                open.insert(
                    ev.shard,
                    OpenBatch {
                        dispatch: ev.time,
                        swap_end: ev.time,
                    },
                );
            }
            EventKind::SwapEnd { .. } => {
                // A swap that ends inside a batch is the batch's
                // reconfiguration; warm-up loads (no open batch) are not
                // part of any request's latency.
                if let Some(b) = open.get_mut(&ev.shard) {
                    b.swap_end = ev.time;
                }
            }
            EventKind::BatchEnd { .. } => {
                open.remove(&ev.shard);
            }
            EventKind::RequestComplete { id, hw, .. } => {
                let (Some((kernel, arrival, admit)), Some(b)) =
                    (admitted.remove(&(ev.shard, *id)), open.get(&ev.shard))
                else {
                    continue;
                };
                out.push(RequestSpan {
                    shard: ev.shard,
                    id: *id,
                    kernel,
                    arrival,
                    admit,
                    dispatch: b.dispatch,
                    swap_end: b.swap_end,
                    complete: ev.time,
                    hw: *hw,
                });
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_us: u64, shard: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_us(time_us),
            shard,
            seq: 0,
            kind,
        }
    }

    #[test]
    fn phases_sum_to_latency_with_and_without_swap() {
        let events = vec![
            ev(
                10,
                0,
                EventKind::RequestAdmit {
                    id: 0,
                    kernel: "k",
                    arrival: SimTime::from_us(4),
                },
            ),
            ev(
                10,
                0,
                EventKind::RequestAdmit {
                    id: 1,
                    kernel: "k",
                    arrival: SimTime::from_us(9),
                },
            ),
            ev(
                12,
                0,
                EventKind::BatchBegin {
                    kernel: "k",
                    size: 2,
                    hw: true,
                },
            ),
            ev(12, 0, EventKind::SwapBegin { module: "k".into() }),
            ev(
                20,
                0,
                EventKind::SwapEnd {
                    module: "k".into(),
                    frames: 5,
                    words: 100,
                    attempts: 1,
                    repaired_frames: 0,
                    verified: true,
                },
            ),
            ev(
                25,
                0,
                EventKind::RequestComplete {
                    id: 0,
                    kernel: "k",
                    hw: true,
                },
            ),
            ev(
                31,
                0,
                EventKind::RequestComplete {
                    id: 1,
                    kernel: "k",
                    hw: true,
                },
            ),
            ev(
                31,
                0,
                EventKind::BatchEnd {
                    kernel: "k",
                    hw: true,
                },
            ),
        ];
        let spans = spans(&events);
        assert_eq!(spans.len(), 2);
        let s0 = &spans[0];
        assert_eq!(s0.buffer_wait(), SimTime::from_us(6));
        assert_eq!(s0.queue_wait(), SimTime::from_us(2));
        assert_eq!(s0.reconfig_share(), SimTime::from_us(8));
        assert_eq!(s0.execute(), SimTime::from_us(5));
        assert_eq!(s0.latency(), SimTime::from_us(21));
        for s in &spans {
            assert_eq!(
                s.buffer_wait() + s.queue_wait() + s.reconfig_share() + s.execute(),
                s.latency()
            );
        }
        // The second member carries the same swap and the first's run.
        assert_eq!(spans[1].reconfig_share(), SimTime::from_us(8));
        assert_eq!(spans[1].execute(), SimTime::from_us(11));
    }

    #[test]
    fn warmup_swap_outside_a_batch_charges_no_request() {
        let events = vec![
            ev(0, 0, EventKind::SwapBegin { module: "k".into() }),
            ev(
                5,
                0,
                EventKind::SwapEnd {
                    module: "k".into(),
                    frames: 5,
                    words: 100,
                    attempts: 1,
                    repaired_frames: 0,
                    verified: true,
                },
            ),
            ev(
                10,
                0,
                EventKind::RequestAdmit {
                    id: 0,
                    kernel: "k",
                    arrival: SimTime::from_us(10),
                },
            ),
            ev(
                10,
                0,
                EventKind::BatchBegin {
                    kernel: "k",
                    size: 1,
                    hw: true,
                },
            ),
            ev(
                14,
                0,
                EventKind::RequestComplete {
                    id: 0,
                    kernel: "k",
                    hw: true,
                },
            ),
            ev(
                14,
                0,
                EventKind::BatchEnd {
                    kernel: "k",
                    hw: true,
                },
            ),
        ];
        let spans = spans(&events);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].reconfig_share(), SimTime::ZERO);
        assert_eq!(spans[0].execute(), SimTime::from_us(4));
    }

    #[test]
    fn truncated_journal_skips_incomplete_requests() {
        // Completion without an admit (the admit fell off the ring).
        let events = vec![
            ev(
                5,
                0,
                EventKind::BatchBegin {
                    kernel: "k",
                    size: 1,
                    hw: false,
                },
            ),
            ev(
                9,
                0,
                EventKind::RequestComplete {
                    id: 7,
                    kernel: "k",
                    hw: false,
                },
            ),
        ];
        assert!(spans(&events).is_empty());
    }
}
