//! # rtr-trace — deterministic event journal and makespan attribution
//!
//! The paper's whole argument is a time-accounting one: reconfiguration
//! overhead vs amortized hardware speedup. The service and cluster
//! layers report end-of-run aggregates; this crate records *where the
//! time went*. A [`Tracer`] is a cheaply cloneable, `Send` handle onto
//! a registry of **per-shard journals** — bounded rings of typed
//! [`TraceEvent`]s carrying a per-shard sequence number — threaded
//! through every layer of the stack (admission buffers, queues, the
//! module manager's retry ladder, the HWICAP, the DMA engine and the
//! quarantine machinery). [`Tracer::stream_to`] adds a buffered JSONL
//! sink per journal so run length is disk-bounded, not ring-bounded.
//!
//! Design rules:
//!
//! * **Sim clock only.** Every event is stamped with the simulated
//!   clock, never the wall clock, so traces are byte-identical across
//!   runs with equal seeds.
//! * **Thread-interleaving independent.** Each shard journals into its
//!   own ring; consumers read the merged view, totally ordered by
//!   `(time, shard, seq)`, so a cluster flushing shards on worker
//!   threads exports the same bytes at any thread count.
//! * **Zero observer effect.** Recording never touches a clock, an RNG
//!   or any model state: a traced run produces bit-identical results to
//!   an untraced one.
//! * **No-op when disabled.** [`Tracer::disabled`] is a `None` handle;
//!   the hot path pays one branch ([`Tracer::on`]) and nothing else.
//!
//! On top of the journal sit three consumers:
//!
//! * [`spans`] assembles per-request [`RequestSpan`]s, splitting each
//!   request's latency into buffer wait → queue wait → reconfiguration
//!   share → execution — phases that sum exactly to the latency the
//!   service metrics recorded;
//! * [`chrome_trace`] exports Chrome trace-event JSON (loadable in
//!   Perfetto or `chrome://tracing`) with one process per shard and
//!   async arrows for request lifecycles;
//! * [`Profiler`] folds a trace into a makespan [`AttributionReport`]:
//!   per-shard busy / reconfig / idle / quarantined fractions (summing
//!   exactly to the shard's makespan) and per-kernel time totals.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod profile;
pub mod span;
pub mod tracer;

pub use chrome::chrome_trace;
pub use event::{EventKind, TraceEvent, FEDERATION_SHARD, KIND_NAMES};
pub use profile::{AttributionReport, Profiler, ShardAttribution};
pub use span::{spans, RequestSpan};
pub use tracer::Tracer;
