//! Makespan attribution.
//!
//! The profiler folds a journal into the number the paper's tables are
//! really about: of each shard's makespan, how much went to computing
//! (busy), to shifting configuration frames (reconfig), to waiting for
//! work (idle), and to idling specifically while a kernel was
//! quarantined from the hardware path. The four parts partition the
//! makespan exactly — integer picoseconds, no rounding — so a claim
//! like "affinity routing halves swaps" becomes "affinity cut the
//! reconfig share from X% to Y%".

use std::collections::BTreeMap;
use std::fmt;

use vp2_sim::{Json, SimTime};

use crate::event::{EventKind, TraceEvent};
use crate::tracer::Tracer;

/// One shard's makespan partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAttribution {
    /// Shard id.
    pub shard: u32,
    /// First-event → last-event window on this shard.
    pub makespan: SimTime,
    /// Time inside batches, excluding their swaps.
    pub busy: SimTime,
    /// Time shifting configuration frames (all swaps, warm-up included).
    pub reconfig: SimTime,
    /// Time outside any batch or swap with no quarantine active.
    pub idle: SimTime,
    /// Time outside any batch or swap while ≥1 kernel was quarantined.
    pub quarantined: SimTime,
    /// Batch + swap time per kernel (sorted by name).
    pub per_kernel: Vec<(String, SimTime)>,
    /// Requests completed on this shard.
    pub requests: u64,
    /// Reconfigurations performed on this shard.
    pub swaps: u64,
}

impl ShardAttribution {
    /// `part / makespan`, 0 for an empty window.
    fn frac(&self, part: SimTime) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            part.as_ps() as f64 / self.makespan.as_ps() as f64
        }
    }

    /// Fraction of the makespan spent computing.
    pub fn busy_frac(&self) -> f64 {
        self.frac(self.busy)
    }

    /// Fraction spent reconfiguring.
    pub fn reconfig_frac(&self) -> f64 {
        self.frac(self.reconfig)
    }

    /// Fraction spent idle (no quarantine active).
    pub fn idle_frac(&self) -> f64 {
        self.frac(self.idle)
    }

    /// Fraction spent idle under an active quarantine.
    pub fn quarantined_frac(&self) -> f64 {
        self.frac(self.quarantined)
    }

    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("shard", self.shard)
            .field("makespan_us", self.makespan.as_us_f64())
            .field("busy_us", self.busy.as_us_f64())
            .field("reconfig_us", self.reconfig.as_us_f64())
            .field("idle_us", self.idle.as_us_f64())
            .field("quarantined_us", self.quarantined.as_us_f64())
            .field("busy_frac", self.busy_frac())
            .field("reconfig_frac", self.reconfig_frac())
            .field("idle_frac", self.idle_frac())
            .field("quarantined_frac", self.quarantined_frac())
            .field("requests", self.requests)
            .field("swaps", self.swaps)
            .field(
                "kernels",
                Json::Arr(
                    self.per_kernel
                        .iter()
                        .map(|(k, t)| {
                            Json::obj()
                                .field("kernel", k.as_str())
                                .field("time_us", t.as_us_f64())
                                .field("share", self.frac(*t))
                        })
                        .collect(),
                ),
            )
    }
}

/// The whole trace's attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// One partition per shard, sorted by shard id.
    pub shards: Vec<ShardAttribution>,
    /// Events the ring evicted before the fold (0 = the journal is
    /// complete and the numbers are exact).
    pub dropped_events: u64,
}

impl AttributionReport {
    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("dropped_events", self.dropped_events)
            .field(
                "shards",
                Json::Arr(self.shards.iter().map(ShardAttribution::to_json).collect()),
            )
    }
}

impl fmt::Display for AttributionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "makespan attribution ({} shards)", self.shards.len())?;
        if self.dropped_events > 0 {
            writeln!(
                f,
                "  (ring dropped {} events; numbers are lower bounds)",
                self.dropped_events
            )?;
        }
        for s in &self.shards {
            writeln!(
                f,
                "  shard {}: makespan {:>10} | busy {:>5.1}% | reconfig {:>5.1}% | idle {:>5.1}% | quarantined {:>5.1}% | {} reqs, {} swaps",
                s.shard,
                s.makespan.to_string(),
                s.busy_frac() * 100.0,
                s.reconfig_frac() * 100.0,
                s.idle_frac() * 100.0,
                s.quarantined_frac() * 100.0,
                s.requests,
                s.swaps
            )?;
            for (kernel, t) in &s.per_kernel {
                writeln!(
                    f,
                    "    {kernel:<18} {:>10}  ({:.1}% of makespan)",
                    t.to_string(),
                    s.frac(*t) * 100.0
                )?;
            }
        }
        Ok(())
    }
}

/// Folds journals into [`AttributionReport`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct Profiler;

/// Per-shard fold state.
#[derive(Default)]
struct ShardFold {
    first: Option<SimTime>,
    last: SimTime,
    /// Chronological, non-overlapping covered intervals: batches plus
    /// out-of-batch (warm-up) swaps.
    covered: Vec<(SimTime, SimTime)>,
    /// All swap intervals (for the reconfig total).
    swaps: Vec<(SimTime, SimTime)>,
    /// Quarantine-active intervals, per kernel, already closed.
    quarantine: Vec<(SimTime, SimTime)>,
    /// Open quarantines: kernel → enter time.
    q_open: BTreeMap<&'static str, SimTime>,
    batch_open: Option<(SimTime, &'static str)>,
    swap_open: Option<SimTime>,
    per_kernel: BTreeMap<String, SimTime>,
    requests: u64,
    swap_count: u64,
}

impl ShardFold {
    fn touch(&mut self, t: SimTime) {
        if self.first.is_none() {
            self.first = Some(t);
        }
        self.last = self.last.max(t);
    }
}

impl Profiler {
    /// Folds a tracer's journal (convenience over [`Profiler::fold_events`]).
    pub fn fold(&self, tracer: &Tracer) -> AttributionReport {
        self.fold_events(&tracer.events(), tracer.dropped())
    }

    /// Folds an event slice into the attribution report.
    pub fn fold_events(&self, events: &[TraceEvent], dropped: u64) -> AttributionReport {
        let mut folds: BTreeMap<u32, ShardFold> = BTreeMap::new();
        for ev in events {
            let fold = folds.entry(ev.shard).or_default();
            fold.touch(ev.time);
            match &ev.kind {
                EventKind::BatchBegin { kernel, .. } => {
                    fold.batch_open = Some((ev.time, kernel));
                }
                EventKind::BatchEnd { .. } => {
                    if let Some((start, kernel)) = fold.batch_open.take() {
                        fold.covered.push((start, ev.time));
                        *fold.per_kernel.entry(kernel.to_string()).or_default() += ev.time - start;
                    }
                }
                EventKind::SwapBegin { .. } => {
                    fold.swap_open = Some(ev.time);
                }
                EventKind::SwapEnd { module, .. } => {
                    if let Some(start) = fold.swap_open.take() {
                        fold.swaps.push((start, ev.time));
                        fold.swap_count += 1;
                        if fold.batch_open.is_none() {
                            // Warm-up / boot load: covered time attributed
                            // to the module it shifted in.
                            fold.covered.push((start, ev.time));
                            *fold.per_kernel.entry(module.clone()).or_default() += ev.time - start;
                        }
                    }
                }
                EventKind::RequestComplete { .. } => fold.requests += 1,
                EventKind::QuarantineEnter { kernel } => {
                    fold.q_open.entry(kernel).or_insert(ev.time);
                }
                EventKind::QuarantineHalfOpen { kernel } => {
                    if let Some(start) = fold.q_open.remove(kernel) {
                        fold.quarantine.push((start, ev.time));
                    }
                }
                _ => {}
            }
        }

        let shards = folds
            .into_iter()
            .map(|(shard, mut fold)| {
                let first = fold.first.unwrap_or(SimTime::ZERO);
                let last = fold.last;
                // Quarantines still open at trace end run to the end.
                for (_, start) in std::mem::take(&mut fold.q_open) {
                    fold.quarantine.push((start, last));
                }
                let makespan = last - first;
                let reconfig: SimTime = fold.swaps.iter().map(|&(a, b)| b - a).sum();
                let covered_total: SimTime = fold.covered.iter().map(|&(a, b)| b - a).sum();
                let busy = covered_total.saturating_sub(reconfig);
                // Gaps: the complement of the covered intervals in
                // [first, last] (covered intervals are chronological and
                // disjoint — the shard is a single machine).
                let q = merge(&mut fold.quarantine);
                let mut cursor = first;
                let mut gap_total = SimTime::ZERO;
                let mut quarantined = SimTime::ZERO;
                for &(a, b) in &fold.covered {
                    if a > cursor {
                        gap_total += a - cursor;
                        quarantined += overlap(&q, cursor, a);
                    }
                    cursor = cursor.max(b);
                }
                if last > cursor {
                    gap_total += last - cursor;
                    quarantined += overlap(&q, cursor, last);
                }
                let idle = gap_total - quarantined;
                ShardAttribution {
                    shard,
                    makespan,
                    busy,
                    reconfig,
                    idle,
                    quarantined,
                    per_kernel: fold.per_kernel.into_iter().collect(),
                    requests: fold.requests,
                    swaps: fold.swap_count,
                }
            })
            .collect();
        AttributionReport {
            shards,
            dropped_events: dropped,
        }
    }
}

/// Sorts and merges overlapping intervals in place, returning the merged set.
fn merge(intervals: &mut [(SimTime, SimTime)]) -> Vec<(SimTime, SimTime)> {
    intervals.sort_unstable();
    let mut out: Vec<(SimTime, SimTime)> = Vec::with_capacity(intervals.len());
    for &(a, b) in intervals.iter() {
        match out.last_mut() {
            Some((_, end)) if a <= *end => *end = (*end).max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Total overlap of `[lo, hi)` with a merged interval set.
fn overlap(merged: &[(SimTime, SimTime)], lo: SimTime, hi: SimTime) -> SimTime {
    let mut total = SimTime::ZERO;
    for &(a, b) in merged {
        let s = a.max(lo);
        let e = b.min(hi);
        if e > s {
            total += e - s;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_us: u64, shard: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_us(time_us),
            shard,
            seq: 0,
            kind,
        }
    }

    fn swap_end(module: &str) -> EventKind {
        EventKind::SwapEnd {
            module: module.into(),
            frames: 1,
            words: 1,
            attempts: 1,
            repaired_frames: 0,
            verified: true,
        }
    }

    #[test]
    fn partition_sums_to_makespan_exactly() {
        let events = vec![
            // Warm-up swap [0, 10].
            ev(0, 0, EventKind::SwapBegin { module: "a".into() }),
            ev(10, 0, swap_end("a")),
            // Idle [10, 20]. Batch [20, 50] with an in-batch swap [20, 32].
            ev(
                20,
                0,
                EventKind::BatchBegin {
                    kernel: "b",
                    size: 2,
                    hw: true,
                },
            ),
            ev(20, 0, EventKind::SwapBegin { module: "b".into() }),
            ev(32, 0, swap_end("b")),
            ev(
                40,
                0,
                EventKind::RequestComplete {
                    id: 0,
                    kernel: "b",
                    hw: true,
                },
            ),
            ev(
                50,
                0,
                EventKind::RequestComplete {
                    id: 1,
                    kernel: "b",
                    hw: true,
                },
            ),
            ev(
                50,
                0,
                EventKind::BatchEnd {
                    kernel: "b",
                    hw: true,
                },
            ),
            // Quarantine [50, 58], trace ends at 60 while idle.
            ev(50, 0, EventKind::QuarantineEnter { kernel: "b" }),
            ev(58, 0, EventKind::QuarantineHalfOpen { kernel: "b" }),
            ev(60, 0, EventKind::BufferFlush { count: 0 }),
        ];
        let report = Profiler.fold_events(&events, 0);
        assert_eq!(report.shards.len(), 1);
        let s = &report.shards[0];
        assert_eq!(s.makespan, SimTime::from_us(60));
        assert_eq!(s.reconfig, SimTime::from_us(10 + 12));
        assert_eq!(s.busy, SimTime::from_us(30 - 12));
        assert_eq!(s.quarantined, SimTime::from_us(8));
        assert_eq!(s.idle, SimTime::from_us(60 - 22 - 18 - 8));
        assert_eq!(
            s.busy + s.reconfig + s.idle + s.quarantined,
            s.makespan,
            "the partition is exact"
        );
        assert_eq!(s.requests, 2);
        assert_eq!(s.swaps, 2);
        // Per-kernel: warm-up swap on 'a', whole batch (incl. swap) on 'b'.
        assert_eq!(
            s.per_kernel,
            vec![
                ("a".to_string(), SimTime::from_us(10)),
                ("b".to_string(), SimTime::from_us(30)),
            ]
        );
        let json = report.to_json().render();
        assert!(json.contains("\"busy_frac\""));
        assert!(report.to_string().contains("shard 0"));
    }

    #[test]
    fn open_quarantine_extends_to_trace_end() {
        let events = vec![
            ev(
                0,
                1,
                EventKind::BatchBegin {
                    kernel: "k",
                    size: 1,
                    hw: false,
                },
            ),
            ev(
                4,
                1,
                EventKind::BatchEnd {
                    kernel: "k",
                    hw: false,
                },
            ),
            ev(4, 1, EventKind::QuarantineEnter { kernel: "k" }),
            ev(10, 1, EventKind::BufferFlush { count: 0 }),
        ];
        let s = &Profiler.fold_events(&events, 0).shards[0];
        assert_eq!(s.quarantined, SimTime::from_us(6));
        assert_eq!(s.idle, SimTime::ZERO);
        assert_eq!(s.busy + s.reconfig + s.idle + s.quarantined, s.makespan);
    }

    #[test]
    fn empty_trace_folds_to_empty_report() {
        let report = Profiler.fold_events(&[], 0);
        assert!(report.shards.is_empty());
        assert!(report.to_json().render().contains("\"shards\":[]"));
    }
}
