//! Chrome trace-event JSON export.
//!
//! Emits the [trace-event format] that Perfetto and `chrome://tracing`
//! load directly: one *process* per shard with three fixed tracks — the
//! scheduler (batches as duration slices, scheduling decisions as
//! instants), the configuration plane (swaps as slices; ICAP bursts,
//! faults, verify failures, repairs and quarantine transitions as
//! instants) and the DMA engine — plus, per request, one async arrow
//! spanning arrival → completion *and* one complete slice on a stacked
//! "requests" lane carrying the four phase durations, so a request's
//! wait can be read off against the swap that caused it.
//!
//! Timestamps are the simulated clock converted to microseconds (the
//! format's unit); the export is a pure function of the journal, so
//! equal seeds give byte-identical files.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use vp2_sim::{Json, SimTime};

use crate::event::{EventKind, TraceEvent, FEDERATION_SHARD};
use crate::span::spans;

/// Scheduler track (batches, request instants).
const TID_SCHED: u32 = 0;
/// Configuration-plane track (swaps, ICAP, verify/repair, quarantine).
const TID_CONFIG: u32 = 1;
/// DMA track.
const TID_DMA: u32 = 2;
/// First request-slice track; concurrent requests stack onto
/// `TID_REQ_BASE + 1`, `+ 2`, … so slices on one track never overlap.
const TID_REQ_BASE: u32 = 3;

fn base(name: &str, ph: &str, ts: f64, pid: u32, tid: u32) -> Json {
    Json::obj()
        .field("name", name)
        .field("ph", ph)
        .field("ts", ts)
        .field("pid", pid)
        .field("tid", tid)
}

fn meta(name: &str, pid: u32, tid: u32, value: &str) -> Json {
    base(name, "M", 0.0, pid, tid).field("args", Json::obj().field("name", value))
}

/// Converts a journal to Chrome trace-event JSON.
///
/// The result is the standard object form: `{"traceEvents": [...],
/// "displayTimeUnit": "ns"}`. Duration events (`B`/`E`) are balanced
/// whenever the journal itself is (an unwrapped ring always is); async
/// request arrows are keyed `req-<shard>-<id>`.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    let mut out: Vec<Json> = Vec::new();
    let mut named_shards: Vec<u32> = Vec::new();
    for ev in events {
        if !named_shards.contains(&ev.shard) {
            named_shards.push(ev.shard);
            let process = if ev.shard == FEDERATION_SHARD {
                "federation".to_string()
            } else {
                format!("shard {}", ev.shard)
            };
            out.push(meta("process_name", ev.shard, TID_SCHED, &process));
            out.push(meta("thread_name", ev.shard, TID_SCHED, "scheduler"));
            out.push(meta("thread_name", ev.shard, TID_CONFIG, "config plane"));
            out.push(meta("thread_name", ev.shard, TID_DMA, "dma"));
        }
        let ts = ev.time.as_us_f64();
        let pid = ev.shard;
        match &ev.kind {
            EventKind::RequestBuffer { id, kernel, .. } => {
                out.push(
                    base("buffer", "i", ts, pid, TID_SCHED)
                        .field("s", "t")
                        .field(
                            "args",
                            Json::obj().field("id", *id).field("kernel", *kernel),
                        ),
                );
            }
            EventKind::BufferFlush { count } => {
                out.push(
                    base("flush", "i", ts, pid, TID_SCHED)
                        .field("s", "t")
                        .field("args", Json::obj().field("count", *count)),
                );
            }
            EventKind::RequestAdmit {
                id,
                kernel,
                arrival,
            } => {
                // Async arrow: opens at the *arrival* instant so the
                // buffered wait is visible on the track.
                out.push(
                    base(kernel, "b", arrival.as_us_f64(), pid, TID_SCHED)
                        .field("cat", "request")
                        .field("id", format!("req-{pid}-{id}"))
                        .field("args", Json::obj().field("admit_us", ts)),
                );
            }
            EventKind::RequestDequeue { id } => {
                out.push(
                    base("dequeue", "i", ts, pid, TID_SCHED)
                        .field("s", "t")
                        .field("args", Json::obj().field("id", *id)),
                );
            }
            EventKind::SchedDecision {
                policy,
                chosen,
                candidates,
            } => {
                out.push(
                    base("sched decision", "i", ts, pid, TID_SCHED)
                        .field("s", "t")
                        .field("cat", "sched")
                        .field(
                            "args",
                            Json::obj()
                                .field("policy", *policy)
                                .field("chosen", *chosen)
                                .field(
                                    "candidates",
                                    Json::Arr(
                                        candidates
                                            .iter()
                                            .map(|&k| Json::Str(k.to_string()))
                                            .collect(),
                                    ),
                                ),
                        ),
                );
            }
            EventKind::RequestComplete { id, kernel, hw } => {
                out.push(
                    base(kernel, "e", ts, pid, TID_SCHED)
                        .field("cat", "request")
                        .field("id", format!("req-{pid}-{id}"))
                        .field("args", Json::obj().field("hw", *hw)),
                );
            }
            EventKind::BatchBegin { kernel, size, hw } => {
                out.push(
                    base(kernel, "B", ts, pid, TID_SCHED)
                        .field("args", Json::obj().field("size", *size).field("hw", *hw)),
                );
            }
            EventKind::BatchEnd { kernel, hw } => {
                out.push(
                    base(kernel, "E", ts, pid, TID_SCHED)
                        .field("args", Json::obj().field("hw", *hw)),
                );
            }
            EventKind::SwapBegin { module } => {
                out.push(base(&format!("swap {module}"), "B", ts, pid, TID_CONFIG));
            }
            EventKind::SwapEnd {
                module,
                frames,
                words,
                attempts,
                repaired_frames,
                verified,
            } => {
                out.push(
                    base(&format!("swap {module}"), "E", ts, pid, TID_CONFIG).field(
                        "args",
                        Json::obj()
                            .field("frames", *frames)
                            .field("words", *words)
                            .field("attempts", *attempts)
                            .field("repaired_frames", *repaired_frames)
                            .field("verified", *verified),
                    ),
                );
            }
            EventKind::CacheLookup { module, hit } => {
                out.push(
                    base("cache lookup", "i", ts, pid, TID_CONFIG)
                        .field("s", "t")
                        .field(
                            "args",
                            Json::obj()
                                .field("module", module.as_str())
                                .field("hit", *hit),
                        ),
                );
            }
            EventKind::DiffSwap {
                module,
                frames_full,
                frames_sent,
                words_full,
                words_sent,
                compressed,
            } => {
                out.push(
                    base("diff swap", "i", ts, pid, TID_CONFIG)
                        .field("s", "t")
                        .field(
                            "args",
                            Json::obj()
                                .field("module", module.as_str())
                                .field("frames_full", *frames_full)
                                .field("frames_sent", *frames_sent)
                                .field("words_full", *words_full)
                                .field("words_sent", *words_sent)
                                .field("compressed", *compressed),
                        ),
                );
            }
            EventKind::SlotActivate { module, slot } => {
                out.push(
                    base("slot activate", "i", ts, pid, TID_CONFIG)
                        .field("s", "t")
                        .field(
                            "args",
                            Json::obj()
                                .field("module", module.as_str())
                                .field("slot", *slot),
                        ),
                );
            }
            EventKind::SlotEvict { module, slot } => {
                out.push(
                    base("slot evict", "i", ts, pid, TID_CONFIG)
                        .field("s", "t")
                        .field(
                            "args",
                            Json::obj()
                                .field("module", module.as_str())
                                .field("slot", *slot),
                        ),
                );
            }
            EventKind::IcapBurst { words, done } => {
                out.push(
                    base("icap burst", "i", ts, pid, TID_CONFIG)
                        .field("s", "t")
                        .field(
                            "args",
                            Json::obj()
                                .field("words", *words)
                                .field("done_us", done.as_us_f64()),
                        ),
                );
            }
            EventKind::FaultHit { frames } => {
                out.push(
                    base("fault hit", "i", ts, pid, TID_CONFIG)
                        .field("s", "t")
                        .field("args", Json::obj().field("frames", *frames)),
                );
            }
            EventKind::VerifyFail { frames } => {
                out.push(
                    base("verify fail", "i", ts, pid, TID_CONFIG)
                        .field("s", "t")
                        .field("args", Json::obj().field("frames", *frames)),
                );
            }
            EventKind::Repair { frames } => {
                out.push(
                    base("repair", "i", ts, pid, TID_CONFIG)
                        .field("s", "t")
                        .field("args", Json::obj().field("frames", *frames)),
                );
            }
            EventKind::DmaProgram {
                bytes,
                to_dock,
                interleaved,
            } => {
                out.push(
                    base("dma program", "i", ts, pid, TID_DMA)
                        .field("s", "t")
                        .field(
                            "args",
                            Json::obj()
                                .field("bytes", *bytes)
                                .field("to_dock", *to_dock)
                                .field("interleaved", *interleaved),
                        ),
                );
            }
            EventKind::DmaComplete { bytes_moved } => {
                out.push(
                    base("dma complete", "i", ts, pid, TID_DMA)
                        .field("s", "t")
                        .field("args", Json::obj().field("bytes_moved", *bytes_moved)),
                );
            }
            EventKind::QuarantineEnter { kernel } => {
                out.push(
                    base("quarantine enter", "i", ts, pid, TID_CONFIG)
                        .field("s", "p")
                        .field("args", Json::obj().field("kernel", *kernel)),
                );
            }
            EventKind::QuarantineHalfOpen { kernel } => {
                out.push(
                    base("quarantine half-open", "i", ts, pid, TID_CONFIG)
                        .field("s", "p")
                        .field("args", Json::obj().field("kernel", *kernel)),
                );
            }
            EventKind::QuarantineExit { kernel } => {
                out.push(
                    base("quarantine exit", "i", ts, pid, TID_CONFIG)
                        .field("s", "p")
                        .field("args", Json::obj().field("kernel", *kernel)),
                );
            }
            EventKind::FedRoute {
                pool,
                kernel,
                estimate,
            } => {
                out.push(
                    base("fed route", "i", ts, pid, TID_SCHED)
                        .field("s", "t")
                        .field(
                            "args",
                            Json::obj()
                                .field("pool", *pool)
                                .field("kernel", *kernel)
                                .field("estimate_us", estimate.as_us_f64()),
                        ),
                );
            }
            EventKind::FedSteal {
                from_pool,
                to_pool,
                moved,
            } => {
                out.push(
                    base("fed steal", "i", ts, pid, TID_SCHED)
                        .field("s", "p")
                        .field(
                            "args",
                            Json::obj()
                                .field("from_pool", *from_pool)
                                .field("to_pool", *to_pool)
                                .field("moved", *moved),
                        ),
                );
            }
            EventKind::FedShed {
                from_pool,
                to_pool,
                kernel,
                deadline,
            } => {
                out.push(
                    base("fed shed", "i", ts, pid, TID_SCHED)
                        .field("s", "p")
                        .field(
                            "args",
                            Json::obj()
                                .field("from_pool", *from_pool)
                                .field("to_pool", *to_pool)
                                .field("kernel", *kernel)
                                .field("deadline", *deadline),
                        ),
                );
            }
            EventKind::ScrubPass { frames, mismatched } => {
                out.push(
                    base("scrub pass", "i", ts, pid, TID_CONFIG)
                        .field("s", "t")
                        .field(
                            "args",
                            Json::obj()
                                .field("frames", *frames)
                                .field("mismatched", *mismatched),
                        ),
                );
            }
            EventKind::ScrubRepair { frames } => {
                out.push(
                    base("scrub repair", "i", ts, pid, TID_CONFIG)
                        .field("s", "t")
                        .field("args", Json::obj().field("frames", *frames)),
                );
            }
            EventKind::CanaryProbe { kernel } => {
                out.push(
                    base("canary probe", "i", ts, pid, TID_CONFIG)
                        .field("s", "p")
                        .field("args", Json::obj().field("kernel", *kernel)),
                );
            }
            EventKind::CanaryResult { kernel, admitted } => {
                out.push(
                    base("canary result", "i", ts, pid, TID_CONFIG)
                        .field("s", "p")
                        .field(
                            "args",
                            Json::obj()
                                .field("kernel", *kernel)
                                .field("admitted", *admitted),
                        ),
                );
            }
        }
    }
    // Per-request spans as complete ("X") slices — arrival → completion
    // with the four phase durations in args — so queue-wait changes from
    // a scheduling policy are visible as slice widths, not just async
    // arrows. Concurrent requests stack onto per-shard lanes (greedy
    // interval assignment in arrival order) so slices on one track never
    // overlap.
    let mut reqs = spans(events);
    reqs.sort_by_key(|s| (s.shard, s.arrival, s.id));
    let mut cur_shard: Option<u32> = None;
    let mut lane_free: Vec<SimTime> = Vec::new();
    for s in &reqs {
        if cur_shard != Some(s.shard) {
            cur_shard = Some(s.shard);
            lane_free.clear();
        }
        let lane = lane_free
            .iter()
            .position(|&free| free <= s.arrival)
            .unwrap_or(lane_free.len());
        let tid = TID_REQ_BASE + lane as u32;
        if lane == lane_free.len() {
            lane_free.push(SimTime::ZERO);
            out.push(meta(
                "thread_name",
                s.shard,
                tid,
                &format!("requests {lane}"),
            ));
        }
        lane_free[lane] = s.complete;
        out.push(
            base(s.kernel, "X", s.arrival.as_us_f64(), s.shard, tid)
                .field("dur", s.latency().as_us_f64())
                .field("cat", "request")
                .field(
                    "args",
                    Json::obj()
                        .field("id", s.id)
                        .field("hw", s.hw)
                        .field("buffer_wait_us", s.buffer_wait().as_us_f64())
                        .field("queue_wait_us", s.queue_wait().as_us_f64())
                        .field("reconfig_share_us", s.reconfig_share().as_us_f64())
                        .field("execute_us", s.execute().as_us_f64()),
                ),
        );
    }
    Json::obj()
        .field("traceEvents", Json::Arr(out))
        .field("displayTimeUnit", "ns")
}

#[cfg(test)]
mod tests {
    use vp2_sim::SimTime;

    use super::*;

    fn ev(time_us: u64, shard: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_us(time_us),
            shard,
            seq: 0,
            kind,
        }
    }

    fn events_of(json: &Json) -> &[Json] {
        let Json::Obj(fields) = json else { panic!() };
        let Json::Arr(evs) = &fields[0].1 else {
            panic!()
        };
        evs
    }

    fn str_field<'j>(ev: &'j Json, key: &str) -> Option<&'j str> {
        let Json::Obj(fields) = ev else { return None };
        fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
            if let Json::Str(s) = v {
                Some(s.as_str())
            } else {
                None
            }
        })
    }

    #[test]
    fn slices_balance_and_arrows_pair() {
        let journal = vec![
            ev(
                2,
                1,
                EventKind::RequestAdmit {
                    id: 0,
                    kernel: "k",
                    arrival: SimTime::from_us(1),
                },
            ),
            ev(
                3,
                1,
                EventKind::BatchBegin {
                    kernel: "k",
                    size: 1,
                    hw: true,
                },
            ),
            ev(3, 1, EventKind::SwapBegin { module: "k".into() }),
            ev(
                7,
                1,
                EventKind::SwapEnd {
                    module: "k".into(),
                    frames: 2,
                    words: 40,
                    attempts: 1,
                    repaired_frames: 0,
                    verified: true,
                },
            ),
            ev(
                9,
                1,
                EventKind::RequestComplete {
                    id: 0,
                    kernel: "k",
                    hw: true,
                },
            ),
            ev(
                9,
                1,
                EventKind::BatchEnd {
                    kernel: "k",
                    hw: true,
                },
            ),
        ];
        let json = chrome_trace(&journal);
        let evs = events_of(&json);
        let count = |ph: &str| {
            evs.iter()
                .filter(|e| str_field(e, "ph") == Some(ph))
                .count()
        };
        assert_eq!(count("B"), count("E"), "duration slices balance");
        assert_eq!(count("b"), count("e"), "async arrows pair");
        assert_eq!(count("M"), 5, "process + 3 thread names + 1 request lane");
        // The completed request also renders as one X slice spanning
        // arrival → completion with the phase breakdown attached.
        assert_eq!(count("X"), 1, "one complete slice per request span");
        let x = evs
            .iter()
            .find(|e| str_field(e, "ph") == Some("X"))
            .unwrap();
        let Json::Obj(xf) = x else { panic!() };
        let num = |key: &str| {
            xf.iter().find(|(k, _)| k == key).map(|(_, v)| match v {
                Json::Num(n) => *n,
                other => panic!("{key}: {other:?}"),
            })
        };
        assert_eq!(num("ts"), Some(1.0), "slice opens at the true arrival");
        assert_eq!(num("dur"), Some(8.0), "slice spans the whole latency");
        // The async begin carries the arrival timestamp, not the admit.
        let b = evs
            .iter()
            .find(|e| str_field(e, "ph") == Some("b"))
            .unwrap();
        let Json::Obj(fields) = b else { panic!() };
        let ts = fields
            .iter()
            .find(|(k, _)| k == "ts")
            .map(|(_, v)| v.clone());
        assert_eq!(ts, Some(Json::Num(1.0)));
        assert_eq!(str_field(b, "id"), Some("req-1-0"));
    }

    #[test]
    fn empty_journal_exports_an_empty_track_list() {
        let json = chrome_trace(&[]);
        assert_eq!(
            json.render(),
            r#"{"traceEvents":[],"displayTimeUnit":"ns"}"#
        );
    }
}
