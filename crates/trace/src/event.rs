//! Typed trace events.
//!
//! One event = one fact about the simulated timeline, stamped with the
//! sim clock and the shard that produced it. Kernel and module names are
//! carried as strings so the crate stays at the bottom of the dependency
//! graph (everything above it — manager, service, cluster — can emit
//! without a type cycle).

use vp2_sim::{Json, SimTime};

/// Every stable kind name [`TraceEvent::to_json`] can emit, for
/// validators that want to reject unknown kinds in streamed journals.
pub const KIND_NAMES: &[&str] = &[
    "request_buffer",
    "buffer_flush",
    "request_admit",
    "request_dequeue",
    "sched_decision",
    "request_complete",
    "batch_begin",
    "batch_end",
    "swap_begin",
    "swap_end",
    "cache_lookup",
    "diff_swap",
    "slot_activate",
    "slot_evict",
    "icap_burst",
    "fault_hit",
    "verify_fail",
    "repair",
    "dma_program",
    "dma_complete",
    "quarantine_enter",
    "quarantine_half_open",
    "quarantine_exit",
    "fed_route",
    "fed_steal",
    "fed_shed",
    "scrub_pass",
    "scrub_repair",
    "canary_probe",
    "canary_result",
];

/// Reserved shard id the federation front-end journals under. High
/// enough that no real pool shard collides with it, so federation
/// decisions sort after same-instant pool events in a merged journal
/// and stream to their own `.shard…jsonl` file.
pub const FEDERATION_SHARD: u32 = 0xFED0;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A request entered a cluster admission buffer (stamped with its
    /// machine-timeline arrival; the shard's service has not seen it yet).
    RequestBuffer {
        /// Request id (the service-local id it will receive on flush).
        id: u64,
        /// Kernel module name.
        kernel: &'static str,
        /// Arrival instant on the shard's machine timeline.
        arrival: SimTime,
    },
    /// An admission buffer flushed into its shard's service.
    BufferFlush {
        /// Requests flushed.
        count: u32,
    },
    /// A request entered the service's per-kernel queues.
    RequestAdmit {
        /// Service-local request id.
        id: u64,
        /// Kernel module name.
        kernel: &'static str,
        /// True arrival instant (≤ the event's own timestamp; the gap is
        /// time spent buffered or waiting for a busy machine).
        arrival: SimTime,
    },
    /// A request left its queue as part of a batch.
    RequestDequeue {
        /// Service-local request id.
        id: u64,
    },
    /// The batch scheduler picked which kernel's queue to drain next.
    SchedDecision {
        /// Batch-policy name (`fcfs_drain`, `swap_aware`, `lanes`).
        policy: &'static str,
        /// Kernel whose queue was chosen.
        chosen: &'static str,
        /// Module names of every non-empty queue at the decision point
        /// (the chosen kernel is always among them).
        candidates: Vec<&'static str>,
    },
    /// A request completed and its latency was recorded.
    RequestComplete {
        /// Service-local request id.
        id: u64,
        /// Kernel module name.
        kernel: &'static str,
        /// Served by the dynamic region (false = PPC405 software path).
        hw: bool,
    },
    /// A batch was dispatched.
    BatchBegin {
        /// Kernel module name.
        kernel: &'static str,
        /// Requests in the batch.
        size: u32,
        /// Planned path (may degrade to software if the load fails).
        hw: bool,
    },
    /// The batch finished; every member has completed.
    BatchEnd {
        /// Kernel module name.
        kernel: &'static str,
        /// Path the batch actually ran on.
        hw: bool,
    },
    /// A reconfiguration (module load) started.
    SwapBegin {
        /// Module being loaded.
        module: String,
    },
    /// The reconfiguration finished (verified or degraded).
    SwapEnd {
        /// Module that was loading.
        module: String,
        /// Configuration frames carried by the full stream.
        frames: u32,
        /// Bitstream words in the full stream.
        words: u32,
        /// Full-stream attempts consumed.
        attempts: u32,
        /// Frames re-written by targeted repair passes.
        repaired_frames: u32,
        /// Did readback verify the region (false = degraded, dock unbound)?
        verified: bool,
    },
    /// The bitstream cache was consulted for a transfer image.
    CacheLookup {
        /// Module being loaded.
        module: String,
        /// Did a ready image replay (true) or did the load fall through
        /// to diffing/assembly (false)?
        hit: bool,
    },
    /// A differential load: only the frames that differed from the
    /// slot's live configuration went over the ICAP.
    DiffSwap {
        /// Module being loaded.
        module: String,
        /// Frames a full-image load would have written.
        frames_full: u32,
        /// Frames actually written.
        frames_sent: u32,
        /// Words a full-image load would have moved.
        words_full: u32,
        /// Words actually moved (after compression, if any).
        words_sent: u32,
        /// Did the stream cross the bus in compressed form?
        compressed: bool,
    },
    /// A load was satisfied by re-activating a module already resident
    /// in another sub-slot — no ICAP traffic at all.
    SlotActivate {
        /// Module re-activated.
        module: String,
        /// Sub-slot it resides in.
        slot: u32,
    },
    /// A sub-slot resident was evicted to make room for a new load.
    SlotEvict {
        /// Module displaced.
        module: String,
        /// Sub-slot vacated.
        slot: u32,
    },
    /// The HWICAP committed a buffered stream to the ICAP.
    IcapBurst {
        /// Words shifted.
        words: u32,
        /// Instant the shift completes.
        done: SimTime,
    },
    /// The fault plane corrupted frames during an ICAP commit (silent at
    /// commit time — only readback can see it; the journal can).
    FaultHit {
        /// Frames corrupted by this commit.
        frames: u32,
    },
    /// Readback verification found mismatched frames.
    VerifyFail {
        /// Frames that differ from the expected state.
        frames: u32,
    },
    /// A targeted repair pass re-wrote mismatched frames.
    Repair {
        /// Frames re-written.
        frames: u32,
    },
    /// A DMA transfer was programmed.
    DmaProgram {
        /// Total bytes to move.
        bytes: u32,
        /// Direction: memory → dock (false = dock → memory).
        to_dock: bool,
        /// Block-interleaved mode (FIFO drains interleave with fills).
        interleaved: bool,
    },
    /// The DMA run completed and raised its interrupt.
    DmaComplete {
        /// Cumulative bytes the engine has moved since boot.
        bytes_moved: u64,
    },
    /// A kernel entered quarantine (barred from the hardware path).
    QuarantineEnter {
        /// Kernel module name.
        kernel: &'static str,
    },
    /// A quarantine cooldown expired; the next batch may probe hardware.
    QuarantineHalfOpen {
        /// Kernel module name.
        kernel: &'static str,
    },
    /// A half-open kernel passed a verified load and is trusted again.
    QuarantineExit {
        /// Kernel module name.
        kernel: &'static str,
    },
    /// The federation front-end placed a request on a pool.
    FedRoute {
        /// Pool index the request was routed to.
        pool: u32,
        /// Kernel module name.
        kernel: &'static str,
        /// Estimated completion delay the router compared pools on
        /// (zero under round-robin, which does not estimate).
        estimate: SimTime,
    },
    /// Bounded work stealing moved buffered requests between pools.
    FedSteal {
        /// Pool the requests were taken from.
        from_pool: u32,
        /// Pool that received them.
        to_pool: u32,
        /// Requests moved by this steal event.
        moved: u32,
    },
    /// Lane-aware shedding diverted a request off its backed-up home
    /// pool at admission time.
    FedShed {
        /// The home pool the request was diverted away from.
        from_pool: u32,
        /// The lightly loaded pool that took it.
        to_pool: u32,
        /// Kernel module name.
        kernel: &'static str,
        /// Did the request carry a deadline (deadline-lane traffic
        /// diverts before best-effort traffic)?
        deadline: bool,
    },
    /// A background scrub pass readback-compared a window of resident
    /// configuration frames against their golden images.
    ScrubPass {
        /// Frames readback-compared by this pass.
        frames: u32,
        /// Frames found mismatched (latent upsets caught at rest).
        mismatched: u32,
    },
    /// A scrub pass re-wrote mismatched frames from the golden image
    /// over the differential partial-bitstream path.
    ScrubRepair {
        /// Frames repaired.
        frames: u32,
    },
    /// A half-open kernel's single canary batch was admitted to
    /// hardware with readback-verify forced on.
    CanaryProbe {
        /// Kernel module name.
        kernel: &'static str,
    },
    /// The canary batch finished: readmitted on success, re-quarantined
    /// with exponential cooldown backoff on failure.
    CanaryResult {
        /// Kernel module name.
        kernel: &'static str,
        /// Did the probe pass (kernel trusted on hardware again)?
        admitted: bool,
    },
}

impl EventKind {
    /// Stable snake_case kind name (one of [`KIND_NAMES`]).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RequestBuffer { .. } => "request_buffer",
            EventKind::BufferFlush { .. } => "buffer_flush",
            EventKind::RequestAdmit { .. } => "request_admit",
            EventKind::RequestDequeue { .. } => "request_dequeue",
            EventKind::SchedDecision { .. } => "sched_decision",
            EventKind::RequestComplete { .. } => "request_complete",
            EventKind::BatchBegin { .. } => "batch_begin",
            EventKind::BatchEnd { .. } => "batch_end",
            EventKind::SwapBegin { .. } => "swap_begin",
            EventKind::SwapEnd { .. } => "swap_end",
            EventKind::CacheLookup { .. } => "cache_lookup",
            EventKind::DiffSwap { .. } => "diff_swap",
            EventKind::SlotActivate { .. } => "slot_activate",
            EventKind::SlotEvict { .. } => "slot_evict",
            EventKind::IcapBurst { .. } => "icap_burst",
            EventKind::FaultHit { .. } => "fault_hit",
            EventKind::VerifyFail { .. } => "verify_fail",
            EventKind::Repair { .. } => "repair",
            EventKind::DmaProgram { .. } => "dma_program",
            EventKind::DmaComplete { .. } => "dma_complete",
            EventKind::QuarantineEnter { .. } => "quarantine_enter",
            EventKind::QuarantineHalfOpen { .. } => "quarantine_half_open",
            EventKind::QuarantineExit { .. } => "quarantine_exit",
            EventKind::FedRoute { .. } => "fed_route",
            EventKind::FedSteal { .. } => "fed_steal",
            EventKind::FedShed { .. } => "fed_shed",
            EventKind::ScrubPass { .. } => "scrub_pass",
            EventKind::ScrubRepair { .. } => "scrub_repair",
            EventKind::CanaryProbe { .. } => "canary_probe",
            EventKind::CanaryResult { .. } => "canary_result",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated instant the event happened.
    pub time: SimTime,
    /// Shard that produced it (0 for a bare service).
    pub shard: u32,
    /// Per-shard emission sequence number: strictly increasing within a
    /// shard's journal, so `(time, shard, seq)` totally orders a merged
    /// multi-shard trace without relying on emission interleaving.
    pub seq: u64,
    /// The event.
    pub kind: EventKind,
}

impl TraceEvent {
    /// The `(time, shard, seq)` merge key that totally orders events.
    pub fn key(&self) -> (SimTime, u32, u64) {
        (self.time, self.shard, self.seq)
    }

    /// One flat JSON object per event — the streamed-journal (JSONL)
    /// line format. `time_ps`/`shard`/`seq`/`kind` always lead; the
    /// kind-specific payload fields follow.
    pub fn to_json(&self) -> Json {
        let base = Json::obj()
            .field("time_ps", self.time.as_ps())
            .field("shard", self.shard)
            .field("seq", self.seq)
            .field("kind", self.kind.name());
        match &self.kind {
            EventKind::RequestBuffer {
                id,
                kernel,
                arrival,
            } => base
                .field("id", *id)
                .field("kernel", *kernel)
                .field("arrival_ps", arrival.as_ps()),
            EventKind::BufferFlush { count } => base.field("count", *count),
            EventKind::RequestAdmit {
                id,
                kernel,
                arrival,
            } => base
                .field("id", *id)
                .field("kernel", *kernel)
                .field("arrival_ps", arrival.as_ps()),
            EventKind::RequestDequeue { id } => base.field("id", *id),
            EventKind::SchedDecision {
                policy,
                chosen,
                candidates,
            } => base
                .field("policy", *policy)
                .field("chosen", *chosen)
                .field(
                    "candidates",
                    Json::Arr(candidates.iter().map(|c| Json::Str((*c).into())).collect()),
                ),
            EventKind::RequestComplete { id, kernel, hw } => base
                .field("id", *id)
                .field("kernel", *kernel)
                .field("hw", *hw),
            EventKind::BatchBegin { kernel, size, hw } => base
                .field("kernel", *kernel)
                .field("size", *size)
                .field("hw", *hw),
            EventKind::BatchEnd { kernel, hw } => base.field("kernel", *kernel).field("hw", *hw),
            EventKind::SwapBegin { module } => base.field("module", module.as_str()),
            EventKind::SwapEnd {
                module,
                frames,
                words,
                attempts,
                repaired_frames,
                verified,
            } => base
                .field("module", module.as_str())
                .field("frames", *frames)
                .field("words", *words)
                .field("attempts", *attempts)
                .field("repaired_frames", *repaired_frames)
                .field("verified", *verified),
            EventKind::CacheLookup { module, hit } => {
                base.field("module", module.as_str()).field("hit", *hit)
            }
            EventKind::DiffSwap {
                module,
                frames_full,
                frames_sent,
                words_full,
                words_sent,
                compressed,
            } => base
                .field("module", module.as_str())
                .field("frames_full", *frames_full)
                .field("frames_sent", *frames_sent)
                .field("words_full", *words_full)
                .field("words_sent", *words_sent)
                .field("compressed", *compressed),
            EventKind::SlotActivate { module, slot } | EventKind::SlotEvict { module, slot } => {
                base.field("module", module.as_str()).field("slot", *slot)
            }
            EventKind::IcapBurst { words, done } => {
                base.field("words", *words).field("done_ps", done.as_ps())
            }
            EventKind::FaultHit { frames }
            | EventKind::VerifyFail { frames }
            | EventKind::Repair { frames } => base.field("frames", *frames),
            EventKind::DmaProgram {
                bytes,
                to_dock,
                interleaved,
            } => base
                .field("bytes", *bytes)
                .field("to_dock", *to_dock)
                .field("interleaved", *interleaved),
            EventKind::DmaComplete { bytes_moved } => base.field("bytes_moved", *bytes_moved),
            EventKind::QuarantineEnter { kernel }
            | EventKind::QuarantineHalfOpen { kernel }
            | EventKind::QuarantineExit { kernel } => base.field("kernel", *kernel),
            EventKind::FedRoute {
                pool,
                kernel,
                estimate,
            } => base
                .field("pool", *pool)
                .field("kernel", *kernel)
                .field("estimate_ps", estimate.as_ps()),
            EventKind::FedSteal {
                from_pool,
                to_pool,
                moved,
            } => base
                .field("from_pool", *from_pool)
                .field("to_pool", *to_pool)
                .field("moved", *moved),
            EventKind::FedShed {
                from_pool,
                to_pool,
                kernel,
                deadline,
            } => base
                .field("from_pool", *from_pool)
                .field("to_pool", *to_pool)
                .field("kernel", *kernel)
                .field("deadline", *deadline),
            EventKind::ScrubPass { frames, mismatched } => base
                .field("frames", *frames)
                .field("mismatched", *mismatched),
            EventKind::ScrubRepair { frames } => base.field("frames", *frames),
            EventKind::CanaryProbe { kernel } => base.field("kernel", *kernel),
            EventKind::CanaryResult { kernel, admitted } => {
                base.field("kernel", *kernel).field("admitted", *admitted)
            }
        }
    }
}
