//! # rtr-federation — multi-cluster front-end tier
//!
//! The paper's central measurement is that the 32-bit and 64-bit
//! reconfiguration datapaths differ by roughly an order of magnitude in
//! transfer cost — which makes *where* a kernel runs as important as
//! *whether* it runs in hardware. One [`Cluster`](rtr_cluster::Cluster)
//! is one machine pool; this crate adds the placement tier above it: a
//! [`Federation`] drives several heterogeneous pools (mixed `Bit32` /
//! `Bit64` shard specs per cluster) from one streaming admission loop.
//!
//! Three mechanisms, all decided per request from O(1) counters and
//! stale per-shard cost snapshots (never settling an in-flight flush,
//! so pools stay fully pipelined and equal seeds give byte-identical
//! results at any thread count):
//!
//! * **Cost-model routing** ([`FedPolicy::CostModel`]) — each pool is
//!   scored as *estimated queueing delay* + *cheapest per-item serving
//!   estimate* for the request's kernel, where the serving estimate
//!   amortizes that pool's measured reconfiguration EWMA (fed back from
//!   each shard's live cost model at every flush boundary) over one
//!   flush batch. A Bit64 pool's cheap reconfiguration — and SHA-1's
//!   software-only fate on Bit32 regions — steer placement exactly as
//!   the paper's numbers say they should.
//! * **Lane-aware shedding** — when a request's home pool is backed up
//!   past the shed watermark, deadline-lane traffic diverts to the
//!   least-backlogged pool *before* best-effort traffic does (best
//!   effort tolerates twice the watermark), so deadline tails stay flat
//!   while bulk work keeps its placement affinity.
//! * **Bounded work stealing** — when a pool's backlog crosses the
//!   steal watermark, up to [`FederationConfig::steal_batch`] of its
//!   newest buffered requests move to the least-backlogged pool,
//!   guarded so the move strictly improves balance and capped by a
//!   total budget.
//!
//! Every route / steal / shed decision journals through `rtr-trace`
//! under the reserved [`FEDERATION_SHARD`](rtr_trace::FEDERATION_SHARD)
//! id, so merged journals interleave federation decisions with the pool
//! events they caused and `trace_lint` validates them.

#![warn(missing_docs)]

mod federation;
mod snapshot;

pub use federation::{FedPolicy, Federation, FederationConfig, POOL_STRIDE};
pub use snapshot::{FederationSnapshot, PoolSnapshot};
