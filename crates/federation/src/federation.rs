//! The federation front-end: streaming admission over several clusters.

use rtr_apps::request::Request;
use rtr_cluster::{Cluster, ClusterConfig};
use rtr_telemetry::{Gauge, Telemetry};
use rtr_trace::{EventKind, Tracer, FEDERATION_SHARD};
use vp2_sim::SimTime;

use crate::snapshot::{FederationSnapshot, PoolSnapshot};

/// Shard-id stride between pools in the shared trace journal: pool `p`
/// journals its shards as `p·100 + shard`, so per-pool journals stay
/// disjoint and a merged journal orders deterministically.
pub const POOL_STRIDE: u32 = 100;

/// How the federation picks a home pool for each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FedPolicy {
    /// Rotate over pools in admission order — the placement-blind
    /// baseline cost-model routing is measured against.
    RoundRobin,
    /// Score every pool as estimated queueing delay plus the cheapest
    /// per-item serving estimate for the request's kernel (hardware
    /// path priced with the pool's measured reconfiguration EWMA
    /// amortized over one flush batch), and take the minimum.
    CostModel,
}

impl FedPolicy {
    /// Stable lowercase name (JSON, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            FedPolicy::RoundRobin => "round_robin",
            FedPolicy::CostModel => "cost_model",
        }
    }
}

impl std::fmt::Display for FedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Federation construction parameters.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// One cluster config per pool (heterogeneous mixes welcome — that
    /// is the point). The federation overrides each pool's `trace`
    /// handle and `shard_base` so all pools share one journal registry
    /// with disjoint shard-id spaces.
    pub pools: Vec<ClusterConfig>,
    /// Home-pool selection policy.
    pub policy: FedPolicy,
    /// Backlog (buffered requests on the home pool) at which
    /// deadline-lane traffic starts diverting to a lighter pool.
    /// Best-effort traffic tolerates twice this before diverting — the
    /// lane ordering the shed mechanism exists for.
    pub shed_watermark: usize,
    /// Backlog at which bulk work stealing engages against the pool.
    pub steal_watermark: usize,
    /// Requests moved per steal event.
    pub steal_batch: usize,
    /// Total requests the run may move by stealing (the bound in
    /// "bounded work stealing"). `u64::MAX` = limited only by the
    /// watermark mechanism.
    pub steal_budget: u64,
    /// Shared trace journal. The federation's own decisions journal
    /// under [`FEDERATION_SHARD`]; pool `p`'s shards under
    /// `p · POOL_STRIDE + shard`.
    pub trace: Tracer,
    /// Shared telemetry registry, fanned out the same way the journal
    /// is: the federation samples its own admission-plane gauges under
    /// [`FEDERATION_SHARD`]; pool `p`'s shards sample under
    /// `p · POOL_STRIDE + shard`. Disabled by default.
    pub telemetry: Telemetry,
}

impl FederationConfig {
    /// Cost-model routing over the given pools with moderate watermarks
    /// and an unbounded steal budget.
    pub fn new(pools: Vec<ClusterConfig>) -> FederationConfig {
        FederationConfig {
            pools,
            policy: FedPolicy::CostModel,
            shed_watermark: 12,
            steal_watermark: 24,
            steal_batch: 4,
            steal_budget: u64::MAX,
            trace: Tracer::disabled(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Several clusters behind one streaming admission loop.
pub struct Federation {
    pools: Vec<Cluster>,
    policy: FedPolicy,
    shed_watermark: usize,
    steal_watermark: usize,
    steal_batch: usize,
    steal_budget: u64,
    tracer: Tracer,
    telemetry: Telemetry,
    rr_next: usize,
    admitted: u64,
    routed: Vec<u64>,
    shed_in: Vec<u64>,
    shed_out: Vec<u64>,
    stolen_in: Vec<u64>,
    stolen_out: Vec<u64>,
    steal_events: u64,
    stolen: u64,
    sheds: u64,
}

impl Federation {
    /// Boots every pool (in order, each with its shard-id base and the
    /// shared journal installed).
    ///
    /// # Panics
    /// Panics if `config.pools` is empty, a pool has more than
    /// [`POOL_STRIDE`] shards, or `steal_batch` is zero.
    pub fn new(config: FederationConfig) -> Federation {
        assert!(
            !config.pools.is_empty(),
            "a federation needs at least one pool"
        );
        assert!(config.steal_batch > 0, "steal_batch must be positive");
        let n = config.pools.len();
        let pools: Vec<Cluster> = config
            .pools
            .into_iter()
            .enumerate()
            .map(|(p, mut cfg)| {
                assert!(
                    cfg.shards.len() <= POOL_STRIDE as usize,
                    "pool {p} has {} shards; at most {POOL_STRIDE} fit a shard-id slot",
                    cfg.shards.len()
                );
                cfg.shard_base = p as u32 * POOL_STRIDE;
                cfg.trace = config.trace.clone();
                cfg.telemetry = config.telemetry.clone();
                Cluster::new(cfg)
            })
            .collect();
        Federation {
            pools,
            policy: config.policy,
            shed_watermark: config.shed_watermark.max(1),
            steal_watermark: config.steal_watermark.max(1),
            steal_batch: config.steal_batch,
            steal_budget: config.steal_budget,
            tracer: config.trace.with_shard(FEDERATION_SHARD),
            telemetry: config.telemetry.with_shard(FEDERATION_SHARD),
            rr_next: 0,
            admitted: 0,
            routed: vec![0; n],
            shed_in: vec![0; n],
            shed_out: vec![0; n],
            stolen_in: vec![0; n],
            stolen_out: vec![0; n],
            steal_events: 0,
            stolen: 0,
            sheds: 0,
        }
    }

    /// The pools, in id order.
    pub fn pools(&self) -> &[Cluster] {
        &self.pools
    }

    /// The home-pool selection policy.
    pub fn policy(&self) -> FedPolicy {
        self.policy
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Steal events fired so far (each moves up to `steal_batch`).
    pub fn steal_events(&self) -> u64 {
        self.steal_events
    }

    /// Requests moved by stealing so far.
    pub fn stolen(&self) -> u64 {
        self.stolen
    }

    /// Requests diverted off their home pool by lane-aware shedding.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Routes one request to a pool — home pick, lane-aware shed check,
    /// admission, then a bounded steal check — and returns the pool id
    /// it landed on. Every decision reads only O(1) backlog counters
    /// and stale cost snapshots, so no in-flight flush is ever settled
    /// here and the outcome is identical at any thread count.
    pub fn admit(&mut self, arrival: SimTime, request: Request) -> usize {
        let kernel = request.kernel();
        let module = kernel.module_name();
        let deadline = request.lane.deadline.is_some();
        let (home, estimate) = self.pick_home(arrival, &request);
        // Lane-aware shedding: a backed-up home pool loses its deadline
        // traffic first. Best-effort work tolerates twice the watermark
        // before giving up its placement, so bulk affinity survives
        // short backlogs while deadline tails stay flat.
        let divert_at = if deadline {
            self.shed_watermark
        } else {
            self.shed_watermark * 2
        };
        let mut chosen = home;
        if self.pools.len() > 1 && self.pools[home].backlog() >= divert_at {
            let target = self.least_backlogged(home);
            if self.pools[target].backlog() < self.pools[home].backlog() {
                chosen = target;
                self.sheds += 1;
                self.shed_out[home] += 1;
                self.shed_in[target] += 1;
                if self.tracer.on() {
                    self.tracer.emit(
                        arrival,
                        EventKind::FedShed {
                            from_pool: home as u32,
                            to_pool: target as u32,
                            kernel: module,
                            deadline,
                        },
                    );
                }
            }
        }
        if self.tracer.on() {
            self.tracer.emit(
                arrival,
                EventKind::FedRoute {
                    pool: chosen as u32,
                    kernel: module,
                    estimate,
                },
            );
        }
        self.pools[chosen].admit(arrival, request);
        self.routed[chosen] += 1;
        self.admitted += 1;
        self.maybe_steal(arrival, chosen);
        // The admission-plane sample, stamped with the stream instant
        // (the federation has no machine clock of its own). Cumulative
        // counters become per-second rates in the handle; the tick grid
        // bounds the emission however dense the stream.
        if self.telemetry.on() {
            let backlog: usize = self.pools.iter().map(Cluster::backlog).sum();
            self.telemetry.sample(
                arrival,
                "federation",
                &[
                    Gauge::value("backlog_total", backlog as f64),
                    Gauge::rate("admitted_per_s", self.admitted as f64),
                    Gauge::rate("stolen_per_s", self.stolen as f64),
                    Gauge::rate("sheds_per_s", self.sheds as f64),
                ],
            );
        }
        chosen
    }

    /// Home-pool pick plus the estimate it was based on (zero for the
    /// estimate-free round-robin baseline).
    fn pick_home(&mut self, arrival: SimTime, request: &Request) -> (usize, SimTime) {
        match self.policy {
            FedPolicy::RoundRobin => {
                let id = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.pools.len();
                (id, SimTime::ZERO)
            }
            FedPolicy::CostModel => {
                let kernel = request.kernel();
                let bytes = request.payload_bytes();
                let mut best = 0;
                let mut best_score = SimTime::ZERO;
                for (p, pool) in self.pools.iter().enumerate() {
                    let score =
                        pool.backlog_estimate(arrival) + pool.kernel_estimate(kernel, bytes);
                    if p == 0 || score < best_score {
                        best = p;
                        best_score = score;
                    }
                }
                (best, best_score)
            }
        }
    }

    /// The least-backlogged pool other than `except` (ties to the
    /// lowest id).
    fn least_backlogged(&self, except: usize) -> usize {
        (0..self.pools.len())
            .filter(|&p| p != except)
            .min_by_key(|&p| (self.pools[p].backlog(), p))
            .expect("more than one pool")
    }

    /// Bounded work stealing: when `from`'s backlog crosses the steal
    /// watermark, move up to `steal_batch` of its newest buffered
    /// requests to the least-backlogged pool — but only if the move
    /// strictly improves balance (no ping-pong) and budget remains.
    fn maybe_steal(&mut self, arrival: SimTime, from: usize) {
        if self.pools.len() < 2
            || self.stolen >= self.steal_budget
            || self.pools[from].backlog() < self.steal_watermark
        {
            return;
        }
        let to = self.least_backlogged(from);
        let budget_left = (self.steal_budget - self.stolen).min(self.steal_batch as u64) as usize;
        if self.pools[to].backlog() + budget_left > self.pools[from].backlog() {
            return;
        }
        let moved = self.pools[from].give_back(budget_left);
        if moved.is_empty() {
            return;
        }
        let count = moved.len() as u64;
        // Stolen arrivals predate the current stream instant; the target
        // pool's sorted admission buffers put them back in arrival order.
        for (stolen_arrival, request) in moved {
            self.pools[to].admit(stolen_arrival, request);
        }
        self.steal_events += 1;
        self.stolen += count;
        self.stolen_out[from] += count;
        self.stolen_in[to] += count;
        if self.tracer.on() {
            self.tracer.emit(
                arrival,
                EventKind::FedSteal {
                    from_pool: from as u32,
                    to_pool: to as u32,
                    moved: count as u32,
                },
            );
        }
    }

    /// Flushes and settles every pool.
    pub fn flush_all(&mut self) {
        for pool in &mut self.pools {
            pool.flush_all();
        }
    }

    /// Consumes an arrival stream to completion and returns the
    /// federated snapshot.
    pub fn run(
        &mut self,
        stream: impl IntoIterator<Item = (SimTime, Request)>,
    ) -> FederationSnapshot {
        for (arrival, request) in stream {
            self.admit(arrival, request);
        }
        self.flush_all();
        self.snapshot()
    }

    /// Settles every pool and aggregates: per-pool cluster snapshots
    /// plus federation-level pooled metrics (the raw latency series
    /// merge across pools; percentiles re-rank over the union) over the
    /// federated makespan (the slowest pool's).
    pub fn snapshot(&mut self) -> FederationSnapshot {
        let mut pool_snaps = Vec::with_capacity(self.pools.len());
        let mut pooled = rtr_service::Metrics::new();
        for (p, pool) in self.pools.iter_mut().enumerate() {
            let cluster = pool.snapshot();
            pooled.absorb(&pool.fold_window());
            pool_snaps.push(PoolSnapshot {
                id: p,
                routed: self.routed[p],
                shed_in: self.shed_in[p],
                shed_out: self.shed_out[p],
                stolen_in: self.stolen_in[p],
                stolen_out: self.stolen_out[p],
                cluster,
            });
        }
        let makespan = pool_snaps
            .iter()
            .map(|s| s.cluster.makespan)
            .max()
            .expect("at least one pool");
        FederationSnapshot {
            policy: self.policy,
            total: pooled.snapshot(makespan),
            makespan,
            admitted: self.admitted,
            steal_events: self.steal_events,
            stolen: self.stolen,
            sheds: self.sheds,
            pools: pool_snaps,
        }
    }
}
