//! Federated end-of-run aggregates.

use rtr_cluster::ClusterSnapshot;
use rtr_service::MetricsSnapshot;
use vp2_sim::{Json, SimTime};

use crate::federation::FedPolicy;

/// One pool's view: its cluster snapshot plus the federation-level
/// traffic accounting for it.
#[derive(Debug, Clone)]
pub struct PoolSnapshot {
    /// Pool index within the federation.
    pub id: usize,
    /// Requests the front-end placed here (home picks and diversions
    /// both; excludes stolen arrivals, which are counted separately).
    pub routed: u64,
    /// Requests shed *to* this pool from backed-up homes.
    pub shed_in: u64,
    /// Requests shed *away* from this pool while it was backed up.
    pub shed_out: u64,
    /// Requests stolen into this pool's buffers.
    pub stolen_in: u64,
    /// Requests stolen out of this pool's buffers.
    pub stolen_out: u64,
    /// The pool's own aggregate (per-shard breakdown, makespan,
    /// routing stats).
    pub cluster: ClusterSnapshot,
}

impl PoolSnapshot {
    /// Machine-readable form: the federation accounting fields plus the
    /// full nested cluster snapshot.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("id", self.id as u64)
            .field("routed", self.routed)
            .field("shed_in", self.shed_in)
            .field("shed_out", self.shed_out)
            .field("stolen_in", self.stolen_in)
            .field("stolen_out", self.stolen_out)
            .field("makespan_us", self.cluster.makespan.as_us_f64())
            .field("cluster", self.cluster.to_json())
    }
}

/// Point-in-time summary of a federated run.
#[derive(Debug, Clone)]
pub struct FederationSnapshot {
    /// Home-pool selection policy the run used.
    pub policy: FedPolicy,
    /// Pooled metrics across every pool: raw latency series merged,
    /// percentiles re-ranked over the union, computed over the
    /// federated makespan.
    pub total: MetricsSnapshot,
    /// The slowest pool's makespan — the federated completion time.
    pub makespan: SimTime,
    /// Requests admitted through the front-end.
    pub admitted: u64,
    /// Steal events fired (each moved ≥ 1 request).
    pub steal_events: u64,
    /// Requests moved by stealing.
    pub stolen: u64,
    /// Requests diverted by lane-aware shedding.
    pub sheds: u64,
    /// Per-pool breakdown, in pool-id order.
    pub pools: Vec<PoolSnapshot>,
}

impl FederationSnapshot {
    /// Machine-readable form (bench tables, CI gates).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("policy", self.policy.name())
            .field("pool_count", self.pools.len() as u64)
            .field("admitted", self.admitted)
            .field("makespan_us", self.makespan.as_us_f64())
            .field("steal_events", self.steal_events)
            .field("stolen", self.stolen)
            .field("sheds", self.sheds)
            .field(
                "pools",
                Json::Arr(self.pools.iter().map(PoolSnapshot::to_json).collect()),
            )
            .field("total", self.total.to_json())
    }
}

impl std::fmt::Display for FederationSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "federation: {} pools, policy {}, makespan {}",
            self.pools.len(),
            self.policy,
            self.makespan
        )?;
        writeln!(
            f,
            "  admitted {:>6}   stolen {} ({} steal events), shed {}",
            self.admitted, self.stolen, self.steal_events, self.sheds
        )?;
        for pool in &self.pools {
            writeln!(
                f,
                "  pool {}: routed {}, +{} stolen in / -{} out, +{} shed in / -{} out, makespan {}",
                pool.id,
                pool.routed,
                pool.stolen_in,
                pool.stolen_out,
                pool.shed_in,
                pool.shed_out,
                pool.cluster.makespan
            )?;
        }
        write!(f, "{}", self.total)
    }
}
