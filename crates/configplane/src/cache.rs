//! Bounded bitstream cache with deterministic LRU eviction.
//!
//! A cache entry is a ready-to-feed transfer image: the exact words the
//! HWICAP should receive (possibly compressed) plus the accounting a
//! cache hit must still report. The key is a content hash over whatever
//! identifies the transfer — component identity, slot, and a fingerprint
//! of the slot's *current* frame contents, since a differential image is
//! only valid against the state it was diffed from.
//!
//! Determinism: eviction picks the entry with the smallest last-touch
//! tick, and ticks are issued monotonically per access, so the victim is
//! unique regardless of hash-map iteration order. Equal request
//! sequences therefore produce equal hit/miss/evict traces.

use std::collections::HashMap;

/// FNV-1a accumulator for building cache keys out of heterogeneous
/// material (names, indices, frame words). Deterministic across runs and
/// platforms.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh accumulator at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprint(Self::OFFSET)
    }

    /// Folds a byte slice into the hash.
    pub fn update_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds a string into the hash (length-prefixed so concatenations
    /// cannot collide).
    pub fn update_str(&mut self, s: &str) -> &mut Self {
        self.update_u64(s.len() as u64);
        self.update_bytes(s.as_bytes())
    }

    /// Folds a word into the hash.
    pub fn update_u32(&mut self, w: u32) -> &mut Self {
        self.update_bytes(&w.to_le_bytes())
    }

    /// Folds a 64-bit value into the hash.
    pub fn update_u64(&mut self, w: u64) -> &mut Self {
        self.update_bytes(&w.to_le_bytes())
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

/// A cached transfer image plus the accounting a replay must report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedStream {
    /// Words to feed the HWICAP (compressed if that was shorter).
    pub words: Vec<u32>,
    /// Frames the full-image path would have written.
    pub frames_full: u32,
    /// Frames this image actually writes.
    pub frames_sent: u32,
    /// Words the full-image path would have moved.
    pub words_full: u32,
    /// Is `words` in the run/dictionary format?
    pub compressed: bool,
}

#[derive(Debug, Clone)]
struct Entry {
    stream: CachedStream,
    touched: u64,
}

/// The bounded, deterministic-LRU bitstream cache.
#[derive(Debug, Clone, Default)]
pub struct BitstreamCache {
    capacity: usize,
    entries: HashMap<u64, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BitstreamCache {
    /// A cache holding at most `capacity` entries (0 = disabled: every
    /// lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        BitstreamCache {
            capacity,
            ..BitstreamCache::default()
        }
    }

    /// Looks up a transfer image, refreshing its LRU position. Counts a
    /// hit or a miss.
    pub fn get(&mut self, key: u64) -> Option<CachedStream> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.touched = self.tick;
                self.hits += 1;
                Some(entry.stream.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a transfer image, evicting the least-recently-used entry
    /// (ties impossible: touch ticks are unique) if the cache is full.
    pub fn insert(&mut self, key: u64, stream: CachedStream) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(&k, _)| k)
                .expect("cache is non-empty when full");
            self.entries.remove(&victim);
            self.evictions += 1;
        }
        self.entries.insert(
            key,
            Entry {
                stream,
                touched: self.tick,
            },
        );
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(tag: u32) -> CachedStream {
        CachedStream {
            words: vec![tag; 4],
            frames_full: 10,
            frames_sent: 2,
            words_full: 100,
            compressed: false,
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = BitstreamCache::new(4);
        assert_eq!(c.get(1), None);
        c.insert(1, stream(1));
        assert_eq!(c.get(1).unwrap().words, vec![1; 4]);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c = BitstreamCache::new(2);
        c.insert(1, stream(1));
        c.insert(2, stream(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        c.insert(3, stream(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(2).is_none(), "entry 2 was the LRU victim");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn reinsert_updates_without_eviction() {
        let mut c = BitstreamCache::new(2);
        c.insert(1, stream(1));
        c.insert(2, stream(2));
        c.insert(1, stream(9));
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(1).unwrap().words, vec![9; 4]);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = BitstreamCache::new(0);
        c.insert(1, stream(1));
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn eviction_order_is_deterministic() {
        // Same access sequence twice → same survivor set.
        let run = || {
            let mut c = BitstreamCache::new(3);
            for k in 0..8u64 {
                c.insert(k, stream(k as u32));
                if k % 2 == 0 {
                    c.get(k / 2);
                }
            }
            let mut present: Vec<u64> = (0..8).filter(|&k| c.get(k).is_some()).collect();
            present.sort_unstable();
            (present, c.evictions())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let mut a = Fingerprint::new();
        a.update_str("sha1").update_u64(0).update_u32(0xAB);
        let mut b = Fingerprint::new();
        b.update_str("sha1").update_u64(0).update_u32(0xAB);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.update_str("sha1").update_u64(1).update_u32(0xAB);
        assert_ne!(a.finish(), c.finish());
        // Known FNV-1a vector: empty input = offset basis.
        assert_eq!(Fingerprint::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}
