//! # rtr-configplane — the configuration-data plane behind the manager
//!
//! The paper's "implementation issues" are configuration-plane issues:
//! assembling partial bitstreams, paying the ICAP transfer cost, and
//! keeping the region discipline that makes relocation safe. This crate
//! packages the three levers that cut that cost without weakening the
//! discipline:
//!
//! * [`cache`] — a bounded, deterministic-LRU **bitstream cache** keyed
//!   by a content hash of (component, placement, current slot state), so
//!   a repeated swap replays a ready transfer image instead of re-running
//!   diffing and assembly;
//! * [`slots`] — **multi-module floorplans**: a dynamic region split into
//!   column-aligned sub-slots with disjoint frame sets and per-slot
//!   bus-macro contracts, so two small kernels are co-resident and one
//!   swaps without evicting the other;
//! * [`ConfigPlaneConfig`]/[`ConfigPlaneStats`] — the feature knobs and
//!   the counters the service exports. Everything defaults **off**: with
//!   the default config the manager byte-for-byte reproduces the
//!   pre-configplane load path.
//!
//! Differential frame selection and the run/dictionary coder themselves
//! live in `vp2-bitstream` (`mismatched_frames` + `compress`); this crate
//! owns the policy and bookkeeping around them.

pub mod cache;
pub mod slots;

pub use cache::{BitstreamCache, CachedStream, Fingerprint};
pub use slots::{Slot, SlotPlan, SlotPlanError};

/// Feature knobs for the configuration plane. The default disables every
/// feature, reproducing the pre-configplane load path exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConfigPlaneConfig {
    /// Bitstream-cache capacity in entries; 0 disables the cache.
    pub cache_capacity: usize,
    /// Emit only frames that differ from the slot's live configuration
    /// instead of the complete slot image.
    pub differential: bool,
    /// Run/dictionary-compress transfer streams when that shortens them.
    pub compress: bool,
    /// Column widths of the region's sub-slots (must sum to the region
    /// width). Empty = one slot covering the whole region.
    pub slot_widths: Vec<u16>,
}

impl ConfigPlaneConfig {
    /// Everything on: cache, differential transfers, compression. The
    /// slot plan stays single-slot unless `slot_widths` is set.
    pub fn full() -> Self {
        ConfigPlaneConfig {
            cache_capacity: 16,
            differential: true,
            compress: true,
            slot_widths: Vec::new(),
        }
    }

    /// Is any feature enabled?
    pub fn enabled(&self) -> bool {
        self.cache_capacity > 0
            || self.differential
            || self.compress
            || !self.slot_widths.is_empty()
    }
}

/// Counters the plane accumulates across loads; exported by the service
/// metrics and journaled per-swap by the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfigPlaneStats {
    /// Cache lookups that replayed a ready transfer image.
    pub cache_hits: u64,
    /// Cache lookups that fell through to diffing/assembly.
    pub cache_misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub cache_evictions: u64,
    /// Frames the full-image path would have written.
    pub frames_full: u64,
    /// Frames actually written (differential selection).
    pub frames_sent: u64,
    /// Words the full-image path would have moved through the ICAP.
    pub words_full: u64,
    /// Words actually moved (after diffing and compression).
    pub words_sent: u64,
    /// Streams that went over the bus in compressed form.
    pub compressed_streams: u64,
    /// Loads satisfied by re-activating a co-resident slot (no ICAP
    /// traffic at all).
    pub activations: u64,
    /// Sub-slot residents displaced to make room.
    pub slot_evictions: u64,
}

impl ConfigPlaneStats {
    /// Fraction of full-path words actually moved (1.0 when nothing was
    /// saved or nothing was loaded).
    pub fn diff_ratio(&self) -> f64 {
        if self.words_full == 0 {
            1.0
        } else {
            self.words_sent as f64 / self.words_full as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_disables_everything() {
        let cfg = ConfigPlaneConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg.cache_capacity, 0);
        assert!(!cfg.differential);
        assert!(!cfg.compress);
        assert!(cfg.slot_widths.is_empty());
    }

    #[test]
    fn full_config_enables_the_plane() {
        assert!(ConfigPlaneConfig::full().enabled());
        assert!(ConfigPlaneConfig {
            slot_widths: vec![14, 14],
            ..ConfigPlaneConfig::default()
        }
        .enabled());
    }

    #[test]
    fn diff_ratio_degenerates_to_one() {
        let mut s = ConfigPlaneStats::default();
        assert_eq!(s.diff_ratio(), 1.0);
        s.words_full = 200;
        s.words_sent = 50;
        assert_eq!(s.diff_ratio(), 0.25);
    }
}
