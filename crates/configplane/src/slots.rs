//! Multi-module floorplans: column-aligned sub-slots of a dynamic region.
//!
//! Configuration frames are per-column (every minor of a CLB column is
//! one frame), so a sub-slot that owns a distinct CLB column range owns
//! a **disjoint frame set**: reconfiguring one sub-slot cannot disturb a
//! co-resident neighbour, by construction rather than by convention.
//! That is the same argument the paper makes for partial-height regions,
//! applied once more inside the region.
//!
//! Each sub-slot carries its own bus-macro contract — the region's dock
//! macros translated to the slot's left edge — so the existing assembly
//! checks (`BitLinker::check_macro`) keep guarding the boundary: a
//! component is accepted at a slot only if its macros land exactly on
//! that slot's agreed sites.
//!
//! BRAM columns are not split: the whole BRAM allocation rides with slot
//! 0, so components that need BRAM must target it.

use std::ops::Range;

use vp2_bitstream::Component;
use vp2_fabric::config::{FrameAddress, FrameBlock, MINORS_PER_CLB_COL};
use vp2_fabric::region::DynamicRegion;
use vp2_netlist::busmacro::BusMacro;

/// Errors from floorplan construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotPlanError {
    /// Sub-slot widths must sum exactly to the region width.
    WidthMismatch {
        /// Sum of the requested widths.
        requested: u16,
        /// The region's width in CLB columns.
        region: u16,
    },
    /// A zero-width slot is meaningless.
    EmptySlot,
}

impl std::fmt::Display for SlotPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlotPlanError::WidthMismatch { requested, region } => write!(
                f,
                "slot widths sum to {requested} columns but the region has {region}"
            ),
            SlotPlanError::EmptySlot => f.write_str("zero-width slot"),
        }
    }
}

impl std::error::Error for SlotPlanError {}

/// One independently reconfigurable sub-slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slot {
    /// Position in the plan (slot 0 owns the region's BRAMs).
    pub index: usize,
    /// Region-relative CLB column range.
    pub cols: Range<u16>,
    /// Frames a reconfiguration of this slot writes — disjoint from
    /// every other slot's set.
    pub frames: Vec<FrameAddress>,
}

impl Slot {
    /// Region-relative origin components are linked at.
    pub fn origin(&self) -> (u16, u16) {
        (self.cols.start, 0)
    }

    /// Width in CLB columns.
    pub fn width(&self) -> u16 {
        self.cols.end - self.cols.start
    }

    /// Does a component's bounding box fit this slot (full region
    /// height assumed available)?
    pub fn fits(&self, component: &Component, region_height: u16) -> bool {
        let (w, h) = component.extent();
        w <= self.width() && h <= region_height
    }

    /// The slot's bus-macro contract: `macros` translated to the slot's
    /// left edge. Registering these with the BitLinker makes the
    /// assembly checks accept components at this slot.
    pub fn translate_macros(&self, macros: &[BusMacro]) -> Vec<BusMacro> {
        macros
            .iter()
            .map(|m| m.translated(self.cols.start, 0))
            .collect()
    }
}

/// A region's floorplan: one or more sub-slots covering its columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotPlan {
    /// The sub-slots, left to right.
    pub slots: Vec<Slot>,
}

impl SlotPlan {
    /// The trivial floorplan: one slot covering the whole region. Its
    /// frame set equals `region.writable_frames()`, so single-slot
    /// operation is indistinguishable from the pre-configplane path.
    pub fn single(region: &DynamicRegion) -> Self {
        SlotPlan {
            slots: vec![Slot {
                index: 0,
                cols: 0..region.width(),
                frames: region.writable_frames(),
            }],
        }
    }

    /// Splits the region into sub-slots of the given column widths
    /// (summing to the region width). CLB frames are dealt to the slot
    /// owning the column; BRAM frames all ride with slot 0.
    pub fn split(region: &DynamicRegion, widths: &[u16]) -> Result<Self, SlotPlanError> {
        if widths.is_empty() {
            return Ok(Self::single(region));
        }
        if widths.contains(&0) {
            return Err(SlotPlanError::EmptySlot);
        }
        let total: u16 = widths.iter().sum();
        if total != region.width() {
            return Err(SlotPlanError::WidthMismatch {
                requested: total,
                region: region.width(),
            });
        }
        let mut slots = Vec::with_capacity(widths.len());
        let mut start = 0u16;
        for (index, &w) in widths.iter().enumerate() {
            let cols = start..start + w;
            let mut frames = Vec::new();
            for col in cols.clone() {
                let dev_col = region.cols.start + col;
                for minor in 0..MINORS_PER_CLB_COL {
                    frames.push(FrameAddress {
                        block: FrameBlock::Clb { col: dev_col },
                        minor,
                    });
                }
            }
            if index == 0 {
                frames.extend(
                    region
                        .writable_frames()
                        .into_iter()
                        .filter(|f| !matches!(f.block, FrameBlock::Clb { .. })),
                );
            }
            slots.push(Slot {
                index,
                cols,
                frames,
            });
            start += w;
        }
        Ok(SlotPlan { slots })
    }

    /// More than one slot?
    pub fn is_multi(&self) -> bool {
        self.slots.len() > 1
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// A plan always has at least one slot.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp2_fabric::region::{region_32bit, region_64bit};
    use vp2_fabric::{Device, DeviceKind};

    #[test]
    fn single_slot_matches_the_region() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let region = region_32bit(&dev);
        let plan = SlotPlan::single(&region);
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_multi());
        assert_eq!(plan.slots[0].frames, region.writable_frames());
        assert_eq!(plan.slots[0].origin(), (0, 0));
    }

    #[test]
    fn split_partitions_the_frames() {
        let dev = Device::new(DeviceKind::Xc2vp30);
        let region = region_64bit(&dev);
        let plan = SlotPlan::split(&region, &[16, 16]).unwrap();
        assert!(plan.is_multi());
        let (a, b) = (&plan.slots[0], &plan.slots[1]);
        assert_eq!(a.width(), 16);
        assert_eq!(b.origin(), (16, 0));
        // Disjoint frame sets…
        assert!(a.frames.iter().all(|f| !b.frames.contains(f)));
        // …that together cover exactly the region's writable frames.
        let mut union: Vec<_> = a.frames.iter().chain(&b.frames).copied().collect();
        let mut all = region.writable_frames();
        union.sort();
        all.sort();
        assert_eq!(union, all);
        // BRAM frames all live in slot 0.
        assert!(b
            .frames
            .iter()
            .all(|f| matches!(f.block, FrameBlock::Clb { .. })));
    }

    #[test]
    fn split_validates_widths() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let region = region_32bit(&dev);
        assert_eq!(
            SlotPlan::split(&region, &[10, 10]).unwrap_err(),
            SlotPlanError::WidthMismatch {
                requested: 20,
                region: 28
            }
        );
        assert_eq!(
            SlotPlan::split(&region, &[28, 0]).unwrap_err(),
            SlotPlanError::EmptySlot
        );
        // Empty width list degrades to the single-slot plan.
        assert_eq!(
            SlotPlan::split(&region, &[]).unwrap(),
            SlotPlan::single(&region)
        );
    }

    #[test]
    fn translated_contract_moves_with_the_slot() {
        let dev = Device::new(DeviceKind::Xc2vp30);
        let region = region_64bit(&dev);
        let plan = SlotPlan::split(&region, &[16, 16]).unwrap();
        let m = BusMacro::lut_based("dock_write32", 32, 0, 0);
        let moved = plan.slots[1].translate_macros(std::slice::from_ref(&m));
        assert_eq!(moved[0].name, m.name);
        assert_eq!(moved[0].sites[0].0.clb.col, 16);
        let unmoved = plan.slots[0].translate_macros(std::slice::from_ref(&m));
        assert_eq!(unmoved[0], m);
    }
}
