//! Dynamic-region geometry.
//!
//! The paper's central layout constraint: a dynamic region that covered the
//! full device height would cut the static design in two (signals could not
//! cross from one side to the other), and board-level pin constraints make
//! full-height regions unusable anyway. Regions are therefore partial-height
//! bands, and every partial configuration must preserve the configuration of
//! the rows above and below the band — which this type makes checkable.

use crate::config::{
    FrameAddress, FrameBlock, MINORS_PER_BRAM_CONTENT, MINORS_PER_BRAM_INTERCONNECT,
    MINORS_PER_CLB_COL,
};
use crate::coords::{ClbCoord, SLICES_PER_CLB};
use crate::device::Device;
use std::ops::Range;

/// Errors from dynamic-region construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionError {
    /// Column range exceeds the device grid.
    ColumnsOutOfRange,
    /// Row range exceeds the device grid.
    RowsOutOfRange,
    /// Region would cover the full device height, isolating the two sides
    /// of the static design from each other.
    FullHeight,
    /// Region overlaps an embedded CPU block.
    OverlapsPpc,
    /// Empty ranges are meaningless.
    Empty,
    /// A listed BRAM block does not exist on the device.
    BramOutOfRange,
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            RegionError::ColumnsOutOfRange => "column range exceeds device grid",
            RegionError::RowsOutOfRange => "row range exceeds device grid",
            RegionError::FullHeight => {
                "region covers full device height (would isolate left from right)"
            }
            RegionError::OverlapsPpc => "region overlaps an embedded CPU block",
            RegionError::Empty => "region is empty",
            RegionError::BramOutOfRange => "BRAM block outside device",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for RegionError {}

/// A rectangular dynamic (run-time reconfigurable) region plus the BRAM
/// blocks allocated to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicRegion {
    /// CLB columns covered.
    pub cols: Range<u16>,
    /// CLB rows covered (never the full device height).
    pub rows: Range<u16>,
    /// BRAM blocks allocated to the region as `(bram_col, block_index)`.
    pub brams: Vec<(u16, u16)>,
}

impl DynamicRegion {
    /// Builds and validates a region for `dev`.
    pub fn new(
        dev: &Device,
        cols: Range<u16>,
        rows: Range<u16>,
        brams: Vec<(u16, u16)>,
    ) -> Result<Self, RegionError> {
        if cols.is_empty() || rows.is_empty() {
            return Err(RegionError::Empty);
        }
        if cols.end > dev.clb_cols {
            return Err(RegionError::ColumnsOutOfRange);
        }
        if rows.end > dev.rows {
            return Err(RegionError::RowsOutOfRange);
        }
        if rows.start == 0 && rows.end == dev.rows {
            return Err(RegionError::FullHeight);
        }
        for hole in &dev.ppc_holes {
            let col_overlap = hole.col < cols.end && cols.start < hole.col + hole.width;
            let row_overlap = hole.row < rows.end && rows.start < hole.row + hole.height;
            if col_overlap && row_overlap {
                return Err(RegionError::OverlapsPpc);
            }
        }
        for &(c, b) in &brams {
            if c >= dev.bram_cols || b >= dev.brams_per_col {
                return Err(RegionError::BramOutOfRange);
            }
        }
        Ok(DynamicRegion { cols, rows, brams })
    }

    /// Number of CLBs inside the region.
    pub fn clb_count(&self) -> u32 {
        u32::from(self.cols.end - self.cols.start) * u32::from(self.rows.end - self.rows.start)
    }

    /// Number of slices inside the region.
    pub fn slice_count(&self) -> u32 {
        self.clb_count() * SLICES_PER_CLB as u32
    }

    /// Number of BRAM blocks allocated to the region.
    pub fn bram_count(&self) -> u32 {
        self.brams.len() as u32
    }

    /// Fraction of the device's slices the region holds.
    pub fn slice_fraction(&self, dev: &Device) -> f64 {
        f64::from(self.slice_count()) / f64::from(dev.slice_count())
    }

    /// Does the region contain the CLB?
    pub fn contains(&self, c: ClbCoord) -> bool {
        self.cols.contains(&c.col) && self.rows.contains(&c.row)
    }

    /// Every frame a reconfiguration of this region may legitimately write:
    /// all minors of each CLB column the region intersects, plus the frames
    /// of each BRAM column that hosts one of the region's BRAM blocks.
    ///
    /// Note the key property the paper highlights: these frames also carry
    /// the configuration of rows *outside* the region, so writing them
    /// requires either differential data or merged content (BitLinker).
    pub fn writable_frames(&self) -> Vec<FrameAddress> {
        let mut out = Vec::new();
        for col in self.cols.clone() {
            for minor in 0..MINORS_PER_CLB_COL {
                out.push(FrameAddress {
                    block: FrameBlock::Clb { col },
                    minor,
                });
            }
        }
        let mut bram_cols: Vec<u16> = self.brams.iter().map(|&(c, _)| c).collect();
        bram_cols.sort_unstable();
        bram_cols.dedup();
        for col in bram_cols {
            for minor in 0..MINORS_PER_BRAM_INTERCONNECT {
                out.push(FrameAddress {
                    block: FrameBlock::BramInterconnect { col },
                    minor,
                });
            }
            for minor in 0..MINORS_PER_BRAM_CONTENT {
                out.push(FrameAddress {
                    block: FrameBlock::BramContent { col },
                    minor,
                });
            }
        }
        out
    }

    /// Width in CLB columns.
    pub fn width(&self) -> u16 {
        self.cols.end - self.cols.start
    }

    /// Height in CLB rows.
    pub fn height(&self) -> u16 {
        self.rows.end - self.rows.start
    }
}

/// The 32-bit system's dynamic region: 28 × 11 = 308 CLBs (25 % of the
/// XC2VP7's slices) and 6 BRAMs, exactly as reported in the paper.
pub fn region_32bit(dev: &Device) -> DynamicRegion {
    DynamicRegion::new(
        dev,
        0..28,
        30..41,
        vec![(0, 8), (0, 9), (1, 8), (1, 9), (2, 8), (2, 9)],
    )
    .expect("paper region must validate")
}

/// The 64-bit system's dynamic region: 32 × 24 = 768 CLBs (3072 slices,
/// 22.4 % of the XC2VP30) and 22 BRAMs, exactly as reported in the paper.
pub fn region_64bit(dev: &Device) -> DynamicRegion {
    let mut brams = Vec::new();
    // 22 blocks spread over four BRAM columns under the region.
    for col in 0..4u16 {
        for blk in 10..16u16 {
            if brams.len() < 22 {
                brams.push((col, blk));
            }
        }
    }
    DynamicRegion::new(dev, 0..32, 48..72, brams).expect("paper region must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    #[test]
    fn paper_region_32bit_counts() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let r = region_32bit(&dev);
        assert_eq!(r.clb_count(), 308, "paper: 28x11 = 308 CLBs");
        assert_eq!(r.slice_count(), 1232);
        assert_eq!(r.bram_count(), 6, "paper: 6 RAM blocks");
        let frac = r.slice_fraction(&dev);
        assert!(
            (0.24..0.26).contains(&frac),
            "paper: 25% of slices, got {frac}"
        );
    }

    #[test]
    fn paper_region_64bit_counts() {
        let dev = Device::new(DeviceKind::Xc2vp30);
        let r = region_64bit(&dev);
        assert_eq!(r.clb_count(), 768, "paper: 32x24 = 768 CLBs");
        assert_eq!(r.slice_count(), 3072, "paper: 3072 slices");
        assert_eq!(r.bram_count(), 22, "paper: 22 BRAMs");
        let frac = r.slice_fraction(&dev);
        assert!((0.22..0.23).contains(&frac), "paper: 22.4%, got {frac}");
    }

    #[test]
    fn full_height_rejected() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let err = DynamicRegion::new(&dev, 0..10, 0..44, vec![]).unwrap_err();
        assert_eq!(err, RegionError::FullHeight);
    }

    #[test]
    fn ppc_overlap_rejected() {
        let dev = Device::new(DeviceKind::Xc2vp30);
        let err = DynamicRegion::new(&dev, 8..20, 10..20, vec![]).unwrap_err();
        assert_eq!(err, RegionError::OverlapsPpc);
    }

    #[test]
    fn out_of_range_rejected() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        assert_eq!(
            DynamicRegion::new(&dev, 0..29, 1..2, vec![]).unwrap_err(),
            RegionError::ColumnsOutOfRange
        );
        assert_eq!(
            DynamicRegion::new(&dev, 0..1, 40..45, vec![]).unwrap_err(),
            RegionError::RowsOutOfRange
        );
        assert_eq!(
            DynamicRegion::new(&dev, 0..1, 0..0, vec![]).unwrap_err(),
            RegionError::Empty
        );
        assert_eq!(
            DynamicRegion::new(&dev, 0..1, 1..2, vec![(4, 0)]).unwrap_err(),
            RegionError::BramOutOfRange
        );
    }

    #[test]
    fn containment() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let r = region_32bit(&dev);
        assert!(r.contains(ClbCoord::new(0, 30)));
        assert!(r.contains(ClbCoord::new(27, 40)));
        assert!(!r.contains(ClbCoord::new(0, 29)));
        assert!(!r.contains(ClbCoord::new(0, 41)));
    }

    #[test]
    fn writable_frames_cover_region_columns() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let r = region_32bit(&dev);
        let frames = r.writable_frames();
        // 28 CLB columns * 22 minors + 3 BRAM columns * 68 frames
        assert_eq!(frames.len(), 28 * 22 + 3 * 68);
        assert!(frames
            .iter()
            .any(|f| matches!(f.block, FrameBlock::Clb { col: 27 })));
    }

    #[test]
    fn width_height() {
        let dev = Device::new(DeviceKind::Xc2vp30);
        let r = region_64bit(&dev);
        assert_eq!(r.width(), 32);
        assert_eq!(r.height(), 24);
    }
}
