//! Configuration memory: frames, frame addressing and the bit-level encoding
//! of placed logic.
//!
//! Virtex-II Pro devices are configured by **frames**: a frame is the atomic
//! unit of (re)configuration and controls a full-height column of resources.
//! This module reproduces that structure:
//!
//! * every CLB column owns [`MINORS_PER_CLB_COL`] frames (minor addresses);
//! * every BRAM column owns [`MINORS_PER_BRAM_CONTENT`] content frames plus
//!   [`MINORS_PER_BRAM_INTERCONNECT`] interconnect frames;
//! * a CLB frame stores two 32-bit words per CLB **row**, so a frame touches
//!   every row of the device — the architectural fact behind the paper's
//!   "must not disturb the circuits below or above" requirement.
//!
//! The encoding of logic into frame bits is deterministic and documented on
//! each accessor, which makes differential bitstreams, readback and BitLinker
//! merging real bit-level operations.

use crate::coords::{ClbCoord, FfIndex, LutIndex, SliceIndex};
use crate::device::Device;
use std::fmt;

/// Frames (minor addresses) per CLB column.
///
/// The real Virtex-II Pro uses 22; we keep that number. Minors 0–1 hold LUT
/// truth tables, minor 2 holds FF/carry configuration, minors 3–21 hold the
/// routing summary words.
pub const MINORS_PER_CLB_COL: u16 = 22;
/// Content frames per BRAM column (64, as on the real device family).
pub const MINORS_PER_BRAM_CONTENT: u16 = 64;
/// Interconnect frames per BRAM column.
pub const MINORS_PER_BRAM_INTERCONNECT: u16 = 4;
/// 32-bit words per CLB row in a CLB (or BRAM-interconnect) frame.
pub const WORDS_PER_CLB_ROW: usize = 2;
/// 32-bit words per BRAM block in a BRAM content frame
/// (18 kbit / 64 frames = 288 bits = 9 words).
pub const WORDS_PER_BRAM_BLOCK: usize = 9;

/// Which column family a frame belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FrameBlock {
    /// CLB column `col` (0-based, left to right).
    Clb { col: u16 },
    /// BRAM interconnect column `col`.
    BramInterconnect { col: u16 },
    /// BRAM content column `col`.
    BramContent { col: u16 },
}

/// Full frame address: block (major) + minor.
///
/// Mirrors the Virtex-II FAR register's block-type / major / minor split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameAddress {
    /// Column family and index.
    pub block: FrameBlock,
    /// Frame index within the column.
    pub minor: u16,
}

impl fmt::Display for FrameAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.block {
            FrameBlock::Clb { col } => write!(f, "CLB:c{}:m{}", col, self.minor),
            FrameBlock::BramInterconnect { col } => write!(f, "BRI:c{}:m{}", col, self.minor),
            FrameBlock::BramContent { col } => write!(f, "BRC:c{}:m{}", col, self.minor),
        }
    }
}

/// One configuration frame: a column-spanning vector of 32-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame payload words.
    pub words: Vec<u32>,
}

impl Frame {
    /// An all-zero frame of the given length.
    pub fn zeroed(len: usize) -> Self {
        Frame {
            words: vec![0; len],
        }
    }

    /// Is every word zero (the erased state)?
    pub fn is_blank(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// The device's entire configuration memory.
///
/// Cloneable so that tests and the BitLinker can snapshot/diff states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigMemory {
    rows: u16,
    clb_cols: u16,
    bram_cols: u16,
    brams_per_col: u16,
    /// Frames laid out by [`Self::linear_index`].
    frames: Vec<Frame>,
}

impl ConfigMemory {
    /// Blank configuration memory for a device.
    pub fn new(dev: &Device) -> Self {
        let mut frames = Vec::new();
        let clb_len = dev.rows as usize * WORDS_PER_CLB_ROW;
        for _ in 0..(dev.clb_cols as usize * MINORS_PER_CLB_COL as usize) {
            frames.push(Frame::zeroed(clb_len));
        }
        for _ in 0..(dev.bram_cols as usize * MINORS_PER_BRAM_INTERCONNECT as usize) {
            frames.push(Frame::zeroed(clb_len));
        }
        let bram_len = dev.brams_per_col as usize * WORDS_PER_BRAM_BLOCK;
        for _ in 0..(dev.bram_cols as usize * MINORS_PER_BRAM_CONTENT as usize) {
            frames.push(Frame::zeroed(bram_len));
        }
        ConfigMemory {
            rows: dev.rows,
            clb_cols: dev.clb_cols,
            bram_cols: dev.bram_cols,
            brams_per_col: dev.brams_per_col,
            frames,
        }
    }

    /// Number of CLB rows this memory was built for.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of CLB columns this memory was built for.
    pub fn clb_cols(&self) -> u16 {
        self.clb_cols
    }

    /// Total number of frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Validates an address and maps it to the backing index.
    fn linear_index(&self, addr: FrameAddress) -> Option<usize> {
        let clb_frames = self.clb_cols as usize * MINORS_PER_CLB_COL as usize;
        let bri_frames = self.bram_cols as usize * MINORS_PER_BRAM_INTERCONNECT as usize;
        match addr.block {
            FrameBlock::Clb { col } => (col < self.clb_cols && addr.minor < MINORS_PER_CLB_COL)
                .then(|| col as usize * MINORS_PER_CLB_COL as usize + addr.minor as usize),
            FrameBlock::BramInterconnect { col } => {
                (col < self.bram_cols && addr.minor < MINORS_PER_BRAM_INTERCONNECT).then(|| {
                    clb_frames
                        + col as usize * MINORS_PER_BRAM_INTERCONNECT as usize
                        + addr.minor as usize
                })
            }
            FrameBlock::BramContent { col } => {
                (col < self.bram_cols && addr.minor < MINORS_PER_BRAM_CONTENT).then(|| {
                    clb_frames
                        + bri_frames
                        + col as usize * MINORS_PER_BRAM_CONTENT as usize
                        + addr.minor as usize
                })
            }
        }
    }

    /// Iterates over every frame address in linear (device) order.
    pub fn frame_addresses(&self) -> impl Iterator<Item = FrameAddress> + '_ {
        let clb = (0..self.clb_cols).flat_map(|col| {
            (0..MINORS_PER_CLB_COL).map(move |minor| FrameAddress {
                block: FrameBlock::Clb { col },
                minor,
            })
        });
        let bri = (0..self.bram_cols).flat_map(|col| {
            (0..MINORS_PER_BRAM_INTERCONNECT).map(move |minor| FrameAddress {
                block: FrameBlock::BramInterconnect { col },
                minor,
            })
        });
        let brc = (0..self.bram_cols).flat_map(|col| {
            (0..MINORS_PER_BRAM_CONTENT).map(move |minor| FrameAddress {
                block: FrameBlock::BramContent { col },
                minor,
            })
        });
        clb.chain(bri).chain(brc)
    }

    /// Reads a frame.
    ///
    /// # Panics
    /// Panics on an invalid address (model bug, not data dependent).
    pub fn frame(&self, addr: FrameAddress) -> &Frame {
        let idx = self
            .linear_index(addr)
            .unwrap_or_else(|| panic!("invalid frame address {addr}"));
        &self.frames[idx]
    }

    /// Writes a whole frame (the ICAP's FDRI path).
    ///
    /// # Panics
    /// Panics on an invalid address or a length mismatch.
    pub fn write_frame(&mut self, addr: FrameAddress, words: &[u32]) {
        let idx = self
            .linear_index(addr)
            .unwrap_or_else(|| panic!("invalid frame address {addr}"));
        assert_eq!(
            self.frames[idx].words.len(),
            words.len(),
            "frame length mismatch at {addr}"
        );
        self.frames[idx].words.copy_from_slice(words);
    }

    /// Mutable access to a frame (used by the logic encoders below).
    fn frame_mut(&mut self, addr: FrameAddress) -> &mut Frame {
        let idx = self
            .linear_index(addr)
            .unwrap_or_else(|| panic!("invalid frame address {addr}"));
        &mut self.frames[idx]
    }

    /// Readback verification over an explicit frame set: addresses in
    /// `frames` whose live contents differ from `expected`.
    ///
    /// This is the post-load check the paper performs through ICAP
    /// readback — the returned addresses are exactly the frames a targeted
    /// repair (a partial bitstream of only those frames) must re-write.
    pub fn mismatched_frames(
        &self,
        expected: &ConfigMemory,
        frames: &[FrameAddress],
    ) -> Vec<FrameAddress> {
        frames
            .iter()
            .copied()
            .filter(|&a| self.frame(a) != expected.frame(a))
            .collect()
    }

    /// Addresses of every frame whose contents differ from `other`.
    ///
    /// This is exactly the set a *differential* partial bitstream captures.
    pub fn diff(&self, other: &ConfigMemory) -> Vec<FrameAddress> {
        assert_eq!(
            self.frame_count(),
            other.frame_count(),
            "cannot diff different devices"
        );
        self.frame_addresses()
            .filter(|&a| self.frame(a) != other.frame(a))
            .collect()
    }

    // ------------------------------------------------------------------
    // Logic encoding. Layout (per CLB row `r`, words `2r` and `2r+1`):
    //   minor 0: word0 = slice0.F | slice0.G<<16 ; word1 = slice1.F|G
    //   minor 1: word0 = slice2.F | slice2.G<<16 ; word1 = slice3.F|G
    //   minor 2: word0 = per-slice FF config nibbles ; word1 = carry bits
    //   minors 3..22: routing summary words (two 32-bit halves of a u64)
    // ------------------------------------------------------------------

    fn lut_site(clb: ClbCoord, slice: SliceIndex) -> (FrameAddress, usize) {
        let minor = u16::from(slice.0 / 2);
        let word_in_row = usize::from(slice.0 % 2);
        (
            FrameAddress {
                block: FrameBlock::Clb { col: clb.col },
                minor,
            },
            clb.row as usize * WORDS_PER_CLB_ROW + word_in_row,
        )
    }

    /// Sets a LUT truth table (16 bits; bit *i* is the output for input
    /// pattern *i*).
    pub fn set_lut(&mut self, clb: ClbCoord, slice: SliceIndex, lut: LutIndex, truth: u16) {
        assert!(clb.row < self.rows, "row out of range");
        let (addr, word) = Self::lut_site(clb, slice);
        let w = &mut self.frame_mut(addr).words[word];
        let shift = 16 * u32::from(lut.0);
        *w = (*w & !(0xFFFFu32 << shift)) | (u32::from(truth) << shift);
    }

    /// Reads a LUT truth table back (the readback path).
    pub fn lut(&self, clb: ClbCoord, slice: SliceIndex, lut: LutIndex) -> u16 {
        let (addr, word) = Self::lut_site(clb, slice);
        let w = self.frame(addr).words[word];
        ((w >> (16 * u32::from(lut.0))) & 0xFFFF) as u16
    }

    /// Per-FF configuration nibble: bit0 = FF in use, bit1 = init value,
    /// bit2 = clock-enable routed, bit3 = synchronous reset.
    pub fn set_ff_config(&mut self, clb: ClbCoord, slice: SliceIndex, ff: FfIndex, nibble: u8) {
        assert!(nibble < 16, "FF config is a nibble");
        let addr = FrameAddress {
            block: FrameBlock::Clb { col: clb.col },
            minor: 2,
        };
        let word = clb.row as usize * WORDS_PER_CLB_ROW;
        let shift = 8 * u32::from(slice.0) + 4 * u32::from(ff.0);
        let w = &mut self.frame_mut(addr).words[word];
        *w = (*w & !(0xFu32 << shift)) | (u32::from(nibble) << shift);
    }

    /// Reads a FF configuration nibble.
    pub fn ff_config(&self, clb: ClbCoord, slice: SliceIndex, ff: FfIndex) -> u8 {
        let addr = FrameAddress {
            block: FrameBlock::Clb { col: clb.col },
            minor: 2,
        };
        let word = clb.row as usize * WORDS_PER_CLB_ROW;
        let shift = 8 * u32::from(slice.0) + 4 * u32::from(ff.0);
        ((self.frame(addr).words[word] >> shift) & 0xF) as u8
    }

    /// Writes one routing-summary word for a CLB. `channel` selects one of
    /// the 19 routing minors (0..19 → minor 3..21). The u64 value is a
    /// deterministic digest of the nets routed through this CLB computed by
    /// the netlist crate; distinct circuits therefore produce distinct frame
    /// bits, which is what gives differential bitstreams realistic sizes.
    pub fn set_routing_word(&mut self, clb: ClbCoord, channel: u16, value: u64) {
        assert!(channel < MINORS_PER_CLB_COL - 3, "routing channel range");
        let addr = FrameAddress {
            block: FrameBlock::Clb { col: clb.col },
            minor: 3 + channel,
        };
        let base = clb.row as usize * WORDS_PER_CLB_ROW;
        let frame = self.frame_mut(addr);
        frame.words[base] = value as u32;
        frame.words[base + 1] = (value >> 32) as u32;
    }

    /// Reads one routing-summary word.
    pub fn routing_word(&self, clb: ClbCoord, channel: u16) -> u64 {
        assert!(channel < MINORS_PER_CLB_COL - 3, "routing channel range");
        let addr = FrameAddress {
            block: FrameBlock::Clb { col: clb.col },
            minor: 3 + channel,
        };
        let base = clb.row as usize * WORDS_PER_CLB_ROW;
        let frame = self.frame(addr);
        u64::from(frame.words[base]) | (u64::from(frame.words[base + 1]) << 32)
    }

    /// Writes 288 bits (9 words) of BRAM content: block `block` in BRAM
    /// column `col`, content frame `minor`.
    pub fn set_bram_chunk(&mut self, col: u16, block: u16, minor: u16, words: &[u32; 9]) {
        assert!(block < self.brams_per_col, "BRAM block out of range");
        let addr = FrameAddress {
            block: FrameBlock::BramContent { col },
            minor,
        };
        let base = block as usize * WORDS_PER_BRAM_BLOCK;
        self.frame_mut(addr).words[base..base + 9].copy_from_slice(words);
    }

    /// Reads 288 bits of BRAM content.
    pub fn bram_chunk(&self, col: u16, block: u16, minor: u16) -> [u32; 9] {
        assert!(block < self.brams_per_col, "BRAM block out of range");
        let addr = FrameAddress {
            block: FrameBlock::BramContent { col },
            minor,
        };
        let base = block as usize * WORDS_PER_BRAM_BLOCK;
        let mut out = [0u32; 9];
        out.copy_from_slice(&self.frame(addr).words[base..base + 9]);
        out
    }

    /// Word range `[start, end)` of a CLB frame that belongs to the given
    /// row span. Used by BitLinker to check that a partial configuration
    /// leaves rows outside the dynamic region untouched.
    pub fn row_word_range(rows: std::ops::Range<u16>) -> std::ops::Range<usize> {
        rows.start as usize * WORDS_PER_CLB_ROW..rows.end as usize * WORDS_PER_CLB_ROW
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceKind};

    fn mem() -> ConfigMemory {
        ConfigMemory::new(&Device::new(DeviceKind::Xc2vp7))
    }

    #[test]
    fn frame_counts() {
        let m = mem();
        // 28 CLB cols * 22 + 4 BRAM cols * (4 + 64)
        assert_eq!(m.frame_count(), 28 * 22 + 4 * (4 + 64));
        assert_eq!(m.frame_addresses().count(), m.frame_count());
    }

    #[test]
    fn frames_start_blank() {
        let m = mem();
        assert!(m.frame_addresses().all(|a| m.frame(a).is_blank()));
    }

    #[test]
    fn lut_roundtrip_all_sites() {
        let mut m = mem();
        let clb = ClbCoord::new(3, 7);
        for s in 0..4u8 {
            for l in 0..2u8 {
                let val = 0x1000 + u16::from(s) * 16 + u16::from(l);
                m.set_lut(clb, SliceIndex::new(s), LutIndex::new(l), val);
            }
        }
        for s in 0..4u8 {
            for l in 0..2u8 {
                let want = 0x1000 + u16::from(s) * 16 + u16::from(l);
                assert_eq!(m.lut(clb, SliceIndex::new(s), LutIndex::new(l)), want);
            }
        }
    }

    #[test]
    fn lut_write_does_not_disturb_neighbours() {
        let mut m = mem();
        let a = ClbCoord::new(5, 10);
        let b = ClbCoord::new(5, 11); // same column, adjacent row
        m.set_lut(a, SliceIndex::new(0), LutIndex::F, 0xAAAA);
        m.set_lut(b, SliceIndex::new(0), LutIndex::F, 0x5555);
        assert_eq!(m.lut(a, SliceIndex::new(0), LutIndex::F), 0xAAAA);
        assert_eq!(m.lut(b, SliceIndex::new(0), LutIndex::F), 0x5555);
        assert_eq!(m.lut(a, SliceIndex::new(0), LutIndex::G), 0);
    }

    #[test]
    fn lut_write_touches_exactly_one_frame() {
        let mut m = mem();
        let blank = m.clone();
        m.set_lut(ClbCoord::new(2, 0), SliceIndex::new(2), LutIndex::G, 0xF0F0);
        let changed = m.diff(&blank);
        assert_eq!(changed.len(), 1);
        assert_eq!(
            changed[0],
            FrameAddress {
                block: FrameBlock::Clb { col: 2 },
                minor: 1
            }
        );
    }

    #[test]
    fn ff_config_roundtrip() {
        let mut m = mem();
        let clb = ClbCoord::new(0, 43);
        m.set_ff_config(clb, SliceIndex::new(3), FfIndex::new(1), 0b1011);
        assert_eq!(
            m.ff_config(clb, SliceIndex::new(3), FfIndex::new(1)),
            0b1011
        );
        assert_eq!(m.ff_config(clb, SliceIndex::new(3), FfIndex::new(0)), 0);
        assert_eq!(m.ff_config(clb, SliceIndex::new(0), FfIndex::new(1)), 0);
    }

    #[test]
    fn routing_word_roundtrip() {
        let mut m = mem();
        let clb = ClbCoord::new(27, 20);
        m.set_routing_word(clb, 0, 0xDEAD_BEEF_0BAD_F00D);
        m.set_routing_word(clb, 18, 42);
        assert_eq!(m.routing_word(clb, 0), 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(m.routing_word(clb, 18), 42);
        assert_eq!(m.routing_word(clb, 9), 0);
    }

    #[test]
    fn bram_chunk_roundtrip() {
        let mut m = mem();
        let words = [1, 2, 3, 4, 5, 6, 7, 8, 9];
        m.set_bram_chunk(3, 10, 63, &words);
        assert_eq!(m.bram_chunk(3, 10, 63), words);
        assert_eq!(m.bram_chunk(3, 9, 63), [0; 9]);
    }

    #[test]
    fn diff_detects_exact_frames() {
        let a = mem();
        let mut b = mem();
        b.set_routing_word(ClbCoord::new(4, 4), 2, 99);
        b.set_lut(ClbCoord::new(10, 1), SliceIndex::new(0), LutIndex::F, 1);
        let d = b.diff(&a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn mismatched_frames_reports_only_watched_differences() {
        let expected = mem();
        let mut live = mem();
        // One corruption inside the watched set, one outside it.
        live.set_lut(ClbCoord::new(2, 5), SliceIndex::new(0), LutIndex::F, 0xDEAD);
        live.set_lut(ClbCoord::new(9, 5), SliceIndex::new(0), LutIndex::F, 0xBEEF);
        let watched: Vec<FrameAddress> = (0..MINORS_PER_CLB_COL)
            .map(|minor| FrameAddress {
                block: FrameBlock::Clb { col: 2 },
                minor,
            })
            .collect();
        let bad = live.mismatched_frames(&expected, &watched);
        assert_eq!(
            bad,
            vec![FrameAddress {
                block: FrameBlock::Clb { col: 2 },
                minor: 0
            }]
        );
        assert!(expected.mismatched_frames(&expected, &watched).is_empty());
    }

    #[test]
    fn whole_frame_write_roundtrip() {
        let mut m = mem();
        let addr = FrameAddress {
            block: FrameBlock::Clb { col: 1 },
            minor: 5,
        };
        let data: Vec<u32> = (0..88).collect(); // 44 rows * 2 words
        m.write_frame(addr, &data);
        assert_eq!(m.frame(addr).words, data);
    }

    #[test]
    #[should_panic(expected = "invalid frame address")]
    fn invalid_address_panics() {
        let m = mem();
        m.frame(FrameAddress {
            block: FrameBlock::Clb { col: 99 },
            minor: 0,
        });
    }

    #[test]
    fn row_word_range_maps_rows() {
        assert_eq!(ConfigMemory::row_word_range(0..44), 0..88);
        assert_eq!(ConfigMemory::row_word_range(16..27), 32..54);
    }
}
