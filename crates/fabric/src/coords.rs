//! Coordinate types for fabric resources.
//!
//! Columns and rows are zero-based; column 0 is the leftmost CLB column,
//! row 0 is the *top* row (matching the floorplan renderings). Slices within
//! a CLB and LUTs/FFs within a slice are indexed 0..4 and 0..2 respectively,
//! per the Virtex-II Pro CLB organisation the paper quotes ("4 slices, each
//! with two 4-input lookup tables and two flip-flops").

use std::fmt;

/// Number of slices in one CLB.
pub const SLICES_PER_CLB: usize = 4;
/// Number of 4-input LUTs in one slice.
pub const LUTS_PER_SLICE: usize = 2;
/// Number of flip-flops in one slice.
pub const FFS_PER_SLICE: usize = 2;

/// Location of a CLB on the fabric grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClbCoord {
    /// CLB column (0 = leftmost).
    pub col: u16,
    /// CLB row (0 = top).
    pub row: u16,
}

impl ClbCoord {
    /// Convenience constructor.
    pub const fn new(col: u16, row: u16) -> Self {
        ClbCoord { col, row }
    }

    /// Returns the coordinate translated by the given column/row offsets.
    ///
    /// Used by BitLinker relocation: a component placed at origin is moved to
    /// its final position inside the dynamic region.
    pub fn translated(self, dcol: i32, drow: i32) -> Option<ClbCoord> {
        let col = i32::from(self.col) + dcol;
        let row = i32::from(self.row) + drow;
        if (0..=i32::from(u16::MAX)).contains(&col) && (0..=i32::from(u16::MAX)).contains(&row) {
            Some(ClbCoord::new(col as u16, row as u16))
        } else {
            None
        }
    }
}

impl fmt::Display for ClbCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CLB[c{},r{}]", self.col, self.row)
    }
}

/// Slice index within a CLB (0..4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SliceIndex(pub u8);

impl SliceIndex {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics if `i >= 4`.
    pub fn new(i: u8) -> Self {
        assert!((i as usize) < SLICES_PER_CLB, "slice index out of range");
        SliceIndex(i)
    }

    /// All slice indices in order.
    pub fn all() -> impl Iterator<Item = SliceIndex> {
        (0..SLICES_PER_CLB as u8).map(SliceIndex)
    }
}

/// LUT index within a slice: 0 = F, 1 = G.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LutIndex(pub u8);

impl LutIndex {
    /// The F LUT.
    pub const F: LutIndex = LutIndex(0);
    /// The G LUT.
    pub const G: LutIndex = LutIndex(1);

    /// Validated constructor.
    ///
    /// # Panics
    /// Panics if `i >= 2`.
    pub fn new(i: u8) -> Self {
        assert!((i as usize) < LUTS_PER_SLICE, "LUT index out of range");
        LutIndex(i)
    }
}

/// Flip-flop index within a slice: 0 = X, 1 = Y.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FfIndex(pub u8);

impl FfIndex {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics if `i >= 2`.
    pub fn new(i: u8) -> Self {
        assert!((i as usize) < FFS_PER_SLICE, "FF index out of range");
        FfIndex(i)
    }
}

/// Fully-qualified slice location: CLB coordinate plus slice index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SliceCoord {
    /// Hosting CLB.
    pub clb: ClbCoord,
    /// Slice within the CLB.
    pub slice: SliceIndex,
}

impl SliceCoord {
    /// Convenience constructor.
    pub fn new(col: u16, row: u16, slice: u8) -> Self {
        SliceCoord {
            clb: ClbCoord::new(col, row),
            slice: SliceIndex::new(slice),
        }
    }
}

impl fmt::Display for SliceCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SLICE[c{},r{},s{}]",
            self.clb.col, self.clb.row, self.slice.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation() {
        let c = ClbCoord::new(5, 10);
        assert_eq!(c.translated(3, -4), Some(ClbCoord::new(8, 6)));
        assert_eq!(c.translated(-6, 0), None, "negative column rejected");
        assert_eq!(c.translated(0, -11), None, "negative row rejected");
    }

    #[test]
    fn slice_index_validation() {
        assert_eq!(SliceIndex::all().count(), 4);
        SliceIndex::new(3);
    }

    #[test]
    #[should_panic(expected = "slice index out of range")]
    fn slice_index_rejects_4() {
        SliceIndex::new(4);
    }

    #[test]
    #[should_panic(expected = "LUT index out of range")]
    fn lut_index_rejects_2() {
        LutIndex::new(2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ClbCoord::new(2, 3).to_string(), "CLB[c2,r3]");
        assert_eq!(SliceCoord::new(2, 3, 1).to_string(), "SLICE[c2,r3,s1]");
    }

    #[test]
    fn ordering_is_column_major() {
        let a = ClbCoord::new(1, 9);
        let b = ClbCoord::new(2, 0);
        assert!(a < b);
    }
}
