//! ASCII floorplan rendering.
//!
//! Regenerates the paper's architecture figures (1, 3 and 4) from the actual
//! model state: the device grid, the embedded CPU blocks, the dynamic region
//! and the static system modules placed around it. The renderings "correspond
//! roughly to the actual floorplan of the system", just like the figures.

use crate::device::Device;
use crate::region::DynamicRegion;
use std::ops::Range;

/// A labelled rectangle on the floorplan (a placed static module).
#[derive(Debug, Clone)]
pub struct PlacedBlock {
    /// Single-character map key.
    pub key: char,
    /// Human-readable module name shown in the legend.
    pub label: String,
    /// CLB columns covered.
    pub cols: Range<u16>,
    /// CLB rows covered.
    pub rows: Range<u16>,
}

/// A device floorplan: grid + dynamic region + placed static modules.
#[derive(Debug, Clone)]
pub struct Floorplan<'a> {
    dev: &'a Device,
    region: Option<&'a DynamicRegion>,
    blocks: Vec<PlacedBlock>,
}

impl<'a> Floorplan<'a> {
    /// Starts an empty floorplan for a device.
    pub fn new(dev: &'a Device) -> Self {
        Floorplan {
            dev,
            region: None,
            blocks: Vec::new(),
        }
    }

    /// Marks the dynamic region.
    pub fn with_region(mut self, region: &'a DynamicRegion) -> Self {
        self.region = Some(region);
        self
    }

    /// Adds a placed static module.
    pub fn add_block(
        &mut self,
        key: char,
        label: impl Into<String>,
        cols: Range<u16>,
        rows: Range<u16>,
    ) -> &mut Self {
        self.blocks.push(PlacedBlock {
            key,
            label: label.into(),
            cols,
            rows,
        });
        self
    }

    /// Character for one CLB cell, with precedence:
    /// CPU hole > dynamic region > placed block > empty fabric.
    fn cell(&self, col: u16, row: u16) -> char {
        let c = crate::coords::ClbCoord::new(col, row);
        if self.dev.ppc_holes.iter().any(|h| h.contains(c)) {
            return 'P';
        }
        if let Some(r) = self.region {
            if r.contains(c) {
                return '#';
            }
        }
        for b in &self.blocks {
            if b.cols.contains(&col) && b.rows.contains(&row) {
                return b.key;
            }
        }
        '.'
    }

    /// Renders the floorplan, downsampling by `scale` CLBs per character in
    /// each axis (scale 1 = one char per CLB).
    ///
    /// # Panics
    /// Panics if `scale` is zero.
    pub fn render(&self, scale: u16) -> String {
        assert!(scale > 0, "scale must be positive");
        let mut out = String::new();
        out.push_str(&format!(
            "{} — {} rows x {} CLB cols, {} BRAM cols, {} slices\n",
            self.dev.name,
            self.dev.rows,
            self.dev.clb_cols,
            self.dev.bram_cols,
            self.dev.slice_count()
        ));
        let w = self.dev.clb_cols.div_ceil(scale);
        out.push('+');
        out.push_str(&"-".repeat(w as usize));
        out.push_str("+\n");
        let mut row = 0;
        while row < self.dev.rows {
            out.push('|');
            let mut col = 0;
            while col < self.dev.clb_cols {
                // Majority vote inside the scale x scale tile; dominance
                // order mirrors `cell` precedence.
                let mut best = '.';
                'tile: for dc in 0..scale {
                    for dr in 0..scale {
                        let (cc, rr) = (col + dc, row + dr);
                        if cc >= self.dev.clb_cols || rr >= self.dev.rows {
                            continue;
                        }
                        let ch = self.cell(cc, rr);
                        if ch != '.' {
                            best = ch;
                            break 'tile;
                        }
                    }
                }
                out.push(best);
                col += scale;
            }
            out.push_str("|\n");
            row += scale;
        }
        out.push('+');
        out.push_str(&"-".repeat(w as usize));
        out.push_str("+\n");
        // Legend.
        if self.region.is_some() {
            out.push_str("  # dynamic region\n");
        }
        if !self.dev.ppc_holes.is_empty() {
            out.push_str("  P PowerPC 405 block\n");
        }
        for b in &self.blocks {
            out.push_str(&format!("  {} {}\n", b.key, b.label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;
    use crate::region::{region_32bit, region_64bit};

    #[test]
    fn renders_region_and_legend() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let region = region_32bit(&dev);
        let mut fp = Floorplan::new(&dev).with_region(&region);
        fp.add_block('M', "OPB external memory controller", 0..4, 0..6);
        let s = fp.render(1);
        assert!(s.contains('#'), "dynamic region rendered");
        assert!(s.contains('M'), "placed block rendered");
        assert!(s.contains("OPB external memory controller"));
        assert!(s.contains("XC2VP7"));
    }

    #[test]
    fn ppc_holes_visible_on_vp30() {
        let dev = Device::new(DeviceKind::Xc2vp30);
        let region = region_64bit(&dev);
        let fp = Floorplan::new(&dev).with_region(&region);
        let s = fp.render(2);
        assert!(s.contains('P'), "CPU blocks rendered");
        assert!(s.contains("PowerPC 405"));
    }

    #[test]
    fn grid_dimensions_scale() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let fp = Floorplan::new(&dev);
        let s1 = fp.render(1);
        // 44 rows + 2 border rows + header + (no legend entries)
        let body_rows = s1.lines().filter(|l| l.starts_with('|')).count();
        assert_eq!(body_rows, 44);
        let s2 = fp.render(2);
        let body_rows2 = s2.lines().filter(|l| l.starts_with('|')).count();
        assert_eq!(body_rows2, 22);
    }

    #[test]
    fn precedence_cpu_over_region() {
        let dev = Device::new(DeviceKind::Xc2vp30);
        // Region adjacent to (not overlapping) the hole; cells inside holes
        // must still render 'P'.
        let region = region_64bit(&dev);
        let fp = Floorplan::new(&dev).with_region(&region);
        assert_eq!(fp.cell(10, 8), 'P');
        assert_eq!(fp.cell(0, 48), '#');
        assert_eq!(fp.cell(45, 0), '.');
    }
}
