//! Device descriptors for the two parts used in the paper.
//!
//! Geometry is chosen so that the headline resource counts match the paper
//! exactly:
//!
//! * **XC2VP7** — 44 rows × 28 CLB columns = 1232 CLBs = **4928 slices**;
//!   4 BRAM columns × 11 blocks = **44 BRAMs**; one embedded PowerPC 405.
//! * **XC2VP30** — 80 rows × 46 CLB columns − 2 PowerPC holes (16 rows ×
//!   8 cols each) = 3424 CLBs = **13696 slices**; 8 BRAM columns × 17 blocks
//!   = **136 BRAMs**; two embedded PowerPC 405s (the paper uses only one).

use crate::coords::{ClbCoord, SLICES_PER_CLB};

/// The two Virtex-II Pro parts used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// XC2VP7-FG456, speed grade -6 — the 32-bit system's device.
    Xc2vp7,
    /// XC2VP30-FF896, speed grade -7 — the 64-bit system's device.
    Xc2vp30,
}

/// A rectangular hole in the CLB grid occupied by a hard PowerPC 405 block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PpcHole {
    /// First CLB column covered by the block.
    pub col: u16,
    /// First CLB row covered by the block.
    pub row: u16,
    /// Width in CLB columns.
    pub width: u16,
    /// Height in CLB rows.
    pub height: u16,
}

impl PpcHole {
    /// Does the hole cover the given coordinate?
    pub fn contains(&self, c: ClbCoord) -> bool {
        c.col >= self.col
            && c.col < self.col + self.width
            && c.row >= self.row
            && c.row < self.row + self.height
    }
}

/// Static description of one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    /// Which part this is.
    pub kind: DeviceKind,
    /// Part name as printed on the package.
    pub name: &'static str,
    /// Speed grade (−6 or −7); faster grade → shorter achievable clock periods.
    pub speed_grade: i8,
    /// Number of CLB rows.
    pub rows: u16,
    /// Number of CLB columns.
    pub clb_cols: u16,
    /// Number of BRAM columns (each full height).
    pub bram_cols: u16,
    /// BRAM blocks per BRAM column.
    pub brams_per_col: u16,
    /// Hard CPU blocks punched out of the CLB grid.
    pub ppc_holes: Vec<PpcHole>,
}

impl Device {
    /// Descriptor for the given part.
    pub fn new(kind: DeviceKind) -> Self {
        match kind {
            DeviceKind::Xc2vp7 => Device {
                kind,
                name: "XC2VP7-FG456",
                speed_grade: -6,
                rows: 44,
                clb_cols: 28,
                bram_cols: 4,
                brams_per_col: 11,
                // One PPC405 block; modelled as out-of-grid (it does not
                // reduce the 1232-CLB count on this part).
                ppc_holes: vec![],
            },
            DeviceKind::Xc2vp30 => Device {
                kind,
                name: "XC2VP30-FF896",
                speed_grade: -7,
                rows: 80,
                clb_cols: 46,
                bram_cols: 8,
                brams_per_col: 17,
                ppc_holes: vec![
                    PpcHole {
                        col: 10,
                        row: 8,
                        width: 8,
                        height: 16,
                    },
                    PpcHole {
                        col: 28,
                        row: 8,
                        width: 8,
                        height: 16,
                    },
                ],
            },
        }
    }

    /// Number of usable CLBs (grid minus CPU holes).
    pub fn clb_count(&self) -> u32 {
        let grid = u32::from(self.rows) * u32::from(self.clb_cols);
        let holes: u32 = self
            .ppc_holes
            .iter()
            .map(|h| u32::from(h.width) * u32::from(h.height))
            .sum();
        grid - holes
    }

    /// Number of usable slices.
    pub fn slice_count(&self) -> u32 {
        self.clb_count() * SLICES_PER_CLB as u32
    }

    /// Total number of 18 kbit BRAM blocks.
    pub fn bram_count(&self) -> u32 {
        u32::from(self.bram_cols) * u32::from(self.brams_per_col)
    }

    /// Is `c` a valid, usable CLB coordinate (inside the grid, outside any
    /// CPU hole)?
    pub fn is_usable_clb(&self, c: ClbCoord) -> bool {
        c.col < self.clb_cols && c.row < self.rows && !self.ppc_holes.iter().any(|h| h.contains(c))
    }

    /// Number of embedded PowerPC blocks.
    pub fn cpu_count(&self) -> u32 {
        match self.kind {
            DeviceKind::Xc2vp7 => 1,
            DeviceKind::Xc2vp30 => 2,
        }
    }

    /// Iterates over every usable CLB coordinate (column-major).
    pub fn usable_clbs(&self) -> impl Iterator<Item = ClbCoord> + '_ {
        (0..self.clb_cols).flat_map(move |col| {
            (0..self.rows)
                .map(move |row| ClbCoord::new(col, row))
                .filter(move |&c| self.is_usable_clb(c))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xc2vp7_matches_paper_counts() {
        let d = Device::new(DeviceKind::Xc2vp7);
        assert_eq!(d.slice_count(), 4928, "paper: XC2VP7 has 4928 slices");
        assert_eq!(d.bram_count(), 44, "paper: XC2VP7 has 44 RAM blocks");
        assert_eq!(d.cpu_count(), 1);
        assert_eq!(d.speed_grade, -6);
    }

    #[test]
    fn xc2vp30_matches_paper_counts() {
        let d = Device::new(DeviceKind::Xc2vp30);
        assert_eq!(d.slice_count(), 13696, "paper: XC2VP30 has 13696 slices");
        assert_eq!(d.bram_count(), 136, "paper: XC2VP30 has 136 RAM blocks");
        assert_eq!(d.cpu_count(), 2, "paper: device includes two CPU cores");
        assert_eq!(d.speed_grade, -7);
    }

    #[test]
    fn slice_ratio_matches_paper() {
        // Paper: the XC2VP30 has "about 2.7 times more slices".
        let small = Device::new(DeviceKind::Xc2vp7).slice_count() as f64;
        let big = Device::new(DeviceKind::Xc2vp30).slice_count() as f64;
        let ratio = big / small;
        assert!((2.6..2.9).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ppc_holes_are_not_usable() {
        let d = Device::new(DeviceKind::Xc2vp30);
        assert!(!d.is_usable_clb(ClbCoord::new(10, 8)));
        assert!(!d.is_usable_clb(ClbCoord::new(17, 23)));
        assert!(d.is_usable_clb(ClbCoord::new(9, 8)));
        assert!(d.is_usable_clb(ClbCoord::new(18, 8)));
    }

    #[test]
    fn out_of_grid_is_not_usable() {
        let d = Device::new(DeviceKind::Xc2vp7);
        assert!(!d.is_usable_clb(ClbCoord::new(28, 0)));
        assert!(!d.is_usable_clb(ClbCoord::new(0, 44)));
        assert!(d.is_usable_clb(ClbCoord::new(27, 43)));
    }

    #[test]
    fn usable_clb_iterator_agrees_with_count() {
        for kind in [DeviceKind::Xc2vp7, DeviceKind::Xc2vp30] {
            let d = Device::new(kind);
            assert_eq!(d.usable_clbs().count() as u32, d.clb_count());
        }
    }
}
