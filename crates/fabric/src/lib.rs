//! # vp2-fabric — Virtex-II Pro resource and configuration-memory model
//!
//! This crate models the *architectural* properties of the Virtex-II Pro
//! family that the paper's implementation issues revolve around:
//!
//! * a grid of CLBs (4 slices × 2 LUT4 + 2 FF each) plus BRAM columns and
//!   embedded PowerPC blocks, with the exact resource counts of the two
//!   devices used in the paper (XC2VP7: 4928 slices / 44 BRAMs; XC2VP30:
//!   13696 slices / 136 BRAMs);
//! * **column-oriented configuration frames** — a frame controls a full-height
//!   column of resources, which is why a partial-height dynamic region forces
//!   partial configurations to preserve the bits of the rows above and below;
//! * a deterministic encoding from placed logic (LUT truth tables, FF config,
//!   routing summary) to frame bits, so that differential bitstreams, frame
//!   diffing, readback and the BitLinker completeness guarantee are all real
//!   bit-level operations rather than bookkeeping fictions.
//!
//! Electrical behaviour (delays, signal integrity) is out of scope; timing is
//! handled at the system level by `rtr-core`'s calibrated transaction model.

pub mod config;
pub mod coords;
pub mod device;
pub mod floorplan;
pub mod region;

pub use config::{ConfigMemory, Frame, FrameAddress, FrameBlock};
pub use coords::{ClbCoord, FfIndex, LutIndex, SliceCoord, SliceIndex};
pub use device::{Device, DeviceKind};
pub use region::DynamicRegion;
