//! A tiny deterministic RNG (SplitMix64).
//!
//! Used inside the simulator itself (e.g. DDR refresh jitter injection in
//! stress tests) where pulling in the full `rand` stack would be overkill and
//! where bit-exact reproducibility across platforms matters more than
//! statistical sophistication. Workload *generation* in the bench harness
//! uses `rand` instead.

/// SplitMix64 generator (Steele, Lea & Flood; public domain reference
/// algorithm). Passes BigCrush when used as a 64-bit stream; more than
/// adequate for simulation jitter and test-vector generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams for all practical purposes.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits (upper half of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift reduction.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // 128-bit multiply-high; slight modulo bias (< 2^-64) is irrelevant
        // for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Random boolean with probability `num/den`.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs for seed 0 from the public-domain reference code.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn determinism_across_clones() {
        let mut a = SplitMix64::new(42);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut r = SplitMix64::new(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Extremely unlikely to remain all-zero.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(r.chance(1, 1));
            assert!(!r.chance(0, 5));
        }
    }
}
