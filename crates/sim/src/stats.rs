//! Online statistics for measurement series.
//!
//! The experiment harness reports *average time per transfer* exactly as the
//! paper's tables do, so the core abstraction is a Welford accumulator that
//! never stores the series. A small fixed-bucket histogram supports the
//! latency-distribution ablations.

use crate::time::SimTime;

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a [`SimTime`] observation in nanoseconds.
    pub fn push_time(&mut self, t: SimTime) {
        self.push(t.as_ns_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width bucket histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    rejected: u64,
}

impl Histogram {
    /// Creates a histogram with `n` equal buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0 && hi > lo, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            rejected: 0,
        }
    }

    /// Records one observation. Non-finite values (NaN, ±∞) carry no
    /// ordering information, so they land in a separate rejected counter
    /// instead of silently polluting bucket 0 (NaN fails both range
    /// comparisons and `as usize` saturates it to index 0).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            self.rejected += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let last = self.buckets.len() - 1;
            let idx = (frac * self.buckets.len() as f64) as usize;
            self.buckets[idx.min(last)] += 1;
        }
    }

    /// Bucket counts (without under/overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Non-finite observations rejected outright.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total recorded observations, including out-of-range and rejected
    /// ones.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow + self.rejected
    }
}

/// Ratio of two times expressed the way the paper reports speedups
/// (software time / hardware time). Returns `None` when the denominator is
/// zero.
pub fn speedup(sw: SimTime, hw: SimTime) -> Option<f64> {
    if hw.is_zero() {
        None
    } else {
        Some(sw.as_ps() as f64 / hw.as_ps() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic series is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 7 % 13) as f64).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        h.record(5.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_rejects_non_finite_instead_of_bucketing_them() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        // The regression this guards: NaN failed both range checks and the
        // `as usize` cast saturated it into bucket 0.
        assert_eq!(h.buckets()[0], 0, "no phantom observation in bucket 0");
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.rejected(), 3);
        assert_eq!(h.total(), 3);
        // Finite values keep working exactly as before.
        h.record(0.5);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn speedup_ratio() {
        assert_eq!(
            speedup(SimTime::from_ns(260), SimTime::from_ns(10)),
            Some(26.0)
        );
        assert_eq!(speedup(SimTime::from_ns(1), SimTime::ZERO), None);
    }

    #[test]
    fn push_time_uses_nanoseconds() {
        let mut s = OnlineStats::new();
        s.push_time(SimTime::from_us(1));
        assert!((s.mean() - 1000.0).abs() < 1e-12);
    }
}
