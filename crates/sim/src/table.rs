//! Plain-text table rendering.
//!
//! The bench harness reprints the paper's tables on stdout; this module owns
//! the (deliberately boring) column layout so every table in EXPERIMENTS.md
//! renders identically.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Flush-left (labels).
    Left,
    /// Flush-right (numbers).
    Right,
}

/// A simple monospace table builder.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers; every column defaults
    /// to right alignment except the first.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        let header: Vec<String> = header.iter().map(|s| s.to_string()).collect();
        let aligns = (0..header.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        TextTable {
            title: title.into(),
            header,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides column alignments.
    ///
    /// # Panics
    /// Panics if the length differs from the header length.
    pub fn with_aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.header.len(), "alignment arity mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends one row from `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders to a string (trailing newline included).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let total: usize = widths.iter().sum::<usize>() + 3 * ncols.saturating_sub(1);
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", "=".repeat(self.title.chars().count().max(total)));
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("   ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        // No trailing pad on last column.
                        if i + 1 < cells.len() {
                            out.push_str(&" ".repeat(pad));
                        }
                    }
                    Align::Right => {
                        out.push_str(&" ".repeat(pad));
                        out.push_str(cell);
                    }
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Formats a floating value with a sensible number of significant digits for
/// table cells (times in µs, speedups, ...).
pub fn fmt_sig(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.row_str(&["alpha", "1"]);
        t.row_str(&["b", "12345"]);
        let s = t.render();
        assert!(s.contains("Demo"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule lines + 2 data rows
        assert_eq!(lines.len(), 6);
        // Numbers right-aligned: "1" ends at the same column as "12345".
        let c1 = lines[4].rfind('1').unwrap();
        let c2 = lines[5].rfind('5').unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row_str(&["only-one"]);
    }

    #[test]
    fn fmt_sig_ranges() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(0.1234), "0.123");
        assert_eq!(fmt_sig(1.234), "1.23");
        assert_eq!(fmt_sig(12.34), "12.3");
        assert_eq!(fmt_sig(123.4), "123");
    }

    #[test]
    fn row_count_tracks() {
        let mut t = TextTable::new("x", &["a"]);
        assert_eq!(t.row_count(), 0);
        t.row_str(&["r"]);
        assert_eq!(t.row_count(), 1);
    }
}
