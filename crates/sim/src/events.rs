//! Deterministic event queue.
//!
//! A min-heap of `(time, sequence, event)` triples. The monotone sequence
//! number breaks ties between events scheduled for the same instant in
//! insertion order, which makes the whole simulation reproducible run-to-run
//! regardless of heap internals — a property the integration tests rely on.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a particular simulated instant.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-break sequence number (insertion order).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    /// Reversed ordering so that `BinaryHeap` (a max-heap) pops the earliest
    /// event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use vp2_sim::{EventQueue, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimTime::from_ns(30), "late");
/// q.schedule(SimTime::from_ns(10), "early");
/// q.schedule(SimTime::from_ns(10), "early-second");
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time: the fire-time of the last popped event, or
    /// zero if nothing has been popped yet.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the past (before the last popped event); a
    /// causality violation is always a model bug, never recoverable.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} but now is {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing `now` to its fire time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now);
        self.now = ev.at;
        Some(ev)
    }

    /// Fire time of the next pending event, if any, without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Advances `now` to `t` without firing anything (used when another part
    /// of the machine — typically the CPU — has made progress on its own).
    ///
    /// # Panics
    /// Panics if `t` would move time backwards or jump over a pending event:
    /// the caller must drain due events first.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot move time backwards");
        if let Some(next) = self.peek_time() {
            assert!(
                t <= next,
                "advance_to({t}) would skip event pending at {next}"
            );
        }
        self.now = t;
    }

    /// Removes every pending event, leaving `now` untouched.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(5), 5u32);
        q.schedule(SimTime::from_ns(1), 1u32);
        q.schedule(SimTime::from_ns(3), 3u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime::from_ns(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(10));
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), "a");
        q.pop();
        q.schedule_in(SimTime::from_ns(5), "b");
        let ev = q.pop().unwrap();
        assert_eq!(ev.at, SimTime::from_ns(15));
    }

    #[test]
    fn advance_to_respects_pending() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.advance_to(SimTime::from_ns(10));
        assert_eq!(q.now(), SimTime::from_ns(10));
    }

    #[test]
    #[should_panic(expected = "would skip event")]
    fn advance_past_pending_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.advance_to(SimTime::from_ns(11));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(1), ());
        q.schedule(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }
}
