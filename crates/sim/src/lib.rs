//! # vp2-sim — discrete-event simulation kernel
//!
//! Foundation crate for the platform-FPGA reproduction: simulated time with
//! picosecond resolution, clock domains (the paper's systems mix 200/300 MHz
//! CPU clocks with 50/100 MHz bus clocks), a deterministic event queue, online
//! statistics, a tiny deterministic RNG, and plain-text table rendering used by
//! the experiment harness.
//!
//! The kernel is deliberately small: the machine model in `rtr-core` owns all
//! components concretely and uses [`EventQueue`] only for genuinely concurrent
//! activities (DMA beats, FIFO drains, interrupt delivery). Everything here is
//! `Send`, allocation-light and fully deterministic, in line with the
//! data-race-freedom and predictability goals of HPC Rust.

pub mod clock;
pub mod events;
pub mod json;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;

pub use clock::ClockDomain;
pub use events::{EventQueue, Scheduled};
pub use json::{Json, ParseError};
pub use rng::SplitMix64;
pub use stats::{Histogram, OnlineStats};
pub use time::SimTime;
