//! Clock domains.
//!
//! The paper's two systems each run three clock domains:
//!
//! | system | CPU | PLB | OPB |
//! |--------|-----|-----|-----|
//! | 32-bit (XC2VP7)  | 200 MHz | 50 MHz  | 50 MHz  |
//! | 64-bit (XC2VP30) | 300 MHz | 100 MHz | 100 MHz |
//!
//! A [`ClockDomain`] converts between cycle counts and [`SimTime`] and aligns
//! asynchronous requests to the next clock edge — the mechanism by which the
//! model charges the synchroniser penalty of the PLB→OPB bridge crossing.

use crate::time::SimTime;
use std::fmt;

/// A fixed-frequency clock domain.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockDomain {
    /// Human-readable name, e.g. `"cpu"`, `"plb"`, `"opb"`.
    name: &'static str,
    /// Clock period in picoseconds.
    period_ps: u64,
}

impl ClockDomain {
    /// Creates a clock domain from a frequency in MHz.
    ///
    /// The period is rounded down to whole picoseconds (300 MHz → 3333 ps,
    /// i.e. 300.03 MHz); the resulting systematic error is < 0.01 % and is
    /// irrelevant next to the calibration uncertainty documented in
    /// EXPERIMENTS.md.
    ///
    /// # Panics
    /// Panics if `mhz` is zero.
    pub const fn from_mhz(name: &'static str, mhz: u64) -> Self {
        assert!(mhz > 0, "clock frequency must be non-zero");
        ClockDomain {
            name,
            period_ps: 1_000_000 / mhz,
        }
    }

    /// Creates a clock domain from an explicit period in picoseconds.
    ///
    /// # Panics
    /// Panics if `period_ps` is zero.
    pub const fn from_period_ps(name: &'static str, period_ps: u64) -> Self {
        assert!(period_ps > 0, "clock period must be non-zero");
        ClockDomain { name, period_ps }
    }

    /// Domain name.
    #[inline]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Clock period.
    #[inline]
    pub const fn period(&self) -> SimTime {
        SimTime(self.period_ps)
    }

    /// Frequency in MHz (rounded).
    #[inline]
    pub const fn mhz(&self) -> u64 {
        1_000_000 / self.period_ps
    }

    /// Duration of `n` cycles in this domain.
    #[inline]
    pub const fn cycles(&self, n: u64) -> SimTime {
        SimTime(self.period_ps * n)
    }

    /// Number of *whole* cycles elapsed at instant `t` (cycles since t=0).
    #[inline]
    pub fn cycles_at(&self, t: SimTime) -> u64 {
        t.as_ps() / self.period_ps
    }

    /// The first clock edge at or after `t`.
    ///
    /// All domains are modelled as phase-aligned at t=0 (the boards derive
    /// every clock from one oscillator through DCMs, so fixed phase is the
    /// realistic choice and keeps the simulation deterministic).
    #[inline]
    pub fn next_edge(&self, t: SimTime) -> SimTime {
        let p = self.period_ps;
        let ps = t.as_ps();
        let rem = ps % p;
        if rem == 0 {
            t
        } else {
            SimTime(ps - rem + p)
        }
    }

    /// The first clock edge strictly after `t`.
    #[inline]
    pub fn edge_after(&self, t: SimTime) -> SimTime {
        SimTime(self.next_edge(t).as_ps().max(t.as_ps() + 1)).pipe_align(self)
    }

    /// Time to wait from `t` until the next edge (zero if `t` is on an edge).
    #[inline]
    pub fn sync_delay(&self, t: SimTime) -> SimTime {
        self.next_edge(t) - t
    }

    /// Converts a duration to a (rounded-up) number of cycles in this domain.
    #[inline]
    pub fn cycles_ceil(&self, d: SimTime) -> u64 {
        d.as_ps().div_ceil(self.period_ps)
    }
}

/// Tiny private helper so `edge_after` stays branch-free and aligned.
trait PipeAlign {
    fn pipe_align(self, clk: &ClockDomain) -> SimTime;
}

impl PipeAlign for SimTime {
    #[inline]
    fn pipe_align(self, clk: &ClockDomain) -> SimTime {
        clk.next_edge(self)
    }
}

impl fmt::Debug for ClockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}MHz", self.name, self.mhz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_frequencies() {
        let cpu32 = ClockDomain::from_mhz("cpu", 200);
        let cpu64 = ClockDomain::from_mhz("cpu", 300);
        let bus32 = ClockDomain::from_mhz("opb", 50);
        let bus64 = ClockDomain::from_mhz("plb", 100);
        assert_eq!(cpu32.period().as_ps(), 5_000);
        assert_eq!(cpu64.period().as_ps(), 3_333);
        assert_eq!(bus32.period().as_ps(), 20_000);
        assert_eq!(bus64.period().as_ps(), 10_000);
    }

    #[test]
    fn cycle_durations() {
        let clk = ClockDomain::from_mhz("opb", 50);
        assert_eq!(clk.cycles(3), SimTime::from_ns(60));
        assert_eq!(clk.cycles(0), SimTime::ZERO);
    }

    #[test]
    fn next_edge_alignment() {
        let clk = ClockDomain::from_mhz("opb", 50); // 20 ns period
        assert_eq!(clk.next_edge(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(clk.next_edge(SimTime::from_ns(20)), SimTime::from_ns(20));
        assert_eq!(clk.next_edge(SimTime::from_ns(21)), SimTime::from_ns(40));
        assert_eq!(clk.next_edge(SimTime::from_ps(1)), SimTime::from_ns(20));
    }

    #[test]
    fn edge_after_is_strict() {
        let clk = ClockDomain::from_mhz("opb", 50);
        assert_eq!(clk.edge_after(SimTime::ZERO), SimTime::from_ns(20));
        assert_eq!(clk.edge_after(SimTime::from_ns(20)), SimTime::from_ns(40));
        assert_eq!(clk.edge_after(SimTime::from_ns(19)), SimTime::from_ns(20));
    }

    #[test]
    fn sync_delay_bounds() {
        let clk = ClockDomain::from_mhz("plb", 100); // 10 ns
        assert_eq!(clk.sync_delay(SimTime::from_ns(10)), SimTime::ZERO);
        assert_eq!(clk.sync_delay(SimTime::from_ns(13)), SimTime::from_ns(7));
        for ps in 0..50_000 {
            let d = clk.sync_delay(SimTime::from_ps(ps));
            assert!(d < clk.period());
        }
    }

    #[test]
    fn cycles_ceil_rounds_up() {
        let clk = ClockDomain::from_mhz("plb", 100);
        assert_eq!(clk.cycles_ceil(SimTime::from_ns(10)), 1);
        assert_eq!(clk.cycles_ceil(SimTime::from_ns(11)), 2);
        assert_eq!(clk.cycles_ceil(SimTime::ZERO), 0);
    }

    #[test]
    fn cycles_at_counts_whole_cycles() {
        let clk = ClockDomain::from_mhz("cpu", 200);
        assert_eq!(clk.cycles_at(SimTime::from_ns(4)), 0);
        assert_eq!(clk.cycles_at(SimTime::from_ns(5)), 1);
        assert_eq!(clk.cycles_at(SimTime::from_ns(52)), 10);
    }
}
