//! Simulated time.
//!
//! Time is measured in integer **picoseconds** so that every clock period used
//! by the paper's systems (200 MHz → 5000 ps, 300 MHz → 3333⅓ ps approximated
//! as 3333 ps, 100 MHz → 10 000 ps, 50 MHz → 20 000 ps) is representable
//! without floating-point drift. A `u64` picosecond counter overflows after
//! ~213 days of simulated time — five orders of magnitude beyond any
//! experiment in the paper.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant (or duration) of simulated time, in picoseconds.
///
/// `SimTime` is used both as a point on the simulation timeline and as a
/// span between two points; the arithmetic impls make the dual use ergonomic
/// while keeping everything in integer picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Constructs a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Constructs a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Constructs a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in nanoseconds (f64, for reporting only).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time in microseconds (f64, for reporting only).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time in milliseconds (f64, for reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time in seconds (f64, for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: never wraps below zero.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }

    /// Is this the zero instant / an empty duration?
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    /// Human-scale rendering with automatic unit selection.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0ps")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.2}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.2}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.2}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_us(3).as_us_f64(), 3.0);
        assert_eq!(SimTime::from_ns(1500).as_us_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!(a + b, SimTime::from_ns(14));
        assert_eq!(a - b, SimTime::from_ns(6));
        assert_eq!(a * 3, SimTime::from_ns(30));
        assert_eq!(a / 2, SimTime::from_ns(5));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_ns(14));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn ordering_and_extrema() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert!(b < a);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }

    #[test]
    fn display_selects_units() {
        assert_eq!(SimTime::ZERO.to_string(), "0ps");
        assert_eq!(SimTime::from_ps(500).to_string(), "500ps");
        assert_eq!(SimTime::from_ns(2).to_string(), "2.00ns");
        assert_eq!(SimTime::from_us(7).to_string(), "7.00us");
        assert_eq!(SimTime::from_ms(3).to_string(), "3.00ms");
        assert_eq!(SimTime::from_ms(2500).to_string(), "2.500s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime(u64::MAX).checked_add(SimTime(1)).is_none());
        assert_eq!(SimTime(1).checked_add(SimTime(2)), Some(SimTime(3)));
    }
}
