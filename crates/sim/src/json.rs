//! Minimal JSON writer.
//!
//! The harness serialises results (tables, service metrics) for
//! EXPERIMENTS.md and downstream tooling. A dependency-free value builder
//! keeps the workspace buildable offline; the emitter covers exactly the
//! subset the harness produces: objects, arrays, strings, numbers, bools
//! and null.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Finite number (non-finite values render as `null`).
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Ordered array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (panics on non-objects — builder misuse).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(fields) = &mut self else {
            panic!("field() on a non-object");
        };
        fields.push((key.to_string(), value.into()));
        self
    }

    /// Renders compactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(f64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_escaping() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::from("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj()
            .field("name", "svc")
            .field("items", vec![1u64, 2, 3])
            .field("none", Json::Null);
        assert_eq!(v.render(), r#"{"name":"svc","items":[1,2,3],"none":null}"#);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"name\": \"svc\""), "{pretty}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::obj().render(), "{}");
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]\n");
    }
}
