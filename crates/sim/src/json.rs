//! Minimal JSON writer and parser.
//!
//! The harness serialises results (tables, service metrics, traces) for
//! EXPERIMENTS.md and downstream tooling. A dependency-free value builder
//! keeps the workspace buildable offline; the emitter covers exactly the
//! subset the harness produces: objects, arrays, strings, numbers, bools
//! and null. [`Json::parse`] is the inverse — a strict recursive-descent
//! reader used by round-trip tests and the trace lint tool, accepting
//! standard JSON (no comments, no trailing commas).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Finite number (non-finite values render as `null`).
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Ordered array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (panics on non-objects — builder misuse).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(fields) = &mut self else {
            panic!("field() on a non-object");
        };
        fields.push((key.to_string(), value.into()));
        self
    }

    /// Parses a JSON document.
    ///
    /// Strict: exactly one value, standard escapes, no trailing commas
    /// or garbage after the value. Errors carry a byte offset. Anything
    /// [`Json::render`] produces parses back to an equal value (object
    /// key order is preserved, so round-trips are exact).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the value"));
        }
        Ok(value)
    }

    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes up to the next quote or escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so the run is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected a digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected a fraction digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected an exponent digit"));
            }
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        lexeme
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(f64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_escaping() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::from("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj()
            .field("name", "svc")
            .field("items", vec![1u64, 2, 3])
            .field("none", Json::Null);
        assert_eq!(v.render(), r#"{"name":"svc","items":[1,2,3],"none":null}"#);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"name\": \"svc\""), "{pretty}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::obj().render(), "{}");
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]\n");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null"), Ok(Json::Null));
        assert_eq!(Json::parse(" true "), Ok(Json::Bool(true)));
        assert_eq!(Json::parse("false"), Ok(Json::Bool(false)));
        assert_eq!(Json::parse("42"), Ok(Json::Num(42.0)));
        assert_eq!(Json::parse("-0.5"), Ok(Json::Num(-0.5)));
        assert_eq!(Json::parse("1e3"), Ok(Json::Num(1000.0)));
        assert_eq!(Json::parse("6.25E-2"), Ok(Json::Num(0.0625)));
        assert_eq!(Json::parse("\"hi\""), Ok(Json::from("hi")));
    }

    #[test]
    fn parses_escapes_including_surrogate_pairs() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\ndAé""#),
            Ok(Json::from("a\"b\\c\ndAé"))
        );
        assert_eq!(Json::parse(r#""😀""#), Ok(Json::from("😀")));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\q""#).is_err(), "bad escape");
    }

    #[test]
    fn parses_nested_structures_preserving_key_order() {
        let v = Json::parse(r#"{"b":[1,{"x":null}],"a":true}"#).unwrap();
        assert_eq!(
            v,
            Json::obj()
                .field(
                    "b",
                    Json::Arr(vec![Json::Num(1.0), Json::obj().field("x", Json::Null)])
                )
                .field("a", true)
        );
        assert_eq!(v.get("a"), Some(&Json::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "  ",
            "{",
            "[1,",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "1 2",
            "\"unterminated",
            "{'a':1}",
            "[1] trailing",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad:?}");
        }
        // Errors carry an offset and render readably.
        let e = Json::parse("[1,]").unwrap_err();
        assert_eq!(e.offset, 3);
        assert!(e.to_string().contains("byte 3"));
    }

    #[test]
    fn round_trips_everything_the_writer_produces() {
        let v = Json::obj()
            .field("name", "svc \"q\"\n")
            .field("items", vec![1u64, 2, 3])
            .field("frac", 0.125)
            .field("big", 1e300)
            .field("none", Json::Null)
            .field("flag", false)
            .field("empty_arr", Json::Arr(vec![]))
            .field("empty_obj", Json::obj());
        assert_eq!(Json::parse(&v.render()), Ok(v.clone()));
        assert_eq!(Json::parse(&v.render_pretty()), Ok(v));
    }
}
