//! # vp2-bitstream — configuration bitstreams and the BitLinker
//!
//! Implements the configuration-data plane of the reproduction:
//!
//! * a Xilinx-style packetised bitstream format (sync word, type-1/type-2
//!   packets, FAR/FDRI/CMD/IDCODE registers, CRC check) in [`packet`];
//! * generation of **full**, **partial** and **differential** configurations
//!   from `vp2-fabric` configuration memories in [`builder`];
//! * the **BitLinker** configuration-assembly tool in [`bitlinker`] — the
//!   paper's answer to the two core reconfiguration hazards:
//!   1. partial configurations are *differential* (they assume an initial
//!      state), but the dynamic area is reused in an order unknown at
//!      generation time, so BitLinker emits *complete* configurations;
//!   2. frames span the full device height, so BitLinker guarantees the rows
//!      above and below the dynamic region are carried over unchanged;
//!
//! plus component **relocation** and **assembly** with bus-macro
//! footprint checking, enabling component reuse without rerunning the
//! high-level design flow.

pub mod bitlinker;
pub mod builder;
pub mod compress;
pub mod crc;
pub mod fault;
pub mod packet;

pub use bitlinker::{AssembleError, BitLinker, Component};
pub use builder::{
    apply_bitstream, apply_bitstream_faulty, differential_bitstream, full_bitstream,
    partial_bitstream, ApplyError, ApplyReport,
};
pub use compress::{compress_words, decompress_words, is_compressed, COMPRESSED_MAGIC};
pub use fault::{apply_upset, BurstConfig, BurstPlan, FaultPlan, Upset};
pub use packet::{Bitstream, ConfigRegister, Packet, SYNC_WORD};

/// IDCODE of the XC2VP7 (matches the real part's JTAG IDCODE).
pub const IDCODE_XC2VP7: u32 = 0x0124_A093;
/// IDCODE of the XC2VP30.
pub const IDCODE_XC2VP30: u32 = 0x0127_E093;

/// IDCODE for a device kind.
pub fn idcode_for(kind: vp2_fabric::DeviceKind) -> u32 {
    match kind {
        vp2_fabric::DeviceKind::Xc2vp7 => IDCODE_XC2VP7,
        vp2_fabric::DeviceKind::Xc2vp30 => IDCODE_XC2VP30,
    }
}
