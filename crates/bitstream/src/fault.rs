//! Deterministic configuration-plane fault injection.
//!
//! Differential and partial bitstreams are only safe when the frames that
//! actually land in configuration memory match what BitLinker assembled.
//! On real Virtex-II Pro hardware that is threatened by transfer glitches
//! and configuration-cell upsets *after* the stream's CRC has been
//! checked — exactly the window this module models: a [`FaultPlan`]
//! corrupts frame payloads at the FDRI → configuration-cell boundary, so
//! the stream still parses and its CRC still verifies, but the fabric
//! ends up holding the wrong bits. Only a readback-verify pass (see
//! `ConfigMemory::mismatched_frames`) can catch it.
//!
//! Everything is seeded SplitMix64: the same seed, rate and frame-write
//! sequence produce bit-identical corruption, which keeps every
//! fault-tolerance experiment reproducible. A rate of zero draws nothing
//! from the generator and leaves the data path untouched.

use vp2_sim::SplitMix64;

/// Fixed-point denominator for the per-frame corruption probability.
const RATE_DENOM: u64 = 1_000_000_000;

/// A seeded plan for corrupting configuration frames in flight.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: SplitMix64,
    /// Corruption probability per frame write, in units of 1e-9.
    rate_ppb: u64,
    /// Frames corrupted so far.
    pub frames_corrupted: u64,
    /// Individual bits flipped so far.
    pub bits_flipped: u64,
}

impl FaultPlan {
    /// Plan corrupting each written frame with probability `rate`
    /// (clamped to `[0, 1]`; resolution 1e-9).
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate_ppb = (rate.clamp(0.0, 1.0) * RATE_DENOM as f64).round() as u64;
        FaultPlan {
            rng: SplitMix64::new(seed),
            rate_ppb,
            frames_corrupted: 0,
            bits_flipped: 0,
        }
    }

    /// Does this plan ever corrupt anything?
    pub fn is_active(&self) -> bool {
        self.rate_ppb > 0
    }

    /// The configured per-frame corruption probability.
    pub fn rate(&self) -> f64 {
        self.rate_ppb as f64 / RATE_DENOM as f64
    }

    /// Possibly corrupts one frame payload about to be written to
    /// configuration memory. Returns true when a bit was flipped.
    ///
    /// An inactive plan (rate zero) returns immediately without touching
    /// the generator, so a zero-rate run is bit-identical to no plan.
    pub fn corrupt_frame(&mut self, words: &mut [u32]) -> bool {
        if self.rate_ppb == 0 || words.is_empty() {
            return false;
        }
        if !self.rng.chance(self.rate_ppb, RATE_DENOM) {
            return false;
        }
        let word = self.rng.below(words.len() as u64) as usize;
        let bit = self.rng.below(32) as u32;
        words[word] ^= 1u32 << bit;
        self.frames_corrupted += 1;
        self.bits_flipped += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_corrupts_and_never_draws() {
        let mut plan = FaultPlan::new(7, 0.0);
        assert!(!plan.is_active());
        let mut words = vec![0xAAAA_5555u32; 16];
        for _ in 0..1000 {
            assert!(!plan.corrupt_frame(&mut words));
        }
        assert!(words.iter().all(|&w| w == 0xAAAA_5555));
        assert_eq!(plan.frames_corrupted, 0);
        // The generator was never advanced: it still matches a fresh one.
        let mut fresh = SplitMix64::new(7);
        assert_eq!(plan.rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn certain_rate_flips_exactly_one_bit_per_frame() {
        let mut plan = FaultPlan::new(3, 1.0);
        assert!(plan.is_active());
        for _ in 0..50 {
            let mut words = vec![0u32; 88];
            assert!(plan.corrupt_frame(&mut words));
            let flipped: u32 = words.iter().map(|w| w.count_ones()).sum();
            assert_eq!(flipped, 1, "exactly one bit per corrupted frame");
        }
        assert_eq!(plan.frames_corrupted, 50);
        assert_eq!(plan.bits_flipped, 50);
    }

    #[test]
    fn same_seed_same_corruption() {
        let run = |seed: u64| -> Vec<Vec<u32>> {
            let mut plan = FaultPlan::new(seed, 0.5);
            (0..32)
                .map(|i| {
                    let mut words = vec![i as u32; 8];
                    plan.corrupt_frame(&mut words);
                    words
                })
                .collect()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "distinct seeds corrupt differently");
    }

    #[test]
    fn rate_is_roughly_respected() {
        let mut plan = FaultPlan::new(99, 0.1);
        let mut hits = 0u32;
        for _ in 0..10_000 {
            let mut words = vec![0u32; 4];
            if plan.corrupt_frame(&mut words) {
                hits += 1;
            }
        }
        assert!((800..1200).contains(&hits), "{hits} hits for p=0.1");
        assert!((plan.rate() - 0.1).abs() < 1e-9);
    }
}
