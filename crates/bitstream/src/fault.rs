//! Deterministic configuration-plane fault injection.
//!
//! Differential and partial bitstreams are only safe when the frames that
//! actually land in configuration memory match what BitLinker assembled.
//! On real Virtex-II Pro hardware that is threatened by transfer glitches
//! and configuration-cell upsets *after* the stream's CRC has been
//! checked — exactly the window this module models: a [`FaultPlan`]
//! corrupts frame payloads at the FDRI → configuration-cell boundary, so
//! the stream still parses and its CRC still verifies, but the fabric
//! ends up holding the wrong bits. Only a readback-verify pass (see
//! `ConfigMemory::mismatched_frames`) can catch it.
//!
//! Transfer glitches are independent per frame, but real single-event
//! upsets are not: radiation bursts cluster in time (a Markov on/off
//! process) and in space (a burst strikes a contiguous span of frame
//! addresses, often flipping several bits per frame). A [`BurstPlan`]
//! models that ambient process on the simulated wall clock, independent
//! of ICAP traffic — which is what makes idle regions accumulate latent
//! upsets between loads and makes background scrubbing worth its ICAP
//! time. The two plans compose: a transfer plan corrupts words in
//! flight, a burst plan corrupts cells at rest.
//!
//! Everything is seeded SplitMix64: the same seed, rate and frame-write
//! sequence produce bit-identical corruption, which keeps every
//! fault-tolerance experiment reproducible. A rate of zero draws nothing
//! from the generator and leaves the data path untouched.

use vp2_sim::{SimTime, SplitMix64};

/// Fixed-point denominator for the per-frame corruption probability.
const RATE_DENOM: u64 = 1_000_000_000;

/// A seeded plan for corrupting configuration frames in flight.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: SplitMix64,
    /// Corruption probability per frame write, in units of 1e-9.
    rate_ppb: u64,
    /// Frames corrupted so far.
    pub frames_corrupted: u64,
    /// Individual bits flipped so far.
    pub bits_flipped: u64,
}

/// Flips `n` uniformly drawn bits in `words` (two draws per flip: word
/// index, then bit index) and returns how many bits were actually
/// flipped — every XOR with a single-bit mask flips exactly one bit, so
/// the count is exact even when a later draw re-flips an earlier bit.
fn flip_bits(rng: &mut SplitMix64, words: &mut [u32], n: u32) -> u32 {
    if words.is_empty() {
        return 0;
    }
    for _ in 0..n {
        let word = rng.below(words.len() as u64) as usize;
        let bit = rng.below(32) as u32;
        words[word] ^= 1u32 << bit;
    }
    n
}

impl FaultPlan {
    /// Plan corrupting each written frame with probability `rate`
    /// (clamped to `[0, 1]`; resolution 1e-9).
    ///
    /// # Panics
    /// Panics on a non-finite rate: NaN used to clamp silently to 0,
    /// turning a configuration bug into a fault plane that never fires.
    pub fn new(seed: u64, rate: f64) -> Self {
        assert!(
            rate.is_finite(),
            "FaultPlan rate must be finite, got {rate}"
        );
        let rate_ppb = (rate.clamp(0.0, 1.0) * RATE_DENOM as f64).round() as u64;
        FaultPlan {
            rng: SplitMix64::new(seed),
            rate_ppb,
            frames_corrupted: 0,
            bits_flipped: 0,
        }
    }

    /// Does this plan ever corrupt anything?
    pub fn is_active(&self) -> bool {
        self.rate_ppb > 0
    }

    /// The configured per-frame corruption probability.
    pub fn rate(&self) -> f64 {
        self.rate_ppb as f64 / RATE_DENOM as f64
    }

    /// Possibly corrupts one frame payload about to be written to
    /// configuration memory. Returns true when a bit was flipped.
    ///
    /// An inactive plan (rate zero) returns immediately without touching
    /// the generator, so a zero-rate run is bit-identical to no plan.
    pub fn corrupt_frame(&mut self, words: &mut [u32]) -> bool {
        if self.rate_ppb == 0 || words.is_empty() {
            return false;
        }
        if !self.rng.chance(self.rate_ppb, RATE_DENOM) {
            return false;
        }
        let flipped = flip_bits(&mut self.rng, words, 1);
        self.frames_corrupted += 1;
        self.bits_flipped += u64::from(flipped);
        true
    }
}

/// Parameters of a correlated (Markov on/off) upset process.
///
/// The process alternates quiet gaps and bursts, both exponentially
/// distributed. While a burst is on, upsets arrive as a Poisson stream
/// at `upsets_per_us`, every one landing inside one contiguous window of
/// `window` frame addresses drawn per burst — the spatial locality of a
/// real particle strike — and flipping `1..=max_bits` bits in its frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstConfig {
    /// Seed for the plan's generator.
    pub seed: u64,
    /// Mean quiet time between bursts.
    pub mean_gap: SimTime,
    /// Mean burst duration.
    pub mean_burst: SimTime,
    /// Upset arrival rate while a burst is on (upsets per microsecond).
    /// Zero makes the plan inactive: it never draws and never strikes.
    pub upsets_per_us: f64,
    /// Frames in the contiguous window each burst targets.
    pub window: usize,
    /// Upper bound on bits flipped per upset (each upset draws
    /// `1..=max_bits`).
    pub max_bits: u32,
}

impl BurstConfig {
    /// A burst process with the given seed and on-burst upset rate, and
    /// defaults shaped like the scrubbing literature's SEU showers:
    /// millisecond-scale quiet gaps, bursts a few hundred microseconds
    /// long, a 16-frame strike window, up to 3 bits per upset.
    pub fn new(seed: u64, upsets_per_us: f64) -> Self {
        BurstConfig {
            seed,
            mean_gap: SimTime::from_ms(2),
            mean_burst: SimTime::from_us(300),
            upsets_per_us,
            window: 16,
            max_bits: 3,
        }
    }
}

/// One materialized upset: which frame (index into the installed frame
/// order), a per-upset seed that deterministically derives the bit
/// positions (see [`apply_upset`]), and how many bits it flips. Keeping
/// the bit derivation out of the plan lets this crate stay ignorant of
/// frame geometry — the fabric layer applies the upset to real words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Upset {
    /// Index into the frame order the plan was installed over.
    pub frame: usize,
    /// Seed deriving the (word, bit) positions of the flips.
    pub seed: u64,
    /// Bits to flip in the frame.
    pub flips: u32,
}

/// Applies one [`Upset`] to a frame payload; returns bits flipped.
pub fn apply_upset(words: &mut [u32], seed: u64, flips: u32) -> u32 {
    let mut rng = SplitMix64::new(seed);
    flip_bits(&mut rng, words, flips)
}

/// Phase of the on/off process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Off,
    On,
}

/// A seeded correlated upset process over a fixed set of frames.
///
/// The plan advances on the simulated wall clock: [`BurstPlan::advance`]
/// emits every upset with a timestamp in `(cursor, to]` and moves the
/// cursor. All draws happen in a fixed order tied to the process state —
/// never to call granularity — so materializing upsets lazily (at loads,
/// verifies and scrub passes) yields the same upset sequence as stepping
/// the clock one picosecond at a time. An inactive plan (zero rate or no
/// frames) never touches its generator.
#[derive(Debug, Clone)]
pub struct BurstPlan {
    rng: SplitMix64,
    config: BurstConfig,
    /// Frames the plan can strike (the installed frame order's length).
    frames: usize,
    /// Everything up to this instant has been materialized.
    cursor: SimTime,
    phase: Phase,
    /// When the current phase ends.
    phase_end: SimTime,
    /// Next upset instant (only meaningful while on).
    next_upset: SimTime,
    /// First frame of the current burst's strike window.
    win_start: usize,
    /// Bursts begun so far.
    pub bursts: u64,
    /// Upsets emitted so far.
    pub upsets: u64,
    /// Bits flipped by emitted upsets.
    pub bits_flipped: u64,
}

impl BurstPlan {
    /// Plan over `frames` configuration frames.
    ///
    /// # Panics
    /// Panics on a non-finite or negative upset rate (the same contract
    /// as [`FaultPlan::new`]) or a zero-frame window with a nonzero rate.
    pub fn new(config: BurstConfig, frames: usize) -> Self {
        assert!(
            config.upsets_per_us.is_finite() && config.upsets_per_us >= 0.0,
            "BurstConfig upset rate must be finite and non-negative, got {}",
            config.upsets_per_us
        );
        if config.upsets_per_us > 0.0 {
            assert!(config.window > 0, "BurstConfig window must be non-empty");
            assert!(config.max_bits > 0, "BurstConfig max_bits must be >= 1");
            assert!(
                !config.mean_burst.is_zero(),
                "BurstConfig mean_burst must be nonzero"
            );
        }
        let mut plan = BurstPlan {
            rng: SplitMix64::new(config.seed),
            config,
            frames,
            cursor: SimTime::ZERO,
            phase: Phase::Off,
            phase_end: SimTime::ZERO,
            next_upset: SimTime::ZERO,
            win_start: 0,
            bursts: 0,
            upsets: 0,
            bits_flipped: 0,
        };
        if plan.is_active() {
            plan.phase_end = plan.sojourn(plan.config.mean_gap);
        }
        plan
    }

    /// Does this plan ever strike?
    pub fn is_active(&self) -> bool {
        self.config.upsets_per_us > 0.0 && self.frames > 0
    }

    /// The configuration the plan was built from.
    pub fn config(&self) -> &BurstConfig {
        &self.config
    }

    /// An exponentially distributed sojourn with the given mean, at
    /// least one picosecond so phases always progress.
    fn sojourn(&mut self, mean: SimTime) -> SimTime {
        // Inverse-CDF sampling; u ∈ (0, 1) from the top 53 bits.
        let u = ((self.rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        let ps = (-u.ln() * mean.as_ps() as f64).round() as u64;
        SimTime::from_ps(ps.max(1))
    }

    /// Exponential inter-upset gap at the on-burst rate.
    fn upset_gap(&mut self) -> SimTime {
        let mean = SimTime::from_ps((1_000_000.0 / self.config.upsets_per_us).round() as u64);
        self.sojourn(mean)
    }

    /// Advances the process to `to`, appending every upset with a
    /// timestamp in `(cursor, to]` onto `out`. Idempotent for a `to`
    /// at or before the cursor.
    pub fn advance(&mut self, to: SimTime, out: &mut Vec<Upset>) {
        if !self.is_active() {
            self.cursor = self.cursor.max(to);
            return;
        }
        while self.cursor < to {
            match self.phase {
                Phase::Off => {
                    if self.phase_end > to {
                        self.cursor = to;
                        break;
                    }
                    // A burst begins: pick its strike window, duration
                    // and first upset, in that fixed draw order.
                    self.cursor = self.phase_end;
                    self.phase = Phase::On;
                    self.bursts += 1;
                    let span = self.config.window.min(self.frames);
                    let hi = self.frames - span;
                    self.win_start = if hi == 0 {
                        0
                    } else {
                        self.rng.below(hi as u64 + 1) as usize
                    };
                    self.phase_end = self.cursor + self.sojourn(self.config.mean_burst);
                    self.next_upset = self.cursor + self.upset_gap();
                }
                Phase::On => {
                    while self.next_upset <= self.phase_end && self.next_upset <= to {
                        let span = self.config.window.min(self.frames);
                        let frame = self.win_start + self.rng.below(span as u64) as usize;
                        let flips = 1 + self.rng.below(u64::from(self.config.max_bits)) as u32;
                        let seed = self.rng.next_u64();
                        out.push(Upset { frame, seed, flips });
                        self.upsets += 1;
                        self.bits_flipped += u64::from(flips);
                        let gap = self.upset_gap();
                        self.next_upset += gap;
                    }
                    if self.phase_end > to {
                        self.cursor = to;
                        break;
                    }
                    // Burst over: the pending upset draw dies with it.
                    self.cursor = self.phase_end;
                    self.phase = Phase::Off;
                    self.phase_end = self.cursor + self.sojourn(self.config.mean_gap);
                }
            }
        }
        self.cursor = self.cursor.max(to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_corrupts_and_never_draws() {
        let mut plan = FaultPlan::new(7, 0.0);
        assert!(!plan.is_active());
        let mut words = vec![0xAAAA_5555u32; 16];
        for _ in 0..1000 {
            assert!(!plan.corrupt_frame(&mut words));
        }
        assert!(words.iter().all(|&w| w == 0xAAAA_5555));
        assert_eq!(plan.frames_corrupted, 0);
        // The generator was never advanced: it still matches a fresh one.
        let mut fresh = SplitMix64::new(7);
        assert_eq!(plan.rng.next_u64(), fresh.next_u64());
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_rate_is_rejected_not_silently_zeroed() {
        let _ = FaultPlan::new(7, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn infinite_rate_is_rejected() {
        let _ = FaultPlan::new(7, f64::INFINITY);
    }

    #[test]
    fn certain_rate_flips_exactly_one_bit_per_frame() {
        let mut plan = FaultPlan::new(3, 1.0);
        assert!(plan.is_active());
        for _ in 0..50 {
            let mut words = vec![0u32; 88];
            assert!(plan.corrupt_frame(&mut words));
            let flipped: u32 = words.iter().map(|w| w.count_ones()).sum();
            assert_eq!(flipped, 1, "exactly one bit per corrupted frame");
        }
        assert_eq!(plan.frames_corrupted, 50);
        assert_eq!(plan.bits_flipped, 50);
    }

    #[test]
    fn same_seed_same_corruption() {
        let run = |seed: u64| -> Vec<Vec<u32>> {
            let mut plan = FaultPlan::new(seed, 0.5);
            (0..32)
                .map(|i| {
                    let mut words = vec![i as u32; 8];
                    plan.corrupt_frame(&mut words);
                    words
                })
                .collect()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "distinct seeds corrupt differently");
    }

    #[test]
    fn rate_is_roughly_respected() {
        let mut plan = FaultPlan::new(99, 0.1);
        let mut hits = 0u32;
        for _ in 0..10_000 {
            let mut words = vec![0u32; 4];
            if plan.corrupt_frame(&mut words) {
                hits += 1;
            }
        }
        assert!((800..1200).contains(&hits), "{hits} hits for p=0.1");
        assert!((plan.rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_burst_plan_never_draws() {
        let mut plan = BurstPlan::new(BurstConfig::new(5, 0.0), 800);
        assert!(!plan.is_active());
        let mut out = Vec::new();
        plan.advance(SimTime::from_ms(100), &mut out);
        assert!(out.is_empty());
        assert_eq!((plan.bursts, plan.upsets), (0, 0));
        let mut fresh = SplitMix64::new(5);
        assert_eq!(plan.rng.next_u64(), fresh.next_u64());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_burst_rate_is_rejected() {
        let _ = BurstPlan::new(BurstConfig::new(5, f64::NAN), 800);
    }

    #[test]
    fn upsets_are_independent_of_advance_granularity() {
        let config = BurstConfig::new(41, 0.5);
        let horizon = SimTime::from_ms(20);
        let coarse = {
            let mut plan = BurstPlan::new(config, 800);
            let mut out = Vec::new();
            plan.advance(horizon, &mut out);
            out
        };
        let fine = {
            let mut plan = BurstPlan::new(config, 800);
            let mut out = Vec::new();
            // Uneven steps, including zero-width re-advances.
            let mut t = SimTime::ZERO;
            let mut step = 1u64;
            while t < horizon {
                t = (t + SimTime::from_us(step)).min(horizon);
                plan.advance(t, &mut out);
                plan.advance(t, &mut out);
                step = step % 37 + 1;
            }
            out
        };
        assert!(!coarse.is_empty(), "seed 41 bursts within 20ms");
        assert_eq!(coarse, fine, "lazy materialization must not change draws");
    }

    #[test]
    fn bursts_strike_a_contiguous_window() {
        let config = BurstConfig {
            mean_gap: SimTime::from_us(100),
            mean_burst: SimTime::from_us(200),
            ..BurstConfig::new(9, 2.0)
        };
        let mut plan = BurstPlan::new(config, 800);
        let mut out = Vec::new();
        plan.advance(SimTime::from_ms(10), &mut out);
        assert!(plan.bursts >= 2, "several bursts in 10ms of mostly-on time");
        assert!(out.len() as u64 == plan.upsets && plan.upsets > 10);
        // Upsets between consecutive bursts span at most `window` frames
        // is hard to segment post-hoc; instead check every upset lands in
        // range and flips a sane bit count.
        for u in &out {
            assert!(u.frame < 800);
            assert!((1..=config.max_bits).contains(&u.flips));
        }
        let lo = out.iter().map(|u| u.frame).min().unwrap();
        let hi = out.iter().map(|u| u.frame).max().unwrap();
        assert!(
            hi - lo > config.window,
            "distinct bursts pick distinct windows ({lo}..{hi})"
        );
    }

    #[test]
    fn apply_upset_flips_the_advertised_bits() {
        let mut words = vec![0u32; 88];
        let flipped = apply_upset(&mut words, 0xDEAD_BEEF, 3);
        assert_eq!(flipped, 3);
        // XORs may overlap; population count has flips' parity and bound.
        let ones: u32 = words.iter().map(|w| w.count_ones()).sum();
        assert!(ones <= 3 && ones % 2 == 3 % 2);
        assert_eq!(apply_upset(&mut [], 1, 5), 0, "empty frame is a no-op");
    }
}
