//! BitLinker — configuration assembly for the dynamic region.
//!
//! The paper (and its companion DCIS'05 publication) describe BitLinker as a
//! tool that assembles partial configurations from the configurations of
//! individually designed components, guaranteeing that
//!
//! 1. the result is **complete** (not differential): it establishes the
//!    correct state of every frame it touches regardless of what was in the
//!    dynamic region before — necessary because modules are loaded in an
//!    order unknown when their configurations are produced;
//! 2. the circuits **above and below** the dynamic region are not disturbed,
//!    even though configuration frames span the full device height;
//! 3. components connect through **bus macros** at fixed locations, checked
//!    at assembly time, so components can be reused without repeating the
//!    high-level design flow.
//!
//! All configurations used in the paper's experiments were produced by
//! BitLinker; all partial configurations used in this reproduction's
//! experiments are produced by this module.

use crate::builder::partial_bitstream;
use crate::packet::Bitstream;
use vp2_fabric::config::{ConfigMemory, FrameAddress, FrameBlock};
use vp2_fabric::coords::ClbCoord;
use vp2_fabric::region::DynamicRegion;
use vp2_fabric::Device;
use vp2_netlist::busmacro::BusMacro;
use vp2_netlist::encode::encode_placement;
use vp2_netlist::graph::Netlist;
use vp2_netlist::place::Placement;

/// A relocatable component: a placed netlist plus the bus macros through
/// which it talks to the static side (or to other components).
#[derive(Debug, Clone)]
pub struct Component {
    /// Component name (reports, diagnostics).
    pub name: String,
    /// The component's logic.
    pub netlist: Netlist,
    /// Placement in component-local coordinates.
    pub placement: Placement,
    /// Bus macros the component instantiates, with component-local sites.
    pub macros: Vec<BusMacro>,
}

impl Component {
    /// Creates a component, validating its netlist.
    pub fn new(
        name: impl Into<String>,
        netlist: Netlist,
        placement: Placement,
        macros: Vec<BusMacro>,
    ) -> Result<Self, vp2_netlist::NetlistError> {
        netlist.validate()?;
        Ok(Component {
            name: name.into(),
            netlist,
            placement,
            macros,
        })
    }

    /// Width × height of the component's bounding box.
    pub fn extent(&self) -> (u16, u16) {
        (self.placement.width, self.placement.height)
    }

    /// Slices occupied.
    pub fn slices_used(&self) -> usize {
        self.placement.slices_used()
    }
}

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// Component bounding box exceeds the dynamic region at its origin.
    DoesNotFit {
        /// Component name.
        component: String,
        /// Needed extent (cols, rows).
        needed: (u16, u16),
        /// Region extent (cols, rows).
        region: (u16, u16),
    },
    /// The component's bus macro does not land on the agreed footprint.
    MacroMismatch {
        /// Component name.
        component: String,
        /// Macro name.
        macro_name: String,
    },
    /// Two components overlap.
    Overlap {
        /// First component.
        a: String,
        /// Second component.
        b: String,
    },
    /// Encoding failed (component fell off the device).
    Encode(String),
}

impl std::fmt::Display for AssembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssembleError::DoesNotFit {
                component,
                needed,
                region,
            } => write!(
                f,
                "component '{component}' ({}x{} CLBs) does not fit region ({}x{})",
                needed.0, needed.1, region.0, region.1
            ),
            AssembleError::MacroMismatch {
                component,
                macro_name,
            } => write!(
                f,
                "component '{component}' macro '{macro_name}' not on the agreed footprint"
            ),
            AssembleError::Overlap { a, b } => write!(f, "components '{a}' and '{b}' overlap"),
            AssembleError::Encode(m) => write!(f, "encode error: {m}"),
        }
    }
}

impl std::error::Error for AssembleError {}

/// Report on a produced configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkReport {
    /// Frames carried by the configuration.
    pub frames: usize,
    /// Stream length in words.
    pub words: usize,
    /// CLBs occupied by the assembled components.
    pub clbs_used: usize,
}

/// The BitLinker: bound to one device, one dynamic region and the static
/// design's baseline configuration.
#[derive(Debug, Clone)]
pub struct BitLinker {
    device: Device,
    region: DynamicRegion,
    /// Configuration of the full device with the static design loaded and
    /// the dynamic region empty. Rows outside the region in the region's
    /// columns are taken from here — guarantee (2).
    static_base: ConfigMemory,
    idcode: u32,
    /// Footprints (region-relative) that component macros must land on.
    expected_macros: Vec<BusMacro>,
}

impl BitLinker {
    /// Creates a BitLinker.
    pub fn new(
        device: Device,
        region: DynamicRegion,
        static_base: ConfigMemory,
        expected_macros: Vec<BusMacro>,
    ) -> Self {
        let idcode = crate::idcode_for(device.kind);
        BitLinker {
            device,
            region,
            static_base,
            idcode,
            expected_macros,
        }
    }

    /// The dynamic region this linker targets.
    pub fn region(&self) -> &DynamicRegion {
        &self.region
    }

    /// Registers additional agreed footprints. A multi-module floorplan
    /// registers one translated dock-macro set per sub-slot: a component
    /// may then land on *any* same-named contract (each sub-slot origin
    /// lines its macros up with exactly one of them).
    pub fn add_expected_macros(&mut self, macros: impl IntoIterator<Item = BusMacro>) {
        self.expected_macros.extend(macros);
    }

    /// The device this linker targets.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Produces a **complete** partial configuration that loads `component`
    /// at region-relative `origin`, clearing the rest of the region.
    pub fn link(
        &self,
        component: &Component,
        origin: (u16, u16),
    ) -> Result<(Bitstream, LinkReport), AssembleError> {
        self.assemble(&[(component, origin)])
    }

    /// Assembles several components into one complete partial configuration.
    pub fn assemble(
        &self,
        parts: &[(&Component, (u16, u16))],
    ) -> Result<(Bitstream, LinkReport), AssembleError> {
        // Fit + macro checks.
        for &(comp, origin) in parts {
            let (w, h) = comp.extent();
            if origin.0 + w > self.region.width() || origin.1 + h > self.region.height() {
                return Err(AssembleError::DoesNotFit {
                    component: comp.name.clone(),
                    needed: (origin.0 + w, origin.1 + h),
                    region: (self.region.width(), self.region.height()),
                });
            }
            for m in &comp.macros {
                self.check_macro(comp, m, origin)?;
            }
        }
        // Overlap check on CLB footprints (region-relative).
        for (i, &(a, ao)) in parts.iter().enumerate() {
            for &(b, bo) in &parts[i + 1..] {
                let af: Vec<ClbCoord> = a
                    .placement
                    .used_clbs()
                    .iter()
                    .map(|c| ClbCoord::new(c.col + ao.0, c.row + ao.1))
                    .collect();
                let bf: Vec<ClbCoord> = b
                    .placement
                    .used_clbs()
                    .iter()
                    .map(|c| ClbCoord::new(c.col + bo.0, c.row + bo.1))
                    .collect();
                if af.iter().any(|c| bf.contains(c)) {
                    return Err(AssembleError::Overlap {
                        a: a.name.clone(),
                        b: b.name.clone(),
                    });
                }
            }
        }

        // Merge: static base with the region band erased, then components.
        let mut merged = self.static_base.clone();
        self.erase_region_band(&mut merged);
        let mut clbs_used = 0usize;
        for &(comp, origin) in parts {
            let dev_origin = ClbCoord::new(
                self.region.cols.start + origin.0,
                self.region.rows.start + origin.1,
            );
            let written = encode_placement(&comp.netlist, &comp.placement, dev_origin, &mut merged)
                .map_err(|e| AssembleError::Encode(e.to_string()))?;
            clbs_used += written.len();
        }

        // Complete configuration: every writable frame of the region.
        let frames = self.region.writable_frames();
        let bs = partial_bitstream(&merged, &frames, self.idcode);
        let report = LinkReport {
            frames: frames.len(),
            words: bs.word_count(),
            clbs_used,
        };
        Ok((bs, report))
    }

    /// Like [`BitLinker::link`], but emits only the given frames — the
    /// complete configuration of one sub-slot of a multi-module
    /// floorplan. Frames are per-column, so a sub-slot spanning a
    /// distinct column range owns a disjoint frame set and the emitted
    /// stream cannot disturb a co-resident neighbour.
    pub fn link_frames(
        &self,
        component: &Component,
        origin: (u16, u16),
        frames: &[FrameAddress],
    ) -> Result<(Bitstream, LinkReport), AssembleError> {
        let merged = self.linked_state(component, origin)?;
        let bs = partial_bitstream(&merged, frames, self.idcode);
        let report = LinkReport {
            frames: frames.len(),
            words: bs.word_count(),
            clbs_used: component.placement.clbs_used(),
        };
        Ok((bs, report))
    }

    /// The merged full-device state `link`/`link_frames` of one component
    /// establishes (fit and macro contracts checked).
    pub fn linked_state(
        &self,
        component: &Component,
        origin: (u16, u16),
    ) -> Result<ConfigMemory, AssembleError> {
        let (w, h) = component.extent();
        if origin.0 + w > self.region.width() || origin.1 + h > self.region.height() {
            return Err(AssembleError::DoesNotFit {
                component: component.name.clone(),
                needed: (origin.0 + w, origin.1 + h),
                region: (self.region.width(), self.region.height()),
            });
        }
        for m in &component.macros {
            self.check_macro(component, m, origin)?;
        }
        self.expected_state(&[(component, origin)])
    }

    /// Produces the *empty region* configuration (unloads any module).
    pub fn blank_configuration(&self) -> (Bitstream, LinkReport) {
        let mut merged = self.static_base.clone();
        self.erase_region_band(&mut merged);
        let frames = self.region.writable_frames();
        let bs = partial_bitstream(&merged, &frames, self.idcode);
        let words = bs.word_count();
        (
            bs,
            LinkReport {
                frames: frames.len(),
                words,
                clbs_used: 0,
            },
        )
    }

    /// Produces a **differential** configuration for the same load, relative
    /// to an assumed current state — smaller and faster to load, but only
    /// correct if the assumption holds (the ablation of design decision 4 in
    /// DESIGN.md).
    pub fn link_differential(
        &self,
        component: &Component,
        origin: (u16, u16),
        assumed_current: &ConfigMemory,
    ) -> Result<(Bitstream, LinkReport), AssembleError> {
        let mut merged = self.static_base.clone();
        self.erase_region_band(&mut merged);
        let dev_origin = ClbCoord::new(
            self.region.cols.start + origin.0,
            self.region.rows.start + origin.1,
        );
        encode_placement(
            &component.netlist,
            &component.placement,
            dev_origin,
            &mut merged,
        )
        .map_err(|e| AssembleError::Encode(e.to_string()))?;
        let changed = merged.diff(assumed_current);
        let bs = partial_bitstream(&merged, &changed, self.idcode);
        let words = bs.word_count();
        Ok((
            bs,
            LinkReport {
                frames: changed.len(),
                words,
                clbs_used: component.placement.clbs_used(),
            },
        ))
    }

    /// The merged full-device state a `link` of these parts produces (used
    /// by tests and by the module manager to know the expected post-load
    /// state).
    pub fn expected_state(
        &self,
        parts: &[(&Component, (u16, u16))],
    ) -> Result<ConfigMemory, AssembleError> {
        let mut merged = self.static_base.clone();
        self.erase_region_band(&mut merged);
        for &(comp, origin) in parts {
            let dev_origin = ClbCoord::new(
                self.region.cols.start + origin.0,
                self.region.rows.start + origin.1,
            );
            encode_placement(&comp.netlist, &comp.placement, dev_origin, &mut merged)
                .map_err(|e| AssembleError::Encode(e.to_string()))?;
        }
        Ok(merged)
    }

    /// Zeroes the region's row band in every CLB frame of the region's
    /// columns (and the region's BRAM content) while leaving the rows above
    /// and below untouched.
    fn erase_region_band(&self, mem: &mut ConfigMemory) {
        let band = ConfigMemory::row_word_range(self.region.rows.clone());
        for addr in self.region.writable_frames() {
            match addr.block {
                FrameBlock::Clb { .. } | FrameBlock::BramInterconnect { .. } => {
                    let mut words = mem.frame(addr).words.clone();
                    for w in &mut words[band.clone()] {
                        *w = 0;
                    }
                    mem.write_frame(addr, &words);
                }
                FrameBlock::BramContent { .. } => {
                    // BRAM blocks allocated to the region are cleared whole.
                    let words = vec![0u32; mem.frame(addr).words.len()];
                    let _ = words;
                    // Only clear the blocks the region owns.
                    let mut frame = mem.frame(addr).words.clone();
                    for &(col, block) in &self.region.brams {
                        if let FrameBlock::BramContent { col: c } = addr.block {
                            if c == col {
                                let base =
                                    block as usize * vp2_fabric::config::WORDS_PER_BRAM_BLOCK;
                                for w in &mut frame
                                    [base..base + vp2_fabric::config::WORDS_PER_BRAM_BLOCK]
                                {
                                    *w = 0;
                                }
                            }
                        }
                    }
                    mem.write_frame(addr, &frame);
                }
            }
        }
    }

    /// Checks a component macro against the agreed footprints: a macro with
    /// a matching name must land (after translation by `origin`) exactly on
    /// one of the expected region-relative site sets. With a single-slot
    /// floorplan there is exactly one contract per name, so this is the
    /// original exact-footprint check; a multi-module floorplan registers
    /// one translated contract per sub-slot and a component is accepted
    /// at whichever sub-slot its macros line up with.
    fn check_macro(
        &self,
        comp: &Component,
        m: &BusMacro,
        origin: (u16, u16),
    ) -> Result<(), AssembleError> {
        let mut contracts = self.expected_macros.iter().filter(|e| e.name == m.name);
        let Some(first) = contracts.next() else {
            // Component-private macros (component-to-component links) are
            // not checked against the dock contract.
            return Ok(());
        };
        let translated: Vec<_> = m
            .sites
            .iter()
            .map(|&(sc, lut)| {
                (
                    vp2_fabric::coords::SliceCoord::new(
                        sc.clb.col + origin.0,
                        sc.clb.row + origin.1,
                        sc.slice.0,
                    ),
                    lut,
                )
            })
            .collect();
        let lands_on = |e: &BusMacro| translated == e.sites && m.kind == e.kind;
        if !lands_on(first) && !contracts.any(lands_on) {
            return Err(AssembleError::MacroMismatch {
                component: comp.name.clone(),
                macro_name: m.name.clone(),
            });
        }
        Ok(())
    }

    /// Frame addresses a region reconfiguration writes (convenience).
    pub fn region_frames(&self) -> Vec<FrameAddress> {
        self.region.writable_frames()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::apply_bitstream;
    use vp2_fabric::coords::{LutIndex, SliceIndex};
    use vp2_fabric::region::region_32bit;
    use vp2_fabric::DeviceKind;
    use vp2_netlist::busmacro::DockMacros;
    use vp2_netlist::components;
    use vp2_netlist::place::AutoPlacer;

    /// A static base with recognisable bits above and below the region.
    fn static_base(dev: &Device) -> ConfigMemory {
        let mut m = ConfigMemory::new(dev);
        for col in 0..dev.clb_cols {
            m.set_lut(
                ClbCoord::new(col, 0),
                SliceIndex::new(0),
                LutIndex::F,
                0xBEEF,
            );
            m.set_lut(
                ClbCoord::new(col, dev.rows - 1),
                SliceIndex::new(1),
                LutIndex::G,
                0xCAFE,
            );
            m.set_routing_word(ClbCoord::new(col, 1), 2, 0x57A7_1C00 + u64::from(col));
        }
        m
    }

    /// Builds a dock-compatible component computing NOT over 32 bits.
    fn make_component(tag: u16) -> Component {
        let dm = DockMacros::for_width(32);
        let mut nl = Netlist::new(format!("inv{tag}"));
        let mut placer = AutoPlacer::new();
        let din = dm.write.instantiate_input(&mut nl, &mut placer, "din");
        let strobe = dm.strobe.instantiate_input(&mut nl, &mut placer, "wr");
        let inv = components::bus_not(&mut nl, &din);
        // Mix in the tag so different tags give different circuits.
        let tagbit = nl.constant(tag % 2 == 1);
        let mixed: Vec<_> = inv
            .iter()
            .map(|&b| components::xor2(&mut nl, b, tagbit))
            .collect();
        let regd = components::register(&mut nl, &mixed, Some(strobe[0]));
        dm.read
            .instantiate_output(&mut nl, &mut placer, "dout", &regd);
        let placement = placer.place(&nl, 12, 11).unwrap();
        Component::new(
            format!("inv{tag}"),
            nl,
            placement,
            vec![dm.write, dm.read, dm.strobe],
        )
        .unwrap()
    }

    fn linker() -> BitLinker {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let region = region_32bit(&dev);
        let base = static_base(&dev);
        let dm = DockMacros::for_width(32);
        BitLinker::new(dev, region, base, vec![dm.write, dm.read, dm.strobe])
    }

    #[test]
    fn link_produces_complete_region_config() {
        let lk = linker();
        let comp = make_component(0);
        let (bs, report) = lk.link(&comp, (0, 0)).unwrap();
        assert_eq!(report.frames, lk.region_frames().len());
        assert!(report.words > report.frames, "frames carry payload");
        assert!(bs.parse().is_ok());
    }

    #[test]
    fn static_rows_above_and_below_survive() {
        let lk = linker();
        let comp = make_component(0);
        let (bs, _) = lk.link(&comp, (0, 0)).unwrap();
        let mut mem = lk.static_base.clone();
        apply_bitstream(&bs, &mut mem, crate::IDCODE_XC2VP7).unwrap();
        // The recognisable static bits at rows 0, 1 and rows-1 are intact.
        let dev = lk.device();
        for col in 0..dev.clb_cols {
            assert_eq!(
                mem.lut(ClbCoord::new(col, 0), SliceIndex::new(0), LutIndex::F),
                0xBEEF
            );
            assert_eq!(
                mem.lut(
                    ClbCoord::new(col, dev.rows - 1),
                    SliceIndex::new(1),
                    LutIndex::G
                ),
                0xCAFE
            );
            assert_eq!(
                mem.routing_word(ClbCoord::new(col, 1), 2),
                0x57A7_1C00 + u64::from(col)
            );
        }
    }

    #[test]
    fn complete_config_correct_regardless_of_previous_module() {
        let lk = linker();
        let a = make_component(1);
        let b = make_component(2);
        let (bs_a, _) = lk.link(&a, (0, 0)).unwrap();
        let (bs_b, _) = lk.link(&b, (0, 0)).unwrap();

        // Path 1: load B directly onto the static base.
        let mut direct = lk.static_base.clone();
        apply_bitstream(&bs_b, &mut direct, crate::IDCODE_XC2VP7).unwrap();

        // Path 2: load A first, then B over it.
        let mut via_a = lk.static_base.clone();
        apply_bitstream(&bs_a, &mut via_a, crate::IDCODE_XC2VP7).unwrap();
        apply_bitstream(&bs_b, &mut via_a, crate::IDCODE_XC2VP7).unwrap();

        assert_eq!(via_a, direct, "complete configs are order-independent");
        assert_eq!(direct, lk.expected_state(&[(&b, (0, 0))]).unwrap());
    }

    #[test]
    fn differential_config_is_smaller_but_state_dependent() {
        let lk = linker();
        let a = make_component(1);
        let b = make_component(2);
        // Differential for B assuming the region currently holds A.
        let state_a = lk.expected_state(&[(&a, (0, 0))]).unwrap();
        let (diff_b, diff_report) = lk.link_differential(&b, (0, 0), &state_a).unwrap();
        let (_complete_b, full_report) = lk.link(&b, (0, 0)).unwrap();
        assert!(
            diff_report.words < full_report.words,
            "differential smaller: {} vs {}",
            diff_report.words,
            full_report.words
        );
        // Correct when the assumption holds…
        let mut good = state_a.clone();
        apply_bitstream(&diff_b, &mut good, crate::IDCODE_XC2VP7).unwrap();
        assert_eq!(good, lk.expected_state(&[(&b, (0, 0))]).unwrap());
        // …wrong when it does not (region empty instead of holding A).
        let mut bad = lk.static_base.clone();
        // static_base still has pre-erase content in the band? erase to get
        // the 'blank region' state first.
        let (blank_bs, _) = lk.blank_configuration();
        apply_bitstream(&blank_bs, &mut bad, crate::IDCODE_XC2VP7).unwrap();
        apply_bitstream(&diff_b, &mut bad, crate::IDCODE_XC2VP7).unwrap();
        assert_ne!(
            bad,
            lk.expected_state(&[(&b, (0, 0))]).unwrap(),
            "differential config on the wrong initial state leaves stale bits"
        );
    }

    #[test]
    fn does_not_fit_detected() {
        let lk = linker();
        let comp = make_component(0);
        let err = lk.link(&comp, (20, 0)).unwrap_err();
        assert!(matches!(err, AssembleError::DoesNotFit { .. }), "{err}");
    }

    #[test]
    fn macro_mismatch_detected() {
        let lk = linker();
        let comp = make_component(0);
        // Placing at a shifted origin moves the macro off its agreed sites.
        let err = lk.link(&comp, (1, 0)).unwrap_err();
        assert!(matches!(err, AssembleError::MacroMismatch { .. }), "{err}");
    }

    #[test]
    fn overlap_detected() {
        let lk = linker();
        let a = make_component(1);
        let b = make_component(2);
        let err = lk.assemble(&[(&a, (0, 0)), (&b, (0, 0))]).unwrap_err();
        assert!(matches!(err, AssembleError::Overlap { .. }), "{err}");
    }

    #[test]
    fn blank_configuration_clears_region() {
        let lk = linker();
        let a = make_component(1);
        let (bs_a, _) = lk.link(&a, (0, 0)).unwrap();
        let mut mem = lk.static_base.clone();
        apply_bitstream(&bs_a, &mut mem, crate::IDCODE_XC2VP7).unwrap();
        let (blank, _) = lk.blank_configuration();
        apply_bitstream(&blank, &mut mem, crate::IDCODE_XC2VP7).unwrap();
        // Region band is now all-zero in CLB frames.
        let band = ConfigMemory::row_word_range(lk.region().rows.clone());
        for addr in lk.region_frames() {
            if let FrameBlock::Clb { .. } = addr.block {
                let frame = mem.frame(addr);
                assert!(frame.words[band.clone()].iter().all(|&w| w == 0));
            }
        }
    }
}
