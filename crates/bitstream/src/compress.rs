//! Frame-level run/dictionary coder for configuration streams.
//!
//! Partial bitstreams are dominated by a handful of word values — zeroed
//! frame words, the dummy/pad words, repeated routing patterns — so a
//! byte-token stream with a small word dictionary and run markers
//! compresses them well without any bit-level modelling. The format is
//! word-oriented on both sides so the HWICAP can decode it in front of
//! the ICAP: the host moves fewer words over the bus *and* the ICAP
//! shifts fewer words, which is where the reconfiguration time goes.
//!
//! Encoded layout (all `u32` words):
//!
//! ```text
//! [ MAGIC, n_decoded, n_tokens, dict_len,
//!   dict words …,                      (dict_len words)
//!   token bytes packed 4 per word …,   (n_tokens.div_ceil(4) words)
//!   literal words … ]
//! ```
//!
//! Token bytes: `0..=253` index the dictionary, [`TOKEN_LITERAL`] (254)
//! consumes the next literal word, [`TOKEN_RUN`] (255) is followed by a
//! count byte `n` repeating the previously decoded word `n + 1` more
//! times. The coder is fully deterministic: the dictionary is the most
//! frequent words ordered by (count desc, value asc).

/// First word of every compressed stream. Deliberately distinct from the
/// bitstream `SYNC_WORD` (0xAA99_5566) and `DUMMY_WORD` (0xFFFF_FFFF),
/// which open every real configuration stream, so a compressed stream
/// can never be mistaken for a raw one.
pub const COMPRESSED_MAGIC: u32 = 0xC0DE_C5ED;

/// Token: the next literal word is emitted verbatim.
const TOKEN_LITERAL: u8 = 254;
/// Token: the next token byte is a repeat count for the previous word.
const TOKEN_RUN: u8 = 255;
/// Dictionary indices occupy the remaining token space.
const DICT_CAPACITY: usize = TOKEN_LITERAL as usize;

/// Does `words` carry a compressed stream (by magic)?
pub fn is_compressed(words: &[u32]) -> bool {
    words.first() == Some(&COMPRESSED_MAGIC)
}

/// Encodes `words` into the run/dictionary format. Always succeeds; the
/// result may be longer than the input on incompressible data — callers
/// keep whichever form is shorter.
pub fn compress_words(words: &[u32]) -> Vec<u32> {
    // Deterministic dictionary: count every word, keep the most frequent
    // repeaters (a word seen once costs the same as a literal, so only
    // count >= 2 earns a dictionary slot).
    let mut counts: Vec<(u32, u32)> = {
        let mut sorted = words.to_vec();
        sorted.sort_unstable();
        let mut counts = Vec::new();
        for &w in &sorted {
            match counts.last_mut() {
                Some((word, n)) if *word == w => *n += 1,
                _ => counts.push((w, 1u32)),
            }
        }
        counts
    };
    counts.retain(|&(_, n)| n >= 2);
    counts.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts.truncate(DICT_CAPACITY);
    let dict: Vec<u32> = counts.iter().map(|&(w, _)| w).collect();
    let index_of = |w: u32| dict.iter().position(|&d| d == w);

    let mut tokens: Vec<u8> = Vec::new();
    let mut literals: Vec<u32> = Vec::new();
    let mut i = 0;
    while i < words.len() {
        let w = words[i];
        let mut run = 1;
        while i + run < words.len() && words[i + run] == w {
            run += 1;
        }
        match index_of(w) {
            Some(idx) => tokens.push(idx as u8),
            None => {
                tokens.push(TOKEN_LITERAL);
                literals.push(w);
            }
        }
        let mut extra = run - 1;
        while extra > 0 {
            let chunk = extra.min(256);
            tokens.push(TOKEN_RUN);
            tokens.push((chunk - 1) as u8);
            extra -= chunk;
        }
        i += run;
    }

    let mut out = Vec::with_capacity(4 + dict.len() + tokens.len().div_ceil(4) + literals.len());
    out.push(COMPRESSED_MAGIC);
    out.push(words.len() as u32);
    out.push(tokens.len() as u32);
    out.push(dict.len() as u32);
    out.extend_from_slice(&dict);
    for chunk in tokens.chunks(4) {
        let mut word = 0u32;
        for (j, &b) in chunk.iter().enumerate() {
            word |= (b as u32) << ((3 - j) * 8);
        }
        out.push(word);
    }
    out.extend_from_slice(&literals);
    out
}

/// Decodes a stream produced by [`compress_words`]. Returns `None` if
/// the stream is not compressed or is internally inconsistent (bad
/// counts, dangling run, out-of-range dictionary index).
pub fn decompress_words(words: &[u32]) -> Option<Vec<u32>> {
    let (&magic, rest) = words.split_first()?;
    if magic != COMPRESSED_MAGIC || rest.len() < 3 {
        return None;
    }
    let n_decoded = rest[0] as usize;
    let n_tokens = rest[1] as usize;
    let dict_len = rest[2] as usize;
    if dict_len > DICT_CAPACITY {
        return None;
    }
    let body = &rest[3..];
    let token_words = n_tokens.div_ceil(4);
    if body.len() < dict_len + token_words {
        return None;
    }
    let dict = &body[..dict_len];
    let token_area = &body[dict_len..dict_len + token_words];
    let mut literals = body[dict_len + token_words..].iter();
    let token = |j: usize| ((token_area[j / 4] >> ((3 - j % 4) * 8)) & 0xFF) as u8;

    let mut out = Vec::with_capacity(n_decoded);
    let mut j = 0;
    while j < n_tokens {
        match token(j) {
            TOKEN_LITERAL => out.push(*literals.next()?),
            TOKEN_RUN => {
                j += 1;
                if j >= n_tokens {
                    return None;
                }
                let &last = out.last()?;
                for _ in 0..token(j) as usize + 1 {
                    out.push(last);
                }
            }
            idx => out.push(*dict.get(idx as usize)?),
        }
        j += 1;
    }
    if out.len() != n_decoded || literals.next().is_some() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{DUMMY_WORD, SYNC_WORD};
    use vp2_sim::SplitMix64;

    #[test]
    fn magic_collides_with_no_stream_opener() {
        assert_ne!(COMPRESSED_MAGIC, SYNC_WORD);
        assert_ne!(COMPRESSED_MAGIC, DUMMY_WORD);
        assert!(!is_compressed(&[DUMMY_WORD, SYNC_WORD]));
        assert!(is_compressed(&[COMPRESSED_MAGIC]));
    }

    #[test]
    fn roundtrip_on_random_words() {
        let mut rng = SplitMix64::new(0xC0DE);
        // Mix of repeats, runs and one-off literals.
        let mut words = Vec::new();
        for _ in 0..4096 {
            words.push(match rng.next_u64() % 5 {
                0 => 0,
                1 => DUMMY_WORD,
                2 => 0x1234_5678,
                _ => rng.next_u64() as u32,
            });
        }
        // Inject a long run to cross the 256-repeat chunking.
        words.extend(std::iter::repeat_n(0xAB, 700));
        let packed = compress_words(&words);
        assert_eq!(decompress_words(&packed).as_deref(), Some(&words[..]));
    }

    #[test]
    fn empty_and_degenerate_inputs_roundtrip() {
        for words in [vec![], vec![7u32], vec![9; 1000]] {
            let packed = compress_words(&words);
            assert_eq!(decompress_words(&packed).as_deref(), Some(&words[..]));
        }
        // All-same input collapses to a few header words.
        assert!(compress_words(&[9; 1000]).len() < 10);
    }

    #[test]
    fn frame_like_data_compresses() {
        // Sparse frame data — mostly zero words, as real partial
        // configurations of a lightly used region are.
        let mut words = vec![0u32; 2000];
        for i in (0..2000).step_by(37) {
            words[i] = 0x8000_0000 | i as u32;
        }
        let packed = compress_words(&words);
        assert!(
            packed.len() * 4 < words.len(),
            "sparse frames must compress at least 4x: {} vs {}",
            packed.len(),
            words.len()
        );
        assert_eq!(decompress_words(&packed).as_deref(), Some(&words[..]));
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let packed = compress_words(&[1, 2, 3, 1, 1, 2]);
        assert!(decompress_words(&packed[..packed.len() - 1]).is_none());
        let mut bad = packed.clone();
        bad[1] += 1; // wrong decoded count
        assert!(decompress_words(&bad).is_none());
        assert!(decompress_words(&[SYNC_WORD, 0, 0, 0]).is_none());
    }
}
