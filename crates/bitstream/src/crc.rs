//! Bitstream CRC.
//!
//! The configuration logic accumulates a CRC over every register write and
//! compares it against the value supplied in the CRC register at the end of
//! the stream; a mismatch aborts configuration. We use CRC-32 (IEEE 802.3
//! polynomial, bit-reflected) over `(register, word)` pairs — the exact
//! polynomial differs from the silicon's, but the protocol role (detect
//! corrupted configuration data before it reaches the fabric) is identical.

/// Running bitstream CRC accumulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrcAccumulator {
    state: u32,
}

impl Default for CrcAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

const POLY: u32 = 0xEDB8_8320; // reflected IEEE 802.3

impl CrcAccumulator {
    /// Fresh accumulator (also the state after an `RCRC` command).
    pub fn new() -> Self {
        CrcAccumulator { state: 0xFFFF_FFFF }
    }

    /// Resets the accumulator (the `RCRC` command).
    pub fn reset(&mut self) {
        self.state = 0xFFFF_FFFF;
    }

    /// Absorbs one register write: the 5-bit register address and the 32-bit
    /// data word, mirroring how the silicon hashes (address, data) pairs.
    pub fn absorb(&mut self, reg: u8, word: u32) {
        for &byte in word
            .to_le_bytes()
            .iter()
            .chain(std::iter::once(&(reg & 0x1F)))
        {
            self.state ^= u32::from(byte);
            for _ in 0..8 {
                let lsb = self.state & 1;
                self.state >>= 1;
                if lsb != 0 {
                    self.state ^= POLY;
                }
            }
        }
    }

    /// Current CRC value (what a CRC-register write must match).
    pub fn value(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = CrcAccumulator::new();
        let mut b = CrcAccumulator::new();
        for i in 0..100u32 {
            a.absorb(2, i.wrapping_mul(0x9E37));
            b.absorb(2, i.wrapping_mul(0x9E37));
        }
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn sensitive_to_data() {
        let mut a = CrcAccumulator::new();
        let mut b = CrcAccumulator::new();
        a.absorb(2, 1);
        b.absorb(2, 2);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn sensitive_to_register() {
        let mut a = CrcAccumulator::new();
        let mut b = CrcAccumulator::new();
        a.absorb(1, 42);
        b.absorb(2, 42);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn sensitive_to_order() {
        let mut a = CrcAccumulator::new();
        let mut b = CrcAccumulator::new();
        a.absorb(2, 1);
        a.absorb(2, 2);
        b.absorb(2, 2);
        b.absorb(2, 1);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut a = CrcAccumulator::new();
        a.absorb(3, 7);
        a.reset();
        assert_eq!(a.value(), CrcAccumulator::new().value());
    }
}
