//! Bitstream generation and application.
//!
//! Three generation modes, matching the design space the paper discusses:
//!
//! * [`full_bitstream`] — every frame of the device (initial configuration);
//! * [`partial_bitstream`] — an explicit set of frames with **complete**
//!   contents (what BitLinker emits: correct regardless of the fabric's
//!   previous state, at the cost of more data and thus configuration time);
//! * [`differential_bitstream`] — only the frames that differ from a given
//!   baseline (smaller/faster, but *assumes an initial state* — the hazard
//!   the paper highlights when the reconfiguration order is unknown).
//!
//! [`apply_bitstream`] replays a stream into a [`ConfigMemory`] with IDCODE
//! and CRC checking — the model of what the ICAP-fed configuration logic
//! does.

use crate::crc::CrcAccumulator;
use crate::fault::FaultPlan;
use crate::packet::{decode_far, encode_far, Bitstream, Command, ConfigRegister, Packet};
use vp2_fabric::config::{ConfigMemory, FrameAddress};

/// Errors while applying a bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// Could not parse the word stream.
    Parse(crate::packet::ParseError),
    /// IDCODE register write did not match the target device.
    IdcodeMismatch {
        /// Expected device IDCODE.
        expected: u32,
        /// Value found in the stream.
        found: u32,
    },
    /// CRC register write did not match the accumulated CRC.
    CrcMismatch {
        /// Accumulated value.
        expected: u32,
        /// Value found in the stream.
        found: u32,
    },
    /// FDRI write without a preceding WCFG command.
    FdriWithoutWcfg,
    /// FDRI write without a valid FAR.
    NoFrameAddress,
    /// FDRI payload is not a whole number of frames.
    PartialFrame,
    /// FAR value did not decode or addresses no frame on this device.
    BadFrameAddress(u32),
    /// Frame auto-increment ran off the end of the device.
    AddressOverflow,
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::Parse(e) => write!(f, "parse error: {e}"),
            ApplyError::IdcodeMismatch { expected, found } => {
                write!(
                    f,
                    "IDCODE mismatch: stream {found:#010x}, device {expected:#010x}"
                )
            }
            ApplyError::CrcMismatch { expected, found } => {
                write!(
                    f,
                    "CRC mismatch: accumulated {expected:#010x}, stream {found:#010x}"
                )
            }
            ApplyError::FdriWithoutWcfg => write!(f, "FDRI write without WCFG command"),
            ApplyError::NoFrameAddress => write!(f, "FDRI write without a FAR"),
            ApplyError::PartialFrame => write!(f, "FDRI payload is not a whole frame multiple"),
            ApplyError::BadFrameAddress(w) => write!(f, "bad FAR value {w:#010x}"),
            ApplyError::AddressOverflow => write!(f, "frame address ran past device end"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// Result of a successful apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyReport {
    /// Number of frames written to configuration memory.
    pub frames_written: usize,
    /// Total stream length in words (determines ICAP shift time).
    pub words_total: usize,
}

/// Builds the standard packet prologue (IDCODE check, CRC reset, WCFG).
fn prologue(idcode: u32) -> Vec<Packet> {
    vec![
        Packet::Write {
            reg: ConfigRegister::Idcode,
            data: vec![idcode],
        },
        Packet::Write {
            reg: ConfigRegister::Cmd,
            data: vec![Command::Rcrc as u32],
        },
        Packet::Write {
            reg: ConfigRegister::Cmd,
            data: vec![Command::Wcfg as u32],
        },
    ]
}

/// Appends the CRC-check + start + desync epilogue, computing the CRC the
/// same way the apply path does.
fn epilogue(packets: &mut Vec<Packet>) {
    let mut crc = CrcAccumulator::new();
    for p in packets.iter() {
        if let Packet::Write { reg, data } = p {
            match reg {
                ConfigRegister::Crc => crc.reset(),
                _ => {
                    for &w in data {
                        crc.absorb(*reg as u8, w);
                    }
                    if *reg == ConfigRegister::Cmd && data == &[Command::Rcrc as u32] {
                        crc.reset();
                    }
                }
            }
        }
    }
    let value = crc.value();
    packets.push(Packet::Write {
        reg: ConfigRegister::Crc,
        data: vec![value],
    });
    packets.push(Packet::Write {
        reg: ConfigRegister::Cmd,
        data: vec![Command::Start as u32],
    });
    packets.push(Packet::Write {
        reg: ConfigRegister::Cmd,
        data: vec![Command::Desync as u32],
    });
}

/// Generates a full-device bitstream from `mem`.
pub fn full_bitstream(mem: &ConfigMemory, idcode: u32) -> Bitstream {
    let addrs: Vec<FrameAddress> = mem.frame_addresses().collect();
    partial_bitstream(mem, &addrs, idcode)
}

/// Generates a partial bitstream carrying the **complete** contents of the
/// given frames (taken from `mem`). Frames are grouped into runs that are
/// consecutive in device order, each run emitted as one FAR + FDRI pair.
pub fn partial_bitstream(mem: &ConfigMemory, frames: &[FrameAddress], idcode: u32) -> Bitstream {
    let order: Vec<FrameAddress> = mem.frame_addresses().collect();
    let index_of = |a: &FrameAddress| order.iter().position(|x| x == a);
    let mut indexed: Vec<(usize, FrameAddress)> = frames
        .iter()
        .map(|a| (index_of(a).expect("frame address valid for device"), *a))
        .collect();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.dedup_by_key(|&mut (i, _)| i);

    let mut packets = prologue(idcode);
    let mut run_start = 0usize;
    while run_start < indexed.len() {
        // Extend the run while device-order indices are consecutive.
        let mut run_end = run_start + 1;
        while run_end < indexed.len() && indexed[run_end].0 == indexed[run_end - 1].0 + 1 {
            run_end += 1;
        }
        let (_, first_addr) = indexed[run_start];
        packets.push(Packet::Write {
            reg: ConfigRegister::Far,
            data: vec![encode_far(first_addr)],
        });
        let mut data = Vec::new();
        for &(_, addr) in &indexed[run_start..run_end] {
            data.extend_from_slice(&mem.frame(addr).words);
        }
        packets.push(Packet::Write {
            reg: ConfigRegister::Fdri,
            data,
        });
        run_start = run_end;
    }
    epilogue(&mut packets);
    Bitstream::from_packets(&packets)
}

/// Generates a differential bitstream: only frames of `target` that differ
/// from `base`.
pub fn differential_bitstream(
    base: &ConfigMemory,
    target: &ConfigMemory,
    idcode: u32,
) -> Bitstream {
    let changed = target.diff(base);
    partial_bitstream(target, &changed, idcode)
}

/// Applies a bitstream to `mem`, enforcing IDCODE and CRC checks.
pub fn apply_bitstream(
    bs: &Bitstream,
    mem: &mut ConfigMemory,
    device_idcode: u32,
) -> Result<ApplyReport, ApplyError> {
    apply_bitstream_faulty(bs, mem, device_idcode, None)
}

/// [`apply_bitstream`] with an optional [`FaultPlan`] corrupting frame
/// payloads at the FDRI → configuration-cell boundary.
///
/// The CRC is accumulated over the stream *as received* — corruption
/// happens after the check, so a faulty apply still succeeds and only a
/// readback-verify pass can detect the damage. With `None` (or an
/// inactive plan) this is bit-identical to [`apply_bitstream`].
pub fn apply_bitstream_faulty(
    bs: &Bitstream,
    mem: &mut ConfigMemory,
    device_idcode: u32,
    mut fault: Option<&mut FaultPlan>,
) -> Result<ApplyReport, ApplyError> {
    let packets = bs.parse().map_err(ApplyError::Parse)?;
    let order: Vec<FrameAddress> = mem.frame_addresses().collect();
    let mut crc = CrcAccumulator::new();
    let mut wcfg = false;
    let mut far_index: Option<usize> = None;
    let mut frames_written = 0usize;

    for p in &packets {
        let Packet::Write { reg, data } = p else {
            continue;
        };
        match reg {
            ConfigRegister::Crc => {
                let found = *data.first().ok_or(ApplyError::PartialFrame)?;
                let expected = crc.value();
                if expected != found {
                    return Err(ApplyError::CrcMismatch { expected, found });
                }
                crc.reset();
            }
            ConfigRegister::Idcode => {
                let found = *data.first().ok_or(ApplyError::PartialFrame)?;
                if found != device_idcode {
                    return Err(ApplyError::IdcodeMismatch {
                        expected: device_idcode,
                        found,
                    });
                }
                for &w in data {
                    crc.absorb(*reg as u8, w);
                }
            }
            ConfigRegister::Cmd => {
                for &w in data {
                    crc.absorb(*reg as u8, w);
                }
                match data.first().copied().and_then(Command::from_word) {
                    Some(Command::Wcfg) => wcfg = true,
                    Some(Command::Rcrc) => crc.reset(),
                    Some(Command::Desync) => break,
                    _ => {}
                }
            }
            ConfigRegister::Far => {
                for &w in data {
                    crc.absorb(*reg as u8, w);
                }
                let raw = *data.first().ok_or(ApplyError::PartialFrame)?;
                let addr = decode_far(raw).ok_or(ApplyError::BadFrameAddress(raw))?;
                far_index = Some(
                    order
                        .iter()
                        .position(|a| *a == addr)
                        .ok_or(ApplyError::BadFrameAddress(raw))?,
                );
            }
            ConfigRegister::Fdri => {
                if !wcfg {
                    return Err(ApplyError::FdriWithoutWcfg);
                }
                for &w in data {
                    crc.absorb(*reg as u8, w);
                }
                let mut idx = far_index.ok_or(ApplyError::NoFrameAddress)?;
                let mut off = 0usize;
                while off < data.len() {
                    let addr = *order.get(idx).ok_or(ApplyError::AddressOverflow)?;
                    let len = mem.frame(addr).words.len();
                    if off + len > data.len() {
                        return Err(ApplyError::PartialFrame);
                    }
                    match fault.as_deref_mut().filter(|p| p.is_active()) {
                        Some(plan) => {
                            let mut words = data[off..off + len].to_vec();
                            plan.corrupt_frame(&mut words);
                            mem.write_frame(addr, &words);
                        }
                        None => mem.write_frame(addr, &data[off..off + len]),
                    }
                    frames_written += 1;
                    off += len;
                    idx += 1;
                }
                far_index = Some(idx);
            }
            ConfigRegister::Ctl => {
                for &w in data {
                    crc.absorb(*reg as u8, w);
                }
            }
        }
    }
    Ok(ApplyReport {
        frames_written,
        words_total: bs.word_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp2_fabric::coords::{ClbCoord, LutIndex, SliceIndex};
    use vp2_fabric::{Device, DeviceKind};

    const ID: u32 = crate::IDCODE_XC2VP7;

    fn dev() -> Device {
        Device::new(DeviceKind::Xc2vp7)
    }

    fn patterned_memory() -> ConfigMemory {
        let mut m = ConfigMemory::new(&dev());
        for col in 0..8 {
            for row in 0..8 {
                m.set_lut(
                    ClbCoord::new(col, row),
                    SliceIndex::new((row % 4) as u8),
                    LutIndex::F,
                    0x8000 | (col << 8) | row,
                );
                m.set_routing_word(
                    ClbCoord::new(col, row),
                    1,
                    u64::from(col) * 1000 + u64::from(row),
                );
            }
        }
        m
    }

    #[test]
    fn full_roundtrip() {
        let src = patterned_memory();
        let bs = full_bitstream(&src, ID);
        let mut dst = ConfigMemory::new(&dev());
        let report = apply_bitstream(&bs, &mut dst, ID).unwrap();
        assert_eq!(dst, src);
        assert_eq!(report.frames_written, src.frame_count());
    }

    #[test]
    fn differential_roundtrip_and_size() {
        let base = ConfigMemory::new(&dev());
        let target = patterned_memory();
        let diff_bs = differential_bitstream(&base, &target, ID);
        let full_bs = full_bitstream(&target, ID);
        assert!(
            diff_bs.word_count() < full_bs.word_count() / 4,
            "differential must be much smaller: {} vs {}",
            diff_bs.word_count(),
            full_bs.word_count()
        );
        let mut mem = base.clone();
        apply_bitstream(&diff_bs, &mut mem, ID).unwrap();
        assert_eq!(mem, target);
    }

    #[test]
    fn differential_assumes_initial_state() {
        // The hazard the paper describes: applying a differential config on
        // top of the WRONG initial state leaves stale bits behind.
        let base = ConfigMemory::new(&dev());
        let target = patterned_memory();
        let diff_bs = differential_bitstream(&base, &target, ID);
        // Wrong initial state: something already configured elsewhere.
        let mut wrong = ConfigMemory::new(&dev());
        wrong.set_lut(
            ClbCoord::new(20, 20),
            SliceIndex::new(0),
            LutIndex::F,
            0xFFFF,
        );
        apply_bitstream(&diff_bs, &mut wrong, ID).unwrap();
        assert_ne!(wrong, target, "stale configuration bits survive");
        assert_eq!(
            wrong.lut(ClbCoord::new(20, 20), SliceIndex::new(0), LutIndex::F),
            0xFFFF
        );
    }

    #[test]
    fn partial_of_explicit_frames() {
        let src = patterned_memory();
        let frames: Vec<FrameAddress> = src.diff(&ConfigMemory::new(&dev()));
        let bs = partial_bitstream(&src, &frames, ID);
        let mut dst = ConfigMemory::new(&dev());
        let report = apply_bitstream(&bs, &mut dst, ID).unwrap();
        assert_eq!(report.frames_written, frames.len());
        assert_eq!(dst, src);
    }

    #[test]
    fn faulty_apply_passes_crc_but_corrupts_frames() {
        let src = patterned_memory();
        let bs = full_bitstream(&src, ID);
        let mut dst = ConfigMemory::new(&dev());
        let mut plan = FaultPlan::new(5, 1.0);
        // CRC verifies on the received stream: the apply still succeeds.
        let report = apply_bitstream_faulty(&bs, &mut dst, ID, Some(&mut plan)).unwrap();
        assert_eq!(report.frames_written, src.frame_count());
        assert!(plan.frames_corrupted > 0);
        // …but readback verification catches every corrupted frame.
        let frames: Vec<FrameAddress> = src.frame_addresses().collect();
        let bad = dst.mismatched_frames(&src, &frames);
        assert_eq!(bad.len() as u64, plan.frames_corrupted);
    }

    #[test]
    fn inactive_fault_plan_is_bit_identical() {
        let src = patterned_memory();
        let bs = full_bitstream(&src, ID);
        let mut with_none = ConfigMemory::new(&dev());
        apply_bitstream(&bs, &mut with_none, ID).unwrap();
        let mut with_zero = ConfigMemory::new(&dev());
        let mut plan = FaultPlan::new(5, 0.0);
        apply_bitstream_faulty(&bs, &mut with_zero, ID, Some(&mut plan)).unwrap();
        assert_eq!(with_none, with_zero);
        assert_eq!(plan.frames_corrupted, 0);
    }

    #[test]
    fn idcode_mismatch_rejected() {
        let src = patterned_memory();
        let bs = full_bitstream(&src, ID);
        let mut dst = ConfigMemory::new(&dev());
        let err = apply_bitstream(&bs, &mut dst, crate::IDCODE_XC2VP30).unwrap_err();
        assert!(matches!(err, ApplyError::IdcodeMismatch { .. }));
    }

    #[test]
    fn corruption_detected_by_crc() {
        let src = patterned_memory();
        let mut bs = full_bitstream(&src, ID);
        // Flip a bit in the middle of the frame data.
        let mid = bs.words.len() / 2;
        bs.words[mid] ^= 0x0001_0000;
        let mut dst = ConfigMemory::new(&dev());
        let err = apply_bitstream(&bs, &mut dst, ID).unwrap_err();
        assert!(
            matches!(err, ApplyError::CrcMismatch { .. } | ApplyError::Parse(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn fdri_without_wcfg_rejected() {
        let mut packets = vec![Packet::Write {
            reg: ConfigRegister::Idcode,
            data: vec![ID],
        }];
        packets.push(Packet::Write {
            reg: ConfigRegister::Far,
            data: vec![encode_far(FrameAddress {
                block: vp2_fabric::config::FrameBlock::Clb { col: 0 },
                minor: 0,
            })],
        });
        packets.push(Packet::Write {
            reg: ConfigRegister::Fdri,
            data: vec![0; 88],
        });
        let bs = Bitstream::from_packets(&packets);
        let mut dst = ConfigMemory::new(&dev());
        assert_eq!(
            apply_bitstream(&bs, &mut dst, ID).unwrap_err(),
            ApplyError::FdriWithoutWcfg
        );
    }

    #[test]
    fn partial_frame_payload_rejected() {
        let mut packets = prologue(ID);
        packets.push(Packet::Write {
            reg: ConfigRegister::Far,
            data: vec![encode_far(FrameAddress {
                block: vp2_fabric::config::FrameBlock::Clb { col: 0 },
                minor: 0,
            })],
        });
        packets.push(Packet::Write {
            reg: ConfigRegister::Fdri,
            data: vec![0; 87], // one word short of a frame
        });
        let bs = Bitstream::from_packets(&packets);
        let mut dst = ConfigMemory::new(&dev());
        assert_eq!(
            apply_bitstream(&bs, &mut dst, ID).unwrap_err(),
            ApplyError::PartialFrame
        );
    }

    #[test]
    fn far_autoincrement_spans_columns() {
        // One FDRI write covering the last frame of CLB column 0 and the
        // first frame of CLB column 1.
        let src = patterned_memory();
        let a1 = FrameAddress {
            block: vp2_fabric::config::FrameBlock::Clb { col: 0 },
            minor: 21,
        };
        let a2 = FrameAddress {
            block: vp2_fabric::config::FrameBlock::Clb { col: 1 },
            minor: 0,
        };
        let bs = partial_bitstream(&src, &[a1, a2], ID);
        // Consecutive in device order → exactly one FAR write.
        let fars = bs
            .parse()
            .unwrap()
            .iter()
            .filter(|p| {
                matches!(
                    p,
                    Packet::Write {
                        reg: ConfigRegister::Far,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(fars, 1);
        let mut dst = ConfigMemory::new(&dev());
        apply_bitstream(&bs, &mut dst, ID).unwrap();
        assert_eq!(dst.frame(a1), src.frame(a1));
        assert_eq!(dst.frame(a2), src.frame(a2));
    }

    #[test]
    fn empty_partial_is_header_only() {
        let src = ConfigMemory::new(&dev());
        let bs = partial_bitstream(&src, &[], ID);
        let mut dst = ConfigMemory::new(&dev());
        let report = apply_bitstream(&bs, &mut dst, ID).unwrap();
        assert_eq!(report.frames_written, 0);
        assert!(bs.word_count() < 20);
    }
}
