//! Packetised bitstream format.
//!
//! A bitstream is a stream of 32-bit words: dummy padding, a sync word, a
//! sequence of type-1/type-2 register-write packets, and a desync at the
//! end. The subset of configuration registers needed for (re)configuration
//! is modelled; the frame data register (FDRI) carries frame payloads to the
//! address held in the frame address register (FAR), which auto-increments
//! across frame boundaries exactly like the silicon.

use vp2_fabric::config::{FrameAddress, FrameBlock};

/// The synchronisation word that starts configuration (same value as the
/// real device family).
pub const SYNC_WORD: u32 = 0xAA99_5566;
/// Dummy/pad word.
pub const DUMMY_WORD: u32 = 0xFFFF_FFFF;

/// Configuration registers (5-bit address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ConfigRegister {
    /// CRC check register.
    Crc = 0,
    /// Frame address register.
    Far = 1,
    /// Frame data input register.
    Fdri = 2,
    /// Command register.
    Cmd = 4,
    /// Control register.
    Ctl = 5,
    /// Device IDCODE check register.
    Idcode = 6,
}

impl ConfigRegister {
    /// Decodes a 5-bit register address.
    pub fn from_addr(a: u8) -> Option<Self> {
        Some(match a {
            0 => ConfigRegister::Crc,
            1 => ConfigRegister::Far,
            2 => ConfigRegister::Fdri,
            4 => ConfigRegister::Cmd,
            5 => ConfigRegister::Ctl,
            6 => ConfigRegister::Idcode,
            _ => return None,
        })
    }
}

/// Command-register values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Command {
    /// No operation.
    Null = 0,
    /// Write configuration data (enables FDRI → fabric).
    Wcfg = 1,
    /// Start-up sequence.
    Start = 5,
    /// Reset the CRC accumulator.
    Rcrc = 7,
    /// Desynchronise (end of stream).
    Desync = 13,
}

impl Command {
    /// Decodes a command word.
    pub fn from_word(w: u32) -> Option<Self> {
        Some(match w {
            0 => Command::Null,
            1 => Command::Wcfg,
            5 => Command::Start,
            7 => Command::Rcrc,
            13 => Command::Desync,
            _ => return None,
        })
    }
}

/// One parsed packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Pad/no-op word.
    Nop,
    /// Register write with payload.
    Write {
        /// Target register.
        reg: ConfigRegister,
        /// Payload words.
        data: Vec<u32>,
    },
}

/// Encodes a [`FrameAddress`] into a 32-bit FAR value:
/// bits `[26:25]` block type, `[24:8]` major (column), `[7:0]` minor.
pub fn encode_far(addr: FrameAddress) -> u32 {
    let (bt, major) = match addr.block {
        FrameBlock::Clb { col } => (0u32, u32::from(col)),
        FrameBlock::BramInterconnect { col } => (1, u32::from(col)),
        FrameBlock::BramContent { col } => (2, u32::from(col)),
    };
    (bt << 25) | (major << 8) | u32::from(addr.minor as u8)
}

/// Decodes a FAR value back into a [`FrameAddress`].
pub fn decode_far(far: u32) -> Option<FrameAddress> {
    let bt = (far >> 25) & 0b11;
    let major = ((far >> 8) & 0x1_FFFF) as u16;
    let minor = (far & 0xFF) as u16;
    let block = match bt {
        0 => FrameBlock::Clb { col: major },
        1 => FrameBlock::BramInterconnect { col: major },
        2 => FrameBlock::BramContent { col: major },
        _ => return None,
    };
    Some(FrameAddress { block, minor })
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Stream ended before the sync word.
    NoSync,
    /// Malformed packet header.
    BadHeader(u32),
    /// Unknown register address.
    UnknownRegister(u8),
    /// Stream ended inside a packet payload.
    Truncated,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::NoSync => write!(f, "no sync word found"),
            ParseError::BadHeader(w) => write!(f, "malformed packet header {w:#010x}"),
            ParseError::UnknownRegister(r) => write!(f, "unknown config register {r}"),
            ParseError::Truncated => write!(f, "stream truncated mid-packet"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A serialised bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitstream {
    /// Raw 32-bit words (dummy + sync + packets).
    pub words: Vec<u32>,
}

const TYPE1: u32 = 0b001 << 29;
const TYPE2: u32 = 0b010 << 29;
const OP_WRITE: u32 = 0b10 << 27;
/// Max payload expressible in a type-1 header.
const TYPE1_MAX: usize = 0x7FF;

impl Bitstream {
    /// Assembles a bitstream from packets (adds dummy + sync framing).
    pub fn from_packets(packets: &[Packet]) -> Self {
        let mut words = vec![DUMMY_WORD, SYNC_WORD];
        for p in packets {
            match p {
                Packet::Nop => words.push(TYPE1), // type-1 op=00 count=0
                Packet::Write { reg, data } => {
                    let regbits = (u32::from(*reg as u8) & 0x1F) << 13;
                    if data.len() <= TYPE1_MAX {
                        words.push(TYPE1 | OP_WRITE | regbits | data.len() as u32);
                    } else {
                        // Type-1 header with count 0, then type-2 with the
                        // long count (the FDRI long-write idiom).
                        words.push(TYPE1 | OP_WRITE | regbits);
                        words.push(TYPE2 | OP_WRITE | (data.len() as u32 & 0x07FF_FFFF));
                    }
                    words.extend_from_slice(data);
                }
            }
        }
        Bitstream { words }
    }

    /// Parses the word stream back into packets.
    pub fn parse(&self) -> Result<Vec<Packet>, ParseError> {
        let mut it = self.words.iter().copied().peekable();
        // Skip dummies; require sync.
        loop {
            match it.next() {
                Some(DUMMY_WORD) => continue,
                Some(SYNC_WORD) => break,
                _ => return Err(ParseError::NoSync),
            }
        }
        let mut packets = Vec::new();
        while let Some(h) = it.next() {
            let ty = h >> 29;
            if ty == 0b001 {
                let op = (h >> 27) & 0b11;
                if op == 0 {
                    packets.push(Packet::Nop);
                    continue;
                }
                if op != 0b10 {
                    return Err(ParseError::BadHeader(h));
                }
                let reg_addr = ((h >> 13) & 0x1F) as u8;
                let reg = ConfigRegister::from_addr(reg_addr)
                    .ok_or(ParseError::UnknownRegister(reg_addr))?;
                let mut count = (h & 0x7FF) as usize;
                // A zero-count write may be followed by a type-2 header
                // carrying the long count.
                if count == 0 {
                    if let Some(&next) = it.peek() {
                        if next >> 29 == 0b010 {
                            it.next();
                            count = (next & 0x07FF_FFFF) as usize;
                        }
                    }
                }
                let mut data = Vec::with_capacity(count);
                for _ in 0..count {
                    data.push(it.next().ok_or(ParseError::Truncated)?);
                }
                packets.push(Packet::Write { reg, data });
            } else {
                return Err(ParseError::BadHeader(h));
            }
        }
        Ok(packets)
    }

    /// Total stream length in words (what the ICAP must shift in — the
    /// quantity that determines reconfiguration time).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Stream size in bytes.
    pub fn byte_size(&self) -> usize {
        self.words.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn far_roundtrip() {
        for addr in [
            FrameAddress {
                block: FrameBlock::Clb { col: 0 },
                minor: 0,
            },
            FrameAddress {
                block: FrameBlock::Clb { col: 27 },
                minor: 21,
            },
            FrameAddress {
                block: FrameBlock::BramInterconnect { col: 3 },
                minor: 2,
            },
            FrameAddress {
                block: FrameBlock::BramContent { col: 7 },
                minor: 63,
            },
        ] {
            assert_eq!(decode_far(encode_far(addr)), Some(addr));
        }
    }

    #[test]
    fn decode_far_rejects_bad_block_type() {
        assert_eq!(decode_far(0b11 << 25), None);
    }

    #[test]
    fn packets_roundtrip_short() {
        let pkts = vec![
            Packet::Write {
                reg: ConfigRegister::Idcode,
                data: vec![0x0124_A093],
            },
            Packet::Nop,
            Packet::Write {
                reg: ConfigRegister::Cmd,
                data: vec![Command::Wcfg as u32],
            },
            Packet::Write {
                reg: ConfigRegister::Far,
                data: vec![encode_far(FrameAddress {
                    block: FrameBlock::Clb { col: 5 },
                    minor: 3,
                })],
            },
        ];
        let bs = Bitstream::from_packets(&pkts);
        assert_eq!(bs.parse().unwrap(), pkts);
    }

    #[test]
    fn packets_roundtrip_long_fdri() {
        let data: Vec<u32> = (0..5000).collect();
        let pkts = vec![Packet::Write {
            reg: ConfigRegister::Fdri,
            data,
        }];
        let bs = Bitstream::from_packets(&pkts);
        let parsed = bs.parse().unwrap();
        assert_eq!(parsed, pkts);
        // Long write used a type-2 header.
        assert!(bs.words.iter().any(|&w| w >> 29 == 0b010));
    }

    #[test]
    fn missing_sync_detected() {
        let bs = Bitstream {
            words: vec![DUMMY_WORD, 0x1234_5678],
        };
        assert_eq!(bs.parse(), Err(ParseError::NoSync));
    }

    #[test]
    fn truncated_payload_detected() {
        let mut bs = Bitstream::from_packets(&[Packet::Write {
            reg: ConfigRegister::Fdri,
            data: vec![1, 2, 3, 4],
        }]);
        bs.words.truncate(bs.words.len() - 2);
        assert_eq!(bs.parse(), Err(ParseError::Truncated));
    }

    #[test]
    fn unknown_register_detected() {
        // Hand-craft a write to register 9 (unassigned).
        let h = TYPE1 | OP_WRITE | (9 << 13) | 1;
        let bs = Bitstream {
            words: vec![DUMMY_WORD, SYNC_WORD, h, 0],
        };
        assert_eq!(bs.parse(), Err(ParseError::UnknownRegister(9)));
    }

    #[test]
    fn sizes() {
        let bs = Bitstream::from_packets(&[Packet::Nop]);
        assert_eq!(bs.word_count(), 3);
        assert_eq!(bs.byte_size(), 12);
    }

    #[test]
    fn command_roundtrip() {
        for c in [
            Command::Null,
            Command::Wcfg,
            Command::Start,
            Command::Rcrc,
            Command::Desync,
        ] {
            assert_eq!(Command::from_word(c as u32), Some(c));
        }
        assert_eq!(Command::from_word(99), None);
    }
}
