//! # coreconnect-sim — the on-chip bus system
//!
//! A transaction-level model of the CoreConnect bus architecture as used by
//! the paper's two systems: the 64-bit **PLB** (processor local bus), the
//! 32-bit **OPB** (on-chip peripheral bus), the PLB→OPB **bridge**, memory
//! controllers (on-chip BRAM, external SRAM on the OPB for the 32-bit
//! system, external DDR on the PLB for the 64-bit system), the
//! **scatter-gather DMA** engine of the PLB dock, the **interrupt
//! controller**, the **OPB HWICAP** configuration port, and stub UART/GPIO
//! peripherals.
//!
//! Timing is modelled at transaction granularity: every transfer pays
//! arbitration + address + data-beat cycles in the bus's own clock domain,
//! plus slave wait states, plus clock-domain synchronisation when crossing
//! the bridge. Buses track occupancy, so concurrent masters (CPU vs. DMA)
//! genuinely contend.

pub mod bridge;
pub mod dma;
pub mod icap;
pub mod intc;
pub mod map;
pub mod memory;
pub mod periph;
pub mod timing;

pub use bridge::Bridge;
pub use dma::{DmaDirection, DmaEngine, DmaStatus};
pub use icap::HwIcap;
pub use intc::InterruptController;
pub use memory::{DdrController, OcmRam, SramController};
pub use timing::{Bus, BusTiming};
