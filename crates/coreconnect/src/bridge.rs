//! PLB→OPB bridge.
//!
//! On the 32-bit system every CPU access to the external SRAM, the OPB dock
//! and the peripherals crosses this bridge: the transaction completes on the
//! PLB, is re-arbitrated on the OPB, and pays a clock-domain synchroniser on
//! entry. The paper attributes part of the 64-bit system's 4–6× transfer
//! improvement to the absence of this bridge ("the additional improvement
//! presumably comes from the fact that no PLB-to-OPB bridge is used").

use vp2_sim::SimTime;

/// Bridge cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct Bridge {
    /// Internal decode/buffer cycles, paid in OPB cycles.
    pub decode_opb_cycles: u64,
    /// Synchroniser stages (OPB cycles) for the clock-domain crossing.
    pub sync_opb_cycles: u64,
}

impl Default for Bridge {
    fn default() -> Self {
        Bridge {
            decode_opb_cycles: 2,
            sync_opb_cycles: 2,
        }
    }
}

impl Bridge {
    /// Extra OPB cycles a bridged transaction pays before the OPB
    /// transaction proper starts.
    pub fn overhead_cycles(&self) -> u64 {
        self.decode_opb_cycles + self.sync_opb_cycles
    }

    /// Time the request becomes visible on the OPB side, given the PLB-side
    /// completion instant and the OPB clock.
    pub fn forward(&self, plb_done: SimTime, opb_clock: vp2_sim::ClockDomain) -> SimTime {
        opb_clock.next_edge(plb_done) + opb_clock.cycles(self.overhead_cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp2_sim::ClockDomain;

    #[test]
    fn forward_adds_sync_and_decode() {
        let b = Bridge::default();
        let opb = ClockDomain::from_mhz("opb", 50);
        // PLB completes at 30ns → next OPB edge 40ns → +4 cycles = 120ns.
        assert_eq!(b.forward(SimTime::from_ns(30), opb), SimTime::from_ns(120));
        // Already on an edge: only the overhead.
        assert_eq!(b.forward(SimTime::from_ns(40), opb), SimTime::from_ns(120));
    }

    #[test]
    fn overhead_is_sum() {
        let b = Bridge {
            decode_opb_cycles: 2,
            sync_opb_cycles: 3,
        };
        assert_eq!(b.overhead_cycles(), 5);
    }
}
