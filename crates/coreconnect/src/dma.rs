//! Scatter-gather DMA engine (the PLB dock's master half).
//!
//! The engine is a register-programmed burst planner: the machine model
//! executes the bursts it plans (moving real bytes and charging real bus
//! time), then reports each burst's completion back. This split keeps the
//! engine testable in isolation while the machine owns the data plane.
//!
//! The paper: "the PLB dock includes a scatter-gather DMA controller that
//! supports 64-bit transfers … data transfers to the dynamic area have to be
//! done as a block".

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDirection {
    /// Memory → dock write channel.
    MemToDock,
    /// Dock output FIFO → memory.
    DockToMem,
}

/// Engine status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaStatus {
    /// No transfer programmed.
    Idle,
    /// Transfer in progress.
    Busy,
    /// Transfer complete (until acknowledged).
    Done,
}

/// One scatter-gather segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Memory address of the segment.
    pub addr: u32,
    /// Segment length in bytes.
    pub len: u32,
}

/// A burst the machine must now execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaBurst {
    /// Memory-side address.
    pub mem_addr: u32,
    /// Number of beats.
    pub beats: u64,
    /// Bytes moved (beats × beat size, except possibly the tail).
    pub bytes: u32,
    /// Direction.
    pub dir: DmaDirection,
}

/// The DMA engine.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    /// Beat width in bytes (8 on the 64-bit PLB).
    pub beat_bytes: u32,
    /// Maximum beats per burst (PLB burst length).
    pub max_burst_beats: u64,
    segments: Vec<Descriptor>,
    current: usize,
    offset: u32,
    dir: DmaDirection,
    status: DmaStatus,
    /// Total bytes moved since programming (statistics).
    pub bytes_moved: u64,
}

impl DmaEngine {
    /// 64-bit engine with 16-beat bursts.
    pub fn new64() -> Self {
        DmaEngine {
            beat_bytes: 8,
            max_burst_beats: 16,
            segments: Vec::new(),
            current: 0,
            offset: 0,
            dir: DmaDirection::MemToDock,
            status: DmaStatus::Idle,
            bytes_moved: 0,
        }
    }

    /// Programs a single-segment transfer.
    pub fn program(&mut self, addr: u32, len: u32, dir: DmaDirection) {
        self.program_sg(&[Descriptor { addr, len }], dir);
    }

    /// Programs a scatter-gather chain.
    ///
    /// # Panics
    /// Panics if a segment is not beat-aligned (hardware restriction — one
    /// of the paper's "significant restrictions on data organisation").
    pub fn program_sg(&mut self, segments: &[Descriptor], dir: DmaDirection) {
        for s in segments {
            assert!(
                s.addr % self.beat_bytes == 0 && s.len % self.beat_bytes == 0,
                "DMA segments must be {}-byte aligned",
                self.beat_bytes
            );
        }
        self.segments = segments.to_vec();
        self.current = 0;
        self.offset = 0;
        self.dir = dir;
        self.status = if segments.iter().all(|s| s.len == 0) || segments.is_empty() {
            DmaStatus::Done
        } else {
            DmaStatus::Busy
        };
    }

    /// Engine status.
    pub fn status(&self) -> DmaStatus {
        self.status
    }

    /// Current direction.
    pub fn direction(&self) -> DmaDirection {
        self.dir
    }

    /// Acknowledges a completed transfer, returning to idle.
    pub fn ack(&mut self) {
        if self.status == DmaStatus::Done {
            self.status = DmaStatus::Idle;
        }
    }

    /// Plans the next burst, or `None` when the transfer is finished.
    /// `fifo_room_beats` caps a mem→dock burst when the consumer applies
    /// backpressure; `fifo_avail_beats` caps a dock→mem burst by available
    /// FIFO data. Pass `u64::MAX` for "no limit".
    pub fn next_burst(&mut self, cap_beats: u64) -> Option<DmaBurst> {
        if self.status != DmaStatus::Busy || cap_beats == 0 {
            return None;
        }
        // Skip empty segments.
        while self.current < self.segments.len() && self.offset >= self.segments[self.current].len {
            self.current += 1;
            self.offset = 0;
        }
        let Some(seg) = self.segments.get(self.current) else {
            self.status = DmaStatus::Done;
            return None;
        };
        let remaining = seg.len - self.offset;
        let beats_left = u64::from(remaining / self.beat_bytes);
        let beats = beats_left.min(self.max_burst_beats).min(cap_beats);
        let bytes = (beats as u32) * self.beat_bytes;
        let burst = DmaBurst {
            mem_addr: seg.addr + self.offset,
            beats,
            bytes,
            dir: self.dir,
        };
        Some(burst)
    }

    /// Commits a burst previously returned by [`Self::next_burst`].
    pub fn burst_done(&mut self, burst: &DmaBurst) {
        self.offset += burst.bytes;
        self.bytes_moved += u64::from(burst.bytes);
        // Advance past finished segments; flag completion.
        while self.current < self.segments.len() && self.offset >= self.segments[self.current].len {
            self.current += 1;
            self.offset = 0;
        }
        if self.current >= self.segments.len() {
            self.status = DmaStatus::Done;
        }
    }

    /// Bytes still to move.
    pub fn remaining_bytes(&self) -> u64 {
        if self.status != DmaStatus::Busy {
            return 0;
        }
        let mut total = 0u64;
        for (i, s) in self.segments.iter().enumerate().skip(self.current) {
            let done = if i == self.current { self.offset } else { 0 };
            total += u64::from(s.len - done);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_segment_bursts() {
        let mut dma = DmaEngine::new64();
        dma.program(0x2000_0000, 256, DmaDirection::MemToDock); // 32 beats
        assert_eq!(dma.status(), DmaStatus::Busy);
        let b1 = dma.next_burst(u64::MAX).unwrap();
        assert_eq!(b1.mem_addr, 0x2000_0000);
        assert_eq!(b1.beats, 16);
        dma.burst_done(&b1);
        let b2 = dma.next_burst(u64::MAX).unwrap();
        assert_eq!(b2.mem_addr, 0x2000_0080);
        assert_eq!(b2.beats, 16);
        dma.burst_done(&b2);
        assert_eq!(dma.status(), DmaStatus::Done);
        assert!(dma.next_burst(u64::MAX).is_none());
        assert_eq!(dma.bytes_moved, 256);
    }

    #[test]
    fn tail_burst_is_short() {
        let mut dma = DmaEngine::new64();
        dma.program(0, 200, DmaDirection::MemToDock); // 25 beats
        let b1 = dma.next_burst(u64::MAX).unwrap();
        assert_eq!(b1.beats, 16);
        dma.burst_done(&b1);
        let b2 = dma.next_burst(u64::MAX).unwrap();
        assert_eq!(b2.beats, 9);
        dma.burst_done(&b2);
        assert_eq!(dma.status(), DmaStatus::Done);
    }

    #[test]
    fn cap_limits_burst() {
        let mut dma = DmaEngine::new64();
        dma.program(0, 256, DmaDirection::DockToMem);
        let b = dma.next_burst(5).unwrap();
        assert_eq!(b.beats, 5);
        assert!(dma.next_burst(0).is_none(), "no room: no burst");
    }

    #[test]
    fn scatter_gather_chain() {
        let mut dma = DmaEngine::new64();
        dma.program_sg(
            &[
                Descriptor { addr: 0, len: 24 },
                Descriptor {
                    addr: 0x100,
                    len: 0,
                },
                Descriptor {
                    addr: 0x200,
                    len: 16,
                },
            ],
            DmaDirection::MemToDock,
        );
        assert_eq!(dma.remaining_bytes(), 40);
        let b1 = dma.next_burst(u64::MAX).unwrap();
        assert_eq!((b1.mem_addr, b1.beats), (0, 3));
        dma.burst_done(&b1);
        let b2 = dma.next_burst(u64::MAX).unwrap();
        assert_eq!((b2.mem_addr, b2.beats), (0x200, 2));
        dma.burst_done(&b2);
        assert_eq!(dma.status(), DmaStatus::Done);
    }

    #[test]
    fn backpressure_interleaving_preserves_stream_integrity() {
        // A consumer FIFO whose free space fluctuates burst to burst:
        // the engine must emit bursts that never exceed the offered room,
        // stay within the PLB burst length, advance contiguously through
        // memory, and still deliver every byte exactly once.
        let mut dma = DmaEngine::new64();
        let total: u32 = 512; // 64 beats
        dma.program(0x3000_0000, total, DmaDirection::MemToDock);

        let rooms = [3u64, 0, 16, 1, 7, 0, 0, 2, 16, 16, 5, 9, 16, 4];
        let mut moved: u64 = 0;
        let mut expect_addr = 0x3000_0000u32;
        let mut stalls = 0;
        let mut i = 0;
        while dma.status() == DmaStatus::Busy {
            let room = rooms[i % rooms.len()];
            i += 1;
            match dma.next_burst(room) {
                Some(b) => {
                    assert!(b.beats > 0);
                    assert!(b.beats <= room, "burst exceeds FIFO room");
                    assert!(b.beats <= dma.max_burst_beats);
                    assert_eq!(b.mem_addr, expect_addr, "bursts must be contiguous");
                    assert_eq!(b.bytes, b.beats as u32 * dma.beat_bytes);
                    expect_addr += b.bytes;
                    moved += u64::from(b.bytes);
                    dma.burst_done(&b);
                }
                None => {
                    // Zero room: a stall, not a lost transfer.
                    assert_eq!(room, 0);
                    stalls += 1;
                    assert!(stalls < 100, "engine wedged under backpressure");
                }
            }
        }
        assert_eq!(moved, u64::from(total), "every byte delivered exactly once");
        assert_eq!(dma.bytes_moved, u64::from(total));
        assert_eq!(dma.remaining_bytes(), 0);
    }

    #[test]
    fn backpressure_across_scatter_gather_boundaries() {
        // Tight room (1–2 beats) while the engine walks a scatter-gather
        // chain: segment hops must not duplicate or drop beats even when
        // a segment drains mid-burst-window.
        let mut dma = DmaEngine::new64();
        dma.program_sg(
            &[
                Descriptor { addr: 0, len: 40 },   // 5 beats
                Descriptor { addr: 0x80, len: 8 }, // 1 beat
                Descriptor {
                    addr: 0x100,
                    len: 24,
                }, // 3 beats
            ],
            DmaDirection::DockToMem,
        );
        let mut log = Vec::new();
        let mut cap = 1u64;
        while let Some(b) = dma.next_burst(cap) {
            log.push((b.mem_addr, b.beats));
            dma.burst_done(&b);
            cap = if cap == 1 { 2 } else { 1 }; // alternate 1- and 2-beat room
        }
        assert_eq!(dma.status(), DmaStatus::Done);
        let beats: u64 = log.iter().map(|&(_, n)| n).sum();
        assert_eq!(beats, 9, "5 + 1 + 3 beats, no duplicates, no gaps");
        // No burst may straddle a segment boundary.
        for &(addr, n) in &log {
            let seg_end = match addr {
                a if a < 0x80 => 40,
                a if a < 0x100 => 0x80 + 8,
                _ => 0x100 + 24,
            };
            assert!(
                addr + (n as u32) * 8 <= seg_end,
                "burst straddles a segment"
            );
        }
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_segment_rejected() {
        let mut dma = DmaEngine::new64();
        dma.program(3, 8, DmaDirection::MemToDock);
    }

    #[test]
    fn ack_returns_to_idle() {
        let mut dma = DmaEngine::new64();
        dma.program(0, 8, DmaDirection::MemToDock);
        let b = dma.next_burst(u64::MAX).unwrap();
        dma.burst_done(&b);
        assert_eq!(dma.status(), DmaStatus::Done);
        dma.ack();
        assert_eq!(dma.status(), DmaStatus::Idle);
        dma.ack(); // idempotent
        assert_eq!(dma.status(), DmaStatus::Idle);
    }

    #[test]
    fn zero_length_is_immediately_done() {
        let mut dma = DmaEngine::new64();
        dma.program(0, 0, DmaDirection::MemToDock);
        assert_eq!(dma.status(), DmaStatus::Done);
    }
}
