//! Bus protocol timing and occupancy.
//!
//! Every transfer on a bus pays, in that bus's clock domain:
//! **synchronisation to the next clock edge** (requests originate in other
//! domains) + **arbitration** + **address phase** + **one data phase per
//! beat** + **slave wait states**. The bus is occupied for the whole
//! transaction, so a concurrent master (the DMA engine vs. the CPU) queues
//! behind it — the contention the paper's interleaved-transfer measurements
//! exercise.

use vp2_sim::{ClockDomain, SimTime};

/// Protocol cost parameters for one bus.
#[derive(Debug, Clone, Copy)]
pub struct BusTiming {
    /// Bus clock.
    pub clock: ClockDomain,
    /// Arbitration cycles per transaction.
    pub arbitration: u64,
    /// Address-phase cycles per transaction.
    pub address: u64,
    /// Data cycles per beat (before wait states).
    pub per_beat: u64,
}

impl BusTiming {
    /// 64-bit PLB timing: central arbiter, separate address/data phases,
    /// 1 cycle per 64-bit beat.
    pub fn plb(clock: ClockDomain) -> Self {
        BusTiming {
            clock,
            arbitration: 1,
            address: 1,
            per_beat: 1,
        }
    }

    /// 32-bit OPB timing: simpler protocol (master drives address and data),
    /// 1 cycle per 32-bit beat.
    pub fn opb(clock: ClockDomain) -> Self {
        BusTiming {
            clock,
            arbitration: 1,
            address: 1,
            per_beat: 1,
        }
    }

    /// Cycles for a transaction of `beats` beats with `wait_states` total
    /// extra slave cycles.
    pub fn cycles(&self, beats: u64, wait_states: u64) -> u64 {
        self.arbitration + self.address + beats * self.per_beat + wait_states
    }
}

/// A bus instance: timing + occupancy state.
#[derive(Debug, Clone)]
pub struct Bus {
    /// Protocol timing.
    pub timing: BusTiming,
    busy_until: SimTime,
    /// Completed transactions (statistics).
    pub transactions: u64,
    /// Total beats moved.
    pub beats: u64,
}

impl Bus {
    /// New idle bus.
    pub fn new(timing: BusTiming) -> Self {
        Bus {
            timing,
            busy_until: SimTime::ZERO,
            transactions: 0,
            beats: 0,
        }
    }

    /// Earliest instant a new transaction could start at or after `now`.
    pub fn earliest_start(&self, now: SimTime) -> SimTime {
        self.timing.clock.next_edge(now.max(self.busy_until))
    }

    /// Executes a transaction of `beats` beats (+`wait_states`) requested at
    /// `now`; returns the completion time. The bus is occupied until then.
    pub fn transfer(&mut self, now: SimTime, beats: u64, wait_states: u64) -> SimTime {
        let start = self.earliest_start(now);
        let end = start
            + self
                .timing
                .clock
                .cycles(self.timing.cycles(beats, wait_states));
        self.busy_until = end;
        self.transactions += 1;
        self.beats += beats;
        end
    }

    /// Like [`Bus::transfer`] but returns `(start, end)` (the DMA engine
    /// needs the start for back-to-back burst scheduling).
    pub fn transfer_timed(
        &mut self,
        now: SimTime,
        beats: u64,
        wait_states: u64,
    ) -> (SimTime, SimTime) {
        let start = self.earliest_start(now);
        let end = start
            + self
                .timing
                .clock
                .cycles(self.timing.cycles(beats, wait_states));
        self.busy_until = end;
        self.transactions += 1;
        self.beats += beats;
        (start, end)
    }

    /// Instant the bus becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Resets occupancy and statistics (between measurement runs).
    pub fn reset_stats(&mut self) {
        self.transactions = 0;
        self.beats = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opb50() -> Bus {
        Bus::new(BusTiming::opb(ClockDomain::from_mhz("opb", 50)))
    }

    #[test]
    fn single_transfer_cost() {
        let mut bus = opb50();
        // 1 arb + 1 addr + 1 data = 3 cycles @20ns = 60ns.
        let end = bus.transfer(SimTime::ZERO, 1, 0);
        assert_eq!(end, SimTime::from_ns(60));
    }

    #[test]
    fn wait_states_add_cycles() {
        let mut bus = opb50();
        let end = bus.transfer(SimTime::ZERO, 1, 2);
        assert_eq!(end, SimTime::from_ns(100));
    }

    #[test]
    fn burst_amortises_overhead() {
        let mut bus = Bus::new(BusTiming::plb(ClockDomain::from_mhz("plb", 100)));
        let end16 = bus.transfer(SimTime::ZERO, 16, 0);
        // 1 + 1 + 16 = 18 cycles @10ns.
        assert_eq!(end16, SimTime::from_ns(180));
    }

    #[test]
    fn unaligned_request_synchronises() {
        let mut bus = opb50();
        let end = bus.transfer(SimTime::from_ns(25), 1, 0);
        // Sync to 40ns edge, then 3 cycles.
        assert_eq!(end, SimTime::from_ns(40 + 60));
    }

    #[test]
    fn occupancy_serialises_masters() {
        let mut bus = opb50();
        let end_a = bus.transfer(SimTime::ZERO, 1, 0);
        // Second request issued while the first is in flight.
        let end_b = bus.transfer(SimTime::from_ns(10), 1, 0);
        assert_eq!(end_b, end_a + SimTime::from_ns(60));
        assert_eq!(bus.transactions, 2);
        assert_eq!(bus.beats, 2);
    }

    #[test]
    fn earliest_start_respects_edges_and_busy() {
        let mut bus = opb50();
        bus.transfer(SimTime::ZERO, 1, 0); // busy until 60ns
        assert_eq!(
            bus.earliest_start(SimTime::from_ns(10)),
            SimTime::from_ns(60)
        );
        assert_eq!(
            bus.earliest_start(SimTime::from_ns(70)),
            SimTime::from_ns(80)
        );
    }
}
