//! System address map (shared by both systems).
//!
//! Mirrors the EDK-style layout: on-chip memory low, external memory in the
//! 0x2xxx_xxxx window, peripherals and the dock high (all peripheral ranges
//! are uncacheable).

/// On-chip (BRAM) memory base — program, stack, interrupt vectors.
pub const OCM_BASE: u32 = 0x0000_0000;
/// On-chip memory size (128 KiB).
pub const OCM_SIZE: u32 = 128 * 1024;

/// External memory base (32 MB SRAM on the 32-bit system, 512 MB DDR on the
/// 64-bit system).
pub const EXTMEM_BASE: u32 = 0x2000_0000;

/// Dock data window: writes enter the dynamic region's write channel, reads
/// observe its read channel.
pub const DOCK_BASE: u32 = 0x8000_0000;
/// Dock data window size.
pub const DOCK_SIZE: u32 = 0x1_0000;

/// Dock control/status registers (PLB dock only: DMA, FIFO, IRQ).
pub const DOCK_CSR_BASE: u32 = 0x8001_0000;
/// DMA source address register offset.
pub const DOCK_CSR_DMA_SRC: u32 = 0x00;
/// DMA destination address register offset.
pub const DOCK_CSR_DMA_DST: u32 = 0x04;
/// DMA length register offset (bytes).
pub const DOCK_CSR_DMA_LEN: u32 = 0x08;
/// DMA control register offset (bit 0 start, bit 1 direction: 0 = memory →
/// dock, 1 = dock FIFO → memory; bit 2 = interleaved mode).
pub const DOCK_CSR_DMA_CTL: u32 = 0x0C;
/// DMA/dock status register offset (bit 0 busy, bit 1 done, bit 2 FIFO
/// full, bit 3 FIFO empty).
pub const DOCK_CSR_STATUS: u32 = 0x10;
/// FIFO occupancy register offset.
pub const DOCK_CSR_FIFO_LEVEL: u32 = 0x14;
/// Interrupt acknowledge register offset.
pub const DOCK_CSR_IRQ_ACK: u32 = 0x18;

/// OPB HWICAP base.
pub const HWICAP_BASE: u32 = 0x8002_0000;
/// HWICAP data FIFO register offset (write bitstream words here).
pub const HWICAP_DATA: u32 = 0x00;
/// HWICAP control register offset (bit 0: start/commit).
pub const HWICAP_CTL: u32 = 0x04;
/// HWICAP status register offset (bit 0 busy, bit 1 error).
pub const HWICAP_STATUS: u32 = 0x08;

/// Interrupt controller base.
pub const INTC_BASE: u32 = 0x8003_0000;
/// UART base.
pub const UART_BASE: u32 = 0x8004_0000;
/// GPIO base.
pub const GPIO_BASE: u32 = 0x8005_0000;

/// Interrupt line assignment: PLB dock DMA-done.
pub const IRQ_DOCK_DMA: u32 = 0;
/// Interrupt line assignment: UART.
pub const IRQ_UART: u32 = 1;

/// Is `addr` in a cacheable range? Only real memory is cacheable; the dock,
/// ICAP and peripherals must be accessed uncached.
pub fn is_cacheable(addr: u32) -> bool {
    addr < 0x8000_0000
}

/// Is `addr` in the external-memory window?
pub fn is_extmem(addr: u32) -> bool {
    (EXTMEM_BASE..0x6000_0000).contains(&addr)
}

/// Is `addr` in on-chip memory?
pub fn is_ocm(addr: u32) -> bool {
    addr < OCM_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cacheability() {
        assert!(is_cacheable(OCM_BASE));
        assert!(is_cacheable(EXTMEM_BASE));
        assert!(!is_cacheable(DOCK_BASE));
        assert!(!is_cacheable(HWICAP_BASE));
        assert!(!is_cacheable(INTC_BASE));
    }

    #[test]
    fn window_membership() {
        assert!(is_ocm(0));
        assert!(is_ocm(OCM_SIZE - 1));
        assert!(!is_ocm(OCM_SIZE));
        assert!(is_extmem(EXTMEM_BASE));
        assert!(!is_extmem(OCM_BASE));
        assert!(!is_extmem(DOCK_BASE));
    }
}
