//! Stub peripherals: UART (the external communication unit) and GPIO (LEDs
//! and push buttons, 32-bit system only), plus the JTAGPPC debug hook.
//!
//! These exist for system completeness (they appear in the paper's resource
//! tables and floorplans) and for the examples' console output; they play no
//! role in the measurements.

use vp2_sim::{ClockDomain, SimTime};

/// Serial port model: a transmit register with baud-rate pacing and a
/// capture buffer readable by tests/examples.
#[derive(Debug, Clone)]
pub struct Uart {
    /// Bits per second.
    pub baud: u64,
    tx_busy_until: SimTime,
    /// Everything ever transmitted.
    pub transcript: Vec<u8>,
}

impl Uart {
    /// UART at the conventional 115200 baud.
    pub fn new() -> Self {
        Uart {
            baud: 115_200,
            tx_busy_until: SimTime::ZERO,
            transcript: Vec::new(),
        }
    }

    /// Time for one character (8N1: 10 bit times).
    pub fn char_time(&self) -> SimTime {
        SimTime::from_ps(10 * 1_000_000_000_000 / self.baud)
    }

    /// Writes the TX register; returns when the shift completes.
    pub fn tx(&mut self, now: SimTime, byte: u8) -> SimTime {
        let start = now.max(self.tx_busy_until);
        self.tx_busy_until = start + self.char_time();
        self.transcript.push(byte);
        self.tx_busy_until
    }

    /// Is the transmitter busy at `now`?
    pub fn tx_busy(&self, now: SimTime) -> bool {
        now < self.tx_busy_until
    }

    /// Transcript as a string (lossy).
    pub fn transcript_string(&self) -> String {
        String::from_utf8_lossy(&self.transcript).into_owned()
    }
}

impl Default for Uart {
    fn default() -> Self {
        Self::new()
    }
}

/// GPIO block: LED outputs and push-button inputs.
#[derive(Debug, Clone, Default)]
pub struct Gpio {
    /// LED register.
    pub leds: u32,
    /// Button state (set by the test bench / examples).
    pub buttons: u32,
}

impl Gpio {
    /// New GPIO, everything low.
    pub fn new() -> Self {
        Self::default()
    }
}

/// JTAGPPC stub: the dedicated block connecting the JTAG port to the
/// PowerPC for download/debug. Modelled as a byte pipe with JTAG-rate
/// timing; used by the examples to "download" programs.
#[derive(Debug, Clone)]
pub struct JtagPpc {
    /// TCK frequency.
    pub tck: ClockDomain,
    /// Bytes downloaded.
    pub downloaded: u64,
}

impl JtagPpc {
    /// JTAG at a typical 10 MHz TCK.
    pub fn new() -> Self {
        JtagPpc {
            tck: ClockDomain::from_mhz("tck", 10),
            downloaded: 0,
        }
    }

    /// Time to shift `bytes` through the JTAG chain (8 TCKs per byte plus
    /// ~5% protocol overhead).
    pub fn download_time(&mut self, bytes: u64) -> SimTime {
        self.downloaded += bytes;
        self.tck.cycles(bytes * 8 + bytes / 20)
    }
}

impl Default for JtagPpc {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uart_paces_characters() {
        let mut u = Uart::new();
        let t1 = u.tx(SimTime::ZERO, b'h');
        let t2 = u.tx(SimTime::ZERO, b'i');
        assert_eq!(t2, t1 * 2, "second char waits for the first");
        assert!(u.tx_busy(t1));
        assert!(!u.tx_busy(t2));
        assert_eq!(u.transcript_string(), "hi");
        // 10 bits at 115200 ≈ 86.8 µs.
        assert!((86.0..88.0).contains(&t1.as_us_f64()));
    }

    #[test]
    fn gpio_registers() {
        let mut g = Gpio::new();
        g.leds = 0b1010;
        g.buttons = 0b01;
        assert_eq!(g.leds, 0b1010);
        assert_eq!(g.buttons, 0b01);
    }

    #[test]
    fn jtag_download_time_scales() {
        let mut j = JtagPpc::new();
        let t1 = j.download_time(1000);
        let t2 = j.download_time(2000);
        assert!(t2 > t1);
        assert_eq!(j.downloaded, 3000);
    }
}
