//! Interrupt controller (OPB INTC style).
//!
//! Added to the 64-bit system so the CPU need not poll the PLB dock for DMA
//! completion: sources raise lines, the controller ORs enabled pending lines
//! into the CPU's external-interrupt input, the handler reads the pending
//! set and acknowledges.

/// A simple 32-line interrupt controller.
#[derive(Debug, Clone, Default)]
pub struct InterruptController {
    /// Pending (latched) interrupts.
    isr: u32,
    /// Enabled interrupts.
    ier: u32,
}

impl InterruptController {
    /// New controller with everything masked.
    pub fn new() -> Self {
        Self::default()
    }

    /// A source raises line `n` (edge-latched).
    pub fn raise(&mut self, n: u32) {
        assert!(n < 32, "line out of range");
        self.isr |= 1 << n;
    }

    /// Enables line `n`.
    pub fn enable(&mut self, n: u32) {
        assert!(n < 32, "line out of range");
        self.ier |= 1 << n;
    }

    /// Disables line `n`.
    pub fn disable(&mut self, n: u32) {
        assert!(n < 32, "line out of range");
        self.ier &= !(1 << n);
    }

    /// Acknowledges (clears) line `n`.
    pub fn acknowledge(&mut self, n: u32) {
        assert!(n < 32, "line out of range");
        self.isr &= !(1 << n);
    }

    /// Pending-and-enabled set (the handler reads this).
    pub fn active(&self) -> u32 {
        self.isr & self.ier
    }

    /// Raw pending set.
    pub fn pending(&self) -> u32 {
        self.isr
    }

    /// Level of the CPU interrupt output.
    pub fn cpu_line(&self) -> bool {
        self.active() != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_lines_do_not_interrupt() {
        let mut intc = InterruptController::new();
        intc.raise(3);
        assert!(!intc.cpu_line(), "masked");
        assert_eq!(intc.pending(), 1 << 3);
        intc.enable(3);
        assert!(intc.cpu_line());
    }

    #[test]
    fn acknowledge_clears() {
        let mut intc = InterruptController::new();
        intc.enable(0);
        intc.raise(0);
        assert!(intc.cpu_line());
        intc.acknowledge(0);
        assert!(!intc.cpu_line());
        assert_eq!(intc.pending(), 0);
    }

    #[test]
    fn multiple_lines_or_together() {
        let mut intc = InterruptController::new();
        intc.enable(1);
        intc.enable(2);
        intc.raise(1);
        intc.raise(2);
        assert_eq!(intc.active(), 0b110);
        intc.acknowledge(1);
        assert!(intc.cpu_line(), "line 2 still pending");
        intc.acknowledge(2);
        assert!(!intc.cpu_line());
    }

    #[test]
    fn disable_masks_pending() {
        let mut intc = InterruptController::new();
        intc.enable(5);
        intc.raise(5);
        intc.disable(5);
        assert!(!intc.cpu_line());
        assert_eq!(intc.pending(), 1 << 5, "still latched");
    }

    #[test]
    #[should_panic(expected = "line out of range")]
    fn out_of_range_rejected() {
        InterruptController::new().raise(32);
    }
}
