//! Memory controllers: on-chip BRAM, external SRAM (OPB), external DDR
//! (PLB).
//!
//! Each controller owns its backing store and reports wait states to the
//! bus. Wait-state parameters are the calibration points documented in
//! EXPERIMENTS.md:
//!
//! * OCM (BRAM): 0 wait states — single-cycle on-chip memory;
//! * SRAM on the 32-bit system's OPB: asynchronous SRAM behind a small
//!   controller — 2 wait states per 32-bit beat;
//! * DDR on the 64-bit system's PLB: row activation + CAS on the first beat
//!   (5 wait states), then streaming beats.

/// Backing store with byte/half/word/doubleword access (big-endian, like
/// the PowerPC).
#[derive(Debug, Clone)]
pub struct MemArray {
    bytes: Vec<u8>,
}

impl MemArray {
    /// Zeroed array of `size` bytes.
    pub fn new(size: usize) -> Self {
        MemArray {
            bytes: vec![0; size],
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Is the array empty?
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Reads `size` ∈ {1,2,4} bytes at `off` (zero-extended).
    pub fn read(&self, off: usize, size: u8) -> u32 {
        match size {
            1 => u32::from(self.bytes[off]),
            2 => u32::from(u16::from_be_bytes(
                self.bytes[off..off + 2].try_into().unwrap(),
            )),
            4 => u32::from_be_bytes(self.bytes[off..off + 4].try_into().unwrap()),
            _ => panic!("bad size {size}"),
        }
    }

    /// Writes `size` ∈ {1,2,4} bytes at `off`.
    pub fn write(&mut self, off: usize, size: u8, data: u32) {
        match size {
            1 => self.bytes[off] = data as u8,
            2 => self.bytes[off..off + 2].copy_from_slice(&(data as u16).to_be_bytes()),
            4 => self.bytes[off..off + 4].copy_from_slice(&data.to_be_bytes()),
            _ => panic!("bad size {size}"),
        }
    }

    /// Reads a 64-bit doubleword (for 64-bit PLB beats).
    pub fn read_u64(&self, off: usize) -> u64 {
        u64::from_be_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Writes a 64-bit doubleword.
    pub fn write_u64(&mut self, off: usize, data: u64) {
        self.bytes[off..off + 8].copy_from_slice(&data.to_be_bytes());
    }

    /// Raw slice access (loaders, DMA block moves).
    pub fn slice(&self, off: usize, len: usize) -> &[u8] {
        &self.bytes[off..off + len]
    }

    /// Raw mutable slice access.
    pub fn slice_mut(&mut self, off: usize, len: usize) -> &mut [u8] {
        &mut self.bytes[off..off + len]
    }
}

/// On-chip BRAM memory (program/stack/vectors). Zero wait states.
#[derive(Debug, Clone)]
pub struct OcmRam {
    /// Backing store.
    pub mem: MemArray,
}

impl OcmRam {
    /// `size` bytes of on-chip memory.
    pub fn new(size: usize) -> Self {
        OcmRam {
            mem: MemArray::new(size),
        }
    }

    /// Wait states per beat.
    pub fn wait_states(&self) -> u64 {
        0
    }
}

/// External asynchronous SRAM behind the small OPB controller used by the
/// 32-bit system ("using the OPB instead of the PLB to access external
/// memory requires a much smaller controller").
#[derive(Debug, Clone)]
pub struct SramController {
    /// Backing store.
    pub mem: MemArray,
    /// Wait states per 32-bit access.
    pub wait_states: u64,
}

impl SramController {
    /// 32 MB SRAM with the default 2 wait states.
    pub fn new(size: usize) -> Self {
        SramController {
            mem: MemArray::new(size),
            wait_states: 2,
        }
    }
}

/// External DDR DRAM on the 64-bit system's PLB.
#[derive(Debug, Clone)]
pub struct DdrController {
    /// Backing store.
    pub mem: MemArray,
    /// Wait states on the first beat of a transaction (activation + CAS).
    pub first_beat_wait: u64,
    /// Wait states on each subsequent beat of a burst.
    pub per_beat_wait: u64,
}

impl DdrController {
    /// DDR with default timing (5 cycles first beat, streaming thereafter).
    pub fn new(size: usize) -> Self {
        DdrController {
            mem: MemArray::new(size),
            first_beat_wait: 5,
            per_beat_wait: 0,
        }
    }

    /// Total wait states for a burst of `beats`.
    pub fn burst_wait_states(&self, beats: u64) -> u64 {
        if beats == 0 {
            0
        } else {
            self.first_beat_wait + self.per_beat_wait * (beats - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_array_endianness() {
        let mut m = MemArray::new(16);
        m.write(0, 4, 0x0102_0304);
        assert_eq!(m.read(0, 1), 0x01, "big-endian");
        assert_eq!(m.read(2, 2), 0x0304);
        m.write_u64(8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(8, 4), 0x1122_3344);
        assert_eq!(m.read_u64(8), 0x1122_3344_5566_7788);
    }

    #[test]
    fn slices() {
        let mut m = MemArray::new(8);
        m.slice_mut(2, 3).copy_from_slice(&[9, 8, 7]);
        assert_eq!(m.slice(2, 3), &[9, 8, 7]);
        assert_eq!(m.len(), 8);
        assert!(!m.is_empty());
    }

    #[test]
    fn ddr_burst_wait_states() {
        let d = DdrController::new(64);
        assert_eq!(d.burst_wait_states(0), 0);
        assert_eq!(d.burst_wait_states(1), 5);
        assert_eq!(d.burst_wait_states(16), 5);
        let mut d2 = d.clone();
        d2.per_beat_wait = 1;
        assert_eq!(d2.burst_wait_states(4), 8);
    }

    #[test]
    fn controllers_default_timing() {
        assert_eq!(OcmRam::new(64).wait_states(), 0);
        assert_eq!(SramController::new(64).wait_states, 2);
    }
}
