//! OPB HWICAP — the internal configuration access port controller.
//!
//! The configuration memory controller of both systems: the CPU writes
//! bitstream words into the HWICAP's FIFO over the OPB, and the ICAP block
//! shifts them into the configuration logic at one word per ICAP clock
//! cycle. Reconfiguration time is therefore proportional to bitstream
//! length — which is exactly why BitLinker's *complete* configurations (vs.
//! differential ones) "have the side effect of increasing the configuration
//! time", a trade-off one of the benches quantifies.

use rtr_trace::{EventKind, Tracer};
use vp2_bitstream::{apply_bitstream_faulty, ApplyError, ApplyReport, Bitstream, FaultPlan};
use vp2_fabric::ConfigMemory;
use vp2_sim::{ClockDomain, SimTime};

/// HWICAP device state.
#[derive(Debug, Clone)]
pub struct HwIcap {
    /// ICAP clock (the configuration logic's shift clock).
    pub icap_clock: ClockDomain,
    /// Words buffered since the last commit.
    buffer: Vec<u32>,
    /// Device IDCODE the configuration logic checks against.
    idcode: u32,
    /// Busy until this instant (while shifting a committed stream).
    busy_until: SimTime,
    /// Sticky error flag from the last commit.
    error: bool,
    /// Total words shifted (statistics).
    pub words_shifted: u64,
    /// Completed reconfigurations.
    pub reconfigurations: u64,
    /// Optional fault injection at the FDRI → configuration-cell boundary.
    fault: Option<FaultPlan>,
    /// Trace journal (disabled by default; commits emit burst events).
    tracer: Tracer,
}

impl HwIcap {
    /// New HWICAP for a device with the given IDCODE.
    pub fn new(icap_clock: ClockDomain, idcode: u32) -> Self {
        HwIcap {
            icap_clock,
            buffer: Vec::new(),
            idcode,
            busy_until: SimTime::ZERO,
            error: false,
            words_shifted: 0,
            reconfigurations: 0,
            fault: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer handle; commits emit [`EventKind::IcapBurst`]
    /// (and [`EventKind::FaultHit`] when the fault plane strikes).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs (or clears) a fault-injection plan. Commits made while a
    /// plan is active may silently corrupt frames after the CRC check;
    /// only readback verification can detect them.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The installed fault plan, for inspecting its corruption counters.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// MMIO write to the data FIFO.
    pub fn write_data(&mut self, word: u32) {
        self.buffer.push(word);
    }

    /// Number of buffered words.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Is the port still shifting at `now`?
    pub fn busy(&self, now: SimTime) -> bool {
        now < self.busy_until
    }

    /// Did the last commit fail?
    pub fn error(&self) -> bool {
        self.error
    }

    /// Instant the current shift completes.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Occupies the port for a `words`-long readback starting no earlier
    /// than `from` (queued behind any in-flight shift), returning the
    /// completion instant. Background scrubbing charges its configuration
    /// readback through this, so scrub passes visibly contend with swap
    /// traffic for the ICAP without counting as shifted words.
    pub fn occupy(&mut self, from: SimTime, words: usize) -> SimTime {
        let start = self.icap_clock.next_edge(from.max(self.busy_until));
        self.busy_until = start + self.icap_clock.cycles(words as u64);
        self.busy_until
    }

    /// MMIO write to the control register with the start bit: commits the
    /// buffered words as a bitstream, applying it to `mem`. Returns the
    /// apply report; the port stays busy for `words × 1 ICAP cycle`.
    pub fn commit(
        &mut self,
        now: SimTime,
        mem: &mut ConfigMemory,
    ) -> Result<ApplyReport, ApplyError> {
        let words = std::mem::take(&mut self.buffer);
        let nwords = words.len();
        // A compressed stream is expanded by the decompressor in front of
        // the configuration logic; the port is only busy for the words
        // that actually crossed it, which is where the compression win
        // lands. A stream that claims the magic but does not decode is a
        // malformed stream like any other.
        let words = if vp2_bitstream::is_compressed(&words) {
            match vp2_bitstream::decompress_words(&words) {
                Some(decoded) => decoded,
                None => {
                    self.error = true;
                    return Err(ApplyError::Parse(
                        vp2_bitstream::packet::ParseError::Truncated,
                    ));
                }
            }
        } else {
            words
        };
        let bs = Bitstream { words };
        let start = self.icap_clock.next_edge(now.max(self.busy_until));
        self.busy_until = start + self.icap_clock.cycles(nwords as u64);
        self.words_shifted += nwords as u64;
        if self.tracer.on() {
            self.tracer.emit(
                start,
                EventKind::IcapBurst {
                    words: nwords as u32,
                    done: self.busy_until,
                },
            );
        }
        let corrupted_before = self.fault.as_ref().map_or(0, |p| p.frames_corrupted);
        let result = apply_bitstream_faulty(&bs, mem, self.idcode, self.fault.as_mut());
        if self.tracer.on() {
            let hit = self.fault.as_ref().map_or(0, |p| p.frames_corrupted) - corrupted_before;
            if hit > 0 {
                self.tracer
                    .emit(start, EventKind::FaultHit { frames: hit as u32 });
            }
        }
        match result {
            Ok(report) => {
                self.error = false;
                self.reconfigurations += 1;
                Ok(report)
            }
            Err(e) => {
                self.error = true;
                Err(e)
            }
        }
    }

    /// Convenience for the module manager: feeds and commits an entire
    /// bitstream, returning `(completion_time, report)`. The feed time
    /// (CPU/OPB side) is charged by the machine per word; this accounts only
    /// for the ICAP shift side.
    pub fn load_bitstream(
        &mut self,
        now: SimTime,
        bs: &Bitstream,
        mem: &mut ConfigMemory,
    ) -> Result<(SimTime, ApplyReport), ApplyError> {
        for &w in &bs.words {
            self.write_data(w);
        }
        let report = self.commit(now, mem)?;
        Ok((self.busy_until, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp2_bitstream::{full_bitstream, IDCODE_XC2VP7};
    use vp2_fabric::coords::{ClbCoord, LutIndex, SliceIndex};
    use vp2_fabric::{Device, DeviceKind};

    fn icap() -> HwIcap {
        HwIcap::new(ClockDomain::from_mhz("icap", 50), IDCODE_XC2VP7)
    }

    #[test]
    fn load_applies_and_times() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let mut src = ConfigMemory::new(&dev);
        src.set_lut(ClbCoord::new(1, 2), SliceIndex::new(3), LutIndex::G, 0xABCD);
        let bs = full_bitstream(&src, IDCODE_XC2VP7);
        let mut dst = ConfigMemory::new(&dev);
        let mut port = icap();
        let (done, report) = port.load_bitstream(SimTime::ZERO, &bs, &mut dst).unwrap();
        assert_eq!(dst, src);
        assert_eq!(report.words_total, bs.word_count());
        // One word per 20ns ICAP cycle.
        assert_eq!(done, SimTime::from_ns(20) * bs.word_count() as u64);
        assert!(port.busy(done - SimTime::from_ns(1)));
        assert!(!port.busy(done));
        assert_eq!(port.reconfigurations, 1);
    }

    #[test]
    fn commit_clears_buffer() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let mut mem = ConfigMemory::new(&dev);
        let bs = full_bitstream(&mem.clone(), IDCODE_XC2VP7);
        let mut port = icap();
        for &w in &bs.words {
            port.write_data(w);
        }
        assert_eq!(port.buffered(), bs.word_count());
        port.commit(SimTime::ZERO, &mut mem).unwrap();
        assert_eq!(port.buffered(), 0);
    }

    #[test]
    fn bad_stream_sets_error() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let mut mem = ConfigMemory::new(&dev);
        let mut port = icap();
        port.write_data(0x1234_5678); // garbage, no sync
        let err = port.commit(SimTime::ZERO, &mut mem);
        assert!(err.is_err());
        assert!(port.error());
    }

    #[test]
    fn fault_plan_corrupts_silently_until_readback() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let mut src = ConfigMemory::new(&dev);
        src.set_lut(ClbCoord::new(1, 2), SliceIndex::new(3), LutIndex::G, 0xABCD);
        let bs = full_bitstream(&src, IDCODE_XC2VP7);
        let mut dst = ConfigMemory::new(&dev);
        let mut port = icap();
        port.set_fault_plan(Some(vp2_bitstream::FaultPlan::new(1, 1.0)));
        // The commit reports success — no sticky error, CRC verified.
        let (_, report) = port.load_bitstream(SimTime::ZERO, &bs, &mut dst).unwrap();
        assert!(!port.error());
        assert_eq!(report.frames_written, src.frame_count());
        // Yet the fabric holds the wrong bits; readback sees them all.
        let plan = port.fault_plan().expect("plan installed");
        assert_eq!(plan.frames_corrupted as usize, src.frame_count());
        let frames: Vec<_> = src.frame_addresses().collect();
        assert_eq!(
            dst.mismatched_frames(&src, &frames).len(),
            src.frame_count()
        );
    }

    #[test]
    fn compressed_stream_decodes_and_shifts_fewer_words() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let mut src = ConfigMemory::new(&dev);
        src.set_lut(ClbCoord::new(1, 2), SliceIndex::new(3), LutIndex::G, 0xABCD);
        let bs = full_bitstream(&src, IDCODE_XC2VP7);
        let packed = vp2_bitstream::compress_words(&bs.words);
        assert!(packed.len() < bs.word_count(), "full config compresses");
        let mut dst = ConfigMemory::new(&dev);
        let mut port = icap();
        for &w in &packed {
            port.write_data(w);
        }
        port.commit(SimTime::ZERO, &mut dst).unwrap();
        assert_eq!(dst, src, "decoded stream configures the fabric");
        // The port was only busy for the compressed words.
        assert_eq!(port.words_shifted, packed.len() as u64);
        assert_eq!(
            port.busy_until(),
            SimTime::from_ns(20) * packed.len() as u64
        );
    }

    #[test]
    fn corrupt_compressed_stream_sets_error() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let mut mem = ConfigMemory::new(&dev);
        let mut port = icap();
        port.write_data(vp2_bitstream::COMPRESSED_MAGIC);
        port.write_data(99); // claims 99 decoded words, then ends
        assert!(port.commit(SimTime::ZERO, &mut mem).is_err());
        assert!(port.error());
    }

    #[test]
    fn back_to_back_loads_queue() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let mut mem = ConfigMemory::new(&dev);
        let bs = full_bitstream(&mem.clone(), IDCODE_XC2VP7);
        let mut port = icap();
        let (done1, _) = port.load_bitstream(SimTime::ZERO, &bs, &mut mem).unwrap();
        let (done2, _) = port.load_bitstream(SimTime::ZERO, &bs, &mut mem).unwrap();
        assert!(done2 >= done1 + SimTime::from_ns(20) * (bs.word_count() as u64));
    }
}
