//! One telemetry sample and the gauge kinds that feed it.

use vp2_sim::{Json, SimTime};

/// How a sampled number turns into the value the row carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GaugeKind {
    /// An instantaneous value, exported as-is (queue depth, an EWMA, a
    /// hit rate).
    Value(f64),
    /// A cumulative, monotone total (completed requests, busy seconds,
    /// steals). The row carries the **per-simulated-second rate** since
    /// the scope's previous sample — utilization falls out of this for
    /// free: the rate of cumulative busy-seconds *is* the busy fraction.
    Rate(f64),
}

/// A named sample heading into one telemetry row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gauge {
    /// Stable gauge name (a JSON key in the row's `gauges` object).
    pub name: &'static str,
    /// Instantaneous value or cumulative-total-to-rate.
    pub kind: GaugeKind,
}

impl Gauge {
    /// An instantaneous gauge.
    pub fn value(name: &'static str, value: f64) -> Gauge {
        Gauge {
            name,
            kind: GaugeKind::Value(value),
        }
    }

    /// A cumulative counter, exported as a rate per simulated second.
    pub fn rate(name: &'static str, total: f64) -> Gauge {
        Gauge {
            name,
            kind: GaugeKind::Rate(total),
        }
    }
}

/// One emitted telemetry sample: at most one per `(shard, scope)` per
/// tick, carrying that instant's gauge values.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRow {
    /// Sample tick (`time / tick_period`, on the simulated clock).
    pub tick: u64,
    /// Simulated instant the sample was taken.
    pub time: SimTime,
    /// Shard id of the series this row belongs to.
    pub shard: u32,
    /// Per-shard emission sequence number (strictly increasing).
    pub seq: u64,
    /// What was sampled: `"service"`, `"buffer"`, `"window"` or
    /// `"federation"`.
    pub scope: &'static str,
    /// Resolved gauge values, in the order the caller listed them
    /// (rates already converted from cumulative totals).
    pub gauges: Vec<(&'static str, f64)>,
}

impl TelemetryRow {
    /// The `(tick, shard, seq)` merge key — the canonical total order.
    pub fn key(&self) -> (u64, u32, u64) {
        (self.tick, self.shard, self.seq)
    }

    /// Flat JSONL rendering: ordering keys first, then the gauges as a
    /// self-describing object (never empty — the lint checks).
    pub fn to_json(&self) -> Json {
        let mut gauges = Json::obj();
        for (name, value) in &self.gauges {
            gauges = gauges.field(name, *value);
        }
        Json::obj()
            .field("tick", self.tick)
            .field("time_ps", self.time.as_ps())
            .field("shard", u64::from(self.shard))
            .field("seq", self.seq)
            .field("scope", self.scope)
            .field("gauges", gauges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_json_leads_with_the_merge_key_and_round_trips() {
        let row = TelemetryRow {
            tick: 7,
            time: SimTime::from_us(7500),
            shard: 3,
            seq: 41,
            scope: "service",
            gauges: vec![("queue_depth", 4.0), ("region_util", 0.25)],
        };
        let text = row.to_json().render();
        assert!(text.starts_with("{\"tick\":7,"));
        let doc = Json::parse(&text).expect("row parses");
        assert_eq!(doc.get("shard").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("scope").and_then(Json::as_str), Some("service"));
        let gauges = doc.get("gauges").expect("gauges object");
        assert_eq!(gauges.get("queue_depth").and_then(Json::as_f64), Some(4.0));
    }
}
