//! # rtr-telemetry — deterministic streaming time-series metrics plane
//!
//! End-of-run snapshots say *what* a run cost; they cannot say *when*
//! the cost was paid. The paper's whole argument — reconfiguration pays
//! only when its overhead is measured and amortized — is a claim about
//! trajectories, so this crate samples the stack while it runs: queue
//! depths, buffered bytes, region utilization, the measured
//! reconfiguration EWMA, cache hit rates, swap/steal/shed rates, and
//! per-lane tail latencies from bounded ring windows.
//!
//! The design mirrors `rtr-trace` deliberately:
//!
//! * A [`Telemetry`] handle is a sibling of `Tracer`: cheaply cloneable,
//!   `Send`, [`Telemetry::disabled`] by default (every instrumentation
//!   point costs one branch when telemetry is off), fanned out per shard
//!   with [`Telemetry::with_shard`].
//! * Samples are stamped with a **tick** — simulated time divided by a
//!   fixed tick period — and deduplicated per `(shard, scope)` per tick,
//!   so the emission *rate* is bounded by the tick period no matter how
//!   busy the run is.
//! * Each shard's series streams to its own JSONL file
//!   (`{base}.shardNNN.tl.jsonl`) as rows are emitted, and
//!   [`Telemetry::merge_streams`] folds them into one file ordered by
//!   `(tick, shard, seq)` — a total order independent of thread
//!   interleaving, so equal seeds produce byte-identical telemetry at
//!   any thread count, exactly like the trace journals.
//!
//! Sampling is **read-only**: it never touches the simulated clock or
//! any model state, so a telemetry-off run is byte-identical to a build
//! without telemetry, and a telemetry-on run's snapshots are
//! byte-identical to a telemetry-off run's.

#![warn(missing_docs)]

mod handle;
mod row;

pub use handle::{Telemetry, DEFAULT_CAPACITY, DEFAULT_TICK_PS, LANE_WINDOW};
pub use row::{Gauge, GaugeKind, TelemetryRow};
