//! The telemetry handle, its per-shard series, and the streaming sink.
//!
//! Structurally a sibling of `rtr_trace::Tracer`: a registry of
//! per-shard series behind `Arc<Mutex<_>>`, handles resolved once at
//! creation so the sampling path never touches the registry lock, JSONL
//! sinks attached per series, and a `(tick, shard, seq)` merge that is
//! a total order independent of thread interleaving.
//!
//! What is *not* shared with the tracer is the emission model: instead
//! of journaling every event, a series accepts at most one row per
//! `(scope, tick)` — the caller samples opportunistically (every batch,
//! every flush) and the handle throttles to the tick grid, so a 10×
//! busier run emits the same number of rows per simulated second.

use std::collections::{BTreeMap, VecDeque};
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::{Arc, Mutex};

use vp2_sim::{Json, SimTime};

use crate::row::{Gauge, GaugeKind, TelemetryRow};

/// Default tick period: 1 ms of simulated time (1e9 ps). The reference
/// workloads span tens to hundreds of milliseconds, so the default
/// yields tens to hundreds of samples per scope.
pub const DEFAULT_TICK_PS: u64 = 1_000_000_000;

/// Default per-shard in-memory row capacity; the streaming sink keeps
/// every row regardless.
pub const DEFAULT_CAPACITY: usize = 1 << 14;

/// Latency samples each per-lane ring window holds: tails are computed
/// over the most recent `LANE_WINDOW` completions, so memory stays
/// constant however long the run.
pub const LANE_WINDOW: usize = 512;

/// A fixed-capacity overwrite-oldest window of latency samples.
#[derive(Debug)]
struct Ring {
    cap: usize,
    buf: Vec<u64>,
    next: usize,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            cap,
            buf: Vec::new(),
            next: 0,
        }
    }

    fn push(&mut self, ps: u64) {
        if self.buf.len() < self.cap {
            self.buf.push(ps);
        } else {
            self.buf[self.next] = ps;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// 99th percentile over the window, `None` while empty.
    fn p99(&self) -> Option<u64> {
        if self.buf.is_empty() {
            return None;
        }
        let mut sorted = self.buf.clone();
        sorted.sort_unstable();
        let rank = (0.99 * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }
}

/// One shard's series: the bounded row ring, the per-scope tick dedup
/// and rate state, the per-lane latency windows, and the optional
/// streaming sink.
struct Series {
    rows: VecDeque<TelemetryRow>,
    capacity: usize,
    dropped: u64,
    next_seq: u64,
    /// Last tick a row was emitted for, per scope — the dedup that
    /// bounds the emission rate to the tick grid.
    last_tick: BTreeMap<&'static str, u64>,
    /// Previous `(time_ps, cumulative)` per `(scope, gauge)`, for
    /// converting cumulative totals into per-second rates.
    prev: BTreeMap<(&'static str, &'static str), (u64, f64)>,
    deadline_ring: Ring,
    effort_ring: Ring,
    sink: Option<BufWriter<File>>,
    sink_path: Option<String>,
}

impl Series {
    fn new(capacity: usize, lane_window: usize) -> Series {
        Series {
            rows: VecDeque::new(),
            capacity,
            dropped: 0,
            next_seq: 0,
            last_tick: BTreeMap::new(),
            prev: BTreeMap::new(),
            deadline_ring: Ring::new(lane_window),
            effort_ring: Ring::new(lane_window),
            sink: None,
            sink_path: None,
        }
    }

    fn attach_sink(&mut self, path: &str) -> std::io::Result<()> {
        self.sink = Some(BufWriter::new(File::create(path)?));
        self.sink_path = Some(path.to_string());
        Ok(())
    }
}

/// State shared by every clone of an enabled telemetry handle.
struct Shared {
    capacity: usize,
    tick_ps: u64,
    lane_window: usize,
    series: Mutex<BTreeMap<u32, Arc<Mutex<Series>>>>,
    /// JSONL stream base path, once [`Telemetry::stream_to`] was
    /// called; series registered later attach their sink on creation.
    stream_base: Mutex<Option<String>>,
}

impl Shared {
    /// The series in shard order (the deterministic fold order).
    fn series(&self) -> Vec<(u32, Arc<Mutex<Series>>)> {
        self.series
            .lock()
            .expect("series registry poisoned")
            .iter()
            .map(|(shard, s)| (*shard, Arc::clone(s)))
            .collect()
    }
}

/// The JSONL file one shard's streamed series lands in. The `.tl.`
/// infix keeps telemetry streams distinct from the trace journals that
/// may share a base path.
fn shard_stream_path(base: &str, shard: u32) -> String {
    format!("{base}.shard{shard:03}.tl.jsonl")
}

/// A cheaply cloneable, `Send` handle onto a set of per-shard telemetry
/// series.
///
/// [`Telemetry::with_shard`] derives a handle bound to that shard's
/// series (created on first use), which is how one cluster-level handle
/// fans out across a pool whose shards flush on worker threads. The
/// disabled handle is a `None`: [`Telemetry::on`] is a single branch
/// and [`Telemetry::sample`] a no-op, so instrumentation costs nothing
/// when telemetry is off.
#[derive(Clone, Default)]
pub struct Telemetry {
    shared: Option<Arc<Shared>>,
    /// This handle's shard series, resolved once at handle creation so
    /// the sampling path never touches the registry lock.
    series: Option<Arc<Mutex<Series>>>,
    shard: u32,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.shared {
            Some(shared) => write!(
                f,
                "Telemetry(shard {}, tick {} ps, {} rows)",
                self.shard,
                shared.tick_ps,
                self.len()
            ),
            None => write!(f, "Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    /// The no-op handle (the default everywhere).
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// An enabled handle sampling on the default 1 ms tick.
    pub fn enabled() -> Telemetry {
        Telemetry::with_tick(SimTime::from_ps(DEFAULT_TICK_PS))
    }

    /// An enabled handle sampling on the given tick period.
    ///
    /// # Panics
    /// Panics if `tick` is zero — a zero period has no tick grid.
    pub fn with_tick(tick: SimTime) -> Telemetry {
        assert!(!tick.is_zero(), "the tick period must be positive");
        let shared = Arc::new(Shared {
            capacity: DEFAULT_CAPACITY,
            tick_ps: tick.as_ps(),
            lane_window: LANE_WINDOW,
            series: Mutex::new(BTreeMap::new()),
            stream_base: Mutex::new(None),
        });
        let telemetry = Telemetry {
            shared: Some(shared),
            series: None,
            shard: 0,
        };
        telemetry.with_shard(0)
    }

    /// A handle bound to `shard`'s series (created on first use, with a
    /// streaming sink attached when [`Telemetry::stream_to`] is
    /// active).
    pub fn with_shard(&self, shard: u32) -> Telemetry {
        let Some(shared) = &self.shared else {
            return Telemetry::disabled();
        };
        let mut registry = shared.series.lock().expect("series registry poisoned");
        let series = registry
            .entry(shard)
            .or_insert_with(|| {
                let mut series = Series::new(shared.capacity, shared.lane_window);
                let base = shared.stream_base.lock().expect("stream base poisoned");
                if let Some(base) = base.as_deref() {
                    let path = shard_stream_path(base, shard);
                    series
                        .attach_sink(&path)
                        .unwrap_or_else(|e| panic!("telemetry stream: cannot create {path}: {e}"));
                }
                Arc::new(Mutex::new(series))
            })
            .clone();
        drop(registry);
        Telemetry {
            shared: Some(Arc::clone(shared)),
            series: Some(series),
            shard,
        }
    }

    /// Is this handle recording? Check before gathering gauge values
    /// whose computation costs anything.
    #[inline]
    pub fn on(&self) -> bool {
        self.shared.is_some()
    }

    /// The sampling tick period ([`SimTime::ZERO`] when disabled).
    pub fn tick_period(&self) -> SimTime {
        self.shared
            .as_ref()
            .map_or(SimTime::ZERO, |s| SimTime::from_ps(s.tick_ps))
    }

    /// Feeds one completed request's latency into this shard's per-lane
    /// ring window. The windows are what
    /// [`Telemetry::sample_with_tails`] computes p99 gauges over —
    /// constant memory however long the run.
    pub fn record_latency(&self, deadline: bool, latency: SimTime) {
        let Some(series) = &self.series else { return };
        let mut s = series.lock().expect("series poisoned");
        if deadline {
            s.deadline_ring.push(latency.as_ps());
        } else {
            s.effort_ring.push(latency.as_ps());
        }
    }

    /// Takes one sample at simulated instant `time` under `scope`. At
    /// most one row per `(scope, tick)` is emitted — later samples on
    /// the same tick are dropped, so callers sample opportunistically
    /// (every batch, every flush) and the tick grid bounds the output.
    ///
    /// [`GaugeKind::Rate`] gauges carry cumulative totals; the emitted
    /// value is the per-simulated-second rate since the scope's
    /// previous row (from zero, for the first row).
    pub fn sample(&self, time: SimTime, scope: &'static str, gauges: &[Gauge]) {
        self.sample_inner(time, scope, gauges, false);
    }

    /// Like [`Telemetry::sample`], appending `p99_deadline_us` /
    /// `p99_effort_us` gauges computed over the shard's per-lane ring
    /// windows — each present only once its lane has recorded a sample,
    /// mirroring the snapshot JSON's gating of per-lane fields.
    pub fn sample_with_tails(&self, time: SimTime, scope: &'static str, gauges: &[Gauge]) {
        self.sample_inner(time, scope, gauges, true);
    }

    fn sample_inner(&self, time: SimTime, scope: &'static str, gauges: &[Gauge], tails: bool) {
        let (Some(series), Some(shared)) = (&self.series, &self.shared) else {
            return;
        };
        let tick = time.as_ps() / shared.tick_ps;
        let mut s = series.lock().expect("series poisoned");
        if s.last_tick.get(scope) == Some(&tick) {
            return;
        }
        s.last_tick.insert(scope, tick);
        let mut values: Vec<(&'static str, f64)> = Vec::with_capacity(gauges.len() + 2);
        for gauge in gauges {
            match gauge.kind {
                GaugeKind::Value(v) => values.push((gauge.name, v)),
                GaugeKind::Rate(total) => {
                    let (prev_ps, prev_total) = s
                        .prev
                        .get(&(scope, gauge.name))
                        .copied()
                        .unwrap_or((0, 0.0));
                    // The first sample of a run can land at time 0;
                    // charge it one tick so the rate stays finite.
                    let dt_ps = match time.as_ps().saturating_sub(prev_ps) {
                        0 => shared.tick_ps,
                        dt => dt,
                    };
                    let rate = (total - prev_total).max(0.0) / (dt_ps as f64 * 1e-12);
                    s.prev.insert((scope, gauge.name), (time.as_ps(), total));
                    values.push((gauge.name, rate));
                }
            }
        }
        if tails {
            if let Some(p99) = s.deadline_ring.p99() {
                values.push(("p99_deadline_us", SimTime::from_ps(p99).as_us_f64()));
            }
            if let Some(p99) = s.effort_ring.p99() {
                values.push(("p99_effort_us", SimTime::from_ps(p99).as_us_f64()));
            }
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        let row = TelemetryRow {
            tick,
            time,
            shard: self.shard,
            seq,
            scope,
            gauges: values,
        };
        if let Some(sink) = &mut s.sink {
            let mut line = row.to_json().render();
            line.push('\n');
            sink.write_all(line.as_bytes())
                .expect("telemetry stream: write failed");
        }
        if s.rows.len() == s.capacity {
            s.rows.pop_front();
            s.dropped += 1;
        }
        s.rows.push_back(row);
    }

    /// Snapshot of the merged in-memory rows, ordered by
    /// `(tick, shard, seq)` — the same total order the streamed merge
    /// sorts by, independent of how shard threads interleaved.
    pub fn rows(&self) -> Vec<TelemetryRow> {
        let Some(shared) = &self.shared else {
            return Vec::new();
        };
        let mut all = Vec::new();
        for (_, series) in shared.series() {
            let s = series.lock().expect("series poisoned");
            all.extend(s.rows.iter().cloned());
        }
        all.sort_by_key(TelemetryRow::key);
        all
    }

    /// Rows currently held across every shard's in-memory ring.
    pub fn len(&self) -> usize {
        let Some(shared) = &self.shared else { return 0 };
        shared
            .series()
            .iter()
            .map(|(_, s)| s.lock().expect("series poisoned").rows.len())
            .sum()
    }

    /// Is the series empty (always true when disabled)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows evicted by the per-shard capacity bound, summed.
    pub fn dropped(&self) -> u64 {
        let Some(shared) = &self.shared else { return 0 };
        shared
            .series()
            .iter()
            .map(|(_, s)| s.lock().expect("series poisoned").dropped)
            .sum()
    }

    /// Attaches a buffered JSONL sink to every series: each shard's
    /// rows append to `<base>.shardNNN.tl.jsonl` as they are emitted.
    /// Series created later (new shards) attach their sink on creation.
    /// Call before the run — rows emitted earlier are not replayed.
    pub fn stream_to(&self, base: &str) -> std::io::Result<()> {
        let Some(shared) = &self.shared else {
            return Ok(());
        };
        *shared.stream_base.lock().expect("stream base poisoned") = Some(base.to_string());
        for (shard, series) in shared.series() {
            let mut s = series.lock().expect("series poisoned");
            if s.sink.is_none() {
                s.attach_sink(&shard_stream_path(base, shard))?;
            }
        }
        Ok(())
    }

    /// Flushes every streaming sink and returns the per-shard file
    /// paths in shard order (empty when streaming is off).
    pub fn flush_streams(&self) -> std::io::Result<Vec<String>> {
        let Some(shared) = &self.shared else {
            return Ok(Vec::new());
        };
        let mut paths = Vec::new();
        for (_, series) in shared.series() {
            let mut s = series.lock().expect("series poisoned");
            if let Some(sink) = &mut s.sink {
                sink.flush()?;
            }
            if let Some(path) = &s.sink_path {
                paths.push(path.clone());
            }
        }
        Ok(paths)
    }

    /// Merges the per-shard streamed series into one JSONL file at
    /// `out`, ordered by `(tick, shard, seq)` — so the merged file is
    /// byte-identical across thread counts. Returns the number of
    /// merged lines. The merge holds the lines in memory; per-shard
    /// files are the scalable artifact for very long runs.
    pub fn merge_streams(&self, out: &str) -> std::io::Result<usize> {
        let paths = self.flush_streams()?;
        let mut lines: Vec<((u64, u32, u64), String)> = Vec::new();
        for path in &paths {
            let text = std::fs::read_to_string(path)?;
            for line in text.lines() {
                let doc = Json::parse(line).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{path}: bad telemetry line: {e}"),
                    )
                })?;
                let num = |key: &str| {
                    doc.get(key)
                        .and_then(Json::as_f64)
                        .map(|x| x as u64)
                        .ok_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!("{path}: telemetry line missing {key}"),
                            )
                        })
                };
                let key = (num("tick")?, num("shard")? as u32, num("seq")?);
                lines.push((key, line.to_string()));
            }
        }
        lines.sort_by_key(|(key, _)| *key);
        let mut f = BufWriter::new(File::create(out)?);
        for (_, line) in &lines {
            f.write_all(line.as_bytes())?;
            f.write_all(b"\n")?;
        }
        f.flush()?;
        Ok(lines.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole point of the per-shard-series design.
    #[test]
    fn telemetry_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Telemetry>();
    }

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.on());
        t.sample(SimTime::from_us(1), "service", &[Gauge::value("q", 1.0)]);
        t.record_latency(false, SimTime::from_us(5));
        assert!(t.is_empty());
        assert_eq!(t.tick_period(), SimTime::ZERO);
    }

    #[test]
    fn tick_dedup_keeps_one_row_per_scope_per_tick() {
        let t = Telemetry::with_tick(SimTime::from_us(100));
        // Three samples inside tick 0, two scopes: one row per scope,
        // first-sample-wins.
        t.sample(SimTime::from_us(10), "service", &[Gauge::value("q", 1.0)]);
        t.sample(SimTime::from_us(20), "service", &[Gauge::value("q", 9.0)]);
        t.sample(SimTime::from_us(30), "buffer", &[Gauge::value("d", 2.0)]);
        // Tick 1 reopens the service scope.
        t.sample(SimTime::from_us(150), "service", &[Gauge::value("q", 3.0)]);
        let rows = t.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].scope, "service");
        assert_eq!(rows[0].gauges, vec![("q", 1.0)]);
        assert_eq!(rows[1].scope, "buffer");
        assert_eq!((rows[2].tick, rows[2].gauges[0].1), (1, 3.0));
    }

    #[test]
    fn rate_gauges_convert_cumulative_totals_per_scope() {
        let t = Telemetry::with_tick(SimTime::from_us(100));
        // 10 completions by 100us, 30 by 300us: the second row's rate
        // covers the 200us between samples.
        t.sample(SimTime::from_us(100), "service", &[Gauge::rate("c", 10.0)]);
        t.sample(SimTime::from_us(300), "service", &[Gauge::rate("c", 30.0)]);
        let rows = t.rows();
        assert_eq!(rows.len(), 2);
        let per_s = |us: f64, items: f64| items / (us * 1e-6);
        assert!((rows[0].gauges[0].1 - per_s(100.0, 10.0)).abs() < 1e-6);
        assert!((rows[1].gauges[0].1 - per_s(200.0, 20.0)).abs() < 1e-6);
        // Utilization via a busy-seconds Rate: 50us busy over 200us.
        t.sample(
            SimTime::from_us(500),
            "util",
            &[Gauge::rate("busy", SimTime::from_us(50).as_secs_f64())],
        );
        t.sample(
            SimTime::from_us(700),
            "util",
            &[Gauge::rate("busy", SimTime::from_us(150).as_secs_f64())],
        );
        let rows = t.rows();
        let util = rows.last().expect("rows").gauges[0].1;
        assert!((util - 0.5).abs() < 1e-9, "100us busy / 200us = {util}");
    }

    #[test]
    fn lane_rings_window_the_tail_and_gate_their_gauges() {
        let t = Telemetry::with_tick(SimTime::from_us(1));
        // No latencies yet: no p99 gauges.
        t.sample_with_tails(SimTime::from_us(1), "service", &[Gauge::value("q", 0.0)]);
        assert_eq!(t.rows()[0].gauges.len(), 1);
        // Effort-lane only: exactly one tail gauge appears.
        for i in 1..=100u64 {
            t.record_latency(false, SimTime::from_us(i));
        }
        t.sample_with_tails(SimTime::from_us(2), "service", &[]);
        let rows = t.rows();
        assert_eq!(rows[1].gauges.len(), 1);
        assert_eq!(rows[1].gauges[0].0, "p99_effort_us");
        assert!((rows[1].gauges[0].1 - 99.0).abs() < 1.5);
        // The ring windows: LANE_WINDOW fresh fast samples push the old
        // slow ones out, so the windowed p99 falls.
        for _ in 0..LANE_WINDOW {
            t.record_latency(false, SimTime::from_us(1));
        }
        t.sample_with_tails(SimTime::from_us(3), "service", &[]);
        let rows = t.rows();
        assert!(
            rows[2].gauges[0].1 <= 1.0 + 1e-9,
            "the window forgot the slow samples: {}",
            rows[2].gauges[0].1
        );
    }

    #[test]
    fn streaming_merges_by_tick_shard_seq() {
        let base = std::env::temp_dir().join(format!("rtr_tl_stream_{}", std::process::id()));
        let base = base.to_str().expect("utf-8 temp path").to_string();
        let t = Telemetry::with_tick(SimTime::from_us(100));
        t.stream_to(&base).expect("attach sinks");
        let s1 = t.with_shard(1);
        // Shard 1 emits an earlier tick *after* shard 0 emitted later
        // ones: the merge must reorder by (tick, shard, seq).
        t.sample(SimTime::from_us(150), "service", &[Gauge::value("q", 1.0)]);
        t.sample(SimTime::from_us(250), "service", &[Gauge::value("q", 2.0)]);
        s1.sample(SimTime::from_us(50), "service", &[Gauge::value("q", 3.0)]);
        let paths = t.flush_streams().expect("flush");
        assert_eq!(paths.len(), 2);
        assert!(paths[0].ends_with(".shard000.tl.jsonl"));
        let merged_path = format!("{base}.merged.tl.jsonl");
        let merged = t.merge_streams(&merged_path).expect("merge");
        assert_eq!(merged, 3);
        let text = std::fs::read_to_string(&merged_path).expect("read merged");
        let keys: Vec<(u64, u64, u64)> = text
            .lines()
            .map(|l| {
                let doc = Json::parse(l).expect("line parses");
                let num = |k: &str| doc.get(k).and_then(Json::as_f64).unwrap() as u64;
                (num("tick"), num("shard"), num("seq"))
            })
            .collect();
        assert_eq!(keys[0], (0, 1, 0), "shard 1's early tick merges first");
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "merged telemetry is strictly (tick, shard, seq)-ordered: {keys:?}"
        );
        for path in paths.iter().chain([&merged_path]) {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    #[should_panic(expected = "tick period")]
    fn zero_tick_is_rejected() {
        let _ = Telemetry::with_tick(SimTime::ZERO);
    }
}
