//! Shared driver utilities: memory layout, program execution, module
//! binding.

use dock::DynamicModule;
use ppc405_sim::{assemble, Program};
use rtr_core::machine::{Docks, Machine};
use vp2_sim::SimTime;

/// Program load address (on-chip memory).
pub const PROG_BASE: u32 = 0x1000;
/// First input buffer (external memory). The four buffers are staggered by
/// odd multiples of 0x840 so they do not alias in the 16 KB 2-way D-cache
/// (three streams landing on the same sets would thrash a 2-way cache —
/// a benchmarking artefact, not a property of the tasks).
pub const SRC_A: u32 = 0x2010_0000;
/// Second input buffer.
pub const SRC_B: u32 = 0x2020_0840;
/// Output buffer.
pub const DST: u32 = 0x2030_1080;
/// Scratch buffer (DMA staging, data preparation).
pub const AUX: u32 = 0x2040_1900;
/// Dock data window base.
pub const DOCK: u32 = 0x8000_0000;

/// Splits an address into `(high, low)` halves for `lis`/`ori` loading.
pub fn hi_lo(addr: u32) -> (u32, u32) {
    (addr >> 16, addr & 0xFFFF)
}

/// Assembles `src`, loads it, runs `entry` with `args`, returns
/// `(elapsed, r3, program)`.
///
/// # Panics
/// Panics on assembly errors or if the program fails to halt — both are
/// harness bugs, not data conditions.
pub fn run_asm(m: &mut Machine, src: &str, args: &[u32], max_instrs: u64) -> (SimTime, u32) {
    let prog: Program = assemble(src, PROG_BASE).unwrap_or_else(|e| panic!("asm error: {e}"));
    m.load_program(&prog);
    m.call(prog.label("entry"), args, max_instrs)
}

/// Binds a behavioural module directly to the dock. Experiment drivers use
/// this fast path; the reconfiguration path (BitLinker → ICAP → verify →
/// bind) is exercised by `ModuleManager` tests and the examples.
pub fn bind(m: &mut Machine, module: Box<dyn DynamicModule>) {
    match &mut m.platform.dock {
        Docks::Opb(d) => d.bind_module(module),
        Docks::Plb(d) => d.bind_module(module),
    }
}

/// Enables/disables FIFO capture on the PLB dock (64-bit system only).
pub fn set_fifo_capture(m: &mut Machine, on: bool) {
    if let Docks::Plb(d) = &mut m.platform.dock {
        d.fifo_capture = on;
    }
}

/// Copies a byte buffer into simulated memory (no simulated time), and
/// drops any stale cached copies of the range.
pub fn store_bytes(m: &mut Machine, addr: u32, bytes: &[u8]) {
    m.platform.poke_bytes(addr, bytes);
    invalidate_range(m, addr, bytes.len());
}

/// Invalidates cached lines covering `[addr, addr+len)`.
pub fn invalidate_range(m: &mut Machine, addr: u32, len: usize) {
    let mut a = addr & !31;
    let end = addr as u64 + len as u64;
    while u64::from(a) < end {
        m.cpu.dcache.invalidate_line(a);
        a = a.saturating_add(32);
        if a == 0 {
            break;
        }
    }
}

/// Reads a byte buffer back from simulated memory (flushing any dirty
/// cache lines covering it first, at zero simulated cost).
pub fn load_bytes(m: &mut Machine, addr: u32, len: usize) -> Vec<u8> {
    m.flush_dcache_range(addr, len);
    m.platform.peek_bytes(addr, len)
}

/// Stores a sequence of big-endian words.
pub fn store_words(m: &mut Machine, addr: u32, words: &[u32]) {
    for (i, &w) in words.iter().enumerate() {
        m.platform.poke_mem(addr + 4 * i as u32, w);
    }
    invalidate_range(m, addr, words.len() * 4);
}

/// Loads a sequence of big-endian words (flushing covering cache lines).
pub fn load_words(m: &mut Machine, addr: u32, n: usize) -> Vec<u32> {
    m.flush_dcache_range(addr, n * 4);
    (0..n)
        .map(|i| m.platform.peek_mem(addr + 4 * i as u32))
        .collect()
}

/// A measured hw-vs-sw pair, as every results table reports.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Software-only time.
    pub sw: SimTime,
    /// Hardware/software time (including driver overhead and, where
    /// applicable, data preparation).
    pub hw: SimTime,
    /// Data-preparation portion of `hw` (table 12's extra column; zero
    /// when no preparation is needed).
    pub prep: SimTime,
}

impl Comparison {
    /// Speedup as the paper reports it (sw / hw).
    pub fn speedup(&self) -> f64 {
        self.sw.as_ps() as f64 / self.hw.as_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::{build_system, SystemKind};

    #[test]
    fn run_asm_roundtrip() {
        let mut m = build_system(SystemKind::Bit32);
        let (t, r3) = run_asm(
            &mut m,
            "entry:\n  li r3, 9\n  mullw r3, r3, r3\n  halt\n",
            &[],
            100,
        );
        assert_eq!(r3, 81);
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn buffers_roundtrip() {
        let mut m = build_system(SystemKind::Bit64);
        store_bytes(&mut m, SRC_A, &[1, 2, 3, 4, 5]);
        assert_eq!(load_bytes(&mut m, SRC_A, 5), vec![1, 2, 3, 4, 5]);
        store_words(&mut m, DST, &[0xAABB_CCDD, 42]);
        assert_eq!(load_words(&mut m, DST, 2), vec![0xAABB_CCDD, 42]);
    }

    #[test]
    fn comparison_speedup() {
        let c = Comparison {
            sw: SimTime::from_us(26),
            hw: SimTime::from_us(1),
            prep: SimTime::ZERO,
        };
        assert!((c.speedup() - 26.0).abs() < 1e-9);
    }
}
