//! Uniform request/response interface over the five evaluation kernels.
//!
//! The run-time service (`rtr-service`) multiplexes heterogeneous client
//! work onto one dynamic region. This module gives it a common currency:
//!
//! * [`Kernel`] — which hardware module / software routine a request needs;
//! * [`Request`] / [`Response`] — a work item and its verified result;
//! * [`Driver`] — executes requests on a [`Machine`] in either software or
//!   hardware form **without** re-downloading the driver program for every
//!   item (each program lives at its own OCM slot and is JTAG-loaded once,
//!   like a resident firmware image — per-request reloads would charge
//!   ~0.8 ms/KB of JTAG time and drown the differences being measured);
//! * [`component_for`] / [`factory_for`] — what the `ModuleManager` needs
//!   to register each kernel's dynamic module on a given system.

use crate::harness::{self, DST, SRC_A, SRC_B};
use crate::imaging::{self, ImagingModule, Task};
use crate::jenkins::{self, JenkinsModule};
use crate::patmatch::{self, BinaryImage, PatMatchModule};
use crate::sha1::{self, Sha1Module};
use ppc405_sim::{assemble, Program};
use rtr_core::machine::Machine;
use rtr_core::manager::ModuleFactory;
use rtr_core::SystemKind;
use vp2_bitstream::Component;
use vp2_netlist::components as c;
use vp2_netlist::graph::Netlist;
use vp2_sim::{SimTime, SplitMix64};

/// Which kernel a request exercises. Each value owns one dynamic module
/// (they are mutually exclusive tenants of the region) and one software
/// fallback routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// SHA-1 (64-bit system only in hardware — the unrolled core does not
    /// fit the 32-bit system's region).
    Sha1,
    /// Jenkins lookup2 hash.
    Jenkins,
    /// 8×8 bilevel pattern matching.
    PatMatch,
    /// Brightness adjustment.
    Brightness,
    /// Additive blending.
    Blend,
    /// Fade effect.
    Fade,
}

impl Kernel {
    /// Every kernel, in a fixed order (queue and metrics indexing).
    pub const ALL: [Kernel; 6] = [
        Kernel::Sha1,
        Kernel::Jenkins,
        Kernel::PatMatch,
        Kernel::Brightness,
        Kernel::Blend,
        Kernel::Fade,
    ];

    /// The registered module name (equals the netlist/component name).
    pub fn module_name(self) -> &'static str {
        match self {
            Kernel::Sha1 => "sha1-unroll8",
            Kernel::Jenkins => "jenkins-lookup2",
            Kernel::PatMatch => "patmatch8x8",
            Kernel::Brightness => "img-brightness",
            Kernel::Blend => "img-blend",
            Kernel::Fade => "img-fade",
        }
    }

    /// The imaging task, for the three imaging kernels.
    pub fn imaging_task(self) -> Option<Task> {
        match self {
            Kernel::Brightness => Some(Task::Brightness),
            Kernel::Blend => Some(Task::Blend),
            Kernel::Fade => Some(Task::Fade),
            _ => None,
        }
    }

    /// Fixed queue/metrics index.
    pub fn index(self) -> usize {
        Kernel::ALL.iter().position(|&k| k == self).expect("in ALL")
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.module_name())
    }
}

/// The work payload of one client request.
#[derive(Debug, Clone)]
pub enum Work {
    /// Hash a message with SHA-1.
    Sha1 {
        /// The message.
        msg: Vec<u8>,
    },
    /// Hash a key with lookup2.
    Jenkins {
        /// The key.
        key: Vec<u8>,
        /// Initial value.
        initval: u32,
    },
    /// Match an 8×8 pattern over a bilevel image.
    PatMatch {
        /// The image (width a multiple of 32, ≥ 8 rows).
        image: BinaryImage,
        /// The pattern, one byte per row.
        pattern: [u8; 8],
    },
    /// One of the three imaging tasks.
    Imaging {
        /// Which task.
        task: Task,
        /// Source image A (length a multiple of 64).
        a: Vec<u8>,
        /// Source image B (blend/fade only).
        b: Vec<u8>,
        /// Brightness constant or fade factor.
        param: i32,
    },
}

/// Scheduling class of a request. The order is the scheduling order:
/// `High` outranks `Normal` outranks `Low` (derived `Ord` follows the
/// declaration order, so `High < Normal` sorts first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Served ahead of everything else at the same decision point.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Yielding to both other classes.
    Low,
}

impl Priority {
    /// Stable lowercase name (JSON, traces).
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Per-request scheduling metadata: the lane the request rides in.
///
/// The default lane (`Normal` priority, no deadline) is what every
/// request carried before lanes existed, so schedulers that ignore lanes
/// behave exactly as they always have.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Lane {
    /// Scheduling class across and within kernel queues.
    pub priority: Priority,
    /// Latency budget measured from the request's arrival: the request
    /// wants to complete within this much simulated time. `None` means
    /// no deadline. Budgets are relative so a lane survives the stream →
    /// machine-clock mapping of the cluster admission layer unchanged.
    pub deadline: Option<SimTime>,
}

impl Lane {
    /// The absolute instant this lane's deadline expires for a request
    /// that arrived at `arrival` (`None` when the lane has no deadline).
    pub fn expires_at(&self, arrival: SimTime) -> Option<SimTime> {
        self.deadline.map(|budget| arrival + budget)
    }
}

/// One unit of client work plus the lane it is scheduled in.
#[derive(Debug, Clone)]
pub struct Request {
    /// What to compute.
    pub work: Work,
    /// How urgently to schedule it.
    pub lane: Lane,
}

impl From<Work> for Request {
    fn from(work: Work) -> Request {
        Request {
            work,
            lane: Lane::default(),
        }
    }
}

/// A request's verified result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// SHA-1 digest.
    Digest([u32; 5]),
    /// lookup2 hash.
    Hash(u32),
    /// Per-window match counts.
    Counts(Vec<Vec<u8>>),
    /// Processed image.
    Image(Vec<u8>),
}

impl Work {
    /// The kernel this work needs.
    pub fn kernel(&self) -> Kernel {
        match self {
            Work::Sha1 { .. } => Kernel::Sha1,
            Work::Jenkins { .. } => Kernel::Jenkins,
            Work::PatMatch { .. } => Kernel::PatMatch,
            Work::Imaging { task, .. } => match task {
                Task::Brightness => Kernel::Brightness,
                Task::Blend => Kernel::Blend,
                Task::Fade => Kernel::Fade,
            },
        }
    }

    /// Payload size in bytes (the cost model's per-item scale variable).
    pub fn payload_bytes(&self) -> usize {
        match self {
            Work::Sha1 { msg } => msg.len(),
            Work::Jenkins { key, .. } => key.len(),
            Work::PatMatch { image, .. } => image.data.len() * 4,
            Work::Imaging { a, .. } => a.len(),
        }
    }

    /// Ground-truth result from the Rust reference implementations.
    pub fn reference(&self) -> Response {
        match self {
            Work::Sha1 { msg } => Response::Digest(sha1::sha1_reference(msg)),
            Work::Jenkins { key, initval } => {
                Response::Hash(jenkins::hash_reference(key, *initval))
            }
            Work::PatMatch { image, pattern } => {
                Response::Counts(patmatch::match_counts_reference(image, pattern))
            }
            Work::Imaging { task, a, b, param } => {
                Response::Image(imaging::reference_image(*task, a, b, *param))
            }
        }
    }
}

impl Request {
    /// The kernel this request needs.
    pub fn kernel(&self) -> Kernel {
        self.work.kernel()
    }

    /// Payload size in bytes (the cost model's per-item scale variable).
    pub fn payload_bytes(&self) -> usize {
        self.work.payload_bytes()
    }

    /// Ground-truth result from the Rust reference implementations.
    pub fn reference(&self) -> Response {
        self.work.reference()
    }

    /// Moves the request into the given priority class.
    pub fn with_priority(mut self, priority: Priority) -> Request {
        self.lane.priority = priority;
        self
    }

    /// Attaches a latency budget measured from the request's arrival.
    pub fn with_deadline(mut self, budget: SimTime) -> Request {
        self.lane.deadline = Some(budget);
        self
    }

    /// Deterministic synthetic request of roughly `payload` bytes — the
    /// traffic generator's item builder, riding the default lane. Payloads
    /// are rounded to each kernel's granularity (imaging works in 64-pixel
    /// rows, pattern matching in 64×N images).
    pub fn synthetic(kernel: Kernel, payload: usize, rng: &mut SplitMix64) -> Request {
        let work = match kernel {
            Kernel::Sha1 => {
                let mut msg = vec![0u8; payload.max(1)];
                rng.fill_bytes(&mut msg);
                Work::Sha1 { msg }
            }
            Kernel::Jenkins => {
                let mut key = vec![0u8; payload.max(1)];
                rng.fill_bytes(&mut key);
                Work::Jenkins {
                    key,
                    initval: rng.next_u32(),
                }
            }
            Kernel::PatMatch => {
                // width 64 → 8 bytes per row; at least 8 rows.
                let rows = (payload / 8).max(8);
                let image = BinaryImage::random(64, rows, rng.next_u64());
                let mut pattern = [0u8; 8];
                rng.fill_bytes(&mut pattern);
                Work::PatMatch { image, pattern }
            }
            Kernel::Brightness | Kernel::Blend | Kernel::Fade => {
                let task = kernel.imaging_task().expect("imaging kernel");
                let n = (payload.max(64) / 64) * 64;
                let mut a = vec![0u8; n];
                rng.fill_bytes(&mut a);
                let mut b = vec![0u8; if task.two_sources() { n } else { 0 }];
                rng.fill_bytes(&mut b);
                let param = match task {
                    Task::Brightness => i32::from(rng.next_u32() as u8) - 128,
                    Task::Blend => 0,
                    Task::Fade => (rng.next_u32() % 257) as i32,
                };
                Work::Imaging { task, a, b, param }
            }
        };
        Request::from(work)
    }
}

// ---------------------------------------------------------------------
// Module registration helpers.
// ---------------------------------------------------------------------

/// Carrier netlist for the Jenkins core's configuration image. The hash
/// logic itself is modelled behaviourally (like the imaging cores' wide
/// variants); the carrier provides a placeable, linkable component so the
/// configuration plane — BitLinker, ICAP transfer, readback verification —
/// is exercised for real. Complete partial configurations cover the whole
/// region, so the carrier's reconfiguration cost equals any other module's.
fn jenkins_carrier_netlist() -> Netlist {
    let mut nl = Netlist::new("jenkins-lookup2");
    let din = nl.input_bus("din", 32);
    let wr = nl.input("wr", 0);
    let q = c::register(&mut nl, &din, Some(wr));
    nl.output_bus("dout", &q);
    nl
}

/// Builds the registrable component for a kernel on a system, or `None`
/// when the kernel has no hardware form there (SHA-1's unrolled core does
/// not fit the 32-bit system's 308-CLB region — the paper's table-11 note).
pub fn component_for(kernel: Kernel, kind: SystemKind) -> Option<Component> {
    if kernel == Kernel::Sha1 && kind == SystemKind::Bit32 {
        return None;
    }
    let region = kind.region();
    let width = kind.dock_width();
    let nl = match kernel {
        Kernel::Sha1 => sha1::sha1_netlist(),
        Kernel::Jenkins => jenkins_carrier_netlist(),
        Kernel::PatMatch => patmatch::patmatch_netlist(),
        Kernel::Brightness | Kernel::Blend | Kernel::Fade => {
            imaging::imaging_netlist(kernel.imaging_task().expect("imaging kernel"))
        }
    };
    Some(patmatch::build_component(
        nl,
        width,
        region.width(),
        region.height(),
    ))
}

/// Like [`component_for`], but placed into a `slot_width`-column
/// footprint (a multi-module sub-slot of the region) instead of the full
/// region width. `None` when the kernel has no hardware form on the
/// system *or* its netlist does not fit the slot — the caller keeps the
/// kernel on the software path in that case.
pub fn component_for_slot(kernel: Kernel, kind: SystemKind, slot_width: u16) -> Option<Component> {
    if kernel == Kernel::Sha1 && kind == SystemKind::Bit32 {
        return None;
    }
    let nl = match kernel {
        Kernel::Sha1 => sha1::sha1_netlist(),
        Kernel::Jenkins => jenkins_carrier_netlist(),
        Kernel::PatMatch => patmatch::patmatch_netlist(),
        Kernel::Brightness | Kernel::Blend | Kernel::Fade => {
            imaging::imaging_netlist(kernel.imaging_task().expect("imaging kernel"))
        }
    };
    patmatch::try_build_component(nl, kind.dock_width(), slot_width, kind.region().height())
}

/// Behavioural-model factory for a kernel (what `ModuleManager::register`
/// binds after a verified load).
pub fn factory_for(kernel: Kernel) -> ModuleFactory {
    match kernel {
        Kernel::Sha1 => Box::new(|| Box::new(Sha1Module::new())),
        Kernel::Jenkins => Box::new(|| Box::new(JenkinsModule::new())),
        Kernel::PatMatch => Box::new(|| Box::new(PatMatchModule::new())),
        Kernel::Brightness | Kernel::Blend | Kernel::Fade => {
            let task = kernel.imaging_task().expect("imaging kernel");
            Box::new(move || Box::new(ImagingModule::new(task)))
        }
    }
}

// ---------------------------------------------------------------------
// The program-cached driver.
// ---------------------------------------------------------------------

/// Driver-program identifiers. Each program is assembled once at its own
/// OCM slot, so all of them stay resident simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prog {
    Sha1Sw,
    Sha1Hw,
    JenkinsSw,
    JenkinsHw,
    PatMatchSw,
    PatMatchHw,
    BrightSw,
    BlendSw,
    FadeSw,
    BrightHw,
    CombineHw,
}

const PROGS: [(Prog, &str); 11] = [
    (Prog::Sha1Sw, sha1::SW_ASM),
    (Prog::Sha1Hw, sha1::HW_ASM),
    (Prog::JenkinsSw, jenkins::SW_ASM),
    (Prog::JenkinsHw, jenkins::HW_ASM),
    (Prog::PatMatchSw, patmatch::SW_ASM),
    (Prog::PatMatchHw, patmatch::HW_ASM),
    (Prog::BrightSw, imaging::SW_BRIGHT),
    (Prog::BlendSw, imaging::SW_BLEND),
    (Prog::FadeSw, imaging::SW_FADE),
    (Prog::BrightHw, imaging::HW_BRIGHT),
    (Prog::CombineHw, imaging::HW_COMBINE),
];

/// 4 KB per program slot: slots span `0x1000..0xC000`, clear of the SHA-1
/// software scratch at `0x10000..0x12000`.
const SLOT_BYTES: u32 = 0x1000;

/// Executes requests on one machine, keeping every driver program resident
/// in OCM (one JTAG download per program for the machine's lifetime).
pub struct Driver {
    programs: Vec<Program>,
    downloaded: [bool; PROGS.len()],
}

impl Default for Driver {
    fn default() -> Self {
        Self::new()
    }
}

impl Driver {
    /// Assembles all driver programs (host-side; no simulated cost).
    pub fn new() -> Self {
        let programs = PROGS
            .iter()
            .enumerate()
            .map(|(i, (id, src))| {
                let base = harness::PROG_BASE + i as u32 * SLOT_BYTES;
                let prog = assemble(src, base).unwrap_or_else(|e| panic!("{id:?}: asm error: {e}"));
                assert!(
                    prog.byte_len() as u32 <= SLOT_BYTES,
                    "{id:?} overflows its {SLOT_BYTES}-byte slot"
                );
                prog
            })
            .collect();
        Driver {
            programs,
            downloaded: [false; PROGS.len()],
        }
    }

    /// Downloads a program into its slot if absent; returns its entry point.
    /// The JTAG transfer charges simulated time on first use only.
    fn ensure(&mut self, m: &mut Machine, id: Prog) -> u32 {
        let i = PROGS.iter().position(|(p, _)| *p == id).expect("in PROGS");
        if !self.downloaded[i] {
            m.load_program(&self.programs[i]);
            self.downloaded[i] = true;
        }
        self.programs[i].label("entry")
    }

    /// Downloads every driver program now, charging all JTAG time up
    /// front — a service boots with its code image resident rather than
    /// paying the download inside a client's first request.
    pub fn preload_all(&mut self, m: &mut Machine) {
        for &(id, _) in &PROGS {
            self.ensure(m, id);
        }
    }

    /// Runs a request in software on the PPC405; returns `(time, result)`.
    /// Only the `call` is timed (input staging is an observability poke).
    pub fn run_sw(&mut self, m: &mut Machine, req: &Request) -> (SimTime, Response) {
        match &req.work {
            Work::Sha1 { msg } => {
                let entry = self.ensure(m, Prog::Sha1Sw);
                harness::store_bytes(m, SRC_A, msg);
                let max = (msg.len() as u64 / 64 + 3) * 40_000 + 200_000;
                let (t, _) = m.call(entry, &[SRC_A, msg.len() as u32, DST], max);
                let w = harness::load_words(m, DST, 5);
                (t, Response::Digest([w[0], w[1], w[2], w[3], w[4]]))
            }
            Work::Jenkins { key, initval } => {
                let entry = self.ensure(m, Prog::JenkinsSw);
                harness::store_bytes(m, SRC_A, key);
                let max = key.len() as u64 * 200 + 100_000;
                let (t, h) = m.call(entry, &[SRC_A, key.len() as u32, *initval], max);
                (t, Response::Hash(h))
            }
            Work::PatMatch { image, pattern } => {
                let entry = self.ensure(m, Prog::PatMatchSw);
                harness::store_words(m, SRC_A, &image.data);
                harness::store_bytes(m, SRC_B, pattern);
                let (w, h) = (image.width as u32, image.height as u32);
                let max = u64::from(w) * u64::from(h) * 3000 + 100_000;
                let (t, _) = m.call(entry, &[w, h, SRC_A, SRC_B, DST], max);
                (t, Response::Counts(load_counts(m, image)))
            }
            Work::Imaging { task, a, b, param } => {
                let n = a.len() as u32;
                assert_eq!(n % 64, 0, "image sizes are multiples of 64 pixels");
                harness::store_bytes(m, SRC_A, a);
                if task.two_sources() {
                    harness::store_bytes(m, SRC_B, b);
                }
                let (w, h) = (64u32, n / 64);
                let max = u64::from(n) * 80 + 100_000;
                let (t, _) = match task {
                    Task::Brightness => {
                        let entry = self.ensure(m, Prog::BrightSw);
                        m.call(entry, &[w, h, SRC_A, DST, *param as u32], max)
                    }
                    Task::Blend => {
                        let entry = self.ensure(m, Prog::BlendSw);
                        m.call(entry, &[w, h, SRC_A, SRC_B, DST], max)
                    }
                    Task::Fade => {
                        let entry = self.ensure(m, Prog::FadeSw);
                        m.call(entry, &[w, h, SRC_A, SRC_B, DST, *param as u32], max)
                    }
                };
                (t, Response::Image(harness::load_bytes(m, DST, a.len())))
            }
        }
    }

    /// Runs a request against the hardware module **currently resident** in
    /// the dynamic region; returns `(time, result)`. The caller (the
    /// service's scheduler, via `ModuleManager::load`) is responsible for
    /// having configured the right module — this driver does not bind
    /// models behind the configuration plane's back.
    pub fn run_hw(&mut self, m: &mut Machine, req: &Request) -> (SimTime, Response) {
        match &req.work {
            Work::Sha1 { msg } => {
                let entry = self.ensure(m, Prog::Sha1Hw);
                harness::store_bytes(m, SRC_A, msg);
                let max = (msg.len() as u64 / 64 + 3) * 10_000 + 200_000;
                let (t, _) = m.call(entry, &[SRC_A, msg.len() as u32, DST], max);
                let w = harness::load_words(m, DST, 5);
                (t, Response::Digest([w[0], w[1], w[2], w[3], w[4]]))
            }
            Work::Jenkins { key, initval } => {
                let entry = self.ensure(m, Prog::JenkinsHw);
                let blocks = key.len() / 12;
                let padded_len = (blocks * 3 + 3) * 4;
                let mut padded = key.clone();
                padded.resize(padded_len.max(key.len()), 0);
                harness::store_bytes(m, SRC_A, &padded);
                let max = key.len() as u64 * 60 + 100_000;
                let (t, h) = m.call(entry, &[SRC_A, key.len() as u32, *initval], max);
                (t, Response::Hash(h))
            }
            Work::PatMatch { image, pattern } => {
                let entry = self.ensure(m, Prog::PatMatchHw);
                harness::store_words(m, SRC_A, &image.data);
                harness::store_bytes(m, SRC_B, pattern);
                let bands = (image.height - 7) as u32;
                let blocks = (image.width / 32) as u32;
                let max = u64::from(bands) * u64::from(blocks + 2) * 400 + 100_000;
                let (t, _) = m.call(entry, &[bands, blocks, SRC_A, SRC_B, DST], max);
                (t, Response::Counts(unpack_counts(m, image, bands, blocks)))
            }
            Work::Imaging { task, a, b, param } => {
                let n = a.len() as u32;
                harness::store_bytes(m, SRC_A, a);
                if task.two_sources() {
                    harness::store_bytes(m, SRC_B, b);
                }
                let p9 = (*param as u32) & 0x1FF;
                let max = u64::from(n) * 80 + 100_000;
                let (t, _) = match task {
                    Task::Brightness => {
                        let entry = self.ensure(m, Prog::BrightHw);
                        m.call(entry, &[n / 4, SRC_A, DST, p9], max)
                    }
                    Task::Blend | Task::Fade => {
                        let entry = self.ensure(m, Prog::CombineHw);
                        m.call(entry, &[n / 2, SRC_A, SRC_B, DST, p9], max)
                    }
                };
                (t, Response::Image(harness::load_bytes(m, DST, a.len())))
            }
        }
    }
}

/// Reads the software pattern-match result grid from `DST`.
fn load_counts(m: &mut Machine, image: &BinaryImage) -> Vec<Vec<u8>> {
    let out = harness::load_bytes(m, DST, (image.width - 7) * (image.height - 7));
    out.chunks(image.width - 7).map(<[u8]>::to_vec).collect()
}

/// Unpacks the hardware pattern-match result stream from `DST`.
fn unpack_counts(m: &mut Machine, image: &BinaryImage, bands: u32, blocks: u32) -> Vec<Vec<u8>> {
    let words = harness::load_words(m, DST, bands as usize * blocks as usize * 8);
    let mut counts = vec![vec![0u8; image.width - 7]; bands as usize];
    let mut it = words.iter();
    for band in &mut counts {
        for b in 0..blocks as usize {
            for w in 0..8 {
                let word = *it.next().expect("exact count");
                for k in 0..4 {
                    let x = 32 * b + 4 * w + k;
                    if x < band.len() {
                        band[x] = ((word >> (24 - 8 * k)) & 0xFF) as u8;
                    }
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::bind;
    use rtr_core::build_system;

    fn check_both_paths(kind: SystemKind, req: &Request, hw: bool) {
        let want = req.reference();
        let mut d = Driver::new();
        let mut m = build_system(kind);
        let (t_sw, got) = d.run_sw(&mut m, req);
        assert_eq!(got, want, "sw {:?} on {kind:?}", req.kernel());
        assert!(t_sw > SimTime::ZERO);
        if hw {
            let mut m = build_system(kind);
            bind_behavioural(&mut m, req.kernel());
            let (t_hw, got) = d.run_hw(&mut m, req);
            assert_eq!(got, want, "hw {:?} on {kind:?}", req.kernel());
            assert!(t_hw > SimTime::ZERO);
        }
    }

    fn bind_behavioural(m: &mut Machine, kernel: Kernel) {
        bind(m, factory_for(kernel)());
    }

    #[test]
    fn every_kernel_round_trips_both_paths() {
        let mut rng = SplitMix64::new(0x5EA1_CE01);
        for kernel in Kernel::ALL {
            let req = Request::synthetic(kernel, 256, &mut rng);
            assert_eq!(req.kernel(), kernel);
            // SHA-1 hw only exists on the 64-bit system.
            check_both_paths(SystemKind::Bit32, &req, kernel != Kernel::Sha1);
            check_both_paths(SystemKind::Bit64, &req, true);
        }
    }

    #[test]
    fn program_cache_charges_jtag_once() {
        // The JTAG download is charged to the machine clock by
        // `load_program`, ahead of the timed call — so measure wall
        // (machine-clock) deltas around whole run_sw invocations.
        let mut d = Driver::new();
        let mut m = build_system(SystemKind::Bit32);
        let mut rng = SplitMix64::new(7);
        let req = Request::synthetic(Kernel::Jenkins, 120, &mut rng);
        let wall = |m: &mut Machine, d: &mut Driver, r: &Request| {
            let before = m.now();
            let (_, got) = d.run_sw(m, r);
            assert_eq!(got, r.reference());
            m.now() - before
        };
        let first = wall(&mut m, &mut d, &req);
        let second = wall(&mut m, &mut d, &req);
        // First run pays the ~hundreds-of-µs JTAG download on top of the
        // ~10 µs hash; the cached second run is compute only.
        assert!(
            first.as_ps() > 5 * second.as_ps(),
            "first {first} must be dominated by the download; second {second}"
        );
        // Different kernels use different slots — loading one does not
        // evict another, so no re-download on return.
        let req2 = Request::synthetic(Kernel::Brightness, 128, &mut rng);
        let _ = wall(&mut m, &mut d, &req2);
        let third = wall(&mut m, &mut d, &req);
        assert!(
            third.as_ps() < 2 * second.as_ps(),
            "third {third} vs second {second}"
        );
    }

    #[test]
    fn components_exist_exactly_where_hardware_fits() {
        // SHA-1 is the only kernel without a 32-bit hardware form.
        for kernel in Kernel::ALL {
            assert_eq!(
                component_for(kernel, SystemKind::Bit32).is_some(),
                kernel != Kernel::Sha1,
                "{kernel}"
            );
        }
        // Component names match module names (the manager loads by name).
        let comp = component_for(Kernel::Jenkins, SystemKind::Bit32).unwrap();
        assert_eq!(comp.name, Kernel::Jenkins.module_name());
    }
}
