//! # rtr-apps — the paper's evaluation workloads
//!
//! The six application fragments of sections 3.2 and 4.2, each in four
//! forms:
//!
//! 1. a **Rust reference** (ground truth for correctness),
//! 2. a **software implementation** in PPC assembly, written in the
//!    straightforward style a C compiler produces from the original code
//!    (the paper's point (iii): bit manipulations that are "cumbersome to
//!    express in the C programming language" stay cumbersome here),
//! 3. a **hardware module**: a fast behavioural model implementing the dock
//!    protocol, plus a placed gate-level netlist that is property-tested
//!    for equivalence and provides honest area numbers,
//! 4. a **driver** measuring the hw/sw versions on either system.
//!
//! Workloads: 8×8 bilevel [`patmatch`], Jenkins lookup2 [`jenkins`],
//! [`sha1`], and the three grayscale [`imaging`] tasks (brightness,
//! additive blending, fade).

pub mod harness;
pub mod imaging;
pub mod jenkins;
pub mod patmatch;
pub mod request;
pub mod sha1;

pub use request::{Kernel, Lane, Priority, Request, Response, Work};
