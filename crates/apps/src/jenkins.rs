//! Jenkins lookup2 hash (paper tables 4 and 10).
//!
//! "A public domain implementation of a hashing function that returns a
//! 32-bit value for a variable-length key" — Bob Jenkins' `lookup2` from
//! Dr. Dobb's Journal, Sept. 1997.
//!
//! * **Software**: the portable byte-gathering form of the reference code
//!   (the form that compiles on a big-endian embedded target, where the
//!   aligned word-load shortcut is unavailable), in PPC assembly.
//! * **Hardware**: the whole hash in the dynamic region. The driver streams
//!   the zero-padded key as 32-bit words plus an init command carrying the
//!   length; the module performs the byte reordering and the `mix` rounds
//!   in logic, and presents the final hash on the read channel. Per
//!   12-byte block the CPU performs just three loads and three dock writes
//!   — but those transfers dominate, which is why the paper calls the
//!   speedup "much more modest" than pattern matching.

use crate::harness::{self, bind, run_asm, Comparison, DST, SRC_A};
use dock::{DynamicModule, ModuleOutput};
use rtr_core::machine::Machine;
use vp2_sim::SimTime;

/// The golden ratio initialiser of lookup2.
pub const GOLDEN: u32 = 0x9E37_79B9;

/// The `mix` primitive (9 shift/subtract/xor triplets).
#[inline]
pub fn mix(mut a: u32, mut b: u32, mut c: u32) -> (u32, u32, u32) {
    a = a.wrapping_sub(b).wrapping_sub(c) ^ (c >> 13);
    b = b.wrapping_sub(c).wrapping_sub(a) ^ (a << 8);
    c = c.wrapping_sub(a).wrapping_sub(b) ^ (b >> 13);
    a = a.wrapping_sub(b).wrapping_sub(c) ^ (c >> 12);
    b = b.wrapping_sub(c).wrapping_sub(a) ^ (a << 16);
    c = c.wrapping_sub(a).wrapping_sub(b) ^ (b >> 5);
    a = a.wrapping_sub(b).wrapping_sub(c) ^ (c >> 3);
    b = b.wrapping_sub(c).wrapping_sub(a) ^ (a << 10);
    c = c.wrapping_sub(a).wrapping_sub(b) ^ (b >> 15);
    (a, b, c)
}

/// Reference lookup2 over a byte key (little-endian word gathering, exactly
/// as in the published code).
pub fn hash_reference(key: &[u8], initval: u32) -> u32 {
    let mut a = GOLDEN;
    let mut b = GOLDEN;
    let mut c = initval;
    let mut k = key;
    while k.len() >= 12 {
        a = a.wrapping_add(gather(k, 0));
        b = b.wrapping_add(gather(k, 4));
        c = c.wrapping_add(gather(k, 8));
        let (na, nb, nc) = mix(a, b, c);
        a = na;
        b = nb;
        c = nc;
        k = &k[12..];
    }
    c = c.wrapping_add(key.len() as u32);
    // Tail: bytes enter a/b/c at the published positions; c's low byte is
    // reserved for the length.
    let tail = k;
    let byte = |i: usize| -> u32 { u32::from(*tail.get(i).unwrap_or(&0)) };
    a = a.wrapping_add(byte(0) | (byte(1) << 8) | (byte(2) << 16) | (byte(3) << 24));
    b = b.wrapping_add(byte(4) | (byte(5) << 8) | (byte(6) << 16) | (byte(7) << 24));
    c = c.wrapping_add((byte(8) << 8) | (byte(9) << 16) | (byte(10) << 24));
    let (_, _, c) = mix(a, b, c);
    c
}

/// Little-endian 32-bit gather.
fn gather(k: &[u8], off: usize) -> u32 {
    u32::from(k[off])
        | (u32::from(k[off + 1]) << 8)
        | (u32::from(k[off + 2]) << 16)
        | (u32::from(k[off + 3]) << 24)
}

// ---------------------------------------------------------------------
// Hardware module (behavioural).
// ---------------------------------------------------------------------

/// Streaming lookup2 in hardware. Protocol (canonical dock offsets):
///
/// * offset 4 write: **init** — payload = key length in bytes; resets
///   `a = b = GOLDEN`, `c = initval` (initval written at offset 8 first,
///   or zero).
/// * offset 8 write: set `initval` for the next init.
/// * offset 0 write: next 4 key bytes, zero-padded at the tail, packed
///   big-endian as loaded by `lwz` (the module reverses to little-endian —
///   byte order is free in hardware).
/// * offset 0 read: the hash (valid once `ceil(len/4)` words, or exactly
///   `3*ceil_blocks` words, have arrived; the module tracks the count).
#[derive(Debug, Clone)]
pub struct JenkinsModule {
    initval: u32,
    len: u32,
    remaining_words: u32,
    group: [u32; 3],
    group_fill: usize,
    bytes_left: u32,
    a: u32,
    b: u32,
    c: u32,
    hash: u32,
    done: bool,
}

impl Default for JenkinsModule {
    fn default() -> Self {
        Self::new()
    }
}

impl JenkinsModule {
    /// Fresh module.
    pub fn new() -> Self {
        JenkinsModule {
            initval: 0,
            len: 0,
            remaining_words: 0,
            group: [0; 3],
            group_fill: 0,
            bytes_left: 0,
            a: GOLDEN,
            b: GOLDEN,
            c: 0,
            hash: 0,
            done: false,
        }
    }

    fn finish_tail(&mut self) {
        // group holds the (zero-padded) tail words, little-endian.
        self.c = self.c.wrapping_add(self.len);
        let t0 = self.group[0];
        let t1 = self.group[1];
        let t2 = self.group[2];
        self.a = self.a.wrapping_add(t0);
        self.b = self.b.wrapping_add(t1);
        // c takes tail bytes 8..11 shifted up one byte (low byte = length).
        self.c = self.c.wrapping_add(t2 << 8);
        let (_, _, c) = mix(self.a, self.b, self.c);
        self.hash = c;
        self.done = true;
    }

    fn absorb_word(&mut self, be_word: u32) {
        if self.done || self.remaining_words == 0 {
            return;
        }
        // lwz loaded key bytes big-endian; reverse to the little-endian
        // gathering of the reference.
        let le = be_word.swap_bytes();
        self.group[self.group_fill] = le;
        self.group_fill += 1;
        self.remaining_words -= 1;
        let full_block_possible = self.bytes_left >= 12;
        if self.group_fill == 3 && full_block_possible {
            self.a = self.a.wrapping_add(self.group[0]);
            self.b = self.b.wrapping_add(self.group[1]);
            self.c = self.c.wrapping_add(self.group[2]);
            let (a, b, c) = mix(self.a, self.b, self.c);
            self.a = a;
            self.b = b;
            self.c = c;
            self.bytes_left -= 12;
            self.group = [0; 3];
            self.group_fill = 0;
        }
        if self.remaining_words == 0 {
            self.finish_tail();
        }
    }
}

impl DynamicModule for JenkinsModule {
    fn name(&self) -> &str {
        "jenkins-lookup2"
    }

    fn poke(&mut self, data: u64) -> ModuleOutput {
        self.poke_at(0, data)
    }

    fn poke_at(&mut self, offset: u32, data: u64) -> ModuleOutput {
        let data = data as u32;
        match offset {
            4 => {
                self.len = data;
                self.bytes_left = data;
                // Words streamed: 3 per full block plus 3 for the tail
                // (the driver always sends whole 3-word groups, zero-padded
                // — hardware-friendly framing).
                let blocks = data / 12;
                self.remaining_words = blocks * 3 + 3;
                self.a = GOLDEN;
                self.b = GOLDEN;
                self.c = self.initval;
                self.group = [0; 3];
                self.group_fill = 0;
                self.hash = 0;
                self.done = false;
            }
            8 => self.initval = data,
            _ => self.absorb_word(data),
        }
        ModuleOutput {
            data: u64::from(self.hash),
            valid: self.done,
        }
    }

    fn peek(&self) -> u64 {
        u64::from(self.hash)
    }

    fn reset(&mut self) {
        *self = JenkinsModule::new();
    }
}

// ---------------------------------------------------------------------
// Software implementation and drivers.
// ---------------------------------------------------------------------

/// Portable lookup2 in assembly: byte gathering + the full mix, as the
/// published C compiles on a big-endian CPU without unaligned word loads.
///
/// args: r3 = key pointer, r4 = length, r5 = initval. Returns hash in r3.
pub(crate) const SW_ASM: &str = r#"
entry:
    lis  r6, 0x9E37
    ori  r6, r6, 0x79B9      ; a
    mr   r7, r6              ; b
    mr   r8, r5              ; c = initval
    mr   r9, r3              ; k
    mr   r10, r4             ; len remaining
blkloop:
    cmpwi r10, 12
    blt   tail
    # a += k[0] | k[1]<<8 | k[2]<<16 | k[3]<<24  (byte gathering)
    lbz  r11, 0(r9)
    lbz  r12, 1(r9)
    slwi r12, r12, 8
    or   r11, r11, r12
    lbz  r12, 2(r9)
    slwi r12, r12, 16
    or   r11, r11, r12
    lbz  r12, 3(r9)
    slwi r12, r12, 24
    or   r11, r11, r12
    add  r6, r6, r11
    lbz  r11, 4(r9)
    lbz  r12, 5(r9)
    slwi r12, r12, 8
    or   r11, r11, r12
    lbz  r12, 6(r9)
    slwi r12, r12, 16
    or   r11, r11, r12
    lbz  r12, 7(r9)
    slwi r12, r12, 24
    or   r11, r11, r12
    add  r7, r7, r11
    lbz  r11, 8(r9)
    lbz  r12, 9(r9)
    slwi r12, r12, 8
    or   r11, r11, r12
    lbz  r12, 10(r9)
    slwi r12, r12, 16
    or   r11, r11, r12
    lbz  r12, 11(r9)
    slwi r12, r12, 24
    or   r11, r11, r12
    add  r8, r8, r11
    bl   mix
    addi r9, r9, 12
    addi r10, r10, -12
    b    blkloop
tail:
    add  r8, r8, r4          ; c += length
    # gather up to 11 tail bytes into r11(a-part) r12(b-part) r13(c-part)
    li   r11, 0
    li   r12, 0
    li   r13, 0
    li   r14, 0              ; i
tloop:
    cmpw r14, r10
    bge  tdone
    lbzx r15, r9, r14        ; key byte
    # which word does byte i land in? i<4 → a, i<8 → b, else c (shifted +8)
    cmpwi r14, 4
    blt  t_a
    cmpwi r14, 8
    blt  t_b
    addi r16, r14, -8
    slwi r16, r16, 3
    addi r16, r16, 8         ; (i-8)*8 + 8
    slw  r15, r15, r16
    or   r13, r13, r15
    b    tnext
t_a:
    slwi r16, r14, 3
    slw  r15, r15, r16
    or   r11, r11, r15
    b    tnext
t_b:
    addi r16, r14, -4
    slwi r16, r16, 3
    slw  r15, r15, r16
    or   r12, r12, r15
tnext:
    addi r14, r14, 1
    b    tloop
tdone:
    add  r6, r6, r11
    add  r7, r7, r12
    add  r8, r8, r13
    bl   mix
    mr   r3, r8
    halt

mix:
    # a -= b; a -= c; a ^= c >> 13;   (and the other eight lines)
    sub  r6, r6, r7
    sub  r6, r6, r8
    srwi r17, r8, 13
    xor  r6, r6, r17
    sub  r7, r7, r8
    sub  r7, r7, r6
    slwi r17, r6, 8
    xor  r7, r7, r17
    sub  r8, r8, r6
    sub  r8, r8, r7
    srwi r17, r7, 13
    xor  r8, r8, r17
    sub  r6, r6, r7
    sub  r6, r6, r8
    srwi r17, r8, 12
    xor  r6, r6, r17
    sub  r7, r7, r8
    sub  r7, r7, r6
    slwi r17, r6, 16
    xor  r7, r7, r17
    sub  r8, r8, r6
    sub  r8, r8, r7
    srwi r17, r7, 5
    xor  r8, r8, r17
    sub  r6, r6, r7
    sub  r6, r6, r8
    srwi r17, r8, 3
    xor  r6, r6, r17
    sub  r7, r7, r8
    sub  r7, r7, r6
    slwi r17, r6, 10
    xor  r7, r7, r17
    sub  r8, r8, r6
    sub  r8, r8, r7
    srwi r17, r7, 15
    xor  r8, r8, r17
    blr
"#;

/// Hardware driver: init + word streaming + one hash read.
///
/// args: r3 = key pointer (word-aligned buffer, zero-padded), r4 = length,
/// r5 = initval. Returns hash in r3.
pub(crate) const HW_ASM: &str = r#"
entry:
    lis  r20, 0x8000
    stw  r5, 8(r20)          ; initval
    stw  r4, 4(r20)          ; init with length
    # words to send = (len/12)*3 + 3
    li   r7, 12
    li   r8, 0               ; full blocks
divloop:
    cmpw r4, r7
    blt  divdone
    sub  r4, r4, r7
    addi r8, r8, 1
    b    divloop
divdone:
    mullw r8, r8, r7
    srwi r8, r8, 2           ; blocks*3
    addi r8, r8, 3           ; + tail group
    mr   r9, r3
sendloop:
    lwz  r10, 0(r9)
    stw  r10, 0(r20)
    addi r9, r9, 4
    addi r8, r8, -1
    cmpwi r8, 0
    bne  sendloop
    lwz  r3, 0(r20)          ; the hash
    halt
"#;

/// Runs the software hash; returns `(time, hash)`.
pub fn sw_run(m: &mut Machine, key: &[u8], initval: u32) -> (SimTime, u32) {
    harness::store_bytes(m, SRC_A, key);
    let max = key.len() as u64 * 200 + 100_000;
    run_asm(m, SW_ASM, &[SRC_A, key.len() as u32, initval], max)
}

/// Runs the hardware hash; returns `(time, hash)`.
pub fn hw_run(m: &mut Machine, key: &[u8], initval: u32) -> (SimTime, u32) {
    bind(m, Box::new(JenkinsModule::new()));
    // Zero-padded, whole 3-word groups.
    let blocks = key.len() / 12;
    let padded_len = (blocks * 3 + 3) * 4;
    let mut padded = key.to_vec();
    padded.resize(padded_len.max(key.len()), 0);
    harness::store_bytes(m, SRC_A, &padded);
    let max = key.len() as u64 * 60 + 100_000;
    run_asm(m, HW_ASM, &[SRC_A, key.len() as u32, initval], max)
}

/// Measured comparison for one key length.
pub fn compare(kind: rtr_core::SystemKind, len: usize, seed: u64) -> Comparison {
    let mut rng = vp2_sim::SplitMix64::new(seed);
    let mut key = vec![0u8; len];
    rng.fill_bytes(&mut key);
    let want = hash_reference(&key, 0x1234_5678);
    let mut m = rtr_core::build_system(kind);
    let (sw, h) = sw_run(&mut m, &key, 0x1234_5678);
    assert_eq!(h, want, "software hash mismatch (len {len})");
    let mut m = rtr_core::build_system(kind);
    let (hw, h) = hw_run(&mut m, &key, 0x1234_5678);
    assert_eq!(h, want, "hardware hash mismatch (len {len})");
    let _ = DST;
    Comparison {
        sw,
        hw,
        prep: SimTime::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::SystemKind;

    #[test]
    fn reference_known_properties() {
        // Published algebraic property checks: same key, different initval
        // → different hash; deterministic.
        let k = b"The quick brown fox";
        assert_eq!(hash_reference(k, 0), hash_reference(k, 0));
        assert_ne!(hash_reference(k, 0), hash_reference(k, 1));
        assert_ne!(hash_reference(b"abc", 0), hash_reference(b"abd", 0));
        // Empty key is valid.
        let _ = hash_reference(b"", 7);
    }

    #[test]
    fn behavioural_module_matches_reference() {
        for len in [0usize, 1, 4, 11, 12, 13, 24, 37, 100] {
            let mut key = vec![0u8; len];
            vp2_sim::SplitMix64::new(len as u64).fill_bytes(&mut key);
            let mut module = JenkinsModule::new();
            module.poke_at(8, 0xCAFE);
            module.poke_at(4, len as u64);
            let blocks = len / 12;
            let words = blocks * 3 + 3;
            let mut padded = key.clone();
            padded.resize(words * 4, 0);
            for w in 0..words {
                let be = u32::from_be_bytes(padded[4 * w..4 * w + 4].try_into().unwrap());
                module.poke_at(0, u64::from(be));
            }
            assert_eq!(
                module.read_pop() as u32,
                hash_reference(&key, 0xCAFE),
                "len {len}"
            );
        }
    }

    #[test]
    fn module_equals_reference_property() {
        for case in 0..32u64 {
            let mut rng = vp2_sim::SplitMix64::new(0x1EC4_0000 + case);
            let mut key = vec![0u8; rng.below(200) as usize];
            rng.fill_bytes(&mut key);
            let iv = rng.next_u32();
            let mut module = JenkinsModule::new();
            module.poke_at(8, u64::from(iv));
            module.poke_at(4, key.len() as u64);
            let words = key.len() / 12 * 3 + 3;
            let mut padded = key.clone();
            padded.resize(words * 4, 0);
            for w in 0..words {
                let be = u32::from_be_bytes(padded[4 * w..4 * w + 4].try_into().unwrap());
                module.poke_at(0, u64::from(be));
            }
            assert_eq!(
                module.read_pop() as u32,
                hash_reference(&key, iv),
                "case {case}"
            );
        }
    }

    #[test]
    fn sw_matches_reference_on_machine() {
        let mut key = vec![0u8; 53];
        vp2_sim::SplitMix64::new(5).fill_bytes(&mut key);
        let want = hash_reference(&key, 99);
        let mut m = rtr_core::build_system(SystemKind::Bit32);
        let (_, h) = sw_run(&mut m, &key, 99);
        assert_eq!(h, want);
    }

    #[test]
    fn hw_matches_reference_on_machine() {
        let mut key = vec![0u8; 100];
        vp2_sim::SplitMix64::new(6).fill_bytes(&mut key);
        let want = hash_reference(&key, 1);
        let mut m = rtr_core::build_system(SystemKind::Bit64);
        let (_, h) = hw_run(&mut m, &key, 1);
        assert_eq!(h, want);
    }

    #[test]
    fn speedup_is_modest() {
        // Paper: "the speedup in this case is much more modest" — a small
        // factor, far below pattern matching's, but hardware still ahead
        // for block-dominated keys.
        let cmp = compare(SystemKind::Bit32, 4096, 11);
        let s = cmp.speedup();
        assert!(
            (0.8..6.0).contains(&s),
            "expected a modest ratio, got {s:.2} (sw {} hw {})",
            cmp.sw,
            cmp.hw
        );
    }
}
