//! Pattern matching in bilevel images (paper tables 3 and 9).
//!
//! Task: slide an 8×8 binary pattern over a larger binary image and report,
//! for every window position, how many of the 64 pixels match.
//!
//! * **Software**: the straightforward per-pixel C translation — per pixel,
//!   compute the bit address (with a real multiply, as 2-D indexing
//!   compiles to), extract the image bit and the pattern bit, compare.
//!   This is the paper's point: bit manipulation is cumbersome on the CPU.
//! * **Hardware**: the paper's eight-stage row-matching pipeline realised
//!   as a block-streaming engine. The driver streams the 8 rows of the
//!   current band 32 columns (one word) at a time; the module keeps the
//!   last three 8×32 blocks, computes 4 window counts per incoming word
//!   (XNOR + popcount per row, summed across the eight rows) and queues
//!   them; the driver reads one packed result word per write once the
//!   pipeline is primed. Per 32-pixel word written the module produces 4
//!   window results — the bit-parallelism the CPU cannot express.

use crate::harness::{self, bind, run_asm, Comparison, DST, SRC_A, SRC_B};
use dock::{DynamicModule, ModuleOutput};
use rtr_core::machine::Machine;
use std::collections::VecDeque;
use vp2_netlist::busmacro::DockMacros;
use vp2_netlist::components as c;
use vp2_netlist::graph::{Bus, NetId, Netlist};
use vp2_netlist::place::AutoPlacer;
use vp2_sim::{SimTime, SplitMix64};

/// A bit-packed bilevel image. Bit `x` of a row lives in word `x / 32`,
/// bit position `31 - (x % 32)` (big-endian bit order, matching how the
/// PowerPC addresses the packed bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryImage {
    /// Width in pixels (must be a multiple of 32).
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Packed rows, `width/32` words per row.
    pub data: Vec<u32>,
}

impl BinaryImage {
    /// Blank image.
    ///
    /// # Panics
    /// Panics unless `width` is a positive multiple of 32 and ≥ 8 rows.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width >= 32 && width.is_multiple_of(32),
            "width must be a multiple of 32"
        );
        assert!(height >= 8, "need at least 8 rows");
        BinaryImage {
            width,
            height,
            data: vec![0; width / 32 * height],
        }
    }

    /// Words per row.
    pub fn words_per_row(&self) -> usize {
        self.width / 32
    }

    /// Pixel accessor.
    pub fn pixel(&self, x: usize, y: usize) -> bool {
        let w = self.data[y * self.words_per_row() + x / 32];
        (w >> (31 - (x % 32))) & 1 == 1
    }

    /// Pixel setter.
    pub fn set_pixel(&mut self, x: usize, y: usize, v: bool) {
        let wpr = self.words_per_row();
        let word = &mut self.data[y * wpr + x / 32];
        let mask = 1u32 << (31 - (x % 32));
        if v {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Deterministic random image.
    pub fn random(width: usize, height: usize, seed: u64) -> Self {
        let mut img = BinaryImage::new(width, height);
        let mut rng = SplitMix64::new(seed);
        for w in &mut img.data {
            *w = rng.next_u32();
        }
        img
    }
}

/// Pattern bit: row `r`, column `j` → bit `7 - j` of byte `r`.
fn pattern_bit(pattern: &[u8; 8], r: usize, j: usize) -> bool {
    (pattern[r] >> (7 - j)) & 1 == 1
}

/// Reference implementation: `counts[y][x]` = matching pixels of the
/// window whose top-left corner is `(x, y)`.
pub fn match_counts_reference(img: &BinaryImage, pattern: &[u8; 8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for y in 0..=img.height - 8 {
        let mut row = Vec::new();
        for x in 0..=img.width - 8 {
            let mut cnt = 0u8;
            for r in 0..8 {
                for j in 0..8 {
                    if img.pixel(x + j, y + r) == pattern_bit(pattern, r, j) {
                        cnt += 1;
                    }
                }
            }
            row.push(cnt);
        }
        out.push(row);
    }
    out
}

// ---------------------------------------------------------------------
// Hardware module: behavioural model.
// ---------------------------------------------------------------------

/// Command: load pattern row (bits 26:24 = row, bits 7:0 = row pattern).
pub const CMD_PATTERN: u32 = 0x1000_0000;
/// Command: band reset.
pub const CMD_RESET: u32 = 0x2000_0000;

/// Behavioural model of the pattern-matching module.
#[derive(Debug, Clone)]
pub struct PatMatchModule {
    pattern: [u8; 8],
    prev2: [u32; 8],
    prev: [u32; 8],
    cur: [u32; 8],
    wcnt: usize,
    blocks_done: u8,
    queue: VecDeque<u32>,
}

impl Default for PatMatchModule {
    fn default() -> Self {
        Self::new()
    }
}

impl PatMatchModule {
    /// Fresh (post-configuration) module.
    pub fn new() -> Self {
        PatMatchModule {
            pattern: [0; 8],
            prev2: [0; 8],
            prev: [0; 8],
            cur: [0; 8],
            wcnt: 0,
            blocks_done: 0,
            queue: VecDeque::new(),
        }
    }

    /// Count for the window starting at column `p` (0..32) of the `prev2`
    /// block (columns ≥ 32 spill into `prev`).
    fn window_count(&self, p: usize) -> u8 {
        let mut cnt = 0u8;
        for r in 0..8 {
            for j in 0..8 {
                let col = p + j;
                let bit = if col < 32 {
                    (self.prev2[r] >> (31 - col)) & 1 == 1
                } else {
                    (self.prev[r] >> (31 - (col - 32))) & 1 == 1
                };
                if bit == pattern_bit(&self.pattern, r, j) {
                    cnt += 1;
                }
            }
        }
        cnt
    }
}

impl DynamicModule for PatMatchModule {
    fn name(&self) -> &str {
        "patmatch8x8"
    }

    fn poke(&mut self, data: u64) -> ModuleOutput {
        self.poke_at(0, data)
    }

    fn poke_at(&mut self, offset: u32, data: u64) -> ModuleOutput {
        let data = data as u32;
        if offset == 4 {
            match data >> 28 {
                1 => {
                    let row = ((data >> 24) & 0x7) as usize;
                    self.pattern[row] = (data & 0xFF) as u8;
                }
                2 => {
                    // Band reset: counters and queue only. Block contents
                    // stay (unobservable until two fresh blocks arrive),
                    // matching the gate-level design.
                    self.wcnt = 0;
                    self.blocks_done = 0;
                    self.queue.clear();
                }
                _ => {}
            }
        } else {
            if self.blocks_done >= 2 {
                let p = 4 * self.wcnt;
                let word = (u32::from(self.window_count(p)) << 24)
                    | (u32::from(self.window_count(p + 1)) << 16)
                    | (u32::from(self.window_count(p + 2)) << 8)
                    | u32::from(self.window_count(p + 3));
                if self.queue.len() < 8 {
                    self.queue.push_back(word);
                }
            }
            self.cur[self.wcnt] = data;
            self.wcnt += 1;
            if self.wcnt == 8 {
                self.prev2 = self.prev;
                self.prev = self.cur;
                self.blocks_done = (self.blocks_done + 1).min(2);
                self.wcnt = 0;
            }
        }
        ModuleOutput {
            data: u64::from(self.queue.front().copied().unwrap_or(0)),
            valid: !self.queue.is_empty(),
        }
    }

    fn peek(&self) -> u64 {
        u64::from(self.queue.front().copied().unwrap_or(0))
    }

    fn read_pop(&mut self) -> u64 {
        u64::from(self.queue.pop_front().unwrap_or(0))
    }

    fn reset(&mut self) {
        *self = PatMatchModule::new();
    }
}

// ---------------------------------------------------------------------
// Hardware module: gate-level netlist.
// ---------------------------------------------------------------------

/// 8:1 mux built from a mux2 tree.
fn mux8(nl: &mut Netlist, inputs: &[NetId; 8], sel: &[NetId; 3]) -> NetId {
    let l0: Vec<NetId> = (0..4)
        .map(|i| c::mux2(nl, inputs[2 * i], inputs[2 * i + 1], sel[0]))
        .collect();
    let l1: Vec<NetId> = (0..2)
        .map(|i| c::mux2(nl, l0[2 * i], l0[2 * i + 1], sel[1]))
        .collect();
    c::mux2(nl, l1[0], l1[1], sel[2])
}

/// Builds the gate-level pattern matcher. Port convention:
/// `din[32]`, `wr`, `rd`, `addr[1]`, `dout[32]`, `valid`.
pub fn patmatch_netlist() -> Netlist {
    let mut nl = Netlist::new("patmatch8x8");
    let din = nl.input_bus("din", 32);
    let wr = nl.input("wr", 0);
    let rd = nl.input("rd", 0);
    let addr = nl.input("addr", 0);
    let zero = nl.constant(false);

    let is_cmd = addr;
    let not_cmd = c::not(&mut nl, is_cmd);
    let wr_data = c::and2(&mut nl, wr, not_cmd);
    let wr_cmd = c::and2(&mut nl, wr, is_cmd);

    // Command decode: din[31:28] == 1 → pattern, == 2 → reset.
    let nib: Vec<NetId> = (28..32).map(|b| din[b]).collect();
    let is_pat = c::eq_const(&mut nl, &nib, 1);
    let is_rst = c::eq_const(&mut nl, &nib, 2);
    let pat_wr = c::and2(&mut nl, wr_cmd, is_pat);
    let rst = c::and2(&mut nl, wr_cmd, is_rst);

    // Pattern registers: 8 rows x 8 bits. Row select = din[26:24].
    let rowsel: Vec<NetId> = vec![din[24], din[25], din[26]];
    let mut pattern: Vec<Bus> = Vec::new();
    for r in 0..8u64 {
        let hit = c::eq_const(&mut nl, &rowsel, r);
        let ce = c::and2(&mut nl, pat_wr, hit);
        // Pattern bit (r, j) = din[7 - j].
        let bits: Bus = (0..8).map(|j| din[7 - j]).collect();
        pattern.push(c::register(&mut nl, &bits, Some(ce)));
    }

    // Write counter wcnt (3 bits) with synchronous reset.
    let wcnt_d: Bus = (0..3).map(|_| nl.net()).collect();
    let wcnt_ce = c::or2(&mut nl, wr_data, rst);
    let wcnt: Bus = wcnt_d
        .iter()
        .map(|&d| nl.ff(d, false, Some(wcnt_ce)))
        .collect();
    {
        let one = c::const_bus(&mut nl, 3, 1);
        let (inc, _) = c::adder(&mut nl, &wcnt, &one, zero);
        let not_rst = c::not(&mut nl, rst);
        for i in 0..3 {
            let gated = c::and2(&mut nl, inc[i], not_rst);
            nl.lut_into(
                c::truth4(|a, _, _, _| a),
                [Some(gated), None, None, None],
                wcnt_d[i],
            );
        }
    }
    let wcnt_is7 = c::eq_const(&mut nl, &wcnt, 7);
    let block_end = c::and2(&mut nl, wr_data, wcnt_is7);
    let not_rst = c::not(&mut nl, rst);

    // Block registers: cur / prev, 8 rows x 32 bits. Reset does NOT clear
    // them — blocks_done gates outputs until two fresh blocks have been
    // streamed, so stale pixels are never observable (saves ~770 LUTs of
    // clear gating; the behavioural model matches this choice).
    let mut cur: Vec<Bus> = Vec::new();
    for r in 0..8u64 {
        let hit = c::eq_const(&mut nl, &wcnt, r);
        let ce = c::and2(&mut nl, wr_data, hit);
        cur.push(c::register(&mut nl, &din, Some(ce)));
    }
    // prev[r] <= (r == 7 ? din : cur[r]) at block_end.
    let mut prev: Vec<Bus> = Vec::new();
    for (r, cur_row) in cur.iter().enumerate() {
        let src: Bus = if r == 7 { din.clone() } else { cur_row.clone() };
        prev.push(c::register(&mut nl, &src, Some(block_end)));
    }

    // blocks_done: saturating 2-bit counter with synchronous reset.
    let bd_ce = c::or2(&mut nl, block_end, rst);
    let bd_d: Bus = (0..2).map(|_| nl.net()).collect();
    let bd: Bus = bd_d.iter().map(|&d| nl.ff(d, false, Some(bd_ce))).collect();
    let ready = bd[1]; // counts 0,1,2 → bit 1 set at 2
    {
        // next = rst ? 0 : min(bd+1, 2): bd0' = !bd1 & !bd0; bd1' = bd0|bd1.
        let n0 = {
            let nor = nl.lut(
                c::truth4(|a, b, _, _| !a && !b),
                [Some(bd[0]), Some(bd[1]), None, None],
            );
            c::and2(&mut nl, nor, not_rst)
        };
        let n1 = {
            let or = c::or2(&mut nl, bd[0], bd[1]);
            c::and2(&mut nl, or, not_rst)
        };
        nl.lut_into(
            c::truth4(|a, _, _, _| a),
            [Some(n0), None, None, None],
            bd_d[0],
        );
        nl.lut_into(
            c::truth4(|a, _, _, _| a),
            [Some(n1), None, None, None],
            bd_d[1],
        );
    }

    // Sliding window register per row: 44 columns of [prev2 | prev] in
    // column order. Loaded at block_end with the *post-promotion* contents
    // (new prev2 = current prev, new prev = {cur rows 0..6, din}), shifted
    // left by 4 columns on every other data write. The live window slice is
    // always columns 0..11 — no wide muxes needed.
    // Column c of a block word is bus bit 31-c (big-endian pixel order).
    let mut slice: Vec<Bus> = Vec::new();
    for r in 0..8 {
        let load: Bus = (0..44)
            .map(|cidx| {
                if cidx < 32 {
                    prev[r][31 - cidx]
                } else {
                    let col = cidx - 32;
                    if r < 7 {
                        cur[r][31 - col]
                    } else {
                        din[31 - col]
                    }
                }
            })
            .collect();
        let d: Bus = (0..44).map(|_| nl.net()).collect();
        let q: Bus = d
            .iter()
            .map(|&dd| nl.ff(dd, false, Some(wr_data)))
            .collect();
        for cidx in 0..44 {
            let shifted = if cidx + 4 < 44 { q[cidx + 4] } else { zero };
            let sel = c::mux2(&mut nl, shifted, load[cidx], block_end);
            nl.lut_into(
                c::truth4(|a, _, _, _| a),
                [Some(sel), None, None, None],
                d[cidx],
            );
        }
        slice.push(q[..11].to_vec());
    }

    // Four window counts (window j uses slice bits j..j+8 per row).
    let mut packed: Bus = Vec::new();
    let mut counts: Vec<Bus> = Vec::new();
    for j in 0..4 {
        // Row popcounts.
        let mut rowcounts: Vec<Bus> = Vec::new();
        for (r, row_slice) in slice.iter().enumerate() {
            let eqs: Bus = (0..8)
                .map(|k| {
                    let pbit = pattern[r][k];
                    c::xnor2(&mut nl, row_slice[j + k], pbit)
                })
                .collect();
            rowcounts.push(c::popcount(&mut nl, &eqs));
        }
        // Sum the eight 4-bit row counts into a 7-bit total.
        let mut acc: Bus = rowcounts[0].clone();
        for rc in &rowcounts[1..] {
            let width = acc.len().max(rc.len()) + 1;
            let mut ea = acc.clone();
            let mut eb = rc.clone();
            ea.resize(width, zero);
            eb.resize(width, zero);
            let (s, _) = c::adder(&mut nl, &ea, &eb, zero);
            acc = s;
        }
        acc.truncate(7);
        counts.push(acc);
    }
    // packed = c0<<24 | c1<<16 | c2<<8 | c3, LSB-first bus.
    for j in (0..4).rev() {
        let mut field = counts[j].clone();
        field.resize(8, zero);
        packed.extend(field);
    }

    // Output queue: 8 x 32 registers, wptr/rptr 3-bit counters.
    let push = c::and2(&mut nl, wr_data, ready);
    let build_ptr = |nl: &mut Netlist, ce_ev: NetId, rst: NetId, not_rst: NetId| -> Bus {
        let d: Bus = (0..3).map(|_| nl.net()).collect();
        let ce = c::or2(nl, ce_ev, rst);
        let q: Bus = d.iter().map(|&dd| nl.ff(dd, false, Some(ce))).collect();
        let one = c::const_bus(nl, 3, 1);
        let zero2 = nl.constant(false);
        let (inc, _) = c::adder(nl, &q, &one, zero2);
        for i in 0..3 {
            let sel = c::mux2(nl, q[i], inc[i], ce_ev);
            let cleared = c::and2(nl, sel, not_rst);
            nl.lut_into(
                c::truth4(|a, _, _, _| a),
                [Some(cleared), None, None, None],
                d[i],
            );
        }
        q
    };
    let wptr = build_ptr(&mut nl, push, rst, not_rst);
    let rptr = build_ptr(&mut nl, rd, rst, not_rst);
    let mut qregs: Vec<Bus> = Vec::new();
    for s in 0..8u64 {
        let hit = c::eq_const(&mut nl, &wptr, s);
        let ce = c::and2(&mut nl, push, hit);
        qregs.push(c::register(&mut nl, &packed, Some(ce)));
    }
    let rsel: [NetId; 3] = [rptr[0], rptr[1], rptr[2]];
    let dout: Bus = (0..32)
        .map(|i| {
            let cands: [NetId; 8] = std::array::from_fn(|s| qregs[s][i]);
            mux8(&mut nl, &cands, &rsel)
        })
        .collect();
    nl.output_bus("dout", &dout);
    // valid = wptr != rptr (queue non-empty; 8-deep never wraps past full
    // in the driver protocol).
    let neq: Vec<NetId> = (0..3).map(|i| c::xor2(&mut nl, wptr[i], rptr[i])).collect();
    let valid = c::or_tree(&mut nl, &neq);
    nl.output("valid", 0, valid);
    nl
}

/// Builds the placed component (for area checks and BitLinker loading).
pub fn patmatch_component(width: u16, height: u16) -> vp2_bitstream::Component {
    let nl = patmatch_netlist();
    build_component(nl, 32, width, height)
}

/// Shared helper: wraps a dock-protocol netlist into a relocatable
/// component with the standard dock macros.
pub fn build_component(
    nl: Netlist,
    bus_width: u16,
    region_w: u16,
    region_h: u16,
) -> vp2_bitstream::Component {
    let name = nl.name.clone();
    try_build_component(nl, bus_width, region_w, region_h)
        .unwrap_or_else(|| panic!("{name}: does not place in {region_w}×{region_h} CLBs"))
}

/// [`build_component`] for footprints that may legitimately not fit —
/// sub-slot registration sizes components to a fraction of the region,
/// and a kernel too large for the slot falls back to software instead of
/// panicking. `None` when the netlist cannot be placed in the footprint.
pub fn try_build_component(
    mut nl: Netlist,
    bus_width: u16,
    region_w: u16,
    region_h: u16,
) -> Option<vp2_bitstream::Component> {
    // The netlists above declare their own din/wr/... ports directly; the
    // bus macros are added as pass-through pins on top (component-private
    // LUTs pinned at the agreed sites would double every port net, so for
    // area/bitstream purposes we account the macro LUTs separately).
    let dm = DockMacros::for_width(bus_width);
    let mut placer = AutoPlacer::new();
    // Account the macro pass-through LUTs: one pinned LUT per signal fed by
    // a constant (the real macro drives them from the port nets; for the
    // configuration image only the LUT sites and truth tables matter).
    let id = c::truth4(|a, _, _, _| a);
    let zero = nl.constant(false);
    for m in [&dm.write, &dm.read, &dm.strobe] {
        for &site in &m.sites {
            let out = nl.net();
            let cell = nl.lut_into(id, [Some(zero), None, None, None], out);
            placer.pin_lut(cell, site);
            // Keep the net alive via a throwaway output port.
        }
    }
    let name = nl.name.clone();
    let placement = placer.place(&nl, region_w, region_h).ok()?;
    Some(
        vp2_bitstream::Component::new(name, nl, placement, vec![dm.write, dm.read, dm.strobe])
            .expect("netlist valid"),
    )
}

// ---------------------------------------------------------------------
// Software implementation (PPC assembly) and drivers.
// ---------------------------------------------------------------------

/// The naive per-pixel software implementation (see module docs).
pub(crate) const SW_ASM: &str = r#"
    # args: r3 = W, r4 = H, r5 = img, r6 = pattern, r7 = out (byte grid)
entry:
    srwi r15, r3, 5          ; words per row
    addi r26, r3, -7         ; W - 7
    addi r27, r4, -7         ; H - 7
    li   r8, 0               ; y
yloop:
    li   r9, 0               ; x
xloop:
    li   r12, 0              ; cnt
    li   r10, 0              ; r
rloop:
    add   r17, r8, r10       ; y + r
    mullw r13, r17, r15      ; row word base (the 2-D index multiply a
                             ; compiler hoists out of the innermost loop)
    li   r11, 0              ; j
jloop:
    add   r16, r9, r11       ; x + j
    srwi  r14, r16, 5
    add   r19, r13, r14
    slwi  r19, r19, 2
    lwzx  r19, r5, r19       ; image word
    andi  r14, r16, 31
    li    r18, 31
    sub   r14, r18, r14
    srw   r19, r19, r14
    andi  r19, r19, 1        ; image bit
    lbzx  r14, r6, r10       ; pattern row byte
    li    r18, 7
    sub   r18, r18, r11
    srw   r14, r14, r18
    andi  r14, r14, 1        ; pattern bit
    cmpw  r19, r14
    bne   jnext
    addi  r12, r12, 1
jnext:
    addi  r11, r11, 1
    cmpwi r11, 8
    blt   jloop
    addi  r10, r10, 1
    cmpwi r10, 8
    blt   rloop
    mullw r13, r8, r26
    add   r13, r13, r9
    stbx  r12, r7, r13
    addi  r9, r9, 1
    cmpw  r9, r26
    blt   xloop
    addi  r8, r8, 1
    cmpw  r8, r27
    blt   yloop
    halt
"#;

/// Hand-optimised software variant (the DESIGN.md ablation): row-wise
/// window extraction with word loads and a 256-entry popcount table,
/// instead of per-pixel bit extraction. What a performance programmer
/// would write — quantifies how much of the headline speedup is owed to
/// the naive baseline.
/// args: r3 = W, r4 = H, r5 = img, r6 = pattern, r7 = out, r8 = table.
const SW_OPT_ASM: &str = r#"
entry:
    srwi r15, r3, 5          ; words per row
    addi r26, r3, -7
    addi r27, r4, -7
    li   r9, 0               ; y
oyloop:
    mullw r28, r9, r15
    slwi r28, r28, 2
    add  r28, r28, r5        ; row-y base pointer (hoisted)
    li   r10, 0              ; x
oxloop:
    li   r12, 0              ; matches
    li   r11, 0              ; r
orloop:
    mullw r13, r11, r15
    slwi r13, r13, 2
    add  r13, r13, r28       ; row (y+r) base
    srwi r14, r10, 5
    slwi r14, r14, 2
    add  r14, r14, r13
    lwz  r16, 0(r14)         ; word holding column x
    lwz  r17, 4(r14)         ; spill word
    andi r18, r10, 31
    slw  r16, r16, r18
    srwi r17, r17, 1         ; two-step shift: avoids the sh=32 case
    li   r19, 31
    sub  r19, r19, r18
    srw  r17, r17, r19
    or   r16, r16, r17
    srwi r16, r16, 24        ; the 8-pixel window row
    lbzx r17, r6, r11
    xor  r16, r16, r17       ; mismatch bits
    lbzx r16, r8, r16        ; popcount via table
    addi r12, r12, 8
    sub  r12, r12, r16       ; matches += 8 - mismatches
    addi r11, r11, 1
    cmpwi r11, 8
    blt  orloop
    mullw r13, r9, r26
    add  r13, r13, r10
    stbx r12, r7, r13
    addi r10, r10, 1
    cmpw r10, r26
    blt  oxloop
    addi r9, r9, 1
    cmpw r9, r27
    blt  oyloop
    halt
"#;

/// Runs the optimised software variant; returns `(time, counts)`.
pub fn sw_run_optimized(
    m: &mut Machine,
    img: &BinaryImage,
    pattern: &[u8; 8],
) -> (SimTime, Vec<Vec<u8>>) {
    harness::store_words(m, SRC_A, &img.data);
    harness::store_bytes(m, SRC_B, pattern);
    let table: Vec<u8> = (0..=255u16).map(|v| v.count_ones() as u8).collect();
    harness::store_bytes(m, harness::AUX, &table);
    let (w, h) = (img.width as u32, img.height as u32);
    let max = u64::from(w) * u64::from(h) * 600 + 100_000;
    let (t, _) = run_asm(m, SW_OPT_ASM, &[w, h, SRC_A, SRC_B, DST, harness::AUX], max);
    let out = harness::load_bytes(m, DST, (img.width - 7) * (img.height - 7));
    let counts = out.chunks(img.width - 7).map(<[u8]>::to_vec).collect();
    (t, counts)
}

/// The hardware driver: streams bands through the dock.
pub(crate) const HW_ASM: &str = r#"
    # args: r3 = bands (H-7), r4 = B (W/32), r5 = img, r6 = pattern,
    #       r7 = out (packed result words)
entry:
    lis  r20, 0x8000         ; dock
    # load the 8 pattern rows
    li   r10, 0
patloop:
    lbzx r11, r6, r10
    slwi r12, r10, 24
    or   r12, r12, r11
    lis  r13, 0x1000
    or   r12, r12, r13
    stw  r12, 4(r20)         ; CMD_PATTERN
    addi r10, r10, 1
    cmpwi r10, 8
    blt  patloop

    slwi r21, r4, 2          ; row stride bytes
    mr   r22, r5             ; band base pointer
    mr   r23, r7             ; out cursor
    li   r8, 0               ; band index
bandloop:
    lis  r12, 0x2000
    stw  r12, 4(r20)         ; CMD_RESET
    li   r9, 0               ; block index
blockloop:
    cmpw r9, r4
    bge  zeroblock
    slwi r13, r9, 2
    add  r13, r13, r22       ; &img[band_row][block]
    li   r10, 0
rowloop:
    lwz  r12, 0(r13)
    stw  r12, 0(r20)         ; data word into the region
    add  r13, r13, r21
    addi r10, r10, 1
    cmpwi r10, 8
    blt  rowloop
    b    reads
zeroblock:
    li   r10, 0
zrow:
    stw  r0, 0(r20)          ; flush with zero blocks
    addi r10, r10, 1
    cmpwi r10, 8
    blt  zrow
reads:
    cmpwi r9, 2
    blt  noread
    li   r10, 0
readloop:
    lwz  r12, 0(r20)         ; packed 4-count result word
    stw  r12, 0(r23)
    addi r23, r23, 4
    addi r10, r10, 1
    cmpwi r10, 8
    blt  readloop
noread:
    addi r9, r9, 1
    addi r14, r4, 2
    cmpw r9, r14
    blt  blockloop
    add  r22, r22, r21
    addi r8, r8, 1
    cmpw r8, r3
    blt  bandloop
    halt
"#;

/// Runs the software version on `m`; returns `(time, counts)`.
pub fn sw_run(m: &mut Machine, img: &BinaryImage, pattern: &[u8; 8]) -> (SimTime, Vec<Vec<u8>>) {
    harness::store_words(m, SRC_A, &img.data);
    harness::store_bytes(m, SRC_B, pattern);
    let (w, h) = (img.width as u32, img.height as u32);
    let max = u64::from(w) * u64::from(h) * 3000 + 100_000;
    let (t, _) = run_asm(m, SW_ASM, &[w, h, SRC_A, SRC_B, DST], max);
    let out = harness::load_bytes(m, DST, (img.width - 7) * (img.height - 7));
    let counts = out.chunks(img.width - 7).map(<[u8]>::to_vec).collect();
    (t, counts)
}

/// Runs the hardware version (behavioural module bound to the dock);
/// returns `(time, counts)`.
pub fn hw_run(m: &mut Machine, img: &BinaryImage, pattern: &[u8; 8]) -> (SimTime, Vec<Vec<u8>>) {
    bind(m, Box::new(PatMatchModule::new()));
    harness::store_words(m, SRC_A, &img.data);
    harness::store_bytes(m, SRC_B, pattern);
    let bands = (img.height - 7) as u32;
    let blocks = (img.width / 32) as u32;
    let max = u64::from(bands) * u64::from(blocks + 2) * 400 + 100_000;
    let (t, _) = run_asm(m, HW_ASM, &[bands, blocks, SRC_A, SRC_B, DST], max);
    // Unpack: per band, B blocks x 8 words x 4 counts.
    let words = harness::load_words(m, DST, bands as usize * blocks as usize * 8);
    let mut counts = vec![vec![0u8; img.width - 7]; bands as usize];
    let mut it = words.iter();
    for band in counts.iter_mut() {
        for b in 0..blocks as usize {
            for w in 0..8 {
                let word = *it.next().expect("exact count");
                for k in 0..4 {
                    let x = 32 * b + 4 * w + k;
                    if x < band.len() {
                        band[x] = ((word >> (24 - 8 * k)) & 0xFF) as u8;
                    }
                }
            }
        }
    }
    (t, counts)
}

/// Full comparison on a machine pair (tables 3 and 9 rows).
pub fn compare(kind: rtr_core::SystemKind, img: &BinaryImage, pattern: &[u8; 8]) -> Comparison {
    let reference = match_counts_reference(img, pattern);
    let mut m = rtr_core::build_system(kind);
    let (sw, sw_counts) = sw_run(&mut m, img, pattern);
    assert_eq!(sw_counts, reference, "software result mismatch");
    let mut m = rtr_core::build_system(kind);
    let (hw, hw_counts) = hw_run(&mut m, img, pattern);
    assert_eq!(hw_counts, reference, "hardware result mismatch");
    Comparison {
        sw,
        hw,
        prep: SimTime::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dock::GateLevelModule;
    use rtr_core::SystemKind;

    const PATTERN: [u8; 8] = [0b1010_1010, 0xFF, 0x00, 0x81, 0x42, 0x24, 0x18, 0x5A];

    #[test]
    fn reference_self_match_is_64() {
        // An image equal to the tiled pattern matches perfectly at (0,0).
        let mut img = BinaryImage::new(32, 9);
        for y in 0..8 {
            for x in 0..8 {
                img.set_pixel(x, y, pattern_bit(&PATTERN, y, x));
            }
        }
        let counts = match_counts_reference(&img, &PATTERN);
        assert_eq!(counts[0][0], 64);
        // Inverted pattern: complement the window → 0 matches.
        let inv: [u8; 8] = std::array::from_fn(|i| !PATTERN[i]);
        let counts = match_counts_reference(&img, &inv);
        assert_eq!(counts[0][0], 0);
    }

    #[test]
    fn pixel_accessors() {
        let mut img = BinaryImage::new(64, 8);
        img.set_pixel(33, 5, true);
        assert!(img.pixel(33, 5));
        assert!(!img.pixel(32, 5));
        img.set_pixel(33, 5, false);
        assert!(!img.pixel(33, 5));
    }

    /// Drives a module through the band protocol in pure Rust (no machine)
    /// and returns the counts.
    fn drive_protocol(
        module: &mut dyn DynamicModule,
        img: &BinaryImage,
        pattern: &[u8; 8],
    ) -> Vec<Vec<u8>> {
        for (r, &byte) in pattern.iter().enumerate() {
            module.poke_at(
                4,
                u64::from(CMD_PATTERN | (r as u32) << 24 | u32::from(byte)),
            );
        }
        let blocks = img.width / 32;
        let bands = img.height - 7;
        let wpr = img.words_per_row();
        let mut counts = vec![vec![0u8; img.width - 7]; bands];
        for (y, band) in counts.iter_mut().enumerate() {
            module.poke_at(4, u64::from(CMD_RESET));
            for b in 0..blocks + 2 {
                for r in 0..8 {
                    let w = if b < blocks {
                        img.data[(y + r) * wpr + b]
                    } else {
                        0
                    };
                    module.poke_at(0, u64::from(w));
                }
                if b >= 2 {
                    for w in 0..8 {
                        let word = module.read_at(0) as u32;
                        for k in 0..4 {
                            let x = 32 * (b - 2) + 4 * w + k;
                            if x < band.len() {
                                band[x] = ((word >> (24 - 8 * k)) & 0xFF) as u8;
                            }
                        }
                    }
                }
            }
        }
        counts
    }

    #[test]
    fn behavioural_module_matches_reference() {
        let img = BinaryImage::random(96, 12, 0xFEED);
        let mut module = PatMatchModule::new();
        let got = drive_protocol(&mut module, &img, &PATTERN);
        assert_eq!(got, match_counts_reference(&img, &PATTERN));
    }

    #[test]
    fn gate_level_matches_behavioural() {
        let nl = patmatch_netlist();
        let mut gate = GateLevelModule::new(&nl).unwrap();
        let mut beh = PatMatchModule::new();
        let img = BinaryImage::random(64, 10, 42);
        let got_gate = drive_protocol(&mut gate, &img, &PATTERN);
        let got_beh = drive_protocol(&mut beh, &img, &PATTERN);
        assert_eq!(got_gate, got_beh);
        assert_eq!(got_beh, match_counts_reference(&img, &PATTERN));
    }

    #[test]
    fn netlist_fits_the_32bit_region() {
        let comp = patmatch_component(28, 11);
        // 28 x 11 CLBs = 1232 slices; the matcher must fit (it ran on the
        // 32-bit system in the paper).
        assert!(comp.slices_used() <= 1232, "{} slices", comp.slices_used());
    }

    #[test]
    fn sw_matches_reference_on_machine() {
        let img = BinaryImage::random(32, 10, 7);
        let mut m = rtr_core::build_system(SystemKind::Bit32);
        let (_, counts) = sw_run(&mut m, &img, &PATTERN);
        assert_eq!(counts, match_counts_reference(&img, &PATTERN));
    }

    #[test]
    fn hw_matches_reference_on_machine() {
        let img = BinaryImage::random(64, 12, 9);
        let mut m = rtr_core::build_system(SystemKind::Bit32);
        let (_, counts) = hw_run(&mut m, &img, &PATTERN);
        assert_eq!(counts, match_counts_reference(&img, &PATTERN));
    }

    #[test]
    fn optimized_sw_matches_reference_and_is_faster() {
        let img = BinaryImage::random(64, 14, 11);
        let mut m = rtr_core::build_system(SystemKind::Bit32);
        let (t_naive, counts) = sw_run(&mut m, &img, &PATTERN);
        assert_eq!(counts, match_counts_reference(&img, &PATTERN));
        let mut m = rtr_core::build_system(SystemKind::Bit32);
        let (t_opt, counts) = sw_run_optimized(&mut m, &img, &PATTERN);
        assert_eq!(counts, match_counts_reference(&img, &PATTERN));
        assert!(
            t_opt.as_ps() * 3 < t_naive.as_ps(),
            "table-driven sw should be >3x faster: {t_opt} vs {t_naive}"
        );
    }

    #[test]
    fn speedup_is_large_on_the_32bit_system() {
        let img = BinaryImage::random(64, 16, 3);
        let cmp = compare(SystemKind::Bit32, &img, &PATTERN);
        assert!(
            cmp.speedup() > 10.0,
            "expected a large speedup, got {:.1} (sw {}, hw {})",
            cmp.speedup(),
            cmp.sw,
            cmp.hw
        );
    }
}
