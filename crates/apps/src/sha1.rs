//! SHA-1 (paper table 11; 64-bit system only).
//!
//! "We also tested the system with the more demanding hash function SHA1.
//! … Our implementation does not fit into the dynamic area of the 32-bit
//! system, so no comparison can be done."
//!
//! * **Software**: an RFC 3174-style implementation in assembly — context
//!   initialisation, byte-wise message staging, padding and digest
//!   extraction all included, which is exactly the fixed overhead the paper
//!   notes dominates for small messages.
//! * **Hardware**: a behavioural block core (16 word writes per block, the
//!   80 rounds run between transfers) plus a gate-level **8-round-unrolled**
//!   core. The unrolled datapath is what makes it too big for the 32-bit
//!   system's 308-CLB region while fitting the 64-bit system's 768 CLBs —
//!   reproduce the paper's fits/doesn't-fit result with a real netlist.
//!   Transfers use 32-bit CPU-controlled stores, as in the paper.

use crate::harness::{self, bind, run_asm, Comparison, DST, SRC_A};
use dock::{DynamicModule, ModuleOutput};
use rtr_core::machine::Machine;
use vp2_netlist::components as c;
use vp2_netlist::graph::{Bus, NetId, Netlist};
use vp2_sim::SimTime;

/// SHA-1 initial hash values.
pub const IV: [u32; 5] = [
    0x6745_2301,
    0xEFCD_AB89,
    0x98BA_DCFE,
    0x1032_5476,
    0xC3D2_E1F0,
];
/// Round constants per 20-round phase.
pub const K: [u32; 4] = [0x5A82_7999, 0x6ED9_EBA1, 0x8F1B_BCDC, 0xCA62_C1D6];

/// Reference SHA-1 (returns the 5-word digest).
pub fn sha1_reference(msg: &[u8]) -> [u32; 5] {
    let mut h = IV;
    let mut data = msg.to_vec();
    let bitlen = (msg.len() as u64) * 8;
    data.push(0x80);
    while data.len() % 64 != 56 {
        data.push(0);
    }
    data.extend_from_slice(&bitlen.to_be_bytes());
    for block in data.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().expect("4 bytes"));
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut cc, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t / 20 {
                0 => ((b & cc) | (!b & d), K[0]),
                1 => (b ^ cc ^ d, K[1]),
                2 => ((b & cc) | (b & d) | (cc & d), K[2]),
                _ => (b ^ cc ^ d, K[3]),
            };
            let t2 = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = cc;
            cc = b.rotate_left(30);
            b = a;
            a = t2;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(cc);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    h
}

// ---------------------------------------------------------------------
// Behavioural hardware module.
// ---------------------------------------------------------------------

/// Behavioural SHA-1 core. Protocol: offset 4 write = init; offset 0
/// writes = message words (16 per block, pre-padded by the driver);
/// reads at offsets 0/4/8/12/16 return H0..H4.
#[derive(Debug, Clone)]
pub struct Sha1Module {
    h: [u32; 5],
    block: [u32; 16],
    wcnt: usize,
}

impl Default for Sha1Module {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1Module {
    /// Fresh core.
    pub fn new() -> Self {
        Sha1Module {
            h: IV,
            block: [0; 16],
            wcnt: 0,
        }
    }

    fn process_block(&mut self) {
        let mut w = [0u32; 80];
        w[..16].copy_from_slice(&self.block);
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut cc, mut d, mut e) =
            (self.h[0], self.h[1], self.h[2], self.h[3], self.h[4]);
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t / 20 {
                0 => ((b & cc) | (!b & d), K[0]),
                1 => (b ^ cc ^ d, K[1]),
                2 => ((b & cc) | (b & d) | (cc & d), K[2]),
                _ => (b ^ cc ^ d, K[3]),
            };
            let t2 = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = cc;
            cc = b.rotate_left(30);
            b = a;
            a = t2;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(cc);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

impl DynamicModule for Sha1Module {
    fn name(&self) -> &str {
        "sha1-core"
    }

    fn poke(&mut self, data: u64) -> ModuleOutput {
        self.poke_at(0, data)
    }

    fn poke_at(&mut self, offset: u32, data: u64) -> ModuleOutput {
        if offset == 4 {
            *self = Sha1Module::new();
        } else {
            self.block[self.wcnt] = data as u32;
            self.wcnt += 1;
            if self.wcnt == 16 {
                self.process_block();
                self.wcnt = 0;
            }
        }
        ModuleOutput {
            data: u64::from(self.h[0]),
            valid: self.wcnt == 0,
        }
    }

    fn peek(&self) -> u64 {
        u64::from(self.h[0])
    }

    fn read_at(&mut self, offset: u32) -> u64 {
        let idx = (offset as usize / 4).min(4);
        u64::from(self.h[idx])
    }

    fn reset(&mut self) {
        *self = Sha1Module::new();
    }
}

// ---------------------------------------------------------------------
// Gate-level netlist: 8-round-unrolled core.
// ---------------------------------------------------------------------

/// One unrolled SHA-1 round in logic.
#[allow(clippy::too_many_arguments)]
fn round_logic(
    nl: &mut Netlist,
    a: &Bus,
    b: &Bus,
    cc: &Bus,
    d: &Bus,
    e: &Bus,
    w: &Bus,
    phase: &[NetId; 2],
) -> (Bus, Bus, Bus, Bus, Bus) {
    // f candidates.
    let ch: Bus = (0..32)
        .map(|i| {
            nl.lut(
                c::truth4(|b, cx, dx, _| (b && cx) || (!b && dx)),
                [Some(b[i]), Some(cc[i]), Some(d[i]), None],
            )
        })
        .collect();
    let par: Bus = (0..32).map(|i| c::xor3(nl, b[i], cc[i], d[i])).collect();
    let maj: Bus = (0..32).map(|i| c::maj3(nl, b[i], cc[i], d[i])).collect();
    // f = 4:1 mux by phase (0→ch, 1→par, 2→maj, 3→par).
    let f: Bus = (0..32)
        .map(|i| {
            let l0 = c::mux2(nl, ch[i], par[i], phase[0]); // phase 0/1
            let l1 = c::mux2(nl, maj[i], par[i], phase[0]); // phase 2/3
            c::mux2(nl, l0, l1, phase[1])
        })
        .collect();
    // K constant mux: per bit LUT over the two phase bits.
    let kbus: Bus = (0..32)
        .map(|i| {
            nl.lut(
                c::truth4(move |p0, p1, _, _| {
                    let k = K[usize::from(p0) | (usize::from(p1) << 1)];
                    (k >> i) & 1 == 1
                }),
                [Some(phase[0]), Some(phase[1]), None, None],
            )
        })
        .collect();
    let rot5 = c::rotl(a, 5);
    let s1 = c::add_mod(nl, &rot5, &f);
    let s2 = c::add_mod(nl, &s1, e);
    let s3 = c::add_mod(nl, &s2, &kbus);
    let t = c::add_mod(nl, &s3, w);
    let new_c = c::rotl(b, 30);
    (t, a.clone(), new_c, cc.clone(), d.clone())
}

/// Builds the 8-round-unrolled SHA-1 netlist. Ports: `din[32]`, `wr`,
/// `addr[3]`, `dout[32]`, `busy`, `valid`.
#[allow(clippy::too_many_lines)]
pub fn sha1_netlist() -> Netlist {
    let mut nl = Netlist::new("sha1-unroll8");
    let din = nl.input_bus("din", 32);
    let wr = nl.input("wr", 0);
    let addr = nl.input_bus("addr", 3);
    let zero = nl.constant(false);

    // addr 0 → data port; addr 1 → init command.
    let a0 = c::eq_const(&mut nl, &addr, 0);
    let a1 = c::eq_const(&mut nl, &addr, 1);
    let wr_data = c::and2(&mut nl, wr, a0);
    let init = c::and2(&mut nl, wr, a1);

    // busy FF and round counter rc (4 bits).
    let busy_d = nl.net();
    let busy = nl.ff(busy_d, false, None);
    let not_busy = c::not(&mut nl, busy);
    let absorb = c::and2(&mut nl, wr_data, not_busy);
    let rc_d: Bus = (0..4).map(|_| nl.net()).collect();
    let rc: Bus = rc_d.iter().map(|&d| nl.ff(d, false, None)).collect();
    let rc_is9 = c::eq_const(&mut nl, &rc, 9);
    let step = busy; // one round-group per free-running cycle while busy

    // Word counter (4 bits) during absorb.
    let wcnt_d: Bus = (0..4).map(|_| nl.net()).collect();
    let wcnt_ce = c::or2(&mut nl, absorb, init);
    let wcnt: Bus = wcnt_d
        .iter()
        .map(|&d| nl.ff(d, false, Some(wcnt_ce)))
        .collect();
    let wcnt_is15 = c::eq_const(&mut nl, &wcnt, 15);
    let start_block = c::and2(&mut nl, absorb, wcnt_is15);
    {
        let one = c::const_bus(&mut nl, 4, 1);
        let (inc, _) = c::adder(&mut nl, &wcnt, &one, zero);
        // next wcnt: 0 on init or start_block-completion or rc_is9 path;
        // else inc on absorb.
        let clr = c::or2(&mut nl, init, start_block);
        let not_clr = c::not(&mut nl, clr);
        for i in 0..4 {
            let v = c::and2(&mut nl, inc[i], not_clr);
            nl.lut_into(
                c::truth4(|a, _, _, _| a),
                [Some(v), None, None, None],
                wcnt_d[i],
            );
        }
    }

    // W ring: 16 x 32 FFs.
    let mut ring_d: Vec<Bus> = Vec::new();
    let mut ring: Vec<Bus> = Vec::new();
    for _ in 0..16 {
        let d: Bus = (0..32).map(|_| nl.net()).collect();
        let ce = c::or2(&mut nl, absorb, step);
        let q: Bus = d.iter().map(|&dd| nl.ff(dd, false, Some(ce))).collect();
        ring_d.push(d);
        ring.push(q);
    }

    // Working registers a..e and H0..H4.
    let mut work: Vec<Bus> = Vec::new();
    let mut work_d: Vec<Bus> = Vec::new();
    for _ in 0..5 {
        let d: Bus = (0..32).map(|_| nl.net()).collect();
        let ce = c::or2(&mut nl, start_block, step);
        let q: Bus = d.iter().map(|&dd| nl.ff(dd, false, Some(ce))).collect();
        work_d.push(d);
        work.push(q);
    }
    let mut hreg: Vec<Bus> = Vec::new();
    let mut hreg_d: Vec<Bus> = Vec::new();
    let h_ce = {
        let done = c::and2(&mut nl, step, rc_is9);
        c::or2(&mut nl, done, init)
    };
    for _ in 0..5 {
        let d: Bus = (0..32).map(|_| nl.net()).collect();
        let q: Bus = d.iter().map(|&dd| nl.ff(dd, false, Some(h_ce))).collect();
        hreg_d.push(d);
        hreg.push(q);
    }

    // Eight unrolled rounds. Round index = 8*rc + j; phase = index / 20.
    let mut a = work[0].clone();
    let mut b = work[1].clone();
    let mut cw = work[2].clone();
    let mut d = work[3].clone();
    let mut e = work[4].clone();
    // New W values for the ring shift.
    let mut new_w: Vec<Bus> = Vec::new();
    for k in 0..8usize {
        let w13 = if 13 + k < 16 {
            ring[13 + k].clone()
        } else {
            new_w[k - 3].clone()
        };
        let x1 = c::bus_xor(&mut nl, &w13, &ring[8 + k]);
        let x2 = c::bus_xor(&mut nl, &x1, &ring[2 + k]);
        let x3 = c::bus_xor(&mut nl, &x2, &ring[k]);
        new_w.push(c::rotl(&x3, 1));
    }
    for (j, ring_j) in ring.iter().enumerate().take(8) {
        // phase bits as LUTs of rc: phase = (8*rc + j) / 20.
        let p0 = nl.lut(
            c::truth4(move |r0, r1, r2, r3| {
                let rcv = usize::from(r0)
                    | usize::from(r1) << 1
                    | usize::from(r2) << 2
                    | usize::from(r3) << 3;
                let round = 8 * rcv + j;
                (round / 20) & 1 == 1
            }),
            [Some(rc[0]), Some(rc[1]), Some(rc[2]), Some(rc[3])],
        );
        let p1 = nl.lut(
            c::truth4(move |r0, r1, r2, r3| {
                let rcv = usize::from(r0)
                    | usize::from(r1) << 1
                    | usize::from(r2) << 2
                    | usize::from(r3) << 3;
                let round = 8 * rcv + j;
                (round / 20) & 2 == 2
            }),
            [Some(rc[0]), Some(rc[1]), Some(rc[2]), Some(rc[3])],
        );
        let (na, nb, nc, nd, ne) = round_logic(&mut nl, &a, &b, &cw, &d, &e, ring_j, &[p0, p1]);
        a = na;
        b = nb;
        cw = nc;
        d = nd;
        e = ne;
    }

    // Ring next state: absorb → shift by 1 with din at the end;
    // step → shift by 8 with new_w appended.
    for i in 0..16usize {
        let absorb_src: Bus = if i < 15 {
            ring[i + 1].clone()
        } else {
            din.clone()
        };
        let step_src: Bus = if i < 8 {
            ring[i + 8].clone()
        } else {
            new_w[i - 8].clone()
        };
        for bit in 0..32 {
            c::mux2_into(
                &mut nl,
                step_src[bit],
                absorb_src[bit],
                absorb,
                ring_d[i][bit],
            );
        }
    }

    // Working-register next state: start_block → load H; step → round out.
    let round_out = [a, b, cw, d, e];
    for r in 0..5 {
        for bit in 0..32 {
            c::mux2_into(
                &mut nl,
                round_out[r][bit],
                hreg[r][bit],
                start_block,
                work_d[r][bit],
            );
        }
    }

    // H next state: init → IV constants; block done → H + round_out.
    for r in 0..5 {
        let ivbus = c::const_bus(&mut nl, 32, u64::from(IV[r]));
        let sum = c::add_mod(&mut nl, &hreg[r], &round_out[r]);
        for bit in 0..32 {
            c::mux2_into(&mut nl, sum[bit], ivbus[bit], init, hreg_d[r][bit]);
        }
    }

    // busy: set at start_block, cleared when rc reaches 9 (after its step)
    // or on init.
    {
        let still = {
            let not9 = c::not(&mut nl, rc_is9);
            c::and2(&mut nl, busy, not9)
        };
        let set = c::or2(&mut nl, start_block, still);
        let not_init = c::not(&mut nl, init);
        let v = c::and2(&mut nl, set, not_init);
        nl.lut_into(
            c::truth4(|x, _, _, _| x),
            [Some(v), None, None, None],
            busy_d,
        );
    }
    // rc: 0 at start_block/init, +1 per step.
    {
        let one = c::const_bus(&mut nl, 4, 1);
        let (inc, _) = c::adder(&mut nl, &rc, &one, zero);
        let clr = c::or2(&mut nl, start_block, init);
        let not_clr = c::not(&mut nl, clr);
        for i in 0..4 {
            let stepped = c::mux2(&mut nl, rc[i], inc[i], step);
            let v = c::and2(&mut nl, stepped, not_clr);
            nl.lut_into(
                c::truth4(|x, _, _, _| x),
                [Some(v), None, None, None],
                rc_d[i],
            );
        }
    }

    // Output: H word selected by addr (0..4); busy/valid flags.
    let dout: Bus = (0..32)
        .map(|bit| {
            let m01 = c::mux2(&mut nl, hreg[0][bit], hreg[1][bit], addr[0]);
            let m23 = c::mux2(&mut nl, hreg[2][bit], hreg[3][bit], addr[0]);
            let m0123 = c::mux2(&mut nl, m01, m23, addr[1]);
            c::mux2(&mut nl, m0123, hreg[4][bit], addr[2])
        })
        .collect();
    nl.output_bus("dout", &dout);
    nl.output("busy", 0, busy);
    let valid = c::not(&mut nl, busy);
    nl.output("valid", 0, valid);
    nl
}

// ---------------------------------------------------------------------
// Software implementation and drivers.
// ---------------------------------------------------------------------

/// RFC-style SHA-1 in assembly. Scratch layout (OCM):
/// 0x10000 W[80], 0x11800 staging block.
/// args: r3 = msg, r4 = len bytes, r5 = digest out (5 words).
/// Returns H0 in r3.
pub(crate) const SW_ASM: &str = r#"
entry:
    mr   r26, r3             ; msg
    mr   r27, r4             ; len
    mr   r28, r5             ; out
    # --- context init (H0..H4) ---
    lis  r6, 0x6745
    ori  r6, r6, 0x2301
    lis  r7, 0xEFCD
    ori  r7, r7, 0xAB89
    lis  r8, 0x98BA
    ori  r8, r8, 0xDCFE
    lis  r9, 0x1032
    ori  r9, r9, 0x5476
    lis  r10, 0xC3D2
    ori  r10, r10, 0xE1F0
    # --- full blocks ---
    mr   r29, r26            ; cursor
    mr   r30, r27            ; remaining
fullblocks:
    cmpwi r30, 64
    blt   padding
    mr    r3, r29
    bl    process
    addi  r29, r29, 64
    addi  r30, r30, -64
    b     fullblocks
padding:
    # staging buffer at 0x11800: copy remainder, append 0x80, zeros, length
    lis  r11, 1
    ori  r11, r11, 0x1800    ; staging base
    li   r12, 0              ; i
padcopy:
    cmpw r12, r30
    bge  padmark
    lbzx r13, r29, r12
    stbx r13, r11, r12
    addi r12, r12, 1
    b    padcopy
padmark:
    li   r13, 0x80
    stbx r13, r11, r12
    addi r12, r12, 1
padzero1:
    cmpwi r12, 56
    bgt  twopad              ; remainder >= 56: need a second block
    beq  padlen
    stbx r0, r11, r12
    addi r12, r12, 1
    b    padzero1
twopad:
padzero2:
    cmpwi r12, 64
    bge  pb1
    stbx r0, r11, r12
    addi r12, r12, 1
    b    padzero2
pb1:
    mr   r3, r11
    bl   process
    li   r12, 0
padzero3:
    cmpwi r12, 56
    bge  padlen
    stbx r0, r11, r12
    addi r12, r12, 1
    b    padzero3
padlen:
    stw  r0, 56(r11)         ; high bits of the length (always 0 here)
    slwi r13, r27, 3         ; bit length
    stw  r13, 60(r11)
    mr   r3, r11
    bl   process
    # --- digest out ---
    stw  r6, 0(r28)
    stw  r7, 4(r28)
    stw  r8, 8(r28)
    stw  r9, 12(r28)
    stw  r10, 16(r28)
    mr   r3, r6
    halt

# process one 64-byte block at r3; H in r6..r10; clobbers r11..r25
process:
    mflr r25
    lis  r11, 1              ; W base = 0x10000
    # W[0..16] big-endian word loads
    li   r12, 0
wload:
    lwzx r13, r3, r12
    stwx r13, r11, r12
    addi r12, r12, 4
    cmpwi r12, 64
    blt  wload
    # W[16..80]
wexpand:
    cmpwi r12, 320
    bge  rounds
    addi r14, r12, -12
    lwzx r13, r11, r14       ; W[t-3]
    addi r14, r12, -32
    lwzx r15, r11, r14       ; W[t-8]
    xor  r13, r13, r15
    addi r14, r12, -56
    lwzx r15, r11, r14       ; W[t-14]
    xor  r13, r13, r15
    addi r14, r12, -64
    lwzx r15, r11, r14       ; W[t-16]
    xor  r13, r13, r15
    rotlwi r13, r13, 1
    stwx r13, r11, r12
    addi r12, r12, 4
    b    wexpand
rounds:
    # a..e = H
    mr   r14, r6
    mr   r15, r7
    mr   r16, r8
    mr   r17, r9
    mr   r18, r10
    li   r12, 0              ; t*4
r_loop:
    # f and K by phase
    cmpwi r12, 80
    blt  ph0
    cmpwi r12, 160
    blt  ph1
    cmpwi r12, 240
    blt  ph2
    # phase 3: parity
    xor  r19, r15, r16
    xor  r19, r19, r17
    lis  r20, 0xCA62
    ori  r20, r20, 0xC1D6
    b    havef
ph0:
    and  r19, r15, r16
    nor  r21, r15, r15       ; ~b
    and  r21, r21, r17
    or   r19, r19, r21
    lis  r20, 0x5A82
    ori  r20, r20, 0x7999
    b    havef
ph1:
    xor  r19, r15, r16
    xor  r19, r19, r17
    lis  r20, 0x6ED9
    ori  r20, r20, 0xEBA1
    b    havef
ph2:
    and  r19, r15, r16
    and  r21, r15, r17
    or   r19, r19, r21
    and  r21, r16, r17
    or   r19, r19, r21
    lis  r20, 0x8F1B
    ori  r20, r20, 0xBCDC
havef:
    rotlwi r21, r14, 5
    add  r21, r21, r19
    add  r21, r21, r18
    add  r21, r21, r20
    lwzx r22, r11, r12       ; W[t]
    add  r21, r21, r22
    mr   r18, r17            ; e = d
    mr   r17, r16            ; d = c
    rotlwi r16, r15, 30      ; c = rotl30(b)
    mr   r15, r14            ; b = a
    mr   r14, r21            ; a = temp
    addi r12, r12, 4
    cmpwi r12, 320
    blt  r_loop
    add  r6, r6, r14
    add  r7, r7, r15
    add  r8, r8, r16
    add  r9, r9, r17
    add  r10, r10, r18
    mtlr r25
    blr
"#;

/// Hardware driver: init, stream the pre-padded message (padding built by
/// the CPU into a staging tail, like the software's, so the fixed overhead
/// is honest), read the digest.
/// args: r3 = msg, r4 = len bytes, r5 = digest out.
pub(crate) const HW_ASM: &str = r#"
entry:
    lis  r20, 0x8000
    stw  r0, 4(r20)          ; init command
    mr   r29, r3             ; cursor
    mr   r30, r4             ; remaining
fullblocks:
    cmpwi r30, 64
    blt  padding
    li   r12, 0
sblk:
    lwzx r13, r29, r12
    stw  r13, 0(r20)
    addi r12, r12, 4
    cmpwi r12, 64
    blt  sblk
    addi r29, r29, 64
    addi r30, r30, -64
    b    fullblocks
padding:
    lis  r11, 1
    ori  r11, r11, 0x1800
    li   r12, 0
padcopy:
    cmpw r12, r30
    bge  padmark
    lbzx r13, r29, r12
    stbx r13, r11, r12
    addi r12, r12, 1
    b    padcopy
padmark:
    li   r13, 0x80
    stbx r13, r11, r12
    addi r12, r12, 1
padzero1:
    cmpwi r12, 56
    bgt  twopad
    beq  padlen
    stbx r0, r11, r12
    addi r12, r12, 1
    b    padzero1
twopad:
padzero2:
    cmpwi r12, 64
    bge  pb1
    stbx r0, r11, r12
    addi r12, r12, 1
    b    padzero2
pb1:
    li   r12, 0
sblk2:
    lwzx r13, r11, r12
    stw  r13, 0(r20)
    addi r12, r12, 4
    cmpwi r12, 64
    blt  sblk2
    li   r12, 0
padzero3:
    cmpwi r12, 56
    bge  padlen
    stbx r0, r11, r12
    addi r12, r12, 1
    b    padzero3
padlen:
    stw  r0, 56(r11)
    slwi r13, r4, 3
    stw  r13, 60(r11)
    li   r12, 0
sblk3:
    lwzx r13, r11, r12
    stw  r13, 0(r20)
    addi r12, r12, 4
    cmpwi r12, 64
    blt  sblk3
    # digest
    lwz  r13, 0(r20)
    stw  r13, 0(r5)
    lwz  r13, 4(r20)
    stw  r13, 4(r5)
    lwz  r13, 8(r20)
    stw  r13, 8(r5)
    lwz  r13, 12(r20)
    stw  r13, 12(r5)
    lwz  r13, 16(r20)
    stw  r13, 16(r5)
    lwz  r3, 0(r20)
    halt
"#;

/// Runs the software SHA-1; returns `(time, digest)`.
pub fn sw_run(m: &mut Machine, msg: &[u8]) -> (SimTime, [u32; 5]) {
    harness::store_bytes(m, SRC_A, msg);
    let max = (msg.len() as u64 / 64 + 3) * 40_000 + 200_000;
    let (t, _) = run_asm(m, SW_ASM, &[SRC_A, msg.len() as u32, DST], max);
    let words = harness::load_words(m, DST, 5);
    (t, [words[0], words[1], words[2], words[3], words[4]])
}

/// Runs the hardware SHA-1 (behavioural core); returns `(time, digest)`.
pub fn hw_run(m: &mut Machine, msg: &[u8]) -> (SimTime, [u32; 5]) {
    bind(m, Box::new(Sha1Module::new()));
    harness::store_bytes(m, SRC_A, msg);
    let max = (msg.len() as u64 / 64 + 3) * 10_000 + 200_000;
    let (t, _) = run_asm(m, HW_ASM, &[SRC_A, msg.len() as u32, DST], max);
    let words = harness::load_words(m, DST, 5);
    (t, [words[0], words[1], words[2], words[3], words[4]])
}

/// Measured comparison at a message size (table 11 row).
pub fn compare(kind: rtr_core::SystemKind, len: usize, seed: u64) -> Comparison {
    let mut msg = vec![0u8; len];
    vp2_sim::SplitMix64::new(seed).fill_bytes(&mut msg);
    let want = sha1_reference(&msg);
    let mut m = rtr_core::build_system(kind);
    let (sw, d) = sw_run(&mut m, &msg);
    assert_eq!(d, want, "software digest mismatch (len {len})");
    let mut m = rtr_core::build_system(kind);
    let (hw, d) = hw_run(&mut m, &msg);
    assert_eq!(d, want, "hardware digest mismatch (len {len})");
    Comparison {
        sw,
        hw,
        prep: SimTime::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dock::GateLevelModule;
    use rtr_core::SystemKind;

    #[test]
    fn reference_vectors() {
        // FIPS 180-1 / RFC 3174 test vectors.
        assert_eq!(
            sha1_reference(b"abc"),
            [
                0xA999_3E36,
                0x4706_816A,
                0xBA3E_2571,
                0x7850_C26C,
                0x9CD0_D89D
            ]
        );
        assert_eq!(
            sha1_reference(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            [
                0x8498_3E44,
                0x1C3B_D26E,
                0xBAAE_4AA1,
                0xF951_29E5,
                0xE546_70F1
            ]
        );
        let a1000000 = vec![b'a'; 1_000_000];
        assert_eq!(
            sha1_reference(&a1000000),
            [
                0x34AA_973C,
                0xD4C4_DAA4,
                0xF61E_EB2B,
                0xDBAD_2731,
                0x6534_016F
            ]
        );
    }

    #[test]
    fn behavioural_module_matches_reference() {
        for len in [0usize, 1, 55, 56, 63, 64, 65, 200] {
            let mut msg = vec![0u8; len];
            vp2_sim::SplitMix64::new(len as u64).fill_bytes(&mut msg);
            let want = sha1_reference(&msg);
            let mut module = Sha1Module::new();
            module.poke_at(4, 0);
            // Pre-padded stream.
            let mut data = msg.clone();
            let bitlen = (len as u64) * 8;
            data.push(0x80);
            while data.len() % 64 != 56 {
                data.push(0);
            }
            data.extend_from_slice(&bitlen.to_be_bytes());
            for w in data.chunks_exact(4) {
                module.poke_at(0, u64::from(u32::from_be_bytes(w.try_into().unwrap())));
            }
            let digest: Vec<u32> = (0..5).map(|i| module.read_at(4 * i) as u32).collect();
            assert_eq!(digest, want.to_vec(), "len {len}");
        }
    }

    #[test]
    fn gate_level_core_matches_reference_one_block() {
        let nl = sha1_netlist();
        let mut gate = GateLevelModule::new(&nl).unwrap();
        let msg = b"abc";
        let want = sha1_reference(msg);
        gate.poke_at(4, 0);
        let mut data = msg.to_vec();
        data.push(0x80);
        while data.len() % 64 != 56 {
            data.push(0);
        }
        data.extend_from_slice(&(24u64).to_be_bytes());
        for w in data.chunks_exact(4) {
            gate.poke_at(0, u64::from(u32::from_be_bytes(w.try_into().unwrap())));
        }
        let digest: Vec<u32> = (0..5).map(|i| gate.read_at(4 * i) as u32).collect();
        assert_eq!(digest, want.to_vec());
    }

    #[test]
    fn unrolled_core_does_not_fit_the_32bit_region_but_fits_the_64bit() {
        // The paper's claim: "Our implementation does not fit into the
        // dynamic area of the 32-bit system."
        let nl = sha1_netlist();
        use vp2_netlist::place::AutoPlacer;
        let fits32 = AutoPlacer::new().place(&nl, 28, 11).is_ok();
        assert!(
            !fits32,
            "SHA-1 must NOT fit 308 CLBs (needs {} LUTs)",
            nl.lut_cell_count()
        );
        let fits64 = AutoPlacer::new().place(&nl, 32, 24).is_ok();
        assert!(
            fits64,
            "SHA-1 must fit 768 CLBs (needs {} LUTs)",
            nl.lut_cell_count()
        );
    }

    #[test]
    fn sw_and_hw_match_reference_on_machine() {
        let msg = b"The quick brown fox jumps over the lazy dog";
        let want = sha1_reference(msg);
        let mut m = rtr_core::build_system(SystemKind::Bit64);
        let (_, d) = sw_run(&mut m, msg);
        assert_eq!(d, want, "sw");
        let mut m = rtr_core::build_system(SystemKind::Bit64);
        let (_, d) = hw_run(&mut m, msg);
        assert_eq!(d, want, "hw");
    }

    #[test]
    fn hardware_gains_considerably() {
        let cmp = compare(SystemKind::Bit64, 2048, 77);
        assert!(
            cmp.speedup() > 2.0,
            "expected a considerable gain, got {:.2}",
            cmp.speedup()
        );
    }

    #[test]
    fn sw_overhead_dominates_small_messages() {
        // Per-byte software cost must be much higher at 64 B than at 8 KiB
        // (the RFC implementation's fixed overhead).
        let mut m = rtr_core::build_system(SystemKind::Bit64);
        let (t_small, _) = sw_run(&mut m, &[7u8; 64]);
        let mut m = rtr_core::build_system(SystemKind::Bit64);
        let (t_big, _) = sw_run(&mut m, &[7u8; 8192]);
        let per_byte_small = t_small.as_ns_f64() / 64.0;
        let per_byte_big = t_big.as_ns_f64() / 8192.0;
        assert!(
            per_byte_small > per_byte_big * 1.5,
            "small {per_byte_small:.1} ns/B vs big {per_byte_big:.1} ns/B"
        );
    }
}
