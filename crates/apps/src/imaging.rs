//! Grayscale image-processing tasks (paper tables 5 and 12).
//!
//! Three 8-bit-pixel tasks:
//!
//! * **Brightness adjustment** — saturating add of a signed constant;
//!   4 pixels per 32-bit transfer (8 per 64-bit DMA beat — "the 64-bit data
//!   transfers could be employed without additional work, since only one
//!   image is involved").
//! * **Additive blending** — `sat(A + B)`; each transfer carries 2 pixels
//!   from each source, the module emits 2 pixels and packs results in
//!   groups of 4 "to save on read operations".
//! * **Fade effect** — `(A − B) × f + B` with an 8-bit blend factor.
//!
//! The last two need the CPU to combine the two source images before the
//! data reaches the dynamic region; on the 64-bit system's DMA path this
//! becomes an explicit **data-preparation** pass over memory (the paper
//! reports it as its own column in table 12).

use crate::harness::{self, bind, run_asm, set_fifo_capture, Comparison, AUX, DST, SRC_A, SRC_B};
use dock::{DynamicModule, ModuleOutput};
use rtr_core::machine::Machine;
use vp2_netlist::components as c;
use vp2_netlist::graph::{Bus, Netlist};
use vp2_sim::{SimTime, SplitMix64};

/// Which of the three tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Saturating add of a signed constant.
    Brightness,
    /// Saturating add of two images.
    Blend,
    /// `(A − B) × f + B`.
    Fade,
}

impl Task {
    /// Table row label.
    pub fn label(self) -> &'static str {
        match self {
            Task::Brightness => "brightness adjustment",
            Task::Blend => "additive blending",
            Task::Fade => "fade effect",
        }
    }

    /// Does the task combine two source images (and therefore require CPU
    /// data preparation on the DMA path)?
    pub fn two_sources(self) -> bool {
        !matches!(self, Task::Brightness)
    }
}

/// Reference per-pixel semantics.
pub fn reference_pixel(task: Task, a: u8, b: u8, param: i32) -> u8 {
    match task {
        Task::Brightness => (i32::from(a) + param).clamp(0, 255) as u8,
        Task::Blend => (u32::from(a) + u32::from(b)).min(255) as u8,
        Task::Fade => {
            // (A - B) * f + B with f in [0, 256] as an 8.8 fixed-point
            // fraction; exact integer form used by both sw and hw.
            let f = param as u32 & 0x1FF;
            let diff = i32::from(a) - i32::from(b);
            let scaled = (diff * f as i32) >> 8;
            (i32::from(b) + scaled).clamp(0, 255) as u8
        }
    }
}

/// Reference over whole images.
pub fn reference_image(task: Task, a: &[u8], b: &[u8], param: i32) -> Vec<u8> {
    a.iter()
        .zip(b.iter().chain(std::iter::repeat(&0)))
        .map(|(&x, &y)| reference_pixel(task, x, y, param))
        .collect()
}

// ---------------------------------------------------------------------
// Hardware modules (behavioural).
// ---------------------------------------------------------------------

/// Behavioural imaging module. Protocol:
/// * offset 4 write: set the parameter (brightness constant as a 9-bit
///   two's-complement value; fade factor f).
/// * offset 0 write (brightness): N pixels in, N pixels out, valid always —
///   every byte lane processed independently (4 lanes for CPU stores,
///   8 for DMA beats).
/// * offset 0 write (blend/fade): lanes are A0 A1 B0 B1 (32-bit) or
///   A0..A3 B0..B3 (64-bit); produces 2 (or 4) result pixels, packed into
///   an output register that is flagged valid every second write, holding
///   4 (or 8) packed pixels.
#[derive(Debug, Clone)]
pub struct ImagingModule {
    task: Task,
    /// 8-lane (64-bit DMA) vs 4-lane (32-bit CPU) build of the module.
    wide: bool,
    param: i32,
    phase: bool,
    out: u64,
    out_valid: bool,
}

impl ImagingModule {
    /// New 32-bit-channel module for a task.
    pub fn new(task: Task) -> Self {
        ImagingModule {
            task,
            wide: false,
            param: 0,
            phase: false,
            out: 0,
            out_valid: false,
        }
    }

    /// New 64-bit-channel (DMA) module.
    pub fn new_wide(task: Task) -> Self {
        ImagingModule {
            wide: true,
            ..ImagingModule::new(task)
        }
    }

    fn process_lanes(&self, data: u64, lanes: usize) -> u64 {
        let mut out = 0u64;
        match self.task {
            Task::Brightness => {
                for i in 0..lanes {
                    let px = ((data >> (8 * i)) & 0xFF) as u8;
                    out |= u64::from(reference_pixel(self.task, px, 0, self.param)) << (8 * i);
                }
            }
            Task::Blend | Task::Fade => {
                // Byte-position (big-endian) layout: the high half of the
                // transfer carries the A pixels in memory order, the low
                // half the B pixels; results are produced in memory order
                // in the low half.
                let bits = 8 * lanes as u64;
                let half = lanes / 2;
                for i in 0..half {
                    let a = ((data >> (bits - 8 - 8 * i as u64)) & 0xFF) as u8;
                    let b = ((data >> (bits / 2 - 8 - 8 * i as u64)) & 0xFF) as u8;
                    out |= u64::from(reference_pixel(self.task, a, b, self.param))
                        << (bits / 2 - 8 - 8 * i as u64);
                }
            }
        }
        out
    }
}

impl DynamicModule for ImagingModule {
    fn name(&self) -> &str {
        match self.task {
            Task::Brightness => "img-brightness",
            Task::Blend => "img-blend",
            Task::Fade => "img-fade",
        }
    }

    fn poke(&mut self, data: u64) -> ModuleOutput {
        self.poke_at(0, data)
    }

    fn poke_at(&mut self, offset: u32, data: u64) -> ModuleOutput {
        if offset == 4 {
            self.param = (data as u32 as i32) << 23 >> 23; // sign-extend 9 bits
            self.phase = false;
            self.out_valid = false;
            return ModuleOutput {
                data: self.out,
                valid: false,
            };
        }
        let lanes = if self.wide { 8 } else { 4 };
        let _ = offset;
        match self.task {
            Task::Brightness => {
                self.out = self.process_lanes(data, lanes);
                self.out_valid = true;
            }
            Task::Blend | Task::Fade => {
                // Half-width result lands in the low output register on the
                // first write of a pair, the high one on the second (exactly
                // the two CE-gated registers of the gate-level design).
                let res = self.process_lanes(data, lanes);
                let half_bits = 8 * (lanes as u64 / 2);
                let low_mask = (1u64 << half_bits) - 1;
                if self.phase {
                    self.out = (self.out & !low_mask) | res;
                    self.out_valid = true;
                    self.phase = false;
                } else {
                    self.out = (self.out & low_mask) | (res << half_bits);
                    self.out_valid = false;
                    self.phase = true;
                }
            }
        }
        ModuleOutput {
            data: self.out,
            valid: self.out_valid,
        }
    }

    fn peek(&self) -> u64 {
        self.out
    }

    fn reset(&mut self) {
        *self = ImagingModule::new(self.task);
    }
}

// ---------------------------------------------------------------------
// Gate-level netlists (32-bit variants, for area and equivalence).
// ---------------------------------------------------------------------

/// Builds the 32-bit-channel gate-level netlist for a task.
/// Ports: `din[32]`, `wr`, `addr[1]`, `dout[32]`, `valid`.
pub fn imaging_netlist(task: Task) -> Netlist {
    let name = match task {
        Task::Brightness => "img-brightness",
        Task::Blend => "img-blend",
        Task::Fade => "img-fade",
    };
    let mut nl = Netlist::new(name);
    let din = nl.input_bus("din", 32);
    let wr = nl.input("wr", 0);
    let addr = nl.input("addr", 0);
    let zero = nl.constant(false);

    let is_cmd = addr;
    let not_cmd = c::not(&mut nl, is_cmd);
    let wr_data = c::and2(&mut nl, wr, not_cmd);
    let wr_cmd = c::and2(&mut nl, wr, is_cmd);

    // Parameter register (9 bits, two's complement).
    let param = c::register(&mut nl, &din[..9], Some(wr_cmd));

    let lane = |_nl: &mut Netlist, i: usize| -> Bus { din[8 * i..8 * i + 8].to_vec() };

    let (result, result_width): (Bus, usize) = match task {
        Task::Brightness => {
            let mut out = Vec::new();
            for i in 0..4 {
                let px = lane(&mut nl, i);
                let r = c::saturating_add_signed(&mut nl, &px, &param);
                out.extend(r);
            }
            (out, 32)
        }
        Task::Blend => {
            // Byte-position lanes: A pair in bits 31:16, B pair in 15:0;
            // results in memory order, LSB-first bus = [res1, res0].
            let mut out = Vec::new();
            // LSB-first result bus = [res(A1,B1), res(A0,B0)] so the packed
            // output word reads [r0 r1 r2 r3] in memory order.
            for i in [2usize, 3] {
                let a = lane(&mut nl, i);
                let b = lane(&mut nl, i - 2);
                out.extend(c::saturating_add_unsigned(&mut nl, &a, &b));
            }
            (out, 16)
        }
        Task::Fade => {
            let mut out = Vec::new();
            for i in [2usize, 3] {
                let a = lane(&mut nl, i);
                let b = lane(&mut nl, i - 2);
                // diff = a - b (9-bit signed), scaled = diff * f >> 8,
                // out = clamp(b + scaled).
                let mut ea: Bus = a.clone();
                ea.push(zero);
                let mut eb: Bus = b.clone();
                eb.push(zero);
                let (diff, _) = c::subtractor(&mut nl, &ea, &eb); // 9-bit two's complement
                                                                  // Multiply |diff| is messy; multiply sign-extended diff by f
                                                                  // using 17-bit x 9-bit two's-complement via sign-extension
                                                                  // to 18 bits and an unsigned multiplier (f ≥ 0).
                let sign = diff[8];
                let ext: Bus = (0..18)
                    .map(|k| if k < 9 { diff[k] } else { sign })
                    .collect();
                let prod = c::multiplier(&mut nl, &ext, &param); // 27 bits
                                                                 // scaled = prod >> 8, take 10 bits (signed).
                let scaled: Bus = (8..18).map(|k| prod[k]).collect();
                // sum = b + scaled (11-bit signed).
                let mut eb2: Bus = b.clone();
                for _ in 0..3 {
                    eb2.push(zero);
                }
                let mut es: Bus = scaled.clone();
                es.push(scaled[9]);
                let (sum, _) = c::adder(&mut nl, &eb2, &es, zero);
                // clamp to [0, 255]: negative → 0; >255 → 255.
                let neg = sum[10];
                let not_neg = c::not(&mut nl, neg);
                let hi = c::or2(&mut nl, sum[8], sum[9]);
                let ovf = c::and2(&mut nl, hi, not_neg);
                let byte: Bus = (0..8)
                    .map(|k| {
                        let v = c::or2(&mut nl, sum[k], ovf);
                        c::and2(&mut nl, v, not_neg)
                    })
                    .collect();
                out.extend(byte);
            }
            (out, 16)
        }
    };

    // Output register + packing.
    match task {
        Task::Brightness => {
            let out = c::register(&mut nl, &result, Some(wr_data));
            nl.output_bus("dout", &out);
            let valid = nl.ff(wr_data, false, None);
            nl.output("valid", 0, valid);
        }
        Task::Blend | Task::Fade => {
            debug_assert_eq!(result_width, 16);
            // Phase toggles per data write; low half loads in phase 0,
            // high half in phase 1.
            let phase_d = nl.net();
            let phase = nl.ff(phase_d, false, Some(wr_data));
            let nph = c::not(&mut nl, phase);
            nl.lut_into(
                c::truth4(|a, _, _, _| a),
                [Some(nph), None, None, None],
                phase_d,
            );
            let hi_ce = c::and2(&mut nl, wr_data, nph);
            let lo_ce = c::and2(&mut nl, wr_data, phase);
            let lo = c::register(&mut nl, &result, Some(lo_ce));
            let hi = c::register(&mut nl, &result, Some(hi_ce));
            let mut out: Bus = lo;
            out.extend(hi);
            nl.output_bus("dout", &out);
            let valid_now = c::and2(&mut nl, wr_data, phase);
            let valid = nl.ff(valid_now, false, None);
            nl.output("valid", 0, valid);
        }
    }
    nl
}

// ---------------------------------------------------------------------
// Software kernels.
// ---------------------------------------------------------------------

/// Brightness, naive per-pixel C translation with 2-D indexing multiplies.
/// args: r3 = n pixels, r4 = src, r5 = dst, r6 = constant (signed).
/// Brightness: the straightforward 2-D C translation — per pixel, compute
/// `y*W + x` (the index multiply a naive compile emits), load, saturate,
/// store.
/// args: r3 = W, r4 = H, r5 = src, r6 = dst, r7 = constant (signed).
pub(crate) const SW_BRIGHT: &str = r#"
entry:
    li   r8, 0               ; y
yloop:
    li   r9, 0               ; x
xloop:
    mullw r10, r8, r3        ; src[y*W+x] — the 2-D index multiply an
    add  r10, r10, r9        ; unoptimised translation emits per access
    lbzx r11, r5, r10
    add  r11, r11, r7
    cmpwi r11, 0
    bge  bnotneg
    li   r11, 0
    b    bstore
bnotneg:
    cmpwi r11, 255
    ble  bstore
    li   r11, 255
bstore:
    mullw r10, r8, r3        ; dst[y*W+x] — recomputed, as at -O0
    add  r10, r10, r9
    stbx r11, r6, r10
    addi r9, r9, 1
    cmpw r9, r3
    blt  xloop
    addi r8, r8, 1
    cmpw r8, r4
    blt  yloop
    halt
"#;

/// Additive blending (2-D naive). args: r3 = W, r4 = H, r5 = srcA,
/// r6 = srcB, r7 = dst.
pub(crate) const SW_BLEND: &str = r#"
entry:
    li   r8, 0
yloop:
    li   r9, 0
xloop:
    mullw r10, r8, r3        ; a[y*W+x]
    add  r10, r10, r9
    lbzx r11, r5, r10
    mullw r10, r8, r3        ; b[y*W+x]
    add  r10, r10, r9
    lbzx r12, r6, r10
    add  r11, r11, r12
    cmpwi r11, 255
    ble  bstore
    li   r11, 255
bstore:
    mullw r10, r8, r3        ; dst[y*W+x]
    add  r10, r10, r9
    stbx r11, r7, r10
    addi r9, r9, 1
    cmpw r9, r3
    blt  xloop
    addi r8, r8, 1
    cmpw r8, r4
    blt  yloop
    halt
"#;

/// Fade (2-D naive). args: r3 = W, r4 = H, r5 = srcA, r6 = srcB, r7 = dst,
/// r8 = f (0..256).
pub(crate) const SW_FADE: &str = r#"
entry:
    li   r9, 0               ; y
yloop:
    li   r10, 0              ; x
xloop:
    mullw r11, r9, r3        ; a[y*W+x]
    add  r11, r11, r10
    lbzx r12, r5, r11
    mullw r11, r9, r3        ; b[y*W+x]
    add  r11, r11, r10
    lbzx r13, r6, r11
    sub  r14, r12, r13       ; diff (signed)
    mullw r14, r14, r8
    srawi r14, r14, 8
    add  r14, r14, r13
    cmpwi r14, 0
    bge  fnotneg
    li   r14, 0
    b    fstore
fnotneg:
    cmpwi r14, 255
    ble  fstore
    li   r14, 255
fstore:
    mullw r11, r9, r3        ; dst[y*W+x]
    add  r11, r11, r10
    stbx r14, r7, r11
    addi r10, r10, 1
    cmpw r10, r3
    blt  xloop
    addi r9, r9, 1
    cmpw r9, r4
    blt  yloop
    halt
"#;

// ---------------------------------------------------------------------
// Hardware drivers (CPU-controlled, both systems).
// ---------------------------------------------------------------------

/// Brightness hw driver: 4 px per write, read result word back.
/// args: r3 = n words, r4 = src, r5 = dst, r6 = constant (9-bit 2c).
pub(crate) const HW_BRIGHT: &str = r#"
entry:
    lis  r20, 0x8000
    stw  r6, 4(r20)          ; parameter
    li   r8, 0
hloop:
    lwzx r9, r4, r8
    stw  r9, 0(r20)
    lwz  r10, 0(r20)
    stwx r10, r5, r8
    addi r8, r8, 4
    slwi r11, r3, 2
    cmpw r8, r11
    blt  hloop
    halt
"#;

/// Blend/fade hw driver: the CPU combines 2 px from each source into each
/// written word (the combining overhead the paper highlights), reads one
/// packed word of 4 results per two writes.
/// args: r3 = n pixel pairs of words... (r3 = total pixels / 2 = writes),
/// r4 = srcA, r5 = srcB, r6 = dst, r7 = parameter.
pub(crate) const HW_COMBINE: &str = r#"
entry:
    lis  r20, 0x8000
    stw  r7, 4(r20)
    li   r8, 0               ; write index (each write = 2 px per source)
    mr   r9, r4              ; A cursor
    mr   r10, r5             ; B cursor
    mr   r11, r6             ; out cursor
cloop:
    lhz  r12, 0(r9)          ; two A pixels (memory order)
    lhz  r13, 0(r10)         ; two B pixels
    slwi r12, r12, 16
    or   r14, r12, r13       ; A pair high, B pair low
    stw  r14, 0(r20)
    addi r9, r9, 2
    addi r10, r10, 2
    addi r8, r8, 1
    andi r15, r8, 1
    cmpwi r15, 0
    bne  cloop_next          ; only read back every second write
    lwz  r16, 0(r20)         ; 4 packed results, pixel order
    stw  r16, 0(r11)
    addi r11, r11, 4
cloop_next:
    cmpw r8, r3
    blt  cloop
    halt
"#;

/// Brightness on the 64-bit system's DMA path (table 12): block-interleaved
/// DMA with the output FIFO — no data preparation needed.
/// args: r3 = len bytes, r4 = src, r5 = dst, r6 = parameter.
const DMA_BRIGHT: &str = r#"
entry:
    lis  r20, 0x8000
    stw  r6, 4(r20)          ; module parameter
    lis  r8, 0x8001
    stw  r4, 0(r8)           ; DMA_SRC
    stw  r5, 4(r8)           ; DMA_DST
    stw  r3, 8(r8)           ; DMA_LEN
    li   r9, 5               ; start | interleaved
    stw  r9, 12(r8)
poll:
    lwz  r9, 16(r8)
    andi r9, r9, 2
    cmpwi r9, 0
    beq  poll
    li   r9, 1
    stw  r9, 24(r8)
    halt
"#;

/// Blend/fade on the DMA path: the CPU first interleaves the two sources
/// into the staging buffer (the **data preparation** the paper reports as
/// its own column), flushes it, then runs the block-interleaved DMA.
/// args: r3 = n pixels, r4 = srcA, r5 = srcB, r6 = staging, r7 = param,
///       r8 = dst.
const DMA_COMBINE: &str = r#"
entry:
    lis  r20, 0x8000
    stw  r7, 4(r20)
    # --- data preparation: beat = [B word | A word] per 4-pixel group ---
    srwi r9, r3, 2           ; word groups (4 px per source)
    li   r10, 0
prep:
    slwi r11, r10, 2
    lwzx r12, r4, r11        ; A word
    lwzx r13, r5, r11        ; B word
    slwi r14, r10, 3
    add  r16, r6, r14
    stw  r12, 0(r16)         ; A word = high half of the 64-bit beat
    stw  r13, 4(r16)         ; B word = low half
    addi r10, r10, 1
    cmpw r10, r9
    blt  prep
    # flush the staging buffer so the DMA engine sees it
    slwi r9, r3, 1           ; staging bytes = 2n
    li   r10, 0
flsh:
    dcbf (r6)
    addi r6, r6, 32
    addi r10, r10, 32
    cmpw r10, r9
    blt  flsh
    sub  r6, r6, r9          ; restore staging base
prep_done:
    # --- DMA ---
    lis  r9, 0x8001
    stw  r6, 0(r9)           ; SRC = staging
    stw  r8, 4(r9)           ; DST
    slwi r11, r3, 1
    stw  r11, 8(r9)          ; LEN = 2n bytes in
    li   r12, 5
    stw  r12, 12(r9)
poll:
    lwz  r12, 16(r9)
    andi r12, r12, 2
    cmpwi r12, 0
    beq  poll
    li   r12, 1
    stw  r12, 24(r9)
    halt
"#;

/// Data-preparation pass alone (for the table-12 "data preparation"
/// column). Same args as [`DMA_COMBINE`].
const DMA_PREP_ONLY: &str = r#"
entry:
    srwi r9, r3, 2           ; word groups (4 px per source)
    li   r10, 0
prep:
    slwi r11, r10, 2
    lwzx r12, r4, r11        ; A word
    lwzx r13, r5, r11        ; B word
    slwi r14, r10, 3
    add  r16, r6, r14
    stw  r12, 0(r16)         ; A word = high half of the 64-bit beat
    stw  r13, 4(r16)         ; B word = low half
    addi r10, r10, 1
    cmpw r10, r9
    blt  prep
    slwi r9, r3, 1
    li   r10, 0
flsh:
    dcbf (r6)
    addi r6, r6, 32
    addi r10, r10, 32
    cmpw r10, r9
    blt  flsh
    halt
"#;

/// Runs the software kernel; returns `(time, result)`.
pub fn sw_run(m: &mut Machine, task: Task, a: &[u8], b: &[u8], param: i32) -> (SimTime, Vec<u8>) {
    harness::store_bytes(m, SRC_A, a);
    if task.two_sources() {
        harness::store_bytes(m, SRC_B, b);
    }
    let n = a.len() as u32;
    assert_eq!(n % 64, 0, "image sizes are multiples of 64 pixels");
    let (w, h) = (64u32, n / 64);
    let max = u64::from(n) * 80 + 100_000;
    let (t, _) = match task {
        Task::Brightness => run_asm(m, SW_BRIGHT, &[w, h, SRC_A, DST, param as u32], max),
        Task::Blend => run_asm(m, SW_BLEND, &[w, h, SRC_A, SRC_B, DST], max),
        Task::Fade => run_asm(m, SW_FADE, &[w, h, SRC_A, SRC_B, DST, param as u32], max),
    };
    let out = harness::load_bytes(m, DST, a.len());
    (t, out)
}

/// Runs the CPU-controlled hardware version (tables 5 and the unmodified
/// transfers of table 12's sibling measurements); returns `(time, result)`.
pub fn hw_run(m: &mut Machine, task: Task, a: &[u8], b: &[u8], param: i32) -> (SimTime, Vec<u8>) {
    bind(m, Box::new(ImagingModule::new(task)));
    harness::store_bytes(m, SRC_A, a);
    if task.two_sources() {
        harness::store_bytes(m, SRC_B, b);
    }
    let n = a.len() as u32;
    let p9 = (param as u32) & 0x1FF;
    let max = u64::from(n) * 80 + 100_000;
    let (t, _) = match task {
        Task::Brightness => run_asm(m, HW_BRIGHT, &[n / 4, SRC_A, DST, p9], max),
        Task::Blend | Task::Fade => run_asm(m, HW_COMBINE, &[n / 2, SRC_A, SRC_B, DST, p9], max),
    };
    // Results land in memory in pixel order on every path.
    let out = harness::load_bytes(m, DST, a.len());
    (t, out)
}

/// Runs the DMA-controlled hardware version on the 64-bit system
/// (table 12). Returns `(total_time, prep_time, result)`.
pub fn dma_run(
    m: &mut Machine,
    task: Task,
    a: &[u8],
    b: &[u8],
    param: i32,
) -> (SimTime, SimTime, Vec<u8>) {
    assert_eq!(a.len() % 8, 0, "DMA path needs 8-pixel multiples");
    bind(m, Box::new(ImagingModule::new_wide(task)));
    set_fifo_capture(m, true);
    harness::store_bytes(m, SRC_A, a);
    if task.two_sources() {
        harness::store_bytes(m, SRC_B, b);
    }
    let n = a.len() as u32;
    let p9 = (param as u32) & 0x1FF;
    let max = u64::from(n) * 60 + 200_000;
    let (t, prep) = match task {
        Task::Brightness => {
            let (t, _) = run_asm(m, DMA_BRIGHT, &[n, SRC_A, DST, p9], max);
            (t, SimTime::ZERO)
        }
        Task::Blend | Task::Fade => {
            // Measure the preparation pass on an identical fresh machine
            // (same data, same caches-cold state).
            let mut mp = rtr_core::build_system(rtr_core::SystemKind::Bit64);
            harness::store_bytes(&mut mp, SRC_A, a);
            harness::store_bytes(&mut mp, SRC_B, b);
            let (prep, _) = run_asm(&mut mp, DMA_PREP_ONLY, &[n, SRC_A, SRC_B, AUX], max);
            let (t, _) = run_asm(m, DMA_COMBINE, &[n, SRC_A, SRC_B, AUX, p9, DST], max);
            (t, prep)
        }
    };
    // Results land in memory in pixel order on every path.
    let out = harness::load_bytes(m, DST, a.len());
    (t, prep, out)
}

/// Measured comparison, CPU-controlled transfers (table 5 / table 12's
/// sw column).
pub fn compare(kind: rtr_core::SystemKind, task: Task, n: usize, seed: u64) -> Comparison {
    let mut rng = SplitMix64::new(seed);
    let mut a = vec![0u8; n];
    let mut b = vec![0u8; n];
    rng.fill_bytes(&mut a);
    rng.fill_bytes(&mut b);
    let param = match task {
        Task::Brightness => -37,
        Task::Blend => 0,
        Task::Fade => 144,
    };
    let want = reference_image(task, &a, &b, param);
    let mut m = rtr_core::build_system(kind);
    let (sw, got) = sw_run(&mut m, task, &a, &b, param);
    assert_eq!(got, want, "sw {task:?}");
    let mut m = rtr_core::build_system(kind);
    let (hw, got) = hw_run(&mut m, task, &a, &b, param);
    assert_eq!(got, want, "hw {task:?}");
    Comparison {
        sw,
        hw,
        prep: SimTime::ZERO,
    }
}

/// Measured comparison on the 64-bit DMA path (table 12): sw vs DMA hw
/// with the data-preparation time reported separately.
pub fn compare_dma(task: Task, n: usize, seed: u64) -> Comparison {
    let mut rng = SplitMix64::new(seed);
    let mut a = vec![0u8; n];
    let mut b = vec![0u8; n];
    rng.fill_bytes(&mut a);
    rng.fill_bytes(&mut b);
    let param = match task {
        Task::Brightness => -37,
        Task::Blend => 0,
        Task::Fade => 144,
    };
    let want = reference_image(task, &a, &b, param);
    let kind = rtr_core::SystemKind::Bit64;
    let mut m = rtr_core::build_system(kind);
    let (sw, got) = sw_run(&mut m, task, &a, &b, param);
    assert_eq!(got, want, "sw {task:?}");
    let mut m = rtr_core::build_system(kind);
    let (hw, prep, got) = dma_run(&mut m, task, &a, &b, param);
    assert_eq!(got, want, "dma hw {task:?}");
    Comparison { sw, hw, prep }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dock::GateLevelModule;
    use rtr_core::SystemKind;

    fn rand_image(n: usize, seed: u64) -> Vec<u8> {
        let mut v = vec![0u8; n];
        SplitMix64::new(seed).fill_bytes(&mut v);
        v
    }

    #[test]
    fn reference_pixel_semantics() {
        assert_eq!(reference_pixel(Task::Brightness, 250, 0, 10), 255);
        assert_eq!(reference_pixel(Task::Brightness, 5, 0, -10), 0);
        assert_eq!(reference_pixel(Task::Brightness, 100, 0, 27), 127);
        assert_eq!(reference_pixel(Task::Blend, 200, 100, 0), 255);
        assert_eq!(reference_pixel(Task::Blend, 20, 100, 0), 120);
        assert_eq!(reference_pixel(Task::Fade, 100, 50, 256), 100);
        assert_eq!(reference_pixel(Task::Fade, 100, 50, 0), 50);
        assert_eq!(reference_pixel(Task::Fade, 100, 50, 128), 75);
    }

    #[test]
    fn behavioural_modules_match_reference_32bit_protocol() {
        for task in [Task::Brightness, Task::Blend, Task::Fade] {
            let a = rand_image(64, 1);
            let b = rand_image(64, 2);
            let param = match task {
                Task::Brightness => -37,
                Task::Blend => 0,
                Task::Fade => 77,
            };
            let want = reference_image(task, &a, &b, param);
            let mut module = ImagingModule::new(task);
            module.poke_at(4, (param as u32 & 0x1FF) as u64);
            let mut got = Vec::new();
            match task {
                Task::Brightness => {
                    for chunk in a.chunks(4) {
                        let mut w = 0u64;
                        for (i, &px) in chunk.iter().enumerate() {
                            w |= u64::from(px) << (8 * i);
                        }
                        let out = module.poke_at(0, w);
                        for i in 0..4 {
                            got.push(((out.data >> (8 * i)) & 0xFF) as u8);
                        }
                    }
                }
                Task::Blend | Task::Fade => {
                    for (ca, cb) in a.chunks(2).zip(b.chunks(2)) {
                        // A pair in the high halfword, B pair low — both in
                        // memory byte order.
                        let w = (u64::from(ca[0]) << 24)
                            | (u64::from(ca[1]) << 16)
                            | (u64::from(cb[0]) << 8)
                            | u64::from(cb[1]);
                        let out = module.poke_at(0, w);
                        if out.valid {
                            for i in 0..4 {
                                got.push(((out.data >> (24 - 8 * i)) & 0xFF) as u8);
                            }
                        }
                    }
                }
            }
            assert_eq!(got, want, "{task:?}");
        }
    }

    #[test]
    fn gate_level_matches_behavioural() {
        for task in [Task::Brightness, Task::Blend, Task::Fade] {
            let nl = imaging_netlist(task);
            let mut gate = GateLevelModule::new(&nl).unwrap();
            let mut beh = ImagingModule::new(task);
            let param: u64 = match task {
                Task::Brightness => (-100i32 as u32 & 0x1FF) as u64,
                Task::Blend => 0,
                Task::Fade => 200,
            };
            gate.poke_at(4, param);
            beh.poke_at(4, param);
            let mut rng = SplitMix64::new(99);
            for _ in 0..200 {
                let w = u64::from(rng.next_u32());
                let g = gate.poke_at(0, w);
                let b = beh.poke_at(0, w);
                assert_eq!(
                    (g.data, g.valid),
                    (b.data & 0xFFFF_FFFF, b.valid),
                    "{task:?} w={w:#x}"
                );
            }
        }
    }

    #[test]
    fn netlists_fit_the_32bit_region() {
        for task in [Task::Brightness, Task::Blend, Task::Fade] {
            let nl = imaging_netlist(task);
            let est = nl.slice_estimate();
            assert!(est <= 1232, "{task:?}: {est} slices");
        }
    }

    #[test]
    fn hw_cpu_controlled_matches_reference() {
        for task in [Task::Brightness, Task::Blend, Task::Fade] {
            let a = rand_image(64, 5);
            let b = rand_image(64, 6);
            let param = match task {
                Task::Brightness => -37,
                Task::Blend => 0,
                Task::Fade => 144,
            };
            let want = reference_image(task, &a, &b, param);
            for kind in [SystemKind::Bit32, SystemKind::Bit64] {
                let mut m = rtr_core::build_system(kind);
                let (_, got) = hw_run(&mut m, task, &a, &b, param);
                assert_eq!(got, want, "{task:?} {kind:?}");
            }
        }
    }

    #[test]
    fn dma_path_matches_reference() {
        for task in [Task::Brightness, Task::Blend, Task::Fade] {
            let a = rand_image(256, 7);
            let b = rand_image(256, 8);
            let param = match task {
                Task::Brightness => 25,
                Task::Blend => 0,
                Task::Fade => 99,
            };
            let want = reference_image(task, &a, &b, param);
            let mut m = rtr_core::build_system(SystemKind::Bit64);
            let (t, prep, got) = dma_run(&mut m, task, &a, &b, param);
            assert_eq!(got, want, "{task:?}");
            assert!(t > SimTime::ZERO);
            if task.two_sources() {
                assert!(prep > SimTime::ZERO, "{task:?} must report prep time");
                assert!(prep < t, "prep is part of the total");
            } else {
                assert_eq!(prep, SimTime::ZERO);
            }
        }
    }

    #[test]
    fn dma_speedups_follow_the_paper_shape() {
        // Table 12: brightness gains clearly more from DMA (no data
        // preparation) than the two-source tasks; fade beats blend.
        let n = 4096;
        let bright = compare_dma(Task::Brightness, n, 21);
        let blend = compare_dma(Task::Blend, n, 22);
        let fade = compare_dma(Task::Fade, n, 23);
        assert!(
            bright.speedup() > blend.speedup(),
            "brightness {:.2} vs blend {:.2}",
            bright.speedup(),
            blend.speedup()
        );
        assert!(
            fade.speedup() > blend.speedup(),
            "fade {:.2} vs blend {:.2}",
            fade.speedup(),
            blend.speedup()
        );
        assert!(bright.speedup() > 1.5, "brightness {:.2}", bright.speedup());
    }

    #[test]
    fn sw_kernels_match_reference() {
        for task in [Task::Brightness, Task::Blend, Task::Fade] {
            let a = rand_image(128, 3);
            let b = rand_image(128, 4);
            let param = match task {
                Task::Brightness => -37,
                Task::Blend => 0,
                Task::Fade => 144,
            };
            let want = reference_image(task, &a, &b, param);
            let mut m = rtr_core::build_system(SystemKind::Bit32);
            let (_, got) = sw_run(&mut m, task, &a, &b, param);
            assert_eq!(got, want, "{task:?}");
        }
    }
}
