//! Encoding placed netlists into configuration-memory bits.
//!
//! The encoding is *relocatable*: it depends only on component-local
//! structure (cell kinds, truth tables, component-local net ids and sites),
//! never on absolute fabric coordinates. Encoding the same component at two
//! different origins therefore produces bit patterns that are pure
//! translations of each other — the property BitLinker's relocation step
//! relies on, mirroring how the real tool relocates pre-routed component
//! configurations.

use crate::graph::{CellKind, Netlist};
use crate::place::Placement;
use std::collections::HashMap;
use vp2_fabric::config::{ConfigMemory, MINORS_PER_CLB_COL};
use vp2_fabric::coords::{ClbCoord, FfIndex, SliceIndex};

/// FF configuration nibble layout (see `ConfigMemory::set_ff_config`).
const FF_USED: u8 = 0b0001;
const FF_INIT: u8 = 0b0010;
const FF_CE: u8 = 0b0100;

/// Errors during encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The translated coordinate fell outside the device.
    OutOfDevice(ClbCoord),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::OutOfDevice(c) => write!(f, "encoded CLB {c} outside device"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// FNV-1a over a word stream — the routing-digest hash.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Encodes a placed netlist into `mem` with the component's local origin
/// translated to `origin` (device coordinates).
///
/// Writes LUT truth tables, FF configuration nibbles and per-CLB routing
/// digests. Returns the set of device CLBs written.
pub fn encode_placement(
    nl: &Netlist,
    placement: &Placement,
    origin: ClbCoord,
    mem: &mut ConfigMemory,
) -> Result<Vec<ClbCoord>, EncodeError> {
    let (cols, rows) = (mem.clb_cols(), mem.rows());
    let translate = |local: ClbCoord| -> Result<ClbCoord, EncodeError> {
        let dev = local
            .translated(i32::from(origin.col), i32::from(origin.row))
            .ok_or(EncodeError::OutOfDevice(local))?;
        if dev.col >= cols || dev.row >= rows {
            return Err(EncodeError::OutOfDevice(dev));
        }
        Ok(dev)
    };

    // Per-CLB routing material: stable, component-local descriptors.
    let mut routing: HashMap<ClbCoord, Vec<u64>> = HashMap::new();

    for (cell_id, &(slice, lut)) in &placement.luts {
        if let CellKind::Lut4 { truth, inputs, .. } = &nl.cells()[cell_id.0 as usize] {
            let dev = translate(slice.clb)?;
            mem.set_lut(dev, slice.slice, lut, *truth);
            let mut words = vec![
                0x4C55_5400 | u64::from(slice.slice.0) << 4 | u64::from(lut.0),
                u64::from(*truth),
            ];
            for inp in inputs.iter().flatten() {
                words.push(u64::from(inp.0) | 0x4E45_5400_0000);
            }
            routing.entry(slice.clb).or_default().push(fnv1a(words));
        }
    }

    for (cell_id, &(slice, ff)) in &placement.ffs {
        if let CellKind::Ff { d, init, ce, .. } = &nl.cells()[cell_id.0 as usize] {
            let dev = translate(slice.clb)?;
            let mut nibble = FF_USED;
            if *init {
                nibble |= FF_INIT;
            }
            if ce.is_some() {
                nibble |= FF_CE;
            }
            mem.set_ff_config(dev, slice.slice, ff, nibble);
            let words = vec![
                0x4646_0000 | u64::from(slice.slice.0) << 4 | u64::from(ff.0),
                u64::from(d.0),
                ce.map_or(u64::MAX, |c| u64::from(c.0)),
            ];
            routing.entry(slice.clb).or_default().push(fnv1a(words));
        }
    }

    // Routing digests: deterministic order, spread over the routing
    // channels so that distinct circuits differ in several frames (realistic
    // differential-bitstream density).
    let mut used: Vec<ClbCoord> = routing.keys().copied().collect();
    used.sort_unstable();
    for &local in &used {
        let dev = translate(local)?;
        let mut material = routing.remove(&local).expect("key exists");
        material.sort_unstable();
        let base = fnv1a(material);
        let channels = MINORS_PER_CLB_COL - 3;
        for ch in 0..4u16 {
            let val = fnv1a([base, u64::from(ch)]);
            mem.set_routing_word(dev, ch % channels, val);
        }
    }
    let device_clbs: Result<Vec<ClbCoord>, EncodeError> =
        used.iter().map(|&c| translate(c)).collect();
    device_clbs
}

/// Convenience: encodes a component into a blank configuration memory for
/// `device`, returning the memory (used for partial-bitstream generation).
pub fn encode_to_blank(
    nl: &Netlist,
    placement: &Placement,
    origin: ClbCoord,
    device: &vp2_fabric::Device,
) -> Result<ConfigMemory, EncodeError> {
    let mut mem = ConfigMemory::new(device);
    encode_placement(nl, placement, origin, &mut mem)?;
    Ok(mem)
}

/// Reads back a LUT truth table at a component-local site (test helper and
/// the readback verification path).
pub fn readback_lut(
    mem: &ConfigMemory,
    origin: ClbCoord,
    local: ClbCoord,
    slice: SliceIndex,
    lut: vp2_fabric::coords::LutIndex,
) -> u16 {
    let dev = local
        .translated(i32::from(origin.col), i32::from(origin.row))
        .expect("in device");
    mem.lut(dev, slice, lut)
}

/// Reads back a FF nibble at a component-local site.
pub fn readback_ff(
    mem: &ConfigMemory,
    origin: ClbCoord,
    local: ClbCoord,
    slice: SliceIndex,
    ff: FfIndex,
) -> u8 {
    let dev = local
        .translated(i32::from(origin.col), i32::from(origin.row))
        .expect("in device");
    mem.ff_config(dev, slice, ff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components;
    use crate::place::AutoPlacer;
    use vp2_fabric::config::{FrameAddress, FrameBlock};
    use vp2_fabric::{Device, DeviceKind};

    fn sample() -> (Netlist, Placement) {
        let mut nl = Netlist::new("sample");
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let s = components::saturating_add_unsigned(&mut nl, &a, &b);
        let q = components::register(&mut nl, &s, None);
        nl.output_bus("o", &q);
        let p = AutoPlacer::new().place(&nl, 4, 4).unwrap();
        (nl, p)
    }

    #[test]
    fn encoding_writes_lut_bits() {
        let (nl, p) = sample();
        let dev = Device::new(DeviceKind::Xc2vp7);
        let mem = encode_to_blank(&nl, &p, ClbCoord::new(0, 30), &dev).unwrap();
        // At least one LUT truth table is non-zero.
        let nonzero = p.luts.iter().any(|(cid, &(sc, lut))| {
            if let CellKind::Lut4 { truth, .. } = nl.cells()[cid.0 as usize] {
                truth != 0
                    && readback_lut(&mem, ClbCoord::new(0, 30), sc.clb, sc.slice, lut) == truth
            } else {
                false
            }
        });
        assert!(nonzero);
    }

    #[test]
    fn every_lut_truth_survives_readback() {
        let (nl, p) = sample();
        let dev = Device::new(DeviceKind::Xc2vp7);
        let origin = ClbCoord::new(10, 31);
        let mem = encode_to_blank(&nl, &p, origin, &dev).unwrap();
        for (cid, &(sc, lut)) in &p.luts {
            if let CellKind::Lut4 { truth, .. } = nl.cells()[cid.0 as usize] {
                assert_eq!(
                    readback_lut(&mem, origin, sc.clb, sc.slice, lut),
                    truth,
                    "cell {cid:?}"
                );
            }
        }
    }

    #[test]
    fn ff_nibbles_encode_usage() {
        let (nl, p) = sample();
        let dev = Device::new(DeviceKind::Xc2vp7);
        let origin = ClbCoord::new(0, 30);
        let mem = encode_to_blank(&nl, &p, origin, &dev).unwrap();
        for &(sc, ff) in p.ffs.values() {
            let nib = readback_ff(&mem, origin, sc.clb, sc.slice, ff);
            assert_eq!(nib & FF_USED, FF_USED);
            assert_eq!(nib & FF_CE, 0, "no CE in this design");
        }
    }

    #[test]
    fn relocation_is_pure_translation() {
        let (nl, p) = sample();
        let dev = Device::new(DeviceKind::Xc2vp7);
        let o1 = ClbCoord::new(2, 30);
        let o2 = ClbCoord::new(9, 32);
        let m1 = encode_to_blank(&nl, &p, o1, &dev).unwrap();
        let m2 = encode_to_blank(&nl, &p, o2, &dev).unwrap();
        // Every local site reads identically relative to its origin.
        for &(sc, lut) in p.luts.values() {
            assert_eq!(
                readback_lut(&m1, o1, sc.clb, sc.slice, lut),
                readback_lut(&m2, o2, sc.clb, sc.slice, lut)
            );
        }
        for local in p.used_clbs() {
            let d1 = local.translated(o1.col.into(), o1.row.into()).unwrap();
            let d2 = local.translated(o2.col.into(), o2.row.into()).unwrap();
            for ch in 0..4 {
                assert_eq!(m1.routing_word(d1, ch), m2.routing_word(d2, ch));
            }
        }
    }

    #[test]
    fn distinct_circuits_differ_in_routing() {
        let dev = Device::new(DeviceKind::Xc2vp7);
        let build = |invert: bool| {
            let mut nl = Netlist::new("v");
            let a = nl.input_bus("a", 8);
            let body = if invert {
                components::bus_not(&mut nl, &a)
            } else {
                a.clone()
            };
            let q = components::register(&mut nl, &body, None);
            nl.output_bus("o", &q);
            let p = AutoPlacer::new().place(&nl, 2, 2).unwrap();
            encode_to_blank(&nl, &p, ClbCoord::new(0, 30), &dev).unwrap()
        };
        let m1 = build(false);
        let m2 = build(true);
        assert!(
            !m1.diff(&m2).is_empty(),
            "different circuits, different bits"
        );
    }

    #[test]
    fn encoding_touches_only_component_columns() {
        let (nl, p) = sample();
        let dev = Device::new(DeviceKind::Xc2vp7);
        let origin = ClbCoord::new(5, 30);
        let mem = encode_to_blank(&nl, &p, origin, &dev).unwrap();
        let blank = ConfigMemory::new(&dev);
        for addr in mem.diff(&blank) {
            match addr.block {
                FrameBlock::Clb { col } => {
                    assert!(
                        (origin.col..origin.col + p.width).contains(&col),
                        "unexpected write to column {col}"
                    );
                }
                other => panic!("unexpected block {other:?}"),
            }
        }
        // And rows outside the component's band stay blank in touched frames.
        let addr = FrameAddress {
            block: FrameBlock::Clb { col: origin.col },
            minor: 0,
        };
        let frame = mem.frame(addr);
        let band = ConfigMemory::row_word_range(origin.row..origin.row + p.height);
        for (i, &w) in frame.words.iter().enumerate() {
            if !band.contains(&i) {
                assert_eq!(w, 0, "word {i} outside the band must stay blank");
            }
        }
    }

    #[test]
    fn out_of_device_detected() {
        let (nl, p) = sample();
        let dev = Device::new(DeviceKind::Xc2vp7);
        let mut mem = ConfigMemory::new(&dev);
        // Origin so low that the component's rows exceed the 44-row grid.
        let err = encode_placement(&nl, &p, ClbCoord::new(0, 42), &mut mem);
        assert_eq!(err, Err(EncodeError::OutOfDevice(ClbCoord::new(0, 44))));
    }

    #[test]
    fn identity_lut_reads_back_identity() {
        // A bus-macro pass-through LUT must encode truth 0xAAAA-like identity
        // (out = in0): truth4 gives 0b1010...? Verify actual value survives.
        let mut nl = Netlist::new("id");
        let a = nl.input("a", 0);
        let o = nl.lut(
            components::truth4(|x, _, _, _| x),
            [Some(a), None, None, None],
        );
        nl.output("o", 0, o);
        let p = AutoPlacer::new().place(&nl, 1, 1).unwrap();
        let dev = Device::new(DeviceKind::Xc2vp7);
        let origin = ClbCoord::new(0, 1);
        let mem = encode_to_blank(&nl, &p, origin, &dev).unwrap();
        let &(sc, lut) = p.luts.values().next().unwrap();
        let truth = readback_lut(&mem, origin, sc.clb, sc.slice, lut);
        assert_eq!(truth, components::truth4(|x, _, _, _| x));
    }
}
