//! Netlist graph: nets, cells, ports and validation.
//!
//! A netlist is a directed graph of primitive cells connected by single-bit
//! nets. Primitives correspond to what a Virtex-II Pro slice offers: 4-input
//! LUTs and D flip-flops (with optional clock enable), plus constants and
//! named I/O ports. Multi-bit values are plain `Vec<NetId>` buses (LSB
//! first), built with the combinators in [`crate::components`].

use std::collections::HashMap;
use std::fmt;

/// A single-bit signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// A primitive cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// A multi-bit bus, least-significant bit first.
pub type Bus = Vec<NetId>;

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven from outside the module (by the dock's write channel).
    Input,
    /// Observed from outside the module (by the dock's read channel).
    Output,
}

/// Primitive cell kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellKind {
    /// 4-input lookup table. Unused inputs are `None` and read as 0.
    /// `truth` bit *i* gives the output for input pattern *i*
    /// (bit 0 of the pattern = input 0).
    Lut4 {
        /// Truth table.
        truth: u16,
        /// Input nets (LSB-first significance in the pattern index).
        inputs: [Option<NetId>; 4],
        /// Output net.
        output: NetId,
    },
    /// D flip-flop clocked by the module clock.
    Ff {
        /// Data input.
        d: NetId,
        /// Registered output.
        q: NetId,
        /// Power-up / reconfiguration init value.
        init: bool,
        /// Optional clock enable (the dock's write-strobe typically drives
        /// this, as described in section 3.1 of the paper).
        ce: Option<NetId>,
    },
    /// Constant driver.
    Const {
        /// Driven value.
        value: bool,
        /// Output net.
        output: NetId,
    },
    /// Named module port bit.
    Port {
        /// Port name (e.g. `"din"`).
        name: String,
        /// Bit index within the port.
        bit: u16,
        /// Direction.
        dir: PortDir,
        /// The attached net. Input ports drive it; output ports observe it.
        net: NetId,
    },
}

/// Netlist validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net is driven by more than one cell output.
    MultipleDrivers(NetId),
    /// A net is used as an input but never driven.
    Undriven(NetId),
    /// The combinational logic contains a cycle through the listed net.
    CombinationalLoop(NetId),
    /// Two ports share a name/bit pair.
    DuplicatePort(String, u16),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers(n) => write!(f, "net {n:?} has multiple drivers"),
            NetlistError::Undriven(n) => write!(f, "net {n:?} is used but never driven"),
            NetlistError::CombinationalLoop(n) => {
                write!(f, "combinational loop through net {n:?}")
            }
            NetlistError::DuplicatePort(name, bit) => {
                write!(f, "duplicate port {name}[{bit}]")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A structural netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// Module name (for reports and bitstream metadata).
    pub name: String,
    cells: Vec<CellKind>,
    net_count: u32,
}

impl Netlist {
    /// New empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            cells: Vec::new(),
            net_count: 0,
        }
    }

    /// Allocates a fresh net.
    pub fn net(&mut self) -> NetId {
        let id = NetId(self.net_count);
        self.net_count += 1;
        id
    }

    /// Allocates a bus of `width` fresh nets.
    pub fn bus(&mut self, width: usize) -> Bus {
        (0..width).map(|_| self.net()).collect()
    }

    /// Number of nets allocated.
    pub fn net_count(&self) -> u32 {
        self.net_count
    }

    /// All cells, indexable by [`CellId`].
    pub fn cells(&self) -> &[CellKind] {
        &self.cells
    }

    fn push(&mut self, cell: CellKind) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(cell);
        id
    }

    /// Adds a LUT4 cell; returns its output net.
    pub fn lut(&mut self, truth: u16, inputs: [Option<NetId>; 4]) -> NetId {
        let output = self.net();
        self.push(CellKind::Lut4 {
            truth,
            inputs,
            output,
        });
        output
    }

    /// Adds a LUT4 driving a caller-supplied net (needed by bus macros whose
    /// output nets are fixed up front).
    pub fn lut_into(&mut self, truth: u16, inputs: [Option<NetId>; 4], output: NetId) -> CellId {
        self.push(CellKind::Lut4 {
            truth,
            inputs,
            output,
        })
    }

    /// Adds a flip-flop; returns its Q net.
    pub fn ff(&mut self, d: NetId, init: bool, ce: Option<NetId>) -> NetId {
        let q = self.net();
        self.push(CellKind::Ff { d, q, init, ce });
        q
    }

    /// Adds a constant driver; returns its net.
    pub fn constant(&mut self, value: bool) -> NetId {
        let output = self.net();
        self.push(CellKind::Const { value, output });
        output
    }

    /// Declares a module input port bit; returns the net it drives.
    pub fn input(&mut self, name: impl Into<String>, bit: u16) -> NetId {
        let net = self.net();
        self.push(CellKind::Port {
            name: name.into(),
            bit,
            dir: PortDir::Input,
            net,
        });
        net
    }

    /// Declares a multi-bit input port; returns its bus.
    pub fn input_bus(&mut self, name: &str, width: u16) -> Bus {
        (0..width).map(|b| self.input(name, b)).collect()
    }

    /// Declares a module output port bit observing `net`.
    pub fn output(&mut self, name: impl Into<String>, bit: u16, net: NetId) {
        self.push(CellKind::Port {
            name: name.into(),
            bit,
            dir: PortDir::Output,
            net,
        });
    }

    /// Declares a multi-bit output port observing `bus`.
    pub fn output_bus(&mut self, name: &str, bus: &[NetId]) {
        for (b, &net) in bus.iter().enumerate() {
            self.output(name, b as u16, net);
        }
    }

    /// Number of LUT cells (bus-macro pass-throughs included).
    pub fn lut_cell_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, CellKind::Lut4 { .. }))
            .count()
    }

    /// Number of flip-flop cells.
    pub fn ff_cell_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, CellKind::Ff { .. }))
            .count()
    }

    /// Slice estimate: each slice offers 2 LUTs and 2 FFs; LUT/FF pairs that
    /// belong together are packed by the placer, so the bound is the max of
    /// the two resource demands.
    pub fn slice_estimate(&self) -> usize {
        let luts = self.lut_cell_count().div_ceil(2);
        let ffs = self.ff_cell_count().div_ceil(2);
        luts.max(ffs)
    }

    /// Ports grouped by `(name, dir)` with their bit nets in index order.
    pub fn ports(&self) -> HashMap<(String, PortDir), Vec<(u16, NetId)>> {
        let mut map: HashMap<(String, PortDir), Vec<(u16, NetId)>> = HashMap::new();
        for cell in &self.cells {
            if let CellKind::Port {
                name,
                bit,
                dir,
                net,
                ..
            } = cell
            {
                map.entry((name.clone(), *dir))
                    .or_default()
                    .push((*bit, *net));
            }
        }
        for bits in map.values_mut() {
            bits.sort_unstable_by_key(|&(b, _)| b);
        }
        map
    }

    /// Net of a specific input port bit, if present.
    pub fn input_net(&self, name: &str, bit: u16) -> Option<NetId> {
        self.cells.iter().find_map(|c| match c {
            CellKind::Port {
                name: n,
                bit: b,
                dir: PortDir::Input,
                net,
            } if n == name && *b == bit => Some(*net),
            _ => None,
        })
    }

    /// Net of a specific output port bit, if present.
    pub fn output_net(&self, name: &str, bit: u16) -> Option<NetId> {
        self.cells.iter().find_map(|c| match c {
            CellKind::Port {
                name: n,
                bit: b,
                dir: PortDir::Output,
                net,
            } if n == name && *b == bit => Some(*net),
            _ => None,
        })
    }

    /// Driver cell of each net (`None` for undriven nets).
    ///
    /// FF outputs and input ports count as drivers; output ports do not.
    pub fn drivers(&self) -> Result<Vec<Option<CellId>>, NetlistError> {
        let mut drv: Vec<Option<CellId>> = vec![None; self.net_count as usize];
        for (i, cell) in self.cells.iter().enumerate() {
            let out = match cell {
                CellKind::Lut4 { output, .. } => Some(*output),
                CellKind::Ff { q, .. } => Some(*q),
                CellKind::Const { output, .. } => Some(*output),
                CellKind::Port {
                    dir: PortDir::Input,
                    net,
                    ..
                } => Some(*net),
                CellKind::Port {
                    dir: PortDir::Output,
                    ..
                } => None,
            };
            if let Some(net) = out {
                if drv[net.0 as usize].is_some() {
                    return Err(NetlistError::MultipleDrivers(net));
                }
                drv[net.0 as usize] = Some(CellId(i as u32));
            }
        }
        Ok(drv)
    }

    /// Validates the netlist: single drivers, no dangling inputs, no
    /// combinational loops, unique ports.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let drivers = self.drivers()?;
        // Every used net must be driven.
        let check_used = |net: Option<NetId>| -> Result<(), NetlistError> {
            if let Some(n) = net {
                if drivers[n.0 as usize].is_none() {
                    return Err(NetlistError::Undriven(n));
                }
            }
            Ok(())
        };
        let mut seen_ports = std::collections::HashSet::new();
        for cell in &self.cells {
            match cell {
                CellKind::Lut4 { inputs, .. } => {
                    for &i in inputs {
                        check_used(i)?;
                    }
                }
                CellKind::Ff { d, ce, .. } => {
                    check_used(Some(*d))?;
                    check_used(*ce)?;
                }
                CellKind::Const { .. } => {}
                CellKind::Port {
                    name,
                    bit,
                    dir,
                    net,
                } => {
                    if !seen_ports.insert((name.clone(), *bit, *dir as u8 as char)) {
                        return Err(NetlistError::DuplicatePort(name.clone(), *bit));
                    }
                    if *dir == PortDir::Output {
                        check_used(Some(*net))?;
                    }
                }
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Topological order of the *combinational* cells (LUTs); FFs, constants
    /// and input ports are sources. Errors on combinational loops.
    pub fn topo_order(&self) -> Result<Vec<CellId>, NetlistError> {
        // Kahn's algorithm over LUT cells keyed by their input dependencies
        // on other LUT outputs.
        let mut lut_of_net: HashMap<NetId, usize> = HashMap::new();
        let mut lut_ids: Vec<usize> = Vec::new();
        for (i, cell) in self.cells.iter().enumerate() {
            if let CellKind::Lut4 { output, .. } = cell {
                lut_of_net.insert(*output, lut_ids.len());
                lut_ids.push(i);
            }
        }
        let n = lut_ids.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, &ci) in lut_ids.iter().enumerate() {
            if let CellKind::Lut4 { inputs, .. } = &self.cells[ci] {
                for &inp in inputs.iter().flatten() {
                    if let Some(&src) = lut_of_net.get(&inp) {
                        succ[src].push(k);
                        indeg[k] += 1;
                    }
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&k| indeg[k] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(k) = queue.pop() {
            order.push(CellId(lut_ids[k] as u32));
            for &s in &succ[k] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() != n {
            // Find one net on a cycle for the error message.
            let k = (0..n).find(|&k| indeg[k] > 0).expect("cycle exists");
            if let CellKind::Lut4 { output, .. } = &self.cells[lut_ids[k]] {
                return Err(NetlistError::CombinationalLoop(*output));
            }
            unreachable!("lut_ids only indexes LUT cells");
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-bit toggler: FF whose D input is !Q.
    fn toggler() -> Netlist {
        let mut nl = Netlist::new("toggler");
        let d = nl.net();
        let q = nl.ff(d, false, None);
        // NOT gate: truth table for single-input inverter on input 0.
        let not_q = nl.lut(0b01, [Some(q), None, None, None]);
        // Re-route: lut() allocated its own output; use lut_into pattern via
        // a buffer LUT driving `d`.
        nl.lut_into(0b10, [Some(not_q), None, None, None], d);
        nl.output("q", 0, q);
        nl
    }

    #[test]
    fn toggler_validates() {
        let nl = toggler();
        nl.validate().expect("valid netlist");
        assert_eq!(nl.lut_cell_count(), 2);
        assert_eq!(nl.ff_cell_count(), 1);
    }

    #[test]
    fn multiple_drivers_detected() {
        let mut nl = Netlist::new("bad");
        let a = nl.constant(true);
        nl.lut_into(0b10, [Some(a), None, None, None], a);
        assert_eq!(nl.validate(), Err(NetlistError::MultipleDrivers(a)));
    }

    #[test]
    fn undriven_net_detected() {
        let mut nl = Netlist::new("bad");
        let ghost = nl.net();
        let out = nl.lut(0b10, [Some(ghost), None, None, None]);
        nl.output("o", 0, out);
        assert_eq!(nl.validate(), Err(NetlistError::Undriven(ghost)));
    }

    #[test]
    fn combinational_loop_detected() {
        let mut nl = Netlist::new("loop");
        let a = nl.net();
        let b = nl.lut(0b10, [Some(a), None, None, None]);
        nl.lut_into(0b10, [Some(b), None, None, None], a);
        match nl.validate() {
            Err(NetlistError::CombinationalLoop(_)) => {}
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn ff_breaks_loops() {
        // The toggler's feedback goes through a FF, so it must NOT count as
        // a combinational loop.
        assert!(toggler().topo_order().is_ok());
    }

    #[test]
    fn duplicate_ports_detected() {
        let mut nl = Netlist::new("dup");
        let c = nl.constant(false);
        nl.output("o", 0, c);
        nl.output("o", 0, c);
        assert_eq!(
            nl.validate(),
            Err(NetlistError::DuplicatePort("o".into(), 0))
        );
    }

    #[test]
    fn port_lookup() {
        let mut nl = Netlist::new("ports");
        let din = nl.input_bus("din", 4);
        nl.output_bus("dout", &din);
        assert_eq!(nl.input_net("din", 2), Some(din[2]));
        assert_eq!(nl.output_net("dout", 3), Some(din[3]));
        assert_eq!(nl.input_net("nope", 0), None);
        let ports = nl.ports();
        assert_eq!(ports[&("din".to_string(), PortDir::Input)].len(), 4);
    }

    #[test]
    fn slice_estimate_packs_pairs() {
        let mut nl = Netlist::new("est");
        let c = nl.constant(false);
        for _ in 0..10 {
            nl.lut(0b10, [Some(c), None, None, None]);
        }
        for _ in 0..4 {
            nl.ff(c, false, None);
        }
        // 10 LUTs → 5 slices; 4 FFs → 2 slices; max = 5.
        assert_eq!(nl.slice_estimate(), 5);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut nl = Netlist::new("chain");
        let a = nl.input("a", 0);
        let b = nl.lut(0b10, [Some(a), None, None, None]);
        let c = nl.lut(0b10, [Some(b), None, None, None]);
        nl.output("o", 0, c);
        let order = nl.topo_order().unwrap();
        assert_eq!(order.len(), 2);
        // b's cell must come before c's cell.
        let pos = |id: CellId| order.iter().position(|&x| x == id).unwrap();
        // cells: [port a, lut b, lut c, port o] → b = CellId(1), c = CellId(2)
        assert!(pos(CellId(1)) < pos(CellId(2)));
    }
}
