//! # vp2-netlist — structural netlists for the dynamic region
//!
//! Hardware modules destined for the dynamic region are described as
//! structural netlists of the primitives a Virtex-II Pro slice offers (4-input
//! LUTs and flip-flops), placed onto concrete slice sites, simulated at gate
//! level, and encoded into configuration-memory bits (see `vp2-fabric`).
//!
//! The crate also implements the paper's **bus macros** (fig. 2): pass-through
//! LUTs pinned to fixed sites so that independently designed components have
//! compatible I/O locations and their configurations can be assembled by
//! concatenation (BitLinker, in `vp2-bitstream`).
//!
//! Each application's hardware module exists twice in this reproduction —
//! as a netlist here (the source of truth for area, placement and bitstream
//! bits) and as a fast behavioural model in `rtr-apps`. Property tests assert
//! the two agree cycle-for-cycle.

pub mod busmacro;
pub mod components;
pub mod encode;
pub mod graph;
pub mod place;
pub mod simulate;

pub use busmacro::{BusMacro, MacroKind};
pub use graph::{Bus, CellId, CellKind, NetId, Netlist, NetlistError, PortDir};
pub use place::{AutoPlacer, PlaceError, Placement};
pub use simulate::Simulator;
