//! Gate-level cycle simulator.
//!
//! Two-phase semantics per clock cycle, matching synchronous hardware:
//! combinational logic settles (LUTs evaluated in topological order), then
//! every flip-flop whose clock-enable is asserted latches its D input
//! simultaneously. The simulator is the reference model that the fast
//! behavioural models in `rtr-apps` are property-tested against.

use crate::graph::{CellId, CellKind, NetId, Netlist, NetlistError, PortDir};
use std::collections::HashMap;

/// A gate-level simulator instance (owns a copy of the netlist).
#[derive(Debug, Clone)]
pub struct Simulator {
    nl: Netlist,
    order: Vec<CellId>,
    values: Vec<bool>,
    /// (cell index, q net) pairs for fast FF sweeps.
    ffs: Vec<(usize, NetId)>,
    inputs: HashMap<String, Vec<NetId>>,
    outputs: HashMap<String, Vec<NetId>>,
    cycle: u64,
}

impl Simulator {
    /// Builds a simulator; validates the netlist.
    pub fn new(nl: &Netlist) -> Result<Self, NetlistError> {
        nl.validate()?;
        let order = nl.topo_order()?;
        let mut values = vec![false; nl.net_count() as usize];
        let mut ffs = Vec::new();
        let mut inputs: HashMap<String, Vec<(u16, NetId)>> = HashMap::new();
        let mut outputs: HashMap<String, Vec<(u16, NetId)>> = HashMap::new();
        for (i, cell) in nl.cells().iter().enumerate() {
            match cell {
                CellKind::Ff { q, init, .. } => {
                    values[q.0 as usize] = *init;
                    ffs.push((i, *q));
                }
                CellKind::Const { value, output } => {
                    values[output.0 as usize] = *value;
                }
                CellKind::Port {
                    name,
                    bit,
                    dir,
                    net,
                } => {
                    let map = match dir {
                        PortDir::Input => &mut inputs,
                        PortDir::Output => &mut outputs,
                    };
                    map.entry(name.clone()).or_default().push((*bit, *net));
                }
                CellKind::Lut4 { .. } => {}
            }
        }
        let finish = |m: HashMap<String, Vec<(u16, NetId)>>| {
            m.into_iter()
                .map(|(k, mut v)| {
                    v.sort_unstable_by_key(|&(b, _)| b);
                    (k, v.into_iter().map(|(_, n)| n).collect())
                })
                .collect()
        };
        let mut sim = Simulator {
            nl: nl.clone(),
            order,
            values,
            ffs,
            inputs: finish(inputs),
            outputs: finish(outputs),
            cycle: 0,
        };
        sim.settle();
        Ok(sim)
    }

    /// Resets every FF to its init value and re-settles.
    pub fn reset(&mut self) {
        for &(i, q) in &self.ffs {
            if let CellKind::Ff { init, .. } = &self.nl.cells()[i] {
                self.values[q.0 as usize] = *init;
            }
        }
        self.cycle = 0;
        self.settle();
    }

    /// Cycles executed since construction/reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Drives an input port with the low `width(port)` bits of `value`.
    ///
    /// # Panics
    /// Panics if the port does not exist.
    pub fn set_input(&mut self, name: &str, value: u64) {
        let nets = self
            .inputs
            .get(name)
            .unwrap_or_else(|| panic!("no input port '{name}'"));
        // Borrow dance: collect first.
        let nets: Vec<NetId> = nets.clone();
        for (b, net) in nets.iter().enumerate() {
            self.values[net.0 as usize] = (value >> b) & 1 == 1;
        }
        self.settle();
    }

    /// Reads an output port as an integer (bit *i* of the result = port bit
    /// *i*). Valid after construction, `set_input` or `step`.
    ///
    /// # Panics
    /// Panics if the port does not exist or is wider than 64 bits.
    pub fn output(&self, name: &str) -> u64 {
        let nets = self
            .outputs
            .get(name)
            .unwrap_or_else(|| panic!("no output port '{name}'"));
        assert!(nets.len() <= 64, "output wider than 64 bits");
        nets.iter().enumerate().fold(0u64, |acc, (b, net)| {
            acc | (u64::from(self.values[net.0 as usize]) << b)
        })
    }

    /// Width of an input port (0 if absent).
    pub fn input_width(&self, name: &str) -> usize {
        self.inputs.get(name).map_or(0, Vec::len)
    }

    /// Width of an output port (0 if absent).
    pub fn output_width(&self, name: &str) -> usize {
        self.outputs.get(name).map_or(0, Vec::len)
    }

    /// Propagates combinational logic (topological LUT sweep).
    fn settle(&mut self) {
        for k in 0..self.order.len() {
            let ci = self.order[k].0 as usize;
            if let CellKind::Lut4 {
                truth,
                inputs,
                output,
            } = &self.nl.cells()[ci]
            {
                let mut idx = 0usize;
                for (b, inp) in inputs.iter().enumerate() {
                    if let Some(n) = inp {
                        if self.values[n.0 as usize] {
                            idx |= 1 << b;
                        }
                    }
                }
                self.values[output.0 as usize] = (truth >> idx) & 1 == 1;
            }
        }
    }

    /// Advances one clock cycle: all enabled FFs latch simultaneously, then
    /// combinational logic re-settles.
    pub fn step(&mut self) {
        // Phase 1: sample D and CE with current (settled) values.
        let mut next: Vec<(NetId, bool)> = Vec::with_capacity(self.ffs.len());
        for &(i, q) in &self.ffs {
            if let CellKind::Ff { d, ce, .. } = &self.nl.cells()[i] {
                let enabled = ce.is_none_or(|c| self.values[c.0 as usize]);
                if enabled {
                    next.push((q, self.values[d.0 as usize]));
                }
            }
        }
        // Phase 2: commit and settle.
        for (q, v) in next {
            self.values[q.0 as usize] = v;
        }
        self.cycle += 1;
        self.settle();
    }

    /// Runs `n` clock cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Reads a raw net value (diagnostics and tests).
    pub fn net_value(&self, net: NetId) -> bool {
        self.values[net.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Netlist;

    /// Toggle FF: q' = !q each cycle.
    fn toggler() -> Netlist {
        let mut nl = Netlist::new("toggler");
        let d = nl.net();
        let q = nl.ff(d, false, None);
        let not_q = nl.lut(0b01, [Some(q), None, None, None]);
        nl.lut_into(0b10, [Some(not_q), None, None, None], d);
        nl.output("q", 0, q);
        nl
    }

    #[test]
    fn toggler_toggles() {
        let mut sim = Simulator::new(&toggler()).unwrap();
        assert_eq!(sim.output("q"), 0);
        sim.step();
        assert_eq!(sim.output("q"), 1);
        sim.step();
        assert_eq!(sim.output("q"), 0);
        assert_eq!(sim.cycle(), 2);
    }

    #[test]
    fn reset_restores_init() {
        let mut sim = Simulator::new(&toggler()).unwrap();
        sim.run(3);
        assert_eq!(sim.output("q"), 1);
        sim.reset();
        assert_eq!(sim.output("q"), 0);
        assert_eq!(sim.cycle(), 0);
    }

    #[test]
    fn combinational_passthrough() {
        let mut nl = Netlist::new("buf");
        let a = nl.input_bus("a", 8);
        nl.output_bus("o", &a);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("a", 0xA5);
        assert_eq!(sim.output("o"), 0xA5);
        sim.set_input("a", 0x5A);
        assert_eq!(sim.output("o"), 0x5A);
    }

    #[test]
    fn lut_and_gate() {
        let mut nl = Netlist::new("and");
        let a = nl.input("a", 0);
        let b = nl.input("b", 0);
        // AND2 truth table on inputs 0 and 1: only pattern 0b11 → 1.
        let o = nl.lut(0b1000, [Some(a), Some(b), None, None]);
        nl.output("o", 0, o);
        let mut sim = Simulator::new(&nl).unwrap();
        for (av, bv, want) in [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)] {
            sim.set_input("a", av);
            sim.set_input("b", bv);
            assert_eq!(sim.output("o"), want, "a={av} b={bv}");
        }
    }

    #[test]
    fn clock_enable_gates_updates() {
        let mut nl = Netlist::new("ce");
        let d = nl.input("d", 0);
        let ce = nl.input("ce", 0);
        let q = nl.ff(d, false, Some(ce));
        nl.output("q", 0, q);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("d", 1);
        sim.set_input("ce", 0);
        sim.step();
        assert_eq!(sim.output("q"), 0, "CE low: hold");
        sim.set_input("ce", 1);
        sim.step();
        assert_eq!(sim.output("q"), 1, "CE high: load");
    }

    #[test]
    fn ffs_latch_simultaneously() {
        // 2-stage shift register: both stages must move in the same cycle.
        let mut nl = Netlist::new("shift2");
        let din = nl.input("d", 0);
        let q0 = nl.ff(din, false, None);
        let q1 = nl.ff(q0, false, None);
        nl.output_bus("q", &[q0, q1]);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("d", 1);
        sim.step();
        assert_eq!(sim.output("q"), 0b01, "only stage 0 after one clock");
        sim.set_input("d", 0);
        sim.step();
        assert_eq!(sim.output("q"), 0b10, "bit moved to stage 1");
    }

    #[test]
    fn port_widths() {
        let mut nl = Netlist::new("w");
        let a = nl.input_bus("a", 32);
        nl.output_bus("o", &a[..16]);
        let sim = Simulator::new(&nl).unwrap();
        assert_eq!(sim.input_width("a"), 32);
        assert_eq!(sim.output_width("o"), 16);
        assert_eq!(sim.input_width("missing"), 0);
    }

    #[test]
    fn init_values_respected() {
        let mut nl = Netlist::new("init");
        let zero = nl.constant(false);
        let q = nl.ff(zero, true, None);
        nl.output("q", 0, q);
        let mut sim = Simulator::new(&nl).unwrap();
        assert_eq!(sim.output("q"), 1, "init high");
        sim.step();
        assert_eq!(sim.output("q"), 0, "loads constant 0");
    }
}
