//! Bus macros (paper fig. 2).
//!
//! A component destined for the dynamic region must present its I/O signals
//! at **fixed fabric locations**, so that an assembled configuration can be
//! produced by concatenating independently designed components. The paper's
//! (and our default) mechanism is the *LUT-based bus macro*: each signal
//! passes through a pass-through LUT pinned to an agreed site. Signals leave
//! component A through specific LUTs and enter component B through the
//! corresponding LUTs; neither design knows anything else about the other.
//!
//! Tristate-line macros (Xilinx app note 290) are also modelled for the area
//! ablation: they consume no LUTs but occupy the scarce long tristate lines
//! (4 per CLB row in Virtex-II) and are slower; the paper's circuits use
//! LUT-based macros "since they consume less area".

use crate::components::truth4;
use crate::graph::{Bus, CellId, Netlist};
use crate::place::{AutoPlacer, LutSite};
use vp2_fabric::coords::{LutIndex, SliceCoord, LUTS_PER_SLICE, SLICES_PER_CLB};

/// Bus-macro flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacroKind {
    /// Pass-through LUTs at fixed sites (1 LUT per signal per side).
    LutBased,
    /// Tristate long lines (no LUTs, but scarce routing; slower).
    Tristate,
}

/// A bus-macro specification: the agreed, fixed signal sites.
///
/// Two components can be assembled next to each other iff they instantiate
/// byte-identical macros ([`BusMacro::same_footprint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusMacro {
    /// Macro name (part of the compatibility contract).
    pub name: String,
    /// Flavour.
    pub kind: MacroKind,
    /// One site per signal, in bit order.
    pub sites: Vec<LutSite>,
}

impl BusMacro {
    /// Standard LUT-based macro: `width` signals stacked vertically starting
    /// at CLB column `col`, row `start_row`, 8 signals per CLB (4 slices × 2
    /// LUTs).
    pub fn lut_based(name: impl Into<String>, width: u16, col: u16, start_row: u16) -> Self {
        let per_clb = (SLICES_PER_CLB * LUTS_PER_SLICE) as u16;
        let sites = (0..width)
            .map(|i| {
                let row = start_row + i / per_clb;
                let within = i % per_clb;
                let slice = (within / LUTS_PER_SLICE as u16) as u8;
                let lut = (within % LUTS_PER_SLICE as u16) as u8;
                (SliceCoord::new(col, row, slice), LutIndex::new(lut))
            })
            .collect();
        BusMacro {
            name: name.into(),
            kind: MacroKind::LutBased,
            sites,
        }
    }

    /// Tristate macro: same site bookkeeping (for placement exclusion), but
    /// no LUTs are consumed when instantiated.
    pub fn tristate(name: impl Into<String>, width: u16, col: u16, start_row: u16) -> Self {
        let mut m = Self::lut_based(name, width, col, start_row);
        m.kind = MacroKind::Tristate;
        m
    }

    /// Number of signals.
    pub fn width(&self) -> usize {
        self.sites.len()
    }

    /// LUTs consumed on one side of the macro.
    pub fn lut_cost(&self) -> usize {
        match self.kind {
            MacroKind::LutBased => self.sites.len(),
            MacroKind::Tristate => 0,
        }
    }

    /// Do two macros pin the same signals to the same sites (the assembly
    /// compatibility condition)?
    pub fn same_footprint(&self, other: &BusMacro) -> bool {
        self.name == other.name && self.kind == other.kind && self.sites == other.sites
    }

    /// The same macro shifted by a CLB offset — the contract a component
    /// relocated to a sub-slot at `(dc, dr)` must satisfy. Name and kind
    /// are unchanged; only the pinned sites move.
    pub fn translated(&self, dc: u16, dr: u16) -> BusMacro {
        BusMacro {
            name: self.name.clone(),
            kind: self.kind,
            sites: self
                .sites
                .iter()
                .map(|&(site, lut)| {
                    let mut moved = site;
                    moved.clb.col += dc;
                    moved.clb.row += dr;
                    (moved, lut)
                })
                .collect(),
        }
    }

    /// Instantiates the macro as a component **input**: declares an input
    /// port named `port`, routes every bit through a pinned pass-through LUT
    /// (for the LUT-based kind) and returns the component-side bus.
    ///
    /// The returned cells must be pinned via the supplied placer.
    pub fn instantiate_input(&self, nl: &mut Netlist, placer: &mut AutoPlacer, port: &str) -> Bus {
        let id = truth4(|a, _, _, _| a);
        (0..self.width())
            .map(|bit| {
                let pin_net = nl.input(port, bit as u16);
                match self.kind {
                    MacroKind::LutBased => {
                        let out = nl.net();
                        let cell = nl.lut_into(id, [Some(pin_net), None, None, None], out);
                        placer.pin_lut(cell, self.sites[bit]);
                        out
                    }
                    MacroKind::Tristate => pin_net,
                }
            })
            .collect()
    }

    /// Instantiates the macro as a component **output**: routes every bit of
    /// `bus` through a pinned pass-through LUT and declares an output port
    /// named `port` observing the macro side.
    ///
    /// # Panics
    /// Panics if `bus` width differs from the macro width.
    pub fn instantiate_output(
        &self,
        nl: &mut Netlist,
        placer: &mut AutoPlacer,
        port: &str,
        bus: &[crate::graph::NetId],
    ) -> Vec<CellId> {
        assert_eq!(bus.len(), self.width(), "bus/macro width mismatch");
        let id = truth4(|a, _, _, _| a);
        let mut cells = Vec::new();
        for (bit, &net) in bus.iter().enumerate() {
            match self.kind {
                MacroKind::LutBased => {
                    let out = nl.net();
                    let cell = nl.lut_into(id, [Some(net), None, None, None], out);
                    placer.pin_lut(cell, self.sites[bit]);
                    cells.push(cell);
                    nl.output(port, bit as u16, out);
                }
                MacroKind::Tristate => {
                    nl.output(port, bit as u16, net);
                }
            }
        }
        cells
    }
}

/// The standard macro set used by every dynamic-region component in this
/// reproduction: a write channel entering at the region's left edge and a
/// read channel leaving at the same edge, plus the write-strobe signal the
/// paper describes ("an additional signal that indicates the occurrence of a
/// write operation … can be used as a clock enable").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DockMacros {
    /// CPU→region data (32 or 64 bits).
    pub write: BusMacro,
    /// Region→CPU data (32 or 64 bits).
    pub read: BusMacro,
    /// Write-strobe (1 bit).
    pub strobe: BusMacro,
}

impl DockMacros {
    /// Macro set for a given channel width (32 for the OPB dock, 64 for the
    /// PLB dock). Sites are stacked at the region's left edge (column 0).
    pub fn for_width(width: u16) -> Self {
        let per_clb = (SLICES_PER_CLB * LUTS_PER_SLICE) as u16;
        let write = BusMacro::lut_based(format!("dock_write{width}"), width, 0, 0);
        let write_clbs = width.div_ceil(per_clb);
        let read = BusMacro::lut_based(format!("dock_read{width}"), width, 0, write_clbs);
        let strobe = BusMacro::lut_based("dock_strobe", 1, 0, 2 * write_clbs);
        DockMacros {
            write,
            read,
            strobe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::Simulator;

    #[test]
    fn lut_macro_site_layout() {
        let m = BusMacro::lut_based("w32", 32, 0, 0);
        assert_eq!(m.width(), 32);
        assert_eq!(m.lut_cost(), 32);
        // 8 signals per CLB → rows 0..4.
        assert_eq!(m.sites[0], (SliceCoord::new(0, 0, 0), LutIndex::F));
        assert_eq!(m.sites[7], (SliceCoord::new(0, 0, 3), LutIndex::G));
        assert_eq!(m.sites[8].0.clb.row, 1);
        assert_eq!(m.sites[31].0.clb.row, 3);
    }

    #[test]
    fn tristate_costs_no_luts() {
        let m = BusMacro::tristate("t8", 8, 0, 0);
        assert_eq!(m.lut_cost(), 0);
        assert_eq!(m.width(), 8);
    }

    #[test]
    fn footprint_compatibility() {
        let a = BusMacro::lut_based("w32", 32, 0, 0);
        let b = BusMacro::lut_based("w32", 32, 0, 0);
        let c = BusMacro::lut_based("w32", 32, 1, 0);
        let d = BusMacro::lut_based("other", 32, 0, 0);
        assert!(a.same_footprint(&b));
        assert!(!a.same_footprint(&c), "different column");
        assert!(!a.same_footprint(&d), "different name");
    }

    #[test]
    fn instantiated_macro_passes_data_through() {
        let m_in = BusMacro::lut_based("in8", 8, 0, 0);
        let m_out = BusMacro::lut_based("out8", 8, 0, 1);
        let mut nl = Netlist::new("wire8");
        let mut placer = AutoPlacer::new();
        let din = m_in.instantiate_input(&mut nl, &mut placer, "din");
        // Component body: bitwise NOT.
        let inverted = crate::components::bus_not(&mut nl, &din);
        m_out.instantiate_output(&mut nl, &mut placer, "dout", &inverted);
        nl.validate().unwrap();
        // Macro LUTs are pinned and the whole thing places in 1x2 CLBs + body.
        let p = placer.place(&nl, 2, 2).unwrap();
        assert_eq!(p.luts.len(), nl.lut_cell_count());
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("din", 0b1010_0110);
        assert_eq!(sim.output("dout"), 0b0101_1001);
    }

    #[test]
    fn macro_luts_occupy_their_pinned_sites() {
        let m = BusMacro::lut_based("in8", 8, 0, 0);
        let mut nl = Netlist::new("probe");
        let mut placer = AutoPlacer::new();
        let bus = m.instantiate_input(&mut nl, &mut placer, "din");
        nl.output_bus("o", &bus);
        let p = placer.place(&nl, 1, 1).unwrap();
        // Every macro site hosts exactly one cell.
        for site in &m.sites {
            let cnt = p.luts.values().filter(|&&s| s == *site).count();
            assert_eq!(cnt, 1, "site {site:?}");
        }
    }

    #[test]
    fn dock_macros_do_not_overlap() {
        for width in [32u16, 64] {
            let dm = DockMacros::for_width(width);
            let mut all: Vec<LutSite> = dm
                .write
                .sites
                .iter()
                .chain(&dm.read.sites)
                .chain(&dm.strobe.sites)
                .copied()
                .collect();
            let before = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), before, "sites overlap at width {width}");
        }
    }

    #[test]
    fn wider_dock_macro_for_plb() {
        let dm = DockMacros::for_width(64);
        assert_eq!(dm.write.width(), 64);
        assert_eq!(dm.read.width(), 64);
        assert_eq!(dm.strobe.width(), 1);
    }
}
