//! Placement of netlist cells onto slice sites.
//!
//! Components are placed in **component-local coordinates** with origin
//! (0,0): BitLinker later relocates the whole component to its final position
//! inside a dynamic region by pure translation, exactly like the paper's
//! configuration-assembly flow (components designed independently, relocated
//! and concatenated at assembly time).
//!
//! Bus-macro cells arrive pre-pinned to fixed sites; the auto-placer fills
//! the remaining logic around them column-major.

use crate::graph::{CellId, CellKind, Netlist};
use std::collections::HashMap;
use vp2_fabric::coords::{ClbCoord, FfIndex, LutIndex, SliceCoord, LUTS_PER_SLICE, SLICES_PER_CLB};

/// A LUT site in component-local coordinates.
pub type LutSite = (SliceCoord, LutIndex);
/// A FF site in component-local coordinates.
pub type FfSite = (SliceCoord, FfIndex);

/// Placement errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// Not enough LUT sites in the bounding box.
    OutOfLutCapacity {
        /// Cells needing sites.
        needed: usize,
        /// Sites available.
        available: usize,
    },
    /// Not enough FF sites in the bounding box.
    OutOfFfCapacity {
        /// Cells needing sites.
        needed: usize,
        /// Sites available.
        available: usize,
    },
    /// Two cells pinned to the same site.
    PinConflict(SliceCoord),
    /// A pin lies outside the bounding box.
    PinOutOfBounds(SliceCoord),
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::OutOfLutCapacity { needed, available } => {
                write!(f, "needs {needed} LUT sites, bounding box has {available}")
            }
            PlaceError::OutOfFfCapacity { needed, available } => {
                write!(f, "needs {needed} FF sites, bounding box has {available}")
            }
            PlaceError::PinConflict(s) => write!(f, "conflicting pins at {s}"),
            PlaceError::PinOutOfBounds(s) => write!(f, "pin at {s} outside bounding box"),
        }
    }
}

impl std::error::Error for PlaceError {}

/// A completed placement: every LUT and FF cell mapped to a site inside a
/// `width × height` CLB bounding box anchored at local (0,0).
#[derive(Debug, Clone)]
pub struct Placement {
    /// Bounding-box width in CLB columns.
    pub width: u16,
    /// Bounding-box height in CLB rows.
    pub height: u16,
    /// LUT cell → site.
    pub luts: HashMap<CellId, LutSite>,
    /// FF cell → site.
    pub ffs: HashMap<CellId, FfSite>,
}

impl Placement {
    /// Distinct slices used.
    pub fn slices_used(&self) -> usize {
        let mut s: Vec<SliceCoord> = self
            .luts
            .values()
            .map(|&(sc, _)| sc)
            .chain(self.ffs.values().map(|&(sc, _)| sc))
            .collect();
        s.sort_unstable();
        s.dedup();
        s.len()
    }

    /// Distinct CLBs used.
    pub fn clbs_used(&self) -> usize {
        let mut s: Vec<ClbCoord> = self
            .luts
            .values()
            .map(|&(sc, _)| sc.clb)
            .chain(self.ffs.values().map(|&(sc, _)| sc.clb))
            .collect();
        s.sort_unstable();
        s.dedup();
        s.len()
    }

    /// Every CLB used, deduplicated and sorted (column-major).
    pub fn used_clbs(&self) -> Vec<ClbCoord> {
        let mut s: Vec<ClbCoord> = self
            .luts
            .values()
            .map(|&(sc, _)| sc.clb)
            .chain(self.ffs.values().map(|&(sc, _)| sc.clb))
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    }
}

/// Greedy column-major placer.
#[derive(Debug, Default)]
pub struct AutoPlacer {
    lut_pins: HashMap<CellId, LutSite>,
    ff_pins: HashMap<CellId, FfSite>,
}

impl AutoPlacer {
    /// New placer with no pins.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins a LUT cell to a fixed site (bus-macro contract).
    pub fn pin_lut(&mut self, cell: CellId, site: LutSite) -> &mut Self {
        self.lut_pins.insert(cell, site);
        self
    }

    /// Pins a FF cell to a fixed site.
    pub fn pin_ff(&mut self, cell: CellId, site: FfSite) -> &mut Self {
        self.ff_pins.insert(cell, site);
        self
    }

    /// Places `nl` into a `width × height` CLB bounding box.
    pub fn place(&self, nl: &Netlist, width: u16, height: u16) -> Result<Placement, PlaceError> {
        let lut_cells: Vec<CellId> = nl
            .cells()
            .iter()
            .enumerate()
            .filter_map(|(i, c)| matches!(c, CellKind::Lut4 { .. }).then_some(CellId(i as u32)))
            .collect();
        let ff_cells: Vec<CellId> = nl
            .cells()
            .iter()
            .enumerate()
            .filter_map(|(i, c)| matches!(c, CellKind::Ff { .. }).then_some(CellId(i as u32)))
            .collect();

        let in_bounds = |sc: SliceCoord| sc.clb.col < width && sc.clb.row < height;

        // Validate pins.
        let mut lut_taken: HashMap<LutSite, CellId> = HashMap::new();
        for (&cell, &site) in &self.lut_pins {
            if !in_bounds(site.0) {
                return Err(PlaceError::PinOutOfBounds(site.0));
            }
            if lut_taken.insert(site, cell).is_some() {
                return Err(PlaceError::PinConflict(site.0));
            }
        }
        let mut ff_taken: HashMap<FfSite, CellId> = HashMap::new();
        for (&cell, &site) in &self.ff_pins {
            if !in_bounds(site.0) {
                return Err(PlaceError::PinOutOfBounds(site.0));
            }
            if ff_taken.insert(site, cell).is_some() {
                return Err(PlaceError::PinConflict(site.0));
            }
        }

        let lut_capacity = width as usize * height as usize * SLICES_PER_CLB * LUTS_PER_SLICE;
        if lut_cells.len() > lut_capacity {
            return Err(PlaceError::OutOfLutCapacity {
                needed: lut_cells.len(),
                available: lut_capacity,
            });
        }
        let ff_capacity = lut_capacity; // 2 FFs per slice, same count as LUTs
        if ff_cells.len() > ff_capacity {
            return Err(PlaceError::OutOfFfCapacity {
                needed: ff_cells.len(),
                available: ff_capacity,
            });
        }

        // Site enumeration: column-major over CLBs, then slice, then LUT/FF.
        let mut luts = self.lut_pins.clone();
        let mut lut_sites = Self::site_iter(width, height)
            .map(|(sc, idx)| (sc, LutIndex(idx)))
            .filter(|site| !lut_taken.contains_key(site));
        for &cell in &lut_cells {
            if luts.contains_key(&cell) {
                continue;
            }
            match lut_sites.next() {
                Some(site) => {
                    luts.insert(cell, site);
                }
                None => {
                    return Err(PlaceError::OutOfLutCapacity {
                        needed: lut_cells.len(),
                        available: lut_capacity,
                    })
                }
            }
        }

        let mut ffs = self.ff_pins.clone();
        let mut ff_sites = Self::site_iter(width, height)
            .map(|(sc, idx)| (sc, FfIndex(idx)))
            .filter(|site| !ff_taken.contains_key(site));
        for &cell in &ff_cells {
            if ffs.contains_key(&cell) {
                continue;
            }
            match ff_sites.next() {
                Some(site) => {
                    ffs.insert(cell, site);
                }
                None => {
                    return Err(PlaceError::OutOfFfCapacity {
                        needed: ff_cells.len(),
                        available: ff_capacity,
                    })
                }
            }
        }

        Ok(Placement {
            width,
            height,
            luts,
            ffs,
        })
    }

    /// Column-major enumeration of `(slice, sub-index)` pairs; the sub-index
    /// is 0..2 and serves as LUT index or FF index depending on the caller.
    fn site_iter(width: u16, height: u16) -> impl Iterator<Item = (SliceCoord, u8)> {
        (0..width).flat_map(move |col| {
            (0..height).flat_map(move |row| {
                (0..SLICES_PER_CLB as u8).flat_map(move |s| {
                    (0..LUTS_PER_SLICE as u8).map(move |l| (SliceCoord::new(col, row, s), l))
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components;

    fn small_netlist() -> Netlist {
        let mut nl = Netlist::new("small");
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let sum = components::add_mod(&mut nl, &a, &b);
        let q = components::register(&mut nl, &sum, None);
        nl.output_bus("o", &q);
        nl
    }

    #[test]
    fn places_small_design() {
        let nl = small_netlist();
        let p = AutoPlacer::new().place(&nl, 4, 4).unwrap();
        assert_eq!(p.luts.len(), nl.lut_cell_count());
        assert_eq!(p.ffs.len(), nl.ff_cell_count());
        assert!(p.slices_used() > 0);
        assert!(p.clbs_used() <= 16);
    }

    #[test]
    fn sites_are_unique() {
        let nl = small_netlist();
        let p = AutoPlacer::new().place(&nl, 4, 4).unwrap();
        let mut sites: Vec<_> = p.luts.values().collect();
        sites.sort_unstable();
        let before = sites.len();
        sites.dedup();
        assert_eq!(sites.len(), before, "no two LUTs share a site");
    }

    #[test]
    fn capacity_enforced() {
        let nl = small_netlist();
        // 8-bit adder: 16 LUTs; one CLB has 8 LUT sites.
        let err = AutoPlacer::new().place(&nl, 1, 1).unwrap_err();
        assert!(matches!(err, PlaceError::OutOfLutCapacity { .. }), "{err}");
    }

    #[test]
    fn pins_are_honoured() {
        let nl = small_netlist();
        // Pin the first LUT cell to a specific site.
        let first_lut = nl
            .cells()
            .iter()
            .position(|c| matches!(c, CellKind::Lut4 { .. }))
            .unwrap();
        let site = (SliceCoord::new(3, 3, 2), LutIndex::G);
        let mut placer = AutoPlacer::new();
        placer.pin_lut(CellId(first_lut as u32), site);
        let p = placer.place(&nl, 4, 4).unwrap();
        assert_eq!(p.luts[&CellId(first_lut as u32)], site);
        // No other cell stole the pinned site.
        let holders: Vec<_> = p.luts.iter().filter(|&(_, &s)| s == site).collect();
        assert_eq!(holders.len(), 1);
    }

    #[test]
    fn pin_out_of_bounds_rejected() {
        let nl = small_netlist();
        let mut placer = AutoPlacer::new();
        placer.pin_lut(CellId(0), (SliceCoord::new(9, 0, 0), LutIndex::F));
        let err = placer.place(&nl, 4, 4).unwrap_err();
        assert!(matches!(err, PlaceError::PinOutOfBounds(_)));
    }

    #[test]
    fn pin_conflict_rejected() {
        let nl = small_netlist();
        let site = (SliceCoord::new(0, 0, 0), LutIndex::F);
        let mut placer = AutoPlacer::new();
        placer.pin_lut(CellId(8), site); // arbitrary LUT cell ids
        placer.pin_lut(CellId(9), site);
        let err = placer.place(&nl, 4, 4).unwrap_err();
        assert!(matches!(err, PlaceError::PinConflict(_)));
    }

    #[test]
    fn used_clbs_sorted_unique() {
        let nl = small_netlist();
        let p = AutoPlacer::new().place(&nl, 2, 8).unwrap();
        let used = p.used_clbs();
        let mut sorted = used.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(used, sorted);
    }
}
