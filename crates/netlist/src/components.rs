//! Reusable netlist combinators.
//!
//! Multi-bit arithmetic built from LUT4 primitives: the building blocks of
//! the paper's hardware task modules (XNOR/popcount trees for the pattern
//! matcher, adders and rotates for the hash cores, saturating arithmetic and
//! a small multiplier for the image-processing tasks).
//!
//! All buses are LSB-first. Ripple-carry adders are used throughout; the real
//! device's dedicated carry chains would use fewer LUTs, which we account for
//! nowhere — area numbers are therefore slightly conservative, which is the
//! safe direction for the fits/doesn't-fit conclusions.

use crate::graph::{Bus, NetId, Netlist};

/// Builds a LUT4 truth table from a boolean function of the four inputs.
pub fn truth4(f: impl Fn(bool, bool, bool, bool) -> bool) -> u16 {
    let mut t = 0u16;
    for idx in 0..16 {
        if f(idx & 1 != 0, idx & 2 != 0, idx & 4 != 0, idx & 8 != 0) {
            t |= 1 << idx;
        }
    }
    t
}

/// Logical NOT.
pub fn not(nl: &mut Netlist, a: NetId) -> NetId {
    nl.lut(truth4(|a, _, _, _| !a), [Some(a), None, None, None])
}

/// 2-input AND.
pub fn and2(nl: &mut Netlist, a: NetId, b: NetId) -> NetId {
    nl.lut(truth4(|a, b, _, _| a & b), [Some(a), Some(b), None, None])
}

/// 2-input OR.
pub fn or2(nl: &mut Netlist, a: NetId, b: NetId) -> NetId {
    nl.lut(truth4(|a, b, _, _| a | b), [Some(a), Some(b), None, None])
}

/// 2-input XOR.
pub fn xor2(nl: &mut Netlist, a: NetId, b: NetId) -> NetId {
    nl.lut(truth4(|a, b, _, _| a ^ b), [Some(a), Some(b), None, None])
}

/// 2-input XNOR (the pattern matcher's per-pixel comparator).
pub fn xnor2(nl: &mut Netlist, a: NetId, b: NetId) -> NetId {
    nl.lut(truth4(|a, b, _, _| a == b), [Some(a), Some(b), None, None])
}

/// 2:1 multiplexer: `s ? b : a`.
pub fn mux2(nl: &mut Netlist, a: NetId, b: NetId, s: NetId) -> NetId {
    nl.lut(
        truth4(|a, b, s, _| if s { b } else { a }),
        [Some(a), Some(b), Some(s), None],
    )
}

/// 2:1 multiplexer driving a pre-allocated net (feedback into FF `D`
/// inputs without a wasted buffer LUT).
pub fn mux2_into(nl: &mut Netlist, a: NetId, b: NetId, s: NetId, out: NetId) {
    nl.lut_into(
        truth4(|a, b, s, _| if s { b } else { a }),
        [Some(a), Some(b), Some(s), None],
        out,
    );
}

/// AND driving a pre-allocated net.
pub fn and2_into(nl: &mut Netlist, a: NetId, b: NetId, out: NetId) {
    nl.lut_into(
        truth4(|a, b, _, _| a & b),
        [Some(a), Some(b), None, None],
        out,
    );
}

/// 3-input XOR (full-adder sum).
pub fn xor3(nl: &mut Netlist, a: NetId, b: NetId, c: NetId) -> NetId {
    nl.lut(
        truth4(|a, b, c, _| a ^ b ^ c),
        [Some(a), Some(b), Some(c), None],
    )
}

/// Majority of three (full-adder carry).
pub fn maj3(nl: &mut Netlist, a: NetId, b: NetId, c: NetId) -> NetId {
    nl.lut(
        truth4(|a, b, c, _| (a & b) | (a & c) | (b & c)),
        [Some(a), Some(b), Some(c), None],
    )
}

/// Bus of constant drivers for `value` (LSB first).
pub fn const_bus(nl: &mut Netlist, width: usize, value: u64) -> Bus {
    (0..width)
        .map(|b| nl.constant((value >> b) & 1 == 1))
        .collect()
}

/// Bitwise map over two equal-width buses.
fn zip_map(
    nl: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    f: fn(&mut Netlist, NetId, NetId) -> NetId,
) -> Bus {
    assert_eq!(a.len(), b.len(), "bus width mismatch");
    a.iter().zip(b).map(|(&x, &y)| f(nl, x, y)).collect()
}

/// Bitwise XOR of two buses.
pub fn bus_xor(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Bus {
    zip_map(nl, a, b, xor2)
}

/// Bitwise AND of two buses.
pub fn bus_and(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Bus {
    zip_map(nl, a, b, and2)
}

/// Bitwise OR of two buses.
pub fn bus_or(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Bus {
    zip_map(nl, a, b, or2)
}

/// Bitwise XNOR of two buses.
pub fn bus_xnor(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Bus {
    zip_map(nl, a, b, xnor2)
}

/// Bitwise NOT of a bus.
pub fn bus_not(nl: &mut Netlist, a: &[NetId]) -> Bus {
    a.iter().map(|&x| not(nl, x)).collect()
}

/// Per-bit 2:1 mux over two buses.
pub fn bus_mux2(nl: &mut Netlist, a: &[NetId], b: &[NetId], s: NetId) -> Bus {
    assert_eq!(a.len(), b.len(), "bus width mismatch");
    a.iter().zip(b).map(|(&x, &y)| mux2(nl, x, y, s)).collect()
}

/// Ripple-carry adder; returns `(sum, carry_out)`.
pub fn adder(nl: &mut Netlist, a: &[NetId], b: &[NetId], cin: NetId) -> (Bus, NetId) {
    assert_eq!(a.len(), b.len(), "bus width mismatch");
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (&x, &y) in a.iter().zip(b) {
        sum.push(xor3(nl, x, y, carry));
        carry = maj3(nl, x, y, carry);
    }
    (sum, carry)
}

/// Adds two buses modulo 2^width (no carry out).
pub fn add_mod(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Bus {
    let zero = nl.constant(false);
    adder(nl, a, b, zero).0
}

/// Subtracts `b` from `a` (two's complement); returns `(diff, borrow_free)`:
/// the second value is the adder's carry-out, i.e. 1 when `a >= b`.
pub fn subtractor(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> (Bus, NetId) {
    let nb = bus_not(nl, b);
    let one = nl.constant(true);
    adder(nl, a, &nb, one)
}

/// Left-rotate a bus by `n` positions (pure rewiring — no LUTs).
pub fn rotl(bus: &[NetId], n: usize) -> Bus {
    let w = bus.len();
    let n = n % w;
    // LSB-first: rotl by n means bit i of result = bit (i - n) mod w of input.
    (0..w).map(|i| bus[(i + w - n) % w]).collect()
}

/// Logical shift left by `n`, filling with `fill` (usually a constant 0 net).
pub fn shl(bus: &[NetId], n: usize, fill: NetId) -> Bus {
    let w = bus.len();
    (0..w)
        .map(|i| if i < n { fill } else { bus[i - n] })
        .collect()
}

/// Registers every bit of a bus; returns the Q bus.
pub fn register(nl: &mut Netlist, d: &[NetId], ce: Option<NetId>) -> Bus {
    d.iter().map(|&bit| nl.ff(bit, false, ce)).collect()
}

/// Population count of up to 4 bits, done directly in LUT4s (one LUT per
/// output bit — the trick real technology mappers use).
fn popcount4_direct(nl: &mut Netlist, bits: &[NetId]) -> Bus {
    debug_assert!((1..=4).contains(&bits.len()));
    let inputs: [Option<NetId>; 4] = std::array::from_fn(|i| bits.get(i).copied());
    let n = bits.len() as u32;
    // Width needed to count n bits: values 0..=n → ceil(log2(n+1)).
    let width = (u32::BITS - n.leading_zeros()) as usize;
    (0..width.max(1))
        .map(|k| {
            let t = truth4(|a, b, c, d| {
                let cnt = [a, b, c, d].iter().take(bits.len()).filter(|&&x| x).count();
                (cnt >> k) & 1 == 1
            });
            nl.lut(t, inputs)
        })
        .collect()
}

/// Population count: number of set bits in `bus`, as a minimal-width bus.
/// Chunks of 4 are counted directly in LUTs, then summed with adders.
pub fn popcount(nl: &mut Netlist, bus: &[NetId]) -> Bus {
    match bus.len() {
        0 => vec![nl.constant(false)],
        1..=4 => popcount4_direct(nl, bus),
        n => {
            let mid = (n / 2).next_multiple_of(4).min(n - 1);
            let (lo, hi) = bus.split_at(mid);
            let a = popcount(nl, lo);
            let b = popcount(nl, hi);
            let width = a.len().max(b.len()) + 1;
            let zero = nl.constant(false);
            let mut ea = a;
            let mut eb = b;
            ea.resize(width, zero);
            eb.resize(width, zero);
            let (sum, _) = adder(nl, &ea, &eb, zero);
            sum
        }
    }
}

/// Equality with a constant; returns a single net that is 1 when
/// `bus == value`.
pub fn eq_const(nl: &mut Netlist, bus: &[NetId], value: u64) -> NetId {
    let matches: Vec<NetId> = bus
        .iter()
        .enumerate()
        .map(|(i, &b)| if (value >> i) & 1 == 1 { b } else { not(nl, b) })
        .collect();
    and_tree(nl, &matches)
}

/// AND reduction tree.
pub fn and_tree(nl: &mut Netlist, bits: &[NetId]) -> NetId {
    match bits.len() {
        0 => nl.constant(true),
        1 => bits[0],
        _ => {
            let mut layer: Vec<NetId> = bits.to_vec();
            while layer.len() > 1 {
                layer = layer
                    .chunks(2)
                    .map(|c| {
                        if c.len() == 2 {
                            and2(nl, c[0], c[1])
                        } else {
                            c[0]
                        }
                    })
                    .collect();
            }
            layer[0]
        }
    }
}

/// OR reduction tree.
pub fn or_tree(nl: &mut Netlist, bits: &[NetId]) -> NetId {
    match bits.len() {
        0 => nl.constant(false),
        1 => bits[0],
        _ => {
            let mut layer: Vec<NetId> = bits.to_vec();
            while layer.len() > 1 {
                layer = layer
                    .chunks(2)
                    .map(|c| {
                        if c.len() == 2 {
                            or2(nl, c[0], c[1])
                        } else {
                            c[0]
                        }
                    })
                    .collect();
            }
            layer[0]
        }
    }
}

/// Unsigned multiply of `a` (width m) by `b` (width n) via shift-add;
/// result has width m + n.
pub fn multiplier(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Bus {
    let out_w = a.len() + b.len();
    let zero = nl.constant(false);
    let mut acc: Bus = vec![zero; out_w];
    for (i, &bit) in b.iter().enumerate() {
        // Partial product: a gated by b[i], shifted left by i.
        let gated: Bus = a.iter().map(|&x| and2(nl, x, bit)).collect();
        let mut pp: Bus = vec![zero; out_w];
        for (j, &g) in gated.iter().enumerate() {
            pp[i + j] = g;
        }
        let (sum, _) = adder(nl, &acc, &pp, zero);
        acc = sum;
    }
    acc
}

/// Saturating add of an unsigned bus and a sign+magnitude constant spread:
/// computes `clamp(a + signed(b), 0, 2^w - 1)` where `b` is a signed value
/// presented as a `w+1`-bit two's-complement bus. Used by the brightness
/// task (8-bit pixels + signed constant, saturating).
pub fn saturating_add_signed(nl: &mut Netlist, a: &[NetId], b_signext: &[NetId]) -> Bus {
    let w = a.len();
    assert_eq!(b_signext.len(), w + 1, "b must be w+1 bits (sign-extended)");
    let zero = nl.constant(false);
    // Extend a to w+2 bits, b to w+2 bits, add.
    let mut ea: Bus = a.to_vec();
    ea.push(zero);
    ea.push(zero);
    let mut eb: Bus = b_signext.to_vec();
    let b_sign = b_signext[w];
    eb.push(b_sign);
    let (sum, _) = adder(nl, &ea, &eb, zero);
    // sum is w+2 bits two's complement of the true value (range fits).
    let neg = sum[w + 1]; // sign bit → clamp to 0
    let ovf = {
        let not_neg = not(nl, neg);
        and2(nl, sum[w], not_neg) // bit w set while positive → clamp to max
    };
    // result = neg ? 0 : ovf ? max : sum[0..w]
    let mut out = Vec::with_capacity(w);
    for &s in sum.iter().take(w) {
        let with_max = or2(nl, s, ovf); // saturate high
        let not_neg = not(nl, neg);
        let gated = and2(nl, with_max, not_neg); // saturate low
        out.push(gated);
    }
    out
}

/// Saturating (clamping) unsigned add of two equal-width buses:
/// `min(a + b, 2^w - 1)`. Used by the additive-blending task.
pub fn saturating_add_unsigned(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Bus {
    let zero = nl.constant(false);
    let (sum, cout) = adder(nl, a, b, zero);
    sum.iter().map(|&s| or2(nl, s, cout)).collect()
}

/// Free-running counter with optional clock enable; returns the count bus.
pub fn counter(nl: &mut Netlist, width: usize, ce: Option<NetId>) -> Bus {
    // Build FFs first (their Q feeds the incrementer), then route increment
    // back into D via buffer LUTs.
    let d: Bus = (0..width).map(|_| nl.net()).collect();
    let q: Bus = d.iter().map(|&di| nl.ff(di, false, ce)).collect();
    let one_bus = const_bus(nl, width, 1);
    let zero = nl.constant(false);
    let (inc, _) = adder(nl, &q, &one_bus, zero);
    for (i, &next) in inc.iter().enumerate() {
        nl.lut_into(truth4(|a, _, _, _| a), [Some(next), None, None, None], d[i]);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Netlist;
    use crate::simulate::Simulator;

    /// Builds a 2-input combinational fixture with `w`-bit ports a, b → o.
    fn harness2(w: u16, f: impl Fn(&mut Netlist, &[NetId], &[NetId]) -> Bus) -> Simulator {
        let mut nl = Netlist::new("fixture");
        let a = nl.input_bus("a", w);
        let b = nl.input_bus("b", w);
        let o = f(&mut nl, &a, &b);
        nl.output_bus("o", &o);
        Simulator::new(&nl).unwrap()
    }

    #[test]
    fn adder_exhaustive_4bit() {
        let mut sim = harness2(4, |nl, a, b| {
            let zero = nl.constant(false);
            let (s, c) = adder(nl, a, b, zero);
            let mut out = s;
            out.push(c);
            out
        });
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.set_input("a", a);
                sim.set_input("b", b);
                assert_eq!(sim.output("o"), a + b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn subtractor_and_compare() {
        let mut sim = harness2(4, |nl, a, b| {
            let (d, geq) = subtractor(nl, a, b);
            let mut out = d;
            out.push(geq);
            out
        });
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.set_input("a", a);
                sim.set_input("b", b);
                let got = sim.output("o");
                let diff = got & 0xF;
                let geq = got >> 4;
                assert_eq!(diff, (a.wrapping_sub(b)) & 0xF);
                assert_eq!(geq, u64::from(a >= b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn popcount_exhaustive_8bit() {
        let mut nl = Netlist::new("pc");
        let a = nl.input_bus("a", 8);
        let o = popcount(&mut nl, &a);
        nl.output_bus("o", &o);
        let mut sim = Simulator::new(&nl).unwrap();
        for v in 0..256u64 {
            sim.set_input("a", v);
            assert_eq!(sim.output("o"), u64::from(v.count_ones()), "v={v:#x}");
        }
    }

    #[test]
    fn rotl_is_rewiring() {
        let mut nl = Netlist::new("rot");
        let a = nl.input_bus("a", 8);
        let r = rotl(&a, 3);
        nl.output_bus("o", &r);
        let luts = nl.lut_cell_count();
        assert_eq!(luts, 0, "rotation must not consume LUTs");
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("a", 0b1000_0001);
        assert_eq!(sim.output("o"), 0b0000_1100);
    }

    #[test]
    fn multiplier_8x8_samples() {
        let mut sim = harness2(8, multiplier);
        for (a, b) in [
            (0u64, 0u64),
            (1, 255),
            (255, 255),
            (17, 13),
            (200, 3),
            (128, 2),
        ] {
            sim.set_input("a", a);
            sim.set_input("b", b);
            assert_eq!(sim.output("o"), a * b, "a={a} b={b}");
        }
    }

    #[test]
    fn saturating_add_unsigned_8bit() {
        let mut sim = harness2(8, saturating_add_unsigned);
        for (a, b) in [(0u64, 0u64), (100, 100), (200, 100), (255, 255), (255, 1)] {
            sim.set_input("a", a);
            sim.set_input("b", b);
            assert_eq!(sim.output("o"), (a + b).min(255), "a={a} b={b}");
        }
    }

    #[test]
    fn saturating_add_signed_brightness() {
        // a: 8-bit pixel; b: 9-bit sign-extended constant.
        let mut nl = Netlist::new("bright");
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 9);
        let o = saturating_add_signed(&mut nl, &a, &b);
        nl.output_bus("o", &o);
        let mut sim = Simulator::new(&nl).unwrap();
        for (px, adj) in [
            (0u64, 10i64),
            (250, 10),
            (5, -10),
            (128, -128),
            (255, 255),
            (0, -256),
        ] {
            sim.set_input("a", px);
            sim.set_input("b", (adj as u64) & 0x1FF);
            let want = (px as i64 + adj).clamp(0, 255) as u64;
            assert_eq!(sim.output("o"), want, "px={px} adj={adj}");
        }
    }

    #[test]
    fn eq_const_matches() {
        let mut nl = Netlist::new("eq");
        let a = nl.input_bus("a", 6);
        let hit = eq_const(&mut nl, &a, 37);
        nl.output("o", 0, hit);
        let mut sim = Simulator::new(&nl).unwrap();
        for v in 0..64u64 {
            sim.set_input("a", v);
            assert_eq!(sim.output("o"), u64::from(v == 37), "v={v}");
        }
    }

    #[test]
    fn reduction_trees() {
        let mut nl = Netlist::new("trees");
        let a = nl.input_bus("a", 5);
        let all = and_tree(&mut nl, &a);
        let any = or_tree(&mut nl, &a);
        nl.output("all", 0, all);
        nl.output("any", 0, any);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("a", 0b11111);
        assert_eq!(sim.output("all"), 1);
        assert_eq!(sim.output("any"), 1);
        sim.set_input("a", 0b01111);
        assert_eq!(sim.output("all"), 0);
        assert_eq!(sim.output("any"), 1);
        sim.set_input("a", 0);
        assert_eq!(sim.output("any"), 0);
    }

    #[test]
    fn counter_counts() {
        let mut nl = Netlist::new("ctr");
        let q = counter(&mut nl, 4, None);
        nl.output_bus("q", &q);
        let mut sim = Simulator::new(&nl).unwrap();
        for want in 0..20u64 {
            assert_eq!(sim.output("q"), want % 16);
            sim.step();
        }
    }

    #[test]
    fn register_with_ce() {
        let mut nl = Netlist::new("reg");
        let d = nl.input_bus("d", 8);
        let ce = nl.input("ce", 0);
        let q = register(&mut nl, &d, Some(ce));
        nl.output_bus("q", &q);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("d", 0xAB);
        sim.set_input("ce", 1);
        sim.step();
        assert_eq!(sim.output("q"), 0xAB);
        sim.set_input("d", 0xCD);
        sim.set_input("ce", 0);
        sim.step();
        assert_eq!(sim.output("q"), 0xAB, "held while CE low");
    }

    #[test]
    fn shl_shifts() {
        let mut nl = Netlist::new("shl");
        let a = nl.input_bus("a", 8);
        let zero = nl.constant(false);
        let o = shl(&a, 2, zero);
        nl.output_bus("o", &o);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("a", 0b0010_0101);
        assert_eq!(sim.output("o"), 0b1001_0100);
    }
}
