//! Shared plumbing for the scenario binaries.
//!
//! `service_scenario`, `fault_scenario` and `cluster_scenario` all parse
//! the same `--flag value` arguments and emit a JSON summary either to
//! stdout or to the file `--json` names. The duplicated copies used to
//! live in each binary; they live here once now.

use std::io::Write as _;
use std::str::FromStr;

use rtr_telemetry::Telemetry;
use rtr_trace::{chrome_trace, Profiler, Tracer};
use vp2_sim::{Json, SimTime};

/// Parsed command-line arguments of a scenario binary.
pub struct ScenarioArgs {
    args: Vec<String>,
}

impl ScenarioArgs {
    /// Parses the process arguments.
    pub fn parse() -> ScenarioArgs {
        ScenarioArgs {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// The value following `name`, if present.
    pub fn value_of(&self, name: &str) -> Option<String> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .cloned()
    }

    /// The value following `name` parsed as `T`, or `default` when the
    /// flag is absent or unparsable.
    pub fn parsed_or<T: FromStr>(&self, name: &str, default: T) -> T {
        self.value_of(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// The `--json` output path, if requested.
    pub fn json_path(&self) -> Option<String> {
        self.value_of("--json")
    }

    /// The `--trace` output path (Chrome trace-event JSON), if requested.
    pub fn trace_path(&self) -> Option<String> {
        self.value_of("--trace")
    }

    /// The `--profile` output path (makespan-attribution JSON), if
    /// requested.
    pub fn profile_path(&self) -> Option<String> {
        self.value_of("--profile")
    }

    /// The `--journal` base path (streamed per-shard JSONL journals),
    /// if requested. Shard `s` streams to `{base}.shard{s:03}.jsonl`
    /// and the merged export lands in `{base}.merged.jsonl`.
    pub fn journal_base(&self) -> Option<String> {
        self.value_of("--journal")
    }

    /// Worker threads for parallel shard execution (`--threads N`,
    /// default 1 = inline).
    pub fn threads(&self) -> usize {
        self.parsed_or("--threads", 1usize).max(1)
    }

    /// The `--telemetry` base path (streamed per-shard time-series),
    /// if requested. Shard `s` streams to `{base}.shard{s:03}.tl.jsonl`
    /// and the merged export lands in `{base}.merged.tl.jsonl`.
    pub fn telemetry_base(&self) -> Option<String> {
        self.value_of("--telemetry")
    }

    /// The telemetry sampling tick in picoseconds (`--tick PS`, default
    /// 1 ms of simulated time).
    pub fn tick_ps(&self) -> u64 {
        self.parsed_or("--tick", rtr_telemetry::DEFAULT_TICK_PS)
            .max(1)
    }

    /// A telemetry handle for the scenario's designated run: enabled
    /// (and streaming) when `--telemetry` was given, the free no-op
    /// handle otherwise. `--tick` sets the sampling period.
    pub fn telemetry(&self) -> Telemetry {
        let Some(base) = self.telemetry_base() else {
            return Telemetry::disabled();
        };
        let telemetry = Telemetry::with_tick(SimTime::from_ps(self.tick_ps()));
        telemetry
            .stream_to(&base)
            .unwrap_or_else(|e| panic!("telemetry stream {base}: {e}"));
        telemetry
    }

    /// A tracer for the scenario's designated run: enabled when
    /// `--trace`, `--profile` or `--journal` was given, the free no-op
    /// handle otherwise. With `--journal` the tracer streams every
    /// event to per-shard JSONL files as it is emitted, so runs longer
    /// than the in-memory ring stay fully journaled.
    pub fn tracer(&self) -> Tracer {
        if self.trace_path().is_none()
            && self.profile_path().is_none()
            && self.journal_base().is_none()
        {
            return Tracer::disabled();
        }
        let tracer = Tracer::enabled();
        if let Some(base) = self.journal_base() {
            tracer
                .stream_to(&base)
                .unwrap_or_else(|e| panic!("journal stream {base}: {e}"));
        }
        tracer
    }
}

impl Default for ScenarioArgs {
    fn default() -> Self {
        ScenarioArgs::parse()
    }
}

/// Writes the summary to the `--json` path (if any) or stdout. `tag` is
/// the binary's log prefix (`[service]`, `[fault]`, `[cluster]`).
pub fn emit(tag: &str, json_path: Option<&str>, summary: &Json) {
    let rendered = summary.render_pretty();
    match json_path {
        Some(path) => {
            let mut f =
                std::fs::File::create(path).unwrap_or_else(|e| panic!("create {path}: {e}"));
            f.write_all(rendered.as_bytes()).expect("write json");
            eprintln!("[{tag}] wrote {path}");
        }
        None => print!("{rendered}"),
    }
}

/// Exports the journal the scenario's traced run accumulated: the Chrome
/// trace to `--trace`, the makespan attribution to `--profile` (with the
/// human-readable table echoed to stderr). No-op on a disabled tracer.
pub fn export_trace(tag: &str, args: &ScenarioArgs, tracer: &Tracer) {
    if !tracer.on() {
        return;
    }
    if let Some(path) = args.trace_path() {
        let rendered = chrome_trace(&tracer.events()).render();
        std::fs::write(&path, rendered).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!(
            "[{tag}] wrote {path} ({} events, {} dropped)",
            tracer.len(),
            tracer.dropped()
        );
    }
    if let Some(path) = args.profile_path() {
        let report = Profiler.fold(tracer);
        std::fs::write(&path, report.to_json().render_pretty())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("[{tag}] wrote {path}");
        eprint!("{report}");
    }
    if let Some(base) = args.journal_base() {
        let shard_files = tracer
            .flush_streams()
            .unwrap_or_else(|e| panic!("flush journal streams {base}: {e}"));
        let merged = format!("{base}.merged.jsonl");
        let lines = tracer
            .merge_streams(&merged)
            .unwrap_or_else(|e| panic!("merge journal streams {base}: {e}"));
        eprintln!(
            "[{tag}] wrote {merged} ({lines} events from {} shard journal(s))",
            shard_files.len()
        );
    }
}

/// Exports the telemetry streams the scenario's sampled run produced:
/// flushes every per-shard `.tl.jsonl` sink and writes the merged,
/// `(tick, shard, seq)`-ordered series to `{base}.merged.tl.jsonl`.
/// No-op on a disabled handle.
pub fn export_telemetry(tag: &str, args: &ScenarioArgs, telemetry: &Telemetry) {
    if !telemetry.on() {
        return;
    }
    let Some(base) = args.telemetry_base() else {
        return;
    };
    let shard_files = telemetry
        .flush_streams()
        .unwrap_or_else(|e| panic!("flush telemetry streams {base}: {e}"));
    let merged = format!("{base}.merged.tl.jsonl");
    let rows = telemetry
        .merge_streams(&merged)
        .unwrap_or_else(|e| panic!("merge telemetry streams {base}: {e}"));
    eprintln!(
        "[{tag}] wrote {merged} ({rows} samples from {} shard series)",
        shard_files.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing_covers_present_absent_and_garbage() {
        let args = ScenarioArgs {
            args: vec![
                "--requests".into(),
                "96".into(),
                "--seed".into(),
                "junk".into(),
                "--json".into(),
                "out.json".into(),
            ],
        };
        assert_eq!(args.parsed_or("--requests", 48usize), 96);
        assert_eq!(args.parsed_or("--seed", 7u64), 7, "garbage falls back");
        assert_eq!(args.parsed_or("--missing", 5u64), 5);
        assert_eq!(args.json_path().as_deref(), Some("out.json"));
        assert_eq!(args.value_of("--nope"), None);
    }
}
