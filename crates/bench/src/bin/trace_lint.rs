//! Validates exported observability artifacts.
//!
//! * `--trace t.json` — the file must parse as JSON, hold a
//!   `traceEvents` array whose entries all carry `name`/`ph`/`ts`/
//!   `pid`/`tid`, with `B`/`E` duration slices balanced per
//!   `(pid, tid)` track (never dipping negative), async `b`/`e`
//!   arrows paired per `id`, complete `X` slices carrying a
//!   non-negative `dur`, and every `sched decision` instant naming its
//!   `policy`, a `chosen` kernel, and a non-empty candidate set that
//!   contains the choice. Configuration-plane instants are checked
//!   too: `cache lookup` must carry a module and a boolean verdict,
//!   `diff swap` a word/frame accounting that never exceeds the full
//!   image, and `slot activate`/`slot evict` a module and slot index.
//!   Federation instants must be self-describing as well: `fed route`
//!   names its pool, kernel and scoring estimate; `fed steal` moves at
//!   least one request between two distinct pools; `fed shed` diverts
//!   between two distinct pools.
//! * `--profile p.json` — the file must parse as JSON and every
//!   shard's `busy_frac + reconfig_frac + idle_frac + quarantined_frac`
//!   must sum to 1 (±1e-9), or to 0 for an empty makespan.
//! * `--journal j.shard000.jsonl` — a per-shard streamed journal: every
//!   line parses as JSON with `time_ps`/`shard`/`seq`/`kind`, the kind
//!   is one the tracer can emit, all lines carry the same shard id, and
//!   `seq` strictly increases (the stream is in emission order — `seq`
//!   is the shard's own counter, while `time_ps` may step back for
//!   backdated admission events).
//! * `--journal-merged j.merged.jsonl` — the cross-shard merge: the
//!   same per-line checks, plus the `(time_ps, shard, seq)` key must
//!   strictly increase — the canonical total order the merge sorts by.
//! * `--telemetry t.shard000.tl.jsonl` — a per-shard telemetry stream:
//!   every line parses as JSON with `tick`/`time_ps`/`shard`/`seq`/
//!   `scope`/`gauges`, the scope is non-empty, the gauges object is a
//!   non-empty map of finite numbers, all lines carry the same shard
//!   id, `tick` never steps back and `seq` strictly increases.
//! * `--telemetry-merged t.merged.tl.jsonl` — the cross-shard merge:
//!   the same per-line checks, plus the `(tick, shard, seq)` key must
//!   strictly increase — the total order the merge sorts by.
//!
//! Exits non-zero with one line per violation; CI runs it after the
//! scenario smoke runs so a malformed export fails the build.

use std::collections::HashMap;
use std::process::ExitCode;

use rtr_bench::scenario::ScenarioArgs;
use rtr_trace::KIND_NAMES;
use vp2_sim::Json;

/// Tolerance on the per-shard fraction sum.
const EPSILON: f64 = 1e-9;

fn load(path: &str, problems: &mut Vec<String>) -> Option<Json> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            problems.push(format!("{path}: cannot read: {e}"));
            return None;
        }
    };
    match Json::parse(&text) {
        Ok(json) => Some(json),
        Err(e) => {
            problems.push(format!("{path}: not valid JSON: {e}"));
            None
        }
    }
}

/// Checks the Chrome trace-event invariants.
fn lint_trace(path: &str, doc: &Json, problems: &mut Vec<String>) {
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        problems.push(format!("{path}: no traceEvents array"));
        return;
    };
    // Open-slice depth per (pid, tid); open async arrows per id.
    let mut depth: HashMap<(i64, i64), i64> = HashMap::new();
    let mut arrows: HashMap<String, i64> = HashMap::new();
    let mut decisions = 0usize;
    let mut plane_events = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let name = ev.get("name").and_then(Json::as_str);
        let ph = ev.get("ph").and_then(Json::as_str);
        let ts = ev.get("ts").and_then(Json::as_f64);
        let pid = ev.get("pid").and_then(Json::as_f64);
        let tid = ev.get("tid").and_then(Json::as_f64);
        let (Some(name), Some(ph), Some(_), Some(pid), Some(tid)) = (name, ph, ts, pid, tid) else {
            problems.push(format!(
                "{path}: event {i} is missing one of name/ph/ts/pid/tid"
            ));
            continue;
        };
        // Every journaled scheduling decision must be self-describing:
        // the policy that decided, the kernel it chose, and the
        // candidate set it chose from — with the choice in the set.
        if ph == "i" && name == "sched decision" {
            decisions += 1;
            let args = ev.get("args");
            let policy = args.and_then(|a| a.get("policy")).and_then(Json::as_str);
            let chosen = args.and_then(|a| a.get("chosen")).and_then(Json::as_str);
            let candidates = args
                .and_then(|a| a.get("candidates"))
                .and_then(Json::as_arr);
            match (policy, chosen, candidates) {
                (Some(""), _, _) => {
                    problems.push(format!(
                        "{path}: event {i}: sched decision with empty policy"
                    ));
                }
                (Some(_), Some(chosen), Some(cands)) => {
                    if cands.is_empty() {
                        problems.push(format!(
                            "{path}: event {i}: sched decision with an empty candidate set"
                        ));
                    } else if !cands.iter().any(|c| c.as_str() == Some(chosen)) {
                        problems.push(format!(
                            "{path}: event {i}: sched decision chose {chosen:?} \
                             but it is not among the candidates"
                        ));
                    }
                }
                _ => problems.push(format!(
                    "{path}: event {i}: sched decision missing policy/chosen/candidates"
                )),
            }
        }
        // Configuration-plane instants are self-describing as well: each
        // names its module, and the differential accounting can never
        // claim to have sent more than the full image holds.
        if ph == "i" {
            let args = ev.get("args");
            let module_ok = args
                .and_then(|a| a.get("module"))
                .and_then(Json::as_str)
                .is_some_and(|m| !m.is_empty());
            match name {
                "cache lookup" => {
                    plane_events += 1;
                    let hit = args.and_then(|a| a.get("hit"));
                    if !module_ok || !matches!(hit, Some(Json::Bool(_))) {
                        problems.push(format!(
                            "{path}: event {i}: cache lookup missing module/hit"
                        ));
                    }
                }
                "diff swap" => {
                    plane_events += 1;
                    let count = |key: &str| args.and_then(|a| a.get(key)).and_then(Json::as_f64);
                    match (
                        count("frames_full"),
                        count("frames_sent"),
                        count("words_full"),
                        count("words_sent"),
                    ) {
                        (Some(ff), Some(fs), Some(wf), Some(ws)) => {
                            if fs > ff || ws > wf {
                                problems.push(format!(
                                    "{path}: event {i}: diff swap sent more than the \
                                     full image ({fs}/{ff} frames, {ws}/{wf} words)"
                                ));
                            }
                        }
                        _ => problems.push(format!(
                            "{path}: event {i}: diff swap missing frame/word accounting"
                        )),
                    }
                    if !module_ok {
                        problems.push(format!("{path}: event {i}: diff swap without a module"));
                    }
                }
                "slot activate" | "slot evict" => {
                    plane_events += 1;
                    let slot = args.and_then(|a| a.get("slot")).and_then(Json::as_f64);
                    if !module_ok || !slot.is_some_and(|s| s >= 0.0) {
                        problems.push(format!("{path}: event {i}: {name} missing module/slot"));
                    }
                }
                // Federation decisions: a route names its pool, kernel
                // and the estimate it was scored on; a steal moves at
                // least one request between two distinct pools; a shed
                // diverts a named kernel between two distinct pools.
                "fed route" => {
                    plane_events += 1;
                    let pool = args.and_then(|a| a.get("pool")).and_then(Json::as_f64);
                    let kernel = args.and_then(|a| a.get("kernel")).and_then(Json::as_str);
                    let est = args
                        .and_then(|a| a.get("estimate_us"))
                        .and_then(Json::as_f64);
                    if pool.is_none_or(|p| p < 0.0)
                        || kernel.is_none_or(str::is_empty)
                        || est.is_none_or(|e| e < 0.0)
                    {
                        problems.push(format!(
                            "{path}: event {i}: fed route missing pool/kernel/estimate_us"
                        ));
                    }
                }
                "fed steal" | "fed shed" => {
                    plane_events += 1;
                    let pool = |key: &str| args.and_then(|a| a.get(key)).and_then(Json::as_f64);
                    match (pool("from_pool"), pool("to_pool")) {
                        (Some(from), Some(to)) if from == to => {
                            problems.push(format!(
                                "{path}: event {i}: {name} from pool {from} to itself"
                            ));
                        }
                        (Some(_), Some(_)) => {}
                        _ => problems.push(format!(
                            "{path}: event {i}: {name} missing from_pool/to_pool"
                        )),
                    }
                    if name == "fed steal" && pool("moved").is_none_or(|m| m < 1.0) {
                        problems.push(format!(
                            "{path}: event {i}: fed steal moved fewer than one request"
                        ));
                    }
                }
                // Scrub instants account for themselves: a pass can
                // never find more mismatches than frames it compared,
                // and a repair always re-writes at least one frame.
                "scrub pass" => {
                    plane_events += 1;
                    let count = |key: &str| args.and_then(|a| a.get(key)).and_then(Json::as_f64);
                    match (count("frames"), count("mismatched")) {
                        (Some(frames), Some(mismatched)) if mismatched > frames => {
                            problems.push(format!(
                                "{path}: event {i}: scrub pass found {mismatched} \
                                 mismatches in only {frames} frames"
                            ));
                        }
                        (Some(_), Some(_)) => {}
                        _ => problems.push(format!(
                            "{path}: event {i}: scrub pass missing frames/mismatched"
                        )),
                    }
                }
                "scrub repair" => {
                    plane_events += 1;
                    let frames = args.and_then(|a| a.get("frames")).and_then(Json::as_f64);
                    if frames.is_none_or(|f| f < 1.0) {
                        problems.push(format!(
                            "{path}: event {i}: scrub repair re-wrote fewer than one frame"
                        ));
                    }
                }
                // Canary instants name their kernel; a result also says
                // whether the probe readmitted it.
                "canary probe" | "canary result" => {
                    plane_events += 1;
                    let kernel = args.and_then(|a| a.get("kernel")).and_then(Json::as_str);
                    if kernel.is_none_or(str::is_empty) {
                        problems.push(format!("{path}: event {i}: {name} without a kernel"));
                    }
                    if name == "canary result"
                        && !matches!(args.and_then(|a| a.get("admitted")), Some(Json::Bool(_)))
                    {
                        problems.push(format!(
                            "{path}: event {i}: canary result without a boolean verdict"
                        ));
                    }
                }
                _ => {}
            }
        }
        let track = (pid as i64, tid as i64);
        match ph {
            "B" => *depth.entry(track).or_default() += 1,
            "E" => {
                let d = depth.entry(track).or_default();
                *d -= 1;
                if *d < 0 {
                    problems.push(format!(
                        "{path}: event {i}: E without a matching B on track {track:?}"
                    ));
                    *d = 0;
                }
            }
            "b" | "e" => {
                let Some(id) = ev.get("id").and_then(Json::as_str) else {
                    problems.push(format!("{path}: event {i}: async {ph} without an id"));
                    continue;
                };
                *arrows.entry(id.to_string()).or_default() += if ph == "b" { 1 } else { -1 };
            }
            "X" => match ev.get("dur").and_then(Json::as_f64) {
                Some(dur) if dur >= 0.0 => {}
                Some(dur) => {
                    problems.push(format!(
                        "{path}: event {i}: X slice with negative dur {dur}"
                    ));
                }
                None => {
                    problems.push(format!("{path}: event {i}: X slice without a dur"));
                }
            },
            _ => {}
        }
    }
    for (track, d) in depth {
        if d != 0 {
            problems.push(format!(
                "{path}: track {track:?} ends with {d} unclosed B slice(s)"
            ));
        }
    }
    for (id, d) in arrows {
        if d != 0 {
            problems.push(format!("{path}: async arrow {id} is unbalanced ({d:+})"));
        }
    }
    eprintln!(
        "[lint] {path}: {} events, {decisions} sched decision(s), \
         {plane_events} config-plane instant(s)",
        events.len()
    );
}

/// Checks a streamed JSONL journal. `merged` selects the ordering
/// invariant: a per-shard stream is in emission order (strictly
/// increasing `seq`, one constant shard id), the merged file is in the
/// canonical `(time_ps, shard, seq)` total order.
fn lint_journal(path: &str, merged: bool, problems: &mut Vec<String>) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            problems.push(format!("{path}: cannot read: {e}"));
            return;
        }
    };
    let mut lines = 0usize;
    let mut stream_shard: Option<i64> = None;
    let mut last_seq: Option<i64> = None;
    let mut last_key: Option<(i64, i64, i64)> = None;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let ev = match Json::parse(line) {
            Ok(ev) => ev,
            Err(e) => {
                problems.push(format!("{path}: line {}: not valid JSON: {e}", i + 1));
                continue;
            }
        };
        let int = |key: &str| ev.get(key).and_then(Json::as_f64).map(|v| v as i64);
        let kind = ev.get("kind").and_then(Json::as_str);
        let (Some(time), Some(shard), Some(seq), Some(kind)) =
            (int("time_ps"), int("shard"), int("seq"), kind)
        else {
            problems.push(format!(
                "{path}: line {}: missing one of time_ps/shard/seq/kind",
                i + 1
            ));
            continue;
        };
        if !KIND_NAMES.contains(&kind) {
            problems.push(format!(
                "{path}: line {}: unknown event kind {kind:?}",
                i + 1
            ));
        }
        // Federation decisions must be self-describing in the raw
        // journal too, not just in the Chrome export.
        match kind {
            "fed_route" => {
                let kernel = ev.get("kernel").and_then(Json::as_str);
                if int("pool").is_none_or(|p| p < 0)
                    || kernel.is_none_or(str::is_empty)
                    || int("estimate_ps").is_none_or(|e| e < 0)
                {
                    problems.push(format!(
                        "{path}: line {}: fed_route missing pool/kernel/estimate_ps",
                        i + 1
                    ));
                }
            }
            "fed_steal" | "fed_shed" => {
                match (int("from_pool"), int("to_pool")) {
                    (Some(from), Some(to)) if from == to => {
                        problems.push(format!(
                            "{path}: line {}: {kind} from pool {from} to itself",
                            i + 1
                        ));
                    }
                    (Some(_), Some(_)) => {}
                    _ => problems.push(format!(
                        "{path}: line {}: {kind} missing from_pool/to_pool",
                        i + 1
                    )),
                }
                if kind == "fed_steal" && int("moved").is_none_or(|m| m < 1) {
                    problems.push(format!(
                        "{path}: line {}: fed_steal moved fewer than one request",
                        i + 1
                    ));
                }
            }
            // Scrub and canary events carry the same invariants in the
            // raw journal as in the Chrome export.
            "scrub_pass" => match (int("frames"), int("mismatched")) {
                (Some(frames), Some(mismatched)) if mismatched > frames => {
                    problems.push(format!(
                        "{path}: line {}: scrub_pass found {mismatched} \
                         mismatches in only {frames} frames",
                        i + 1
                    ));
                }
                (Some(_), Some(_)) => {}
                _ => problems.push(format!(
                    "{path}: line {}: scrub_pass missing frames/mismatched",
                    i + 1
                )),
            },
            "scrub_repair" if int("frames").is_none_or(|f| f < 1) => {
                problems.push(format!(
                    "{path}: line {}: scrub_repair re-wrote fewer than one frame",
                    i + 1
                ));
            }
            "canary_probe" | "canary_result" => {
                let kernel = ev.get("kernel").and_then(Json::as_str);
                if kernel.is_none_or(str::is_empty) {
                    problems.push(format!("{path}: line {}: {kind} without a kernel", i + 1));
                }
                if kind == "canary_result" && !matches!(ev.get("admitted"), Some(Json::Bool(_))) {
                    problems.push(format!(
                        "{path}: line {}: canary_result without a boolean verdict",
                        i + 1
                    ));
                }
            }
            _ => {}
        }
        if merged {
            let key = (time, shard, seq);
            if let Some(last) = last_key {
                if key <= last {
                    problems.push(format!(
                        "{path}: line {}: (time_ps, shard, seq) key {key:?} \
                         does not advance past {last:?}",
                        i + 1
                    ));
                }
            }
            last_key = Some(key);
        } else {
            match stream_shard {
                None => stream_shard = Some(shard),
                Some(expected) if expected != shard => {
                    problems.push(format!(
                        "{path}: line {}: shard {shard} in a shard-{expected} stream",
                        i + 1
                    ));
                }
                Some(_) => {}
            }
            if let Some(last) = last_seq {
                if seq <= last {
                    problems.push(format!(
                        "{path}: line {}: seq {seq} does not advance past {last}",
                        i + 1
                    ));
                }
            }
            last_seq = Some(seq);
        }
    }
    if lines == 0 {
        problems.push(format!("{path}: journal is empty"));
    }
    let flavor = if merged { "merged" } else { "per-shard" };
    eprintln!("[lint] {path}: {lines} {flavor} journal event(s)");
}

/// Checks a streamed telemetry time-series. `merged` selects the
/// ordering invariant: a per-shard stream carries one constant shard
/// id, a never-decreasing `tick` and a strictly increasing `seq`; the
/// merged file is in the canonical `(tick, shard, seq)` total order.
/// Every row must be self-describing: a non-empty scope and a
/// non-empty gauge map whose values are all finite numbers.
fn lint_telemetry(path: &str, merged: bool, problems: &mut Vec<String>) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            problems.push(format!("{path}: cannot read: {e}"));
            return;
        }
    };
    let mut lines = 0usize;
    let mut stream_shard: Option<i64> = None;
    let mut last_tick: Option<i64> = None;
    let mut last_seq: Option<i64> = None;
    let mut last_key: Option<(i64, i64, i64)> = None;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let ev = match Json::parse(line) {
            Ok(ev) => ev,
            Err(e) => {
                problems.push(format!("{path}: line {}: not valid JSON: {e}", i + 1));
                continue;
            }
        };
        let int = |key: &str| ev.get(key).and_then(Json::as_f64).map(|v| v as i64);
        let scope = ev.get("scope").and_then(Json::as_str);
        let (Some(tick), Some(_), Some(shard), Some(seq), Some(scope)) =
            (int("tick"), int("time_ps"), int("shard"), int("seq"), scope)
        else {
            problems.push(format!(
                "{path}: line {}: missing one of tick/time_ps/shard/seq/scope",
                i + 1
            ));
            continue;
        };
        if scope.is_empty() {
            problems.push(format!("{path}: line {}: empty scope", i + 1));
        }
        // Each sample must describe itself: at least one gauge, every
        // value a finite number (NaN/inf would poison any aggregation
        // downstream and render as invalid JSON anyway).
        match ev.get("gauges") {
            Some(Json::Obj(gauges)) if !gauges.is_empty() => {
                for (name, value) in gauges {
                    match value.as_f64() {
                        Some(v) if v.is_finite() => {}
                        _ => problems.push(format!(
                            "{path}: line {}: gauge {name:?} is not a finite number",
                            i + 1
                        )),
                    }
                }
            }
            _ => problems.push(format!(
                "{path}: line {}: missing or empty gauges object",
                i + 1
            )),
        }
        if merged {
            let key = (tick, shard, seq);
            if let Some(last) = last_key {
                if key <= last {
                    problems.push(format!(
                        "{path}: line {}: (tick, shard, seq) key {key:?} \
                         does not advance past {last:?}",
                        i + 1
                    ));
                }
            }
            last_key = Some(key);
        } else {
            match stream_shard {
                None => stream_shard = Some(shard),
                Some(expected) if expected != shard => {
                    problems.push(format!(
                        "{path}: line {}: shard {shard} in a shard-{expected} stream",
                        i + 1
                    ));
                }
                Some(_) => {}
            }
            if let Some(last) = last_tick {
                if tick < last {
                    problems.push(format!(
                        "{path}: line {}: tick {tick} steps back from {last}",
                        i + 1
                    ));
                }
            }
            last_tick = Some(tick);
            if let Some(last) = last_seq {
                if seq <= last {
                    problems.push(format!(
                        "{path}: line {}: seq {seq} does not advance past {last}",
                        i + 1
                    ));
                }
            }
            last_seq = Some(seq);
        }
    }
    if lines == 0 {
        problems.push(format!("{path}: telemetry stream is empty"));
    }
    let flavor = if merged { "merged" } else { "per-shard" };
    eprintln!("[lint] {path}: {lines} {flavor} telemetry sample(s)");
}

/// Checks that each shard's fractions partition its makespan.
fn lint_profile(path: &str, doc: &Json, problems: &mut Vec<String>) {
    let Some(shards) = doc.get("shards").and_then(Json::as_arr) else {
        problems.push(format!("{path}: no shards array"));
        return;
    };
    for (i, shard) in shards.iter().enumerate() {
        let frac = |key: &str| shard.get(key).and_then(Json::as_f64);
        let parts = [
            frac("busy_frac"),
            frac("reconfig_frac"),
            frac("idle_frac"),
            frac("quarantined_frac"),
        ];
        if parts.iter().any(Option::is_none) {
            problems.push(format!("{path}: shard {i} is missing a *_frac field"));
            continue;
        }
        let sum: f64 = parts.iter().map(|p| p.unwrap()).sum();
        let makespan = frac("makespan_us").unwrap_or(0.0);
        let expected = if makespan == 0.0 { 0.0 } else { 1.0 };
        if (sum - expected).abs() > EPSILON {
            problems.push(format!(
                "{path}: shard {i} fractions sum to {sum} (expected {expected})"
            ));
        }
    }
    eprintln!("[lint] {path}: {} shard(s)", shards.len());
}

fn main() -> ExitCode {
    let args = ScenarioArgs::parse();
    let mut problems = Vec::new();
    let mut checked = 0;
    if let Some(path) = args.trace_path() {
        checked += 1;
        if let Some(doc) = load(&path, &mut problems) {
            lint_trace(&path, &doc, &mut problems);
        }
    }
    if let Some(path) = args.profile_path() {
        checked += 1;
        if let Some(doc) = load(&path, &mut problems) {
            lint_profile(&path, &doc, &mut problems);
        }
    }
    if let Some(path) = args.value_of("--journal") {
        checked += 1;
        lint_journal(&path, false, &mut problems);
    }
    if let Some(path) = args.value_of("--journal-merged") {
        checked += 1;
        lint_journal(&path, true, &mut problems);
    }
    if let Some(path) = args.value_of("--telemetry") {
        checked += 1;
        lint_telemetry(&path, false, &mut problems);
    }
    if let Some(path) = args.value_of("--telemetry-merged") {
        checked += 1;
        lint_telemetry(&path, true, &mut problems);
    }
    if checked == 0 {
        eprintln!(
            "usage: trace_lint [--trace chrome.json] [--profile profile.json] \
             [--journal j.shard000.jsonl] [--journal-merged j.merged.jsonl] \
             [--telemetry t.shard000.tl.jsonl] [--telemetry-merged t.merged.tl.jsonl]"
        );
        return ExitCode::from(2);
    }
    if problems.is_empty() {
        eprintln!("[lint] ok");
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("[lint] FAIL {p}");
        }
        ExitCode::FAILURE
    }
}
