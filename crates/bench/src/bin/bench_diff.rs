//! Gates the bench trajectory: compares the current `BENCH_*.json`
//! summaries against a committed baseline set and fails when a headline
//! metric regresses past the threshold.
//!
//! Only trajectory metrics are compared — numeric leaves named exactly
//! `makespan_us` or starting with `latency_p99` — addressed by their
//! full JSON path, so a reshuffled summary never produces a silent
//! mis-pairing. Counters, ratios and throughput are deliberately out of
//! scope: they move for legitimate reasons (payload tweaks, new fields)
//! and the makespan/tail pair is what the paper's claims ride on.
//!
//! ```text
//! bench_diff --baseline BENCH_BASELINE --current .          # gate CI
//! bench_diff ... --threshold 0.10                           # stricter
//! bench_diff ... --inject-makespan-scale 2   # self-test: must fail
//! ```
//!
//! A summary present today but missing from the baseline is reported
//! and skipped (first run after adding a scenario), and a current-only
//! metric inside a paired summary only warns — but a metric the
//! baseline tracks that the current summary *dropped* fails the gate:
//! retiring a gated claim must be an explicit baseline edit, never a
//! silent skip. A *worse-than* `--threshold` relative increase on any
//! compared metric exits non-zero with one line per regression. `--inject-makespan-scale`
//! multiplies every current makespan before comparing — CI uses it as
//! a negative test proving the gate can actually fail.

use std::process::ExitCode;

use rtr_bench::scenario::ScenarioArgs;
use vp2_sim::Json;

/// Default tolerated relative increase before a metric counts as a
/// regression (15% — the scenarios are simulated and deterministic, so
/// anything past noise means the code path genuinely got slower).
const DEFAULT_THRESHOLD: f64 = 0.15;

/// True for the metric names the gate tracks.
fn tracked(key: &str) -> bool {
    key == "makespan_us" || key.starts_with("latency_p99")
}

/// Collects every tracked numeric leaf as `(json.path, value)`.
fn collect(json: &Json, path: &str, out: &mut Vec<(String, f64)>) {
    match json {
        Json::Obj(fields) => {
            for (key, value) in fields {
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                if let (true, Some(v)) = (tracked(key), value.as_f64()) {
                    out.push((child, v));
                } else {
                    collect(value, &child, out);
                }
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                collect(item, &format!("{path}[{i}]"), out);
            }
        }
        _ => {}
    }
}

fn main() -> ExitCode {
    let args = ScenarioArgs::parse();
    let (Some(baseline_dir), Some(current_dir)) =
        (args.value_of("--baseline"), args.value_of("--current"))
    else {
        eprintln!(
            "usage: bench_diff --baseline BENCH_BASELINE --current . \
             [--threshold 0.15] [--inject-makespan-scale 1.0]"
        );
        return ExitCode::from(2);
    };
    let threshold: f64 = args.parsed_or("--threshold", DEFAULT_THRESHOLD);
    let inject: f64 = args.parsed_or("--inject-makespan-scale", 1.0);

    // The current directory defines the file set; extra baseline files
    // (a retired scenario) are simply stale and harmless.
    let mut names: Vec<String> = match std::fs::read_dir(&current_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("[diff] {current_dir}: cannot list: {e}");
            return ExitCode::FAILURE;
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!("[diff] {current_dir}: no BENCH_*.json summaries to compare");
        return ExitCode::FAILURE;
    }

    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for name in &names {
        let cur_path = format!("{current_dir}/{name}");
        let base_path = format!("{baseline_dir}/{name}");
        let base_text = match std::fs::read_to_string(&base_path) {
            Ok(text) => text,
            Err(_) => {
                eprintln!("[diff] {name}: no baseline yet — skipped");
                continue;
            }
        };
        let cur_text = match std::fs::read_to_string(&cur_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("[diff] {cur_path}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        let parse = |path: &str, text: &str| {
            Json::parse(text).unwrap_or_else(|e| panic!("{path}: not valid JSON: {e}"))
        };
        let mut base_metrics = Vec::new();
        let mut cur_metrics = Vec::new();
        collect(&parse(&base_path, &base_text), "", &mut base_metrics);
        collect(&parse(&cur_path, &cur_text), "", &mut cur_metrics);
        // A metric the baseline tracked but the current summary no
        // longer exports is a regression, not a skip: a silently
        // dropped key would otherwise retire a gated claim without
        // anyone noticing. New current-only metrics merely warn — they
        // gain a baseline on the next seeding.
        for (path, base) in &base_metrics {
            if !cur_metrics.iter().any(|(p, _)| p == path) {
                regressions.push(format!(
                    "{name}: {path}: baseline has {base:.1} but the \
                     current summary dropped the metric"
                ));
            }
        }
        for (path, cur) in &cur_metrics {
            let Some((_, base)) = base_metrics.iter().find(|(p, _)| p == path) else {
                eprintln!("[diff] {name}: {path}: new metric — skipped");
                continue;
            };
            let cur = if path.ends_with("makespan_us") {
                cur * inject
            } else {
                *cur
            };
            compared += 1;
            // A zero baseline can't support a relative comparison; any
            // nonzero current value on a zero baseline is flagged.
            let ratio = if *base > 0.0 {
                cur / base
            } else if cur == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
            if ratio > 1.0 + threshold {
                regressions.push(format!(
                    "{name}: {path}: {base:.1} -> {cur:.1} ({:+.1}%)",
                    (ratio - 1.0) * 100.0
                ));
            }
        }
    }

    eprintln!(
        "[diff] {compared} metric(s) compared across {} summaries \
         (threshold {:.0}%)",
        names.len(),
        threshold * 100.0
    );
    if regressions.is_empty() {
        eprintln!("[diff] ok — no regressions past the threshold");
        ExitCode::SUCCESS
    } else {
        for r in &regressions {
            eprintln!("[diff] REGRESSION {r}");
        }
        ExitCode::FAILURE
    }
}
