//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! tables                 # all tables + figures, quick inputs
//! tables --full          # paper-like input sweeps (slower)
//! tables --table 3       # one table
//! tables --figure 2      # one figure
//! tables --json out.json # also dump machine-readable results
//! tables --ablations     # the DESIGN.md ablation studies
//! ```

use rtr_bench::{ablation_reconfig, ablation_sw_quality, figure, table, Effort};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = if args.iter().any(|a| a == "--full") {
        Effort::Full
    } else {
        Effort::Quick
    };
    let mut json_path: Option<String> = None;
    let mut only_table: Option<u32> = None;
    let mut only_figure: Option<u32> = None;
    let mut ablations = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--table" => only_table = it.next().and_then(|v| v.parse().ok()),
            "--figure" => only_figure = it.next().and_then(|v| v.parse().ok()),
            "--json" => json_path = it.next().cloned(),
            "--ablations" => ablations = true,
            _ => {}
        }
    }

    if let Some(n) = only_figure {
        println!("{}", figure(n));
        return;
    }
    if let Some(n) = only_table {
        let r = table(n, effort);
        println!("{}", r.rendered);
        return;
    }

    let mut results = Vec::new();
    for n in 1..=12 {
        eprintln!("[tables] regenerating table {n}...");
        let r = table(n, effort);
        println!("{}", r.rendered);
        println!();
        results.push(r);
    }
    for n in 1..=4 {
        println!("{}", figure(n));
        println!();
    }
    if ablations {
        println!("{}", ablation_reconfig().render());
        println!();
        println!("{}", ablation_sw_quality().render());
    }
    if let Some(path) = json_path {
        let doc = vp2_sim::Json::Arr(
            results
                .iter()
                .map(rtr_bench::TableResult::to_json)
                .collect(),
        );
        let f = std::fs::File::create(&path).expect("create json file");
        let mut w = std::io::BufWriter::new(f);
        w.write_all(doc.render_pretty().as_bytes())
            .expect("serialise");
        w.flush().expect("flush");
        eprintln!("[tables] wrote {path}");
    }
}
