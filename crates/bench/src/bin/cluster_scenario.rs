//! Sweeps the sharded cluster over shard count × routing policy and
//! emits a machine-readable JSON summary — the scale-out counterpart of
//! `service_scenario`.
//!
//! Two experiments, both seeded and deterministic:
//!
//! * **mixed-kernel**: 4 shards serving a three-kernel mix under each
//!   routing policy. Kernel-affinity routing must beat round-robin on
//!   both makespan and total reconfiguration swaps (asserted).
//! * **scaling**: a single-kernel workload over 1, 2 and 4 shards.
//!   Cluster throughput must rise with shard count (asserted).
//!
//! ```text
//! cluster_scenario                   # default workloads
//! cluster_scenario --requests 128    # heavier run
//! cluster_scenario --json out.json   # write the summary to a file
//! ```

use rtr_apps::request::Kernel;
use rtr_bench::scenario::{self, ScenarioArgs};
use rtr_cluster::{Cluster, ClusterConfig, ClusterSnapshot, RoutePolicy};
use rtr_core::SystemKind;
use rtr_service::TrafficConfig;
use vp2_sim::{Json, SimTime};

/// Every routing policy the sweep compares.
const POLICIES: [RoutePolicy; 3] = [
    RoutePolicy::RoundRobin,
    RoutePolicy::LeastLoaded,
    RoutePolicy::KernelAffinity,
];

fn policy_json(policy: RoutePolicy, snap: &ClusterSnapshot) -> Json {
    Json::obj()
        .field("policy", policy.name())
        .field("cluster", snap.to_json())
}

fn main() {
    let args = ScenarioArgs::parse();
    let requests: usize = args.parsed_or("--requests", 64);
    let seed: u64 = args.parsed_or("--seed", 0x0007_AF1C_2026);
    let json_path = args.json_path();
    // The journal covers the kernel-affinity mixed run — the pool whose
    // time accounting the scenario's headline claim is about.
    let tracer = args.tracer();

    // Experiment 1: mixed-kernel workload, 4 shards, every policy. The
    // mix makes region residency the contended resource: every shard
    // warms up with brightness (first hardware-capable kernel listed)
    // resident, and at 12-16 KB payloads a queued sha1 batch is worth an
    // ICAP swap while a brightness batch is not. Round-robin hands every
    // kernel to every shard, so sha1 evicts brightness pool-wide and
    // brightness decays to its ~3x slower software path; affinity gives
    // each kernel a home shard whose module loads at most once and stays
    // resident — it wins on makespan and swaps even though only three of
    // the four shards draw work.
    let mixed_kernels = vec![Kernel::Brightness, Kernel::Sha1, Kernel::Jenkins];
    let mixed = TrafficConfig {
        seed,
        requests,
        kernels: mixed_kernels.clone(),
        mean_gap: SimTime::from_us(2),
        burst_percent: 40,
        min_payload: 12 * 1024,
        max_payload: 16 * 1024,
        ..TrafficConfig::default()
    };
    let shard_count = 4;
    let mut policy_snaps = Vec::new();
    for policy in POLICIES {
        eprintln!(
            "[cluster] mixed-kernel / {policy}: {requests} requests on {shard_count} shards..."
        );
        let trace = if policy == RoutePolicy::KernelAffinity {
            tracer.clone()
        } else {
            rtr_trace::Tracer::disabled()
        };
        let mut cluster = Cluster::new(ClusterConfig {
            kernels: mixed_kernels.clone(),
            trace,
            ..ClusterConfig::uniform(SystemKind::Bit64, shard_count, policy)
        });
        let snap = cluster.run(mixed.stream());
        assert_eq!(
            snap.total.completed as usize, requests,
            "all requests served"
        );
        assert_eq!(snap.total.verify_failures, 0, "responses must verify");
        eprintln!(
            "[cluster]   makespan {}, swaps {}, hw {} / sw {}",
            snap.makespan, snap.total_swaps, snap.total.hw_items, snap.total.sw_items
        );
        policy_snaps.push((policy, snap));
    }
    let rr = &policy_snaps[0].1;
    let affinity = &policy_snaps[2].1;
    assert!(
        affinity.makespan < rr.makespan,
        "affinity makespan {} must undercut round-robin {}",
        affinity.makespan,
        rr.makespan
    );
    assert!(
        affinity.total_swaps < rr.total_swaps,
        "affinity swaps {} must undercut round-robin {}",
        affinity.total_swaps,
        rr.total_swaps
    );
    let mixed_json = Json::obj()
        .field("system", "Bit64")
        .field("shards", shard_count)
        .field("requests", requests)
        .field("seed", seed)
        .field(
            "affinity_makespan_ratio",
            affinity.makespan.as_ps() as f64 / rr.makespan.as_ps().max(1) as f64,
        )
        .field(
            "affinity_swaps_saved",
            rr.total_swaps.saturating_sub(affinity.total_swaps),
        )
        .field(
            "policies",
            Json::Arr(
                policy_snaps
                    .iter()
                    .map(|(p, s)| policy_json(*p, s))
                    .collect(),
            ),
        );

    // Experiment 2: single-kernel workload over growing shard counts.
    // Round-robin is the natural spread policy here (affinity would pin
    // everything to one shard — there is only one kernel to be loyal to).
    let single = TrafficConfig {
        seed: seed ^ 0x5CA1E,
        requests,
        kernels: vec![Kernel::PatMatch],
        mean_gap: SimTime::from_us(2),
        burst_percent: 0,
        min_payload: 512,
        max_payload: 2048,
        ..TrafficConfig::default()
    };
    let mut points = Vec::new();
    let mut throughputs = Vec::new();
    for shards in [1usize, 2, 4] {
        eprintln!("[cluster] scaling / {shards} shard(s): {requests} requests...");
        let mut cluster = Cluster::new(ClusterConfig {
            kernels: vec![Kernel::PatMatch],
            ..ClusterConfig::uniform(SystemKind::Bit32, shards, RoutePolicy::RoundRobin)
        });
        let snap = cluster.run(single.stream());
        assert_eq!(
            snap.total.completed as usize, requests,
            "all requests served"
        );
        throughputs.push(snap.total.throughput_per_s);
        points.push(
            Json::obj()
                .field("shards", shards)
                .field("makespan_us", snap.makespan.as_us_f64())
                .field("throughput_per_s", snap.total.throughput_per_s)
                .field("total_swaps", snap.total_swaps)
                .field("peak_buffered", snap.peak_buffered),
        );
    }
    assert!(
        throughputs.windows(2).all(|w| w[0] < w[1]),
        "throughput must scale with shard count: {throughputs:?}"
    );
    let scaling_json = Json::obj()
        .field("system", "Bit32")
        .field("kernel", Kernel::PatMatch.module_name())
        .field("policy", RoutePolicy::RoundRobin.name())
        .field("requests", requests)
        .field("points", Json::Arr(points));

    let summary = Json::obj().field(
        "cluster_scenarios",
        Json::obj()
            .field("mixed_kernel", mixed_json)
            .field("scaling", scaling_json),
    );
    scenario::emit("cluster", json_path.as_deref(), &summary);
    scenario::export_trace("cluster", &args, &tracer);
}
