//! Sweeps the sharded cluster over shard count × routing policy and
//! emits a machine-readable JSON summary — the scale-out counterpart of
//! `service_scenario`.
//!
//! Three experiments, all seeded and deterministic:
//!
//! * **mixed-kernel**: 4 shards serving a three-kernel mix under each
//!   routing policy. Kernel-affinity routing must beat round-robin on
//!   both makespan and total reconfiguration swaps (asserted).
//! * **scaling**: a single-kernel workload over 1, 2 and 4 shards.
//!   Cluster throughput must rise with shard count (asserted).
//! * **parallel**: the same 8-shard workload executed inline and on the
//!   `--threads` worker pool. The two snapshots must be byte-identical
//!   (asserted — the determinism contract), and the wall-clock ratio is
//!   reported (asserted against `--min-speedup` when given).
//!
//! ```text
//! cluster_scenario                   # default workloads, inline
//! cluster_scenario --requests 128    # heavier run
//! cluster_scenario --threads 4       # flush shards on 4 worker threads
//! cluster_scenario --threads 4 --min-speedup 2   # gate the speedup
//! cluster_scenario --snapshot-out s.json  # parallel-run snapshot (for cmp)
//! cluster_scenario --json out.json   # write the summary to a file
//! ```

use rtr_apps::request::Kernel;
use rtr_bench::scenario::{self, ScenarioArgs};
use rtr_cluster::{Cluster, ClusterConfig, ClusterSnapshot, RoutePolicy};
use rtr_core::SystemKind;
use rtr_service::TrafficConfig;
use vp2_sim::{Json, SimTime};

/// Every routing policy the sweep compares.
const POLICIES: [RoutePolicy; 3] = [
    RoutePolicy::RoundRobin,
    RoutePolicy::LeastLoaded,
    RoutePolicy::KernelAffinity,
];

fn policy_json(policy: RoutePolicy, snap: &ClusterSnapshot) -> Json {
    Json::obj()
        .field("policy", policy.name())
        .field("cluster", snap.to_json())
}

fn main() {
    let args = ScenarioArgs::parse();
    let requests: usize = args.parsed_or("--requests", 64);
    let seed: u64 = args.parsed_or("--seed", 0x0007_AF1C_2026);
    let threads = args.threads();
    let min_speedup: Option<f64> = args.value_of("--min-speedup").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--min-speedup {v}: not a number"))
    });
    let snapshot_out = args.value_of("--snapshot-out");
    let json_path = args.json_path();
    // The journal covers the kernel-affinity mixed run — the pool whose
    // time accounting the scenario's headline claim is about. Telemetry
    // samples the same run.
    let tracer = args.tracer();
    let telemetry = args.telemetry();

    // Experiment 1: mixed-kernel workload, 4 shards, every policy. The
    // mix makes region residency the contended resource: every shard
    // warms up with brightness (first hardware-capable kernel listed)
    // resident, and at 12-16 KB payloads a queued sha1 batch is worth an
    // ICAP swap while a brightness batch is not. Round-robin hands every
    // kernel to every shard, so sha1 evicts brightness pool-wide and
    // brightness decays to its ~3x slower software path; affinity gives
    // each kernel a home shard whose module loads at most once and stays
    // resident — it wins on makespan and swaps even though only three of
    // the four shards draw work.
    let mixed_kernels = vec![Kernel::Brightness, Kernel::Sha1, Kernel::Jenkins];
    let mixed = TrafficConfig {
        seed,
        requests,
        kernels: mixed_kernels.clone(),
        mean_gap: SimTime::from_us(2),
        burst_percent: 40,
        min_payload: 12 * 1024,
        max_payload: 16 * 1024,
        ..TrafficConfig::default()
    };
    let shard_count = 4;
    let mut policy_snaps = Vec::new();
    for policy in POLICIES {
        eprintln!(
            "[cluster] mixed-kernel / {policy}: {requests} requests on {shard_count} shards..."
        );
        let (trace, tl) = if policy == RoutePolicy::KernelAffinity {
            (tracer.clone(), telemetry.clone())
        } else {
            (
                rtr_trace::Tracer::disabled(),
                rtr_telemetry::Telemetry::disabled(),
            )
        };
        let mut cluster = Cluster::new(ClusterConfig {
            kernels: mixed_kernels.clone(),
            trace,
            telemetry: tl,
            threads,
            ..ClusterConfig::uniform(SystemKind::Bit64, shard_count, policy)
        });
        let snap = cluster.run(mixed.stream());
        assert_eq!(
            snap.total.completed as usize, requests,
            "all requests served"
        );
        assert_eq!(snap.total.verify_failures, 0, "responses must verify");
        eprintln!(
            "[cluster]   makespan {}, swaps {}, hw {} / sw {}",
            snap.makespan, snap.total_swaps, snap.total.hw_items, snap.total.sw_items
        );
        policy_snaps.push((policy, snap));
    }
    let rr = &policy_snaps[0].1;
    let affinity = &policy_snaps[2].1;
    assert!(
        affinity.makespan < rr.makespan,
        "affinity makespan {} must undercut round-robin {}",
        affinity.makespan,
        rr.makespan
    );
    assert!(
        affinity.total_swaps < rr.total_swaps,
        "affinity swaps {} must undercut round-robin {}",
        affinity.total_swaps,
        rr.total_swaps
    );
    let mixed_json = Json::obj()
        .field("system", "Bit64")
        .field("shards", shard_count)
        .field("requests", requests)
        .field("seed", seed)
        .field(
            "affinity_makespan_ratio",
            affinity.makespan.as_ps() as f64 / rr.makespan.as_ps().max(1) as f64,
        )
        .field(
            "affinity_swaps_saved",
            rr.total_swaps.saturating_sub(affinity.total_swaps),
        )
        .field(
            "policies",
            Json::Arr(
                policy_snaps
                    .iter()
                    .map(|(p, s)| policy_json(*p, s))
                    .collect(),
            ),
        );

    // Experiment 2: single-kernel workload over growing shard counts.
    // Round-robin is the natural spread policy here (affinity would pin
    // everything to one shard — there is only one kernel to be loyal to).
    let single = TrafficConfig {
        seed: seed ^ 0x5CA1E,
        requests,
        kernels: vec![Kernel::PatMatch],
        mean_gap: SimTime::from_us(2),
        burst_percent: 0,
        min_payload: 512,
        max_payload: 2048,
        ..TrafficConfig::default()
    };
    let mut points = Vec::new();
    let mut throughputs = Vec::new();
    for shards in [1usize, 2, 4] {
        eprintln!("[cluster] scaling / {shards} shard(s): {requests} requests...");
        let mut cluster = Cluster::new(ClusterConfig {
            kernels: vec![Kernel::PatMatch],
            threads,
            ..ClusterConfig::uniform(SystemKind::Bit32, shards, RoutePolicy::RoundRobin)
        });
        let snap = cluster.run(single.stream());
        assert_eq!(
            snap.total.completed as usize, requests,
            "all requests served"
        );
        throughputs.push(snap.total.throughput_per_s);
        points.push(
            Json::obj()
                .field("shards", shards)
                .field("makespan_us", snap.makespan.as_us_f64())
                .field("throughput_per_s", snap.total.throughput_per_s)
                .field("total_swaps", snap.total_swaps)
                .field("peak_buffered", snap.peak_buffered),
        );
    }
    assert!(
        throughputs.windows(2).all(|w| w[0] < w[1]),
        "throughput must scale with shard count: {throughputs:?}"
    );
    let scaling_json = Json::obj()
        .field("system", "Bit32")
        .field("kernel", Kernel::PatMatch.module_name())
        .field("policy", RoutePolicy::RoundRobin.name())
        .field("requests", requests)
        .field("points", Json::Arr(points));

    // Experiment 3: the determinism contract under parallel execution.
    // One 8-shard round-robin workload runs twice — inline, then on the
    // worker pool — and the snapshots must be byte-identical; the wall
    // clock difference is the speedup the pool buys. Round-robin on a
    // fault-free pool never joins a flush for routing, so all eight
    // shards' flushes pipeline freely across the workers.
    let par_shards = 8usize;
    let par_requests = requests.max(96);
    let parallel_traffic = TrafficConfig {
        seed: seed ^ 0x9A7A_11E1,
        requests: par_requests,
        kernels: vec![Kernel::PatMatch],
        mean_gap: SimTime::from_us(1),
        burst_percent: 0,
        min_payload: 8 * 1024,
        max_payload: 16 * 1024,
        ..TrafficConfig::default()
    };
    let run_parallel = |threads: usize| {
        eprintln!(
            "[cluster] parallel / {par_requests} requests on {par_shards} shards, \
             {threads} thread(s)..."
        );
        let start = std::time::Instant::now();
        let mut cluster = Cluster::new(ClusterConfig {
            kernels: vec![Kernel::PatMatch],
            threads,
            ..ClusterConfig::uniform(SystemKind::Bit32, par_shards, RoutePolicy::RoundRobin)
        });
        let snap = cluster.run(parallel_traffic.stream());
        let wall = start.elapsed();
        assert_eq!(
            snap.total.completed as usize, par_requests,
            "all requests served"
        );
        (snap.to_json().render_pretty(), wall)
    };
    let (snap_inline, wall_inline) = run_parallel(1);
    let (snap_pool, wall_pool) = run_parallel(threads);
    assert_eq!(
        snap_inline, snap_pool,
        "parallel execution must be byte-identical to inline"
    );
    let speedup = wall_inline.as_secs_f64() / wall_pool.as_secs_f64().max(1e-9);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "[cluster]   wall {:.1} ms inline vs {:.1} ms on {threads} thread(s) — \
         {speedup:.2}x ({host_cpus} host cpu(s))",
        wall_inline.as_secs_f64() * 1e3,
        wall_pool.as_secs_f64() * 1e3
    );
    // The speedup gate only means something on hardware that can run
    // the workers concurrently: on a single-core host every thread
    // count produces the same (byte-identical, asserted above) result
    // at the same wall clock, so the gate is reported but not enforced.
    let gate_enforced = host_cpus >= 2 && threads >= 2;
    match min_speedup {
        Some(min) if gate_enforced => assert!(
            speedup >= min,
            "speedup {speedup:.2}x below the --min-speedup {min} gate \
             ({wall_inline:?} inline vs {wall_pool:?} on {threads} threads, \
             {host_cpus} host cpus)"
        ),
        Some(min) => eprintln!(
            "[cluster]   --min-speedup {min} not enforced: \
             {host_cpus} host cpu(s), {threads} worker thread(s)"
        ),
        None => {}
    }
    if let Some(path) = &snapshot_out {
        // The snapshot is pure simulated state — no wall-clock — so two
        // invocations at different thread counts must write equal bytes.
        std::fs::write(path, &snap_pool).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("[cluster] wrote {path}");
    }
    let parallel_json = Json::obj()
        .field("system", "Bit32")
        .field("shards", par_shards)
        .field("requests", par_requests)
        .field("threads", threads)
        .field("host_cpus", host_cpus)
        .field("wall_ms_threads1", wall_inline.as_secs_f64() * 1e3)
        .field("wall_ms_threadsN", wall_pool.as_secs_f64() * 1e3)
        .field("speedup", speedup)
        .field("speedup_gate_enforced", gate_enforced)
        .field("identical", true);

    let summary = Json::obj().field(
        "cluster_scenarios",
        Json::obj()
            .field("mixed_kernel", mixed_json)
            .field("scaling", scaling_json)
            .field("parallel", parallel_json),
    );
    scenario::emit("cluster", json_path.as_deref(), &summary);
    scenario::export_trace("cluster", &args, &tracer);
    scenario::export_telemetry("cluster", &args, &telemetry);
}
