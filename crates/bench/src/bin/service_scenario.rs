//! Drives the run-time reconfiguration scheduler with a reproducible
//! traffic mix on both systems and emits a machine-readable JSON
//! summary — the service-layer counterpart of the `tables` binary.
//!
//! ```text
//! service_scenario                   # both systems, default traffic
//! service_scenario --requests 96     # heavier run
//! service_scenario --json out.json   # write the summary to a file
//! ```

use rtr_bench::scenario::{self, ScenarioArgs};
use rtr_core::SystemKind;
use rtr_service::{Policy, Service, ServiceConfig, TrafficConfig};
use vp2_sim::{Json, SimTime};

fn main() {
    let args = ScenarioArgs::parse();
    let requests: usize = args.parsed_or("--requests", 48);
    let seed: u64 = args.parsed_or("--seed", 0x0007_AF1C_2026);
    let json_path = args.json_path();
    // One journal across both systems: the cost-model run of system i is
    // journaled as shard i (tracing changes no result — sim clock only).
    // Telemetry samples the same runs into the same shard-id space.
    let tracer = args.tracer();
    let telemetry = args.telemetry();

    let mut systems = Vec::new();
    for (sys_index, kind) in [SystemKind::Bit32, SystemKind::Bit64]
        .into_iter()
        .enumerate()
    {
        let traffic = TrafficConfig {
            seed,
            requests,
            kernels: Vec::new(),
            mean_gap: SimTime::from_us(20),
            burst_percent: 75,
            min_payload: 256,
            max_payload: 2048,
            ..TrafficConfig::default()
        }
        .generate();

        let mut policies = Vec::new();
        let mut makespans = Vec::new();
        for policy in [Policy::SwOnly, Policy::CostModel] {
            eprintln!("[service] {kind:?} / {policy:?}: {requests} requests...");
            let (trace, tl) = if policy == Policy::CostModel {
                (
                    tracer.with_shard(sys_index as u32),
                    telemetry.with_shard(sys_index as u32),
                )
            } else {
                (
                    rtr_trace::Tracer::disabled(),
                    rtr_telemetry::Telemetry::disabled(),
                )
            };
            let mut svc = Service::new(ServiceConfig {
                policy,
                trace,
                telemetry: tl,
                ..ServiceConfig::new(kind)
            });
            let snap = svc.process(&traffic).expect("generated traffic is sorted");
            assert_eq!(snap.verify_failures, 0, "responses must verify");
            makespans.push(snap.elapsed);
            let name = match policy {
                Policy::SwOnly => "sw_only",
                Policy::CostModel => "cost_model",
            };
            policies.push((name, snap));
        }

        let speedup = makespans[0].as_ps() as f64 / makespans[1].as_ps() as f64;
        let mut sys = Json::obj()
            .field("system", format!("{kind:?}"))
            .field("requests", requests)
            .field("seed", seed)
            .field("speedup_vs_sw_only", speedup);
        for (name, snap) in policies {
            sys = sys.field(name, snap.to_json());
        }
        systems.push(sys);
    }

    let summary = Json::obj().field("service_scenarios", Json::Arr(systems));
    scenario::emit("service", json_path.as_deref(), &summary);
    scenario::export_trace("service", &args, &tracer);
    scenario::export_telemetry("service", &args, &telemetry);
}
