//! Sweeps configuration-plane corruption rates across both systems and
//! emits a machine-readable JSON summary of throughput, latency and the
//! fault-tolerance counters — the resilience counterpart of
//! `service_scenario`.
//!
//! ```text
//! fault_scenario                    # both systems, rates {0, 1e-3, 1e-2}
//! fault_scenario --requests 96      # heavier run
//! fault_scenario --json out.json    # write the summary to a file
//! ```

use rtr_bench::scenario::{self, ScenarioArgs};
use rtr_core::SystemKind;
use rtr_service::{Service, ServiceConfig, TrafficConfig};
use vp2_sim::{Json, SimTime};

/// Corruption rates the paper-style comparison sweeps.
const RATES: [f64; 3] = [0.0, 1e-3, 1e-2];

fn main() {
    let args = ScenarioArgs::parse();
    let requests: usize = args.parsed_or("--requests", 48);
    let seed: u64 = args.parsed_or("--seed", 0x0007_AF1C_2026);
    let json_path = args.json_path();
    // One journal across the whole sweep: run (system, rate) is journaled
    // as shard `system × rates + rate_index`, so the trace shows the
    // fault plane's verify/repair ladder at every corruption level.
    // Telemetry samples the same runs into the same shard-id space.
    let tracer = args.tracer();
    let telemetry = args.telemetry();

    let mut systems = Vec::new();
    for (sys_index, kind) in [SystemKind::Bit32, SystemKind::Bit64]
        .into_iter()
        .enumerate()
    {
        let traffic = TrafficConfig {
            seed,
            requests,
            kernels: Vec::new(),
            mean_gap: SimTime::from_us(20),
            burst_percent: 75,
            min_payload: 256,
            max_payload: 2048,
            ..TrafficConfig::default()
        }
        .generate();

        let mut sweeps = Vec::new();
        let mut clean_elapsed = None;
        for (rate_index, rate) in RATES.into_iter().enumerate() {
            eprintln!("[fault] {kind:?} / rate {rate}: {requests} requests...");
            let shard = (sys_index * RATES.len() + rate_index) as u32;
            let mut svc = Service::new(ServiceConfig {
                trace: tracer.with_shard(shard),
                telemetry: telemetry.with_shard(shard),
                ..ServiceConfig::with_faults(kind, rate, seed ^ 0xFA17)
            });
            let snap = svc.process(&traffic).expect("generated traffic is sorted");
            assert_eq!(snap.completed as usize, requests, "all requests served");
            assert_eq!(snap.verify_failures, 0, "responses must verify at any rate");
            if rate == 0.0 {
                clean_elapsed = Some(snap.elapsed);
            }
            let slowdown = clean_elapsed
                .map(|clean| snap.elapsed.as_ps() as f64 / clean.as_ps().max(1) as f64)
                .unwrap_or(1.0);
            sweeps.push(
                Json::obj()
                    .field("corruption_rate", rate)
                    .field("slowdown_vs_clean", slowdown)
                    .field("metrics", snap.to_json()),
            );
        }

        systems.push(
            Json::obj()
                .field("system", format!("{kind:?}"))
                .field("requests", requests)
                .field("seed", seed)
                .field("rates", Json::Arr(sweeps)),
        );
    }

    let summary = Json::obj().field("fault_scenarios", Json::Arr(systems));
    scenario::emit("fault", json_path.as_deref(), &summary);
    scenario::export_trace("fault", &args, &tracer);
    scenario::export_telemetry("fault", &args, &telemetry);
}
