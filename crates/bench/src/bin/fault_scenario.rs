//! Sweeps configuration-plane corruption rates across both systems and
//! emits a machine-readable JSON summary of throughput, latency and the
//! fault-tolerance counters — the resilience counterpart of
//! `service_scenario`.
//!
//! ```text
//! fault_scenario                    # both systems, rates {0, 1e-3, 1e-2}
//! fault_scenario --requests 96      # heavier run
//! fault_scenario --json out.json    # write the summary to a file
//! ```

use rtr_apps::request::Kernel;
use rtr_bench::scenario::{self, ScenarioArgs};
use rtr_core::SystemKind;
use rtr_service::{
    BurstConfig, ConfigPlaneConfig, MetricsSnapshot, RetryPolicy, ScrubPolicy, Service,
    ServiceConfig, TrafficConfig,
};
use vp2_sim::{Json, SimTime};

/// Corruption rates the paper-style comparison sweeps.
const RATES: [f64; 3] = [0.0, 1e-3, 1e-2];

fn main() {
    let args = ScenarioArgs::parse();
    let requests: usize = args.parsed_or("--requests", 48);
    let seed: u64 = args.parsed_or("--seed", 0x0007_AF1C_2026);
    let json_path = args.json_path();
    // One journal across the whole sweep: run (system, rate) is journaled
    // as shard `system × rates + rate_index`, so the trace shows the
    // fault plane's verify/repair ladder at every corruption level.
    // Telemetry samples the same runs into the same shard-id space.
    let tracer = args.tracer();
    let telemetry = args.telemetry();

    let mut systems = Vec::new();
    for (sys_index, kind) in [SystemKind::Bit32, SystemKind::Bit64]
        .into_iter()
        .enumerate()
    {
        let traffic = TrafficConfig {
            seed,
            requests,
            kernels: Vec::new(),
            mean_gap: SimTime::from_us(20),
            burst_percent: 75,
            min_payload: 256,
            max_payload: 2048,
            ..TrafficConfig::default()
        }
        .generate();

        let mut sweeps = Vec::new();
        let mut clean_elapsed = None;
        for (rate_index, rate) in RATES.into_iter().enumerate() {
            eprintln!("[fault] {kind:?} / rate {rate}: {requests} requests...");
            let shard = (sys_index * RATES.len() + rate_index) as u32;
            let mut svc = Service::new(ServiceConfig {
                trace: tracer.with_shard(shard),
                telemetry: telemetry.with_shard(shard),
                ..ServiceConfig::with_faults(kind, rate, seed ^ 0xFA17)
            });
            let snap = svc.process(&traffic).expect("generated traffic is sorted");
            assert_eq!(snap.completed as usize, requests, "all requests served");
            assert_eq!(snap.verify_failures, 0, "responses must verify at any rate");
            if rate == 0.0 {
                clean_elapsed = Some(snap.elapsed);
            }
            let slowdown = clean_elapsed
                .map(|clean| snap.elapsed.as_ps() as f64 / clean.as_ps().max(1) as f64)
                .unwrap_or(1.0);
            sweeps.push(
                Json::obj()
                    .field("corruption_rate", rate)
                    .field("slowdown_vs_clean", slowdown)
                    .field("metrics", snap.to_json()),
            );
        }

        systems.push(
            Json::obj()
                .field("system", format!("{kind:?}"))
                .field("requests", requests)
                .field("seed", seed)
                .field("rates", Json::Arr(sweeps)),
        );
    }

    // ---- burst × scrub × canary sweep -------------------------------
    // Correlated ambient upsets (seeded Markov on/off bursts) against
    // the 64-bit system with the differential configuration plane on:
    // latent upsets inflate every diff, so background scrubbing has
    // something to earn back, and persistent bursts drive the quarantine
    // machinery hard enough to compare canary readmission against the
    // fixed-cooldown exit.
    let b_requests: usize = args.parsed_or("--burst-requests", 480);
    let upsets_per_us: f64 = args.parsed_or("--burst-upsets-per-us", 4.0);
    // Two hardware-strong kernels with payloads deep past the break-even
    // depth: nearly every kernel change swaps the region, so the load
    // ladder — the only path bursts can attack — runs constantly. The
    // arrival gap is sized against the ~10 ms full-region feed so batches
    // stay a handful of items instead of coalescing into one giant drain.
    let b_traffic = TrafficConfig {
        seed,
        requests: b_requests,
        kernels: vec![Kernel::Fade, Kernel::Blend],
        mean_gap: SimTime::from_us(1_000),
        burst_percent: 40,
        min_payload: 8192,
        max_payload: 16384,
        ..TrafficConfig::default()
    }
    .generate();
    // Ambient cadence for the scrub pair, sized against the load ladder:
    // quiet stretches are long enough that a *scrubbed* region's short
    // differential feed often completes untouched, while the no-scrub
    // run's larger diffs (latent upsets inflate every frame window)
    // seldom fit in a gap.
    let ambient = BurstConfig {
        mean_gap: SimTime::from_us(12_000),
        mean_burst: SimTime::from_us(2_000),
        window: 96,
        max_bits: 2,
        ..BurstConfig::new(seed ^ 0xB0B5, upsets_per_us)
    };
    // Storm cadence for the canary pair: bursts recur faster than any
    // feed window, so degraded loads pile into strikes and the quarantine
    // exit strategy — verified probe versus worst-case wait — is what
    // separates the runs.
    let storm = BurstConfig {
        mean_gap: SimTime::from_us(1_600),
        mean_burst: SimTime::from_us(400),
        window: 96,
        max_bits: 2,
        ..BurstConfig::new(seed ^ 0xB0B5, upsets_per_us)
    };
    // A full sweep of the ~976-frame region every ~6 ms — well inside the
    // inter-swap interval, so a scrubbed region carries only the last few
    // milliseconds of upsets into the next differential load.
    let scrub = ScrubPolicy {
        period: SimTime::from_us(1_500),
        frames_per_pass: 244,
    };
    // One full feed, one targeted repair pass, then degrade: the bench
    // models an impatient platform so the degraded-load counter is a
    // sensitive probe of how dirty the region was when the load started.
    let retry = RetryPolicy {
        max_attempts: 1,
        max_repairs_per_attempt: 1,
        backoff: SimTime::from_us(50),
    };
    // The canary runs probe their way back after a short base cooldown
    // (backoff doubles it per failed probe, up to the cap); the fixed-
    // cooldown run models the conservative alternative — no verified
    // probe gate, so the cooldown must be sized for the worst burst,
    // i.e. the same value the canary only ever backs off *to*.
    let base_cooldown = SimTime::from_ms(5);
    let cooldown_cap = SimTime::from_ms(400);
    let shard_base = (2 * RATES.len()) as u32;
    let run = |label: &str,
               shard: u32,
               burst: Option<BurstConfig>,
               scrub: Option<ScrubPolicy>,
               canary: bool,
               cooldown: SimTime,
               cap: SimTime|
     -> MetricsSnapshot {
        eprintln!("[fault] burst sweep / {label}: {b_requests} requests...");
        let mut svc = Service::new(ServiceConfig {
            plane: ConfigPlaneConfig {
                cache_capacity: 16,
                differential: true,
                compress: false,
                slot_widths: Vec::new(),
            },
            quarantine_cooldown: cooldown,
            quarantine_cooldown_cap: cap,
            canary,
            burst,
            retry,
            scrub,
            trace: tracer.with_shard(shard_base + shard),
            telemetry: telemetry.with_shard(shard_base + shard),
            ..ServiceConfig::new(SystemKind::Bit64)
        });
        let snap = svc
            .process(&b_traffic)
            .expect("generated traffic is sorted");
        assert_eq!(snap.completed as usize, b_requests, "all requests served");
        assert_eq!(
            snap.verify_failures, 0,
            "responses must verify under bursts"
        );
        snap
    };
    // The scrub pair runs with a near-inert quarantine (tiny cooldown and
    // cap) so load attempts keep flowing all run long: the degraded-load
    // counters then measure how dirty the region was at each load, not
    // how long the quarantine suppressed loading.
    let probe_cooldown = SimTime::from_ms(1);
    let probe_cap = SimTime::from_ms(4);
    let noscrub = run(
        "ambient burst, no scrub",
        0,
        Some(ambient),
        None,
        true,
        probe_cooldown,
        probe_cap,
    );
    let scrubbed = run(
        "ambient burst, scrub",
        1,
        Some(ambient),
        Some(scrub),
        true,
        probe_cooldown,
        probe_cap,
    );
    // The canary pair compares quarantine-exit strategies under the same
    // storm: verified probes from a short base cooldown versus riding out
    // the full worst-case cooldown on every entry.
    let canary_run = run(
        "storm burst, canary exit",
        2,
        Some(storm),
        None,
        true,
        base_cooldown,
        cooldown_cap,
    );
    let fixed = run(
        "storm burst, fixed cooldown exit",
        3,
        Some(storm),
        None,
        false,
        cooldown_cap,
        cooldown_cap,
    );
    // The inert-plan identity: a rate-0 burst plan with scrubbing off
    // must leave no trace at all — byte-identical JSON to a run with no
    // plan installed.
    let plain = run(
        "no burst (identity reference)",
        4,
        None,
        None,
        true,
        base_cooldown,
        cooldown_cap,
    );
    let zero = run(
        "rate-0 burst (identity probe)",
        5,
        Some(BurstConfig::new(seed ^ 0xB0B5, 0.0)),
        None,
        true,
        base_cooldown,
        cooldown_cap,
    );
    let rate0_identical = plain.to_json().render() == zero.to_json().render();

    let claim_scrub = scrubbed.degraded_loads < noscrub.degraded_loads;
    let claim_canary = canary_run.quarantined_batches < fixed.quarantined_batches;
    eprintln!(
        "[fault] degraded loads: scrub {} vs no-scrub {} | quarantined batches: \
         canary {} vs fixed {} | rate-0 identical: {rate0_identical}",
        scrubbed.degraded_loads,
        noscrub.degraded_loads,
        canary_run.quarantined_batches,
        fixed.quarantined_batches
    );
    let burst_runs = [
        ("burst_noscrub", &noscrub),
        ("burst_scrub", &scrubbed),
        ("burst_canary_exit", &canary_run),
        ("burst_fixed_exit", &fixed),
    ]
    .into_iter()
    .map(|(label, snap)| {
        Json::obj()
            .field("config", label)
            .field("metrics", snap.to_json())
    })
    .collect();
    let summary = Json::obj()
        .field("fault_scenarios", Json::Arr(systems))
        .field(
            "burst_sweep",
            Json::obj()
                .field("system", "Bit64")
                .field("requests", b_requests)
                .field("seed", seed)
                .field("upsets_per_us", upsets_per_us)
                .field("runs", Json::Arr(burst_runs))
                .field(
                    "claims",
                    Json::obj()
                        .field("scrub_beats_noscrub", claim_scrub)
                        .field("canary_beats_fixed", claim_canary)
                        .field("rate0_identical", rate0_identical),
                ),
        );
    scenario::emit("fault", json_path.as_deref(), &summary);
    scenario::export_trace("fault", &args, &tracer);
    scenario::export_telemetry("fault", &args, &telemetry);
    assert!(rate0_identical, "a rate-0 burst plan must leave no trace");
    assert!(
        claim_scrub,
        "scrubbing must keep degraded loads below the no-scrub run \
         ({} vs {})",
        scrubbed.degraded_loads, noscrub.degraded_loads
    );
    assert!(
        claim_canary,
        "canary readmission must hold fewer batches in quarantine than \
         the fixed cooldown ({} vs {})",
        canary_run.quarantined_batches, fixed.quarantined_batches
    );
}
