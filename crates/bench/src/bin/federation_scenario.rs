//! Drives the multi-cluster federation tier over a skewed, bursty,
//! deadline-carrying workload and emits a machine-readable JSON summary.
//!
//! One workload, three heterogeneous pools (all-Bit32, all-Bit64 and a
//! mixed pool), two experiments — all seeded and deterministic:
//!
//! * **policy**: the same Zipf-skewed flash-crowd stream under
//!   round-robin-over-pools and cost-model routing. Cost-model routing
//!   must beat round-robin on both federated makespan and deadline-lane
//!   p99 (asserted — placement matters exactly as much as the paper's
//!   32-vs-64-bit reconfiguration numbers say), and the flash crowd
//!   must engage work stealing (steal count > 0, asserted). The policy
//!   asserts fire on the reference workload (default `--requests`,
//!   `--seed` and watermarks — the CI gate); custom runs only report.
//! * **parallel**: the cost-model run executed inline and on the
//!   `--threads` worker pool; the federated snapshots must be
//!   byte-identical (asserted — the determinism contract).
//!
//! ```text
//! federation_scenario                    # default workload, inline
//! federation_scenario --requests 180     # heavier run
//! federation_scenario --threads 4        # pooled shard flushes
//! federation_scenario --snapshot-out s.json  # federated snapshot (for cmp)
//! federation_scenario --journal base     # streamed per-shard journals
//! federation_scenario --telemetry base   # streamed per-shard time-series
//! federation_scenario --json out.json    # write the summary to a file
//! ```

use rtr_apps::request::Kernel;
use rtr_bench::scenario::{self, ScenarioArgs};
use rtr_cluster::{ClusterConfig, RoutePolicy, ShardSpec};
use rtr_core::SystemKind;
use rtr_federation::{FedPolicy, Federation, FederationConfig, FederationSnapshot};
use rtr_service::{FlashCrowd, TrafficConfig};
use vp2_sim::{Json, SimTime};

/// The three heterogeneous pools: an all-Bit32 pool (order-of-magnitude
/// costlier reconfiguration, no SHA-1 hardware), an all-Bit64 pool, and
/// a mixed pool. Inner routing is least-loaded on stale estimates, so
/// the pools stay pipelined under any thread count.
fn pool_configs(threads: usize) -> Vec<ClusterConfig> {
    let pool = |shards: Vec<ShardSpec>| ClusterConfig {
        shards,
        kernels: vec![Kernel::Sha1, Kernel::Brightness, Kernel::Jenkins],
        stale_estimates: true,
        threads,
        ..ClusterConfig::uniform(SystemKind::Bit32, 1, RoutePolicy::LeastLoaded)
    };
    vec![
        pool(vec![
            ShardSpec::new(SystemKind::Bit32),
            ShardSpec::new(SystemKind::Bit32),
        ]),
        pool(vec![
            ShardSpec::new(SystemKind::Bit64),
            ShardSpec::new(SystemKind::Bit64),
        ]),
        pool(vec![
            ShardSpec::new(SystemKind::Bit32),
            ShardSpec::new(SystemKind::Bit64),
        ]),
    ]
}

fn fed_summary_json(snap: &FederationSnapshot) -> Json {
    Json::obj()
        .field("policy", snap.policy.name())
        .field("makespan_us", snap.makespan.as_us_f64())
        .field("steal_events", snap.steal_events)
        .field("stolen", snap.stolen)
        .field("sheds", snap.sheds)
        .field(
            "latency_p99_deadline_us",
            snap.total.latency_p99_deadline.as_us_f64(),
        )
        .field(
            "latency_p99_effort_us",
            snap.total.latency_p99_effort.as_us_f64(),
        )
        .field("federation", snap.to_json())
}

fn main() {
    let args = ScenarioArgs::parse();
    let requests: usize = args.parsed_or("--requests", 120);
    let seed: u64 = args.parsed_or("--seed", 0xFED_2026);
    let shed_watermark: usize = args.parsed_or("--shed-watermark", 9);
    let steal_watermark: usize = args.parsed_or("--steal-watermark", 12);
    let threads = args.threads();
    let snapshot_out = args.value_of("--snapshot-out");
    let json_path = args.json_path();
    let tracer = args.tracer();
    let telemetry = args.telemetry();

    // Zipf-skewed mix with SHA-1 as the hottest kernel — the one kernel
    // that has *no* hardware path on Bit32 regions, so pool choice (not
    // just hw-vs-sw) decides its cost. A quarter of the stream carries
    // deadlines, and a flash crowd in the middle third compresses gaps
    // 16x and hammers SHA-1 — the hot-kernel imbalance work stealing
    // exists for.
    let traffic = TrafficConfig {
        seed,
        requests,
        kernels: vec![Kernel::Sha1, Kernel::Brightness, Kernel::Jenkins],
        mean_gap: SimTime::from_us(40),
        burst_percent: 30,
        min_payload: 4 * 1024,
        max_payload: 12 * 1024,
        deadline_percent: 25,
        deadline_budget: SimTime::from_ms(2),
        zipf_skew: 1.1,
        flash: Some(FlashCrowd {
            start: requests / 3,
            len: requests / 3,
            gap_divisor: 16,
        }),
        ..TrafficConfig::default()
    };

    let run = |policy: FedPolicy,
               threads: usize,
               trace: rtr_trace::Tracer,
               telemetry: rtr_telemetry::Telemetry| {
        eprintln!(
            "[federation] {policy}: {requests} requests over 3 pools, {threads} thread(s)..."
        );
        let mut fed = Federation::new(FederationConfig {
            policy,
            shed_watermark,
            steal_watermark,
            steal_batch: 3,
            steal_budget: u64::MAX,
            trace,
            telemetry,
            ..FederationConfig::new(pool_configs(threads))
        });
        let snap = fed.run(traffic.stream());
        assert_eq!(
            snap.total.completed as usize, requests,
            "all requests served"
        );
        assert_eq!(snap.total.verify_failures, 0, "responses must verify");
        eprintln!(
            "[federation]   makespan {}, deadline p99 {}, stolen {} ({} events), shed {}",
            snap.makespan,
            snap.total.latency_p99_deadline,
            snap.stolen,
            snap.steal_events,
            snap.sheds
        );
        for pool in &snap.pools {
            eprintln!(
                "[federation]   pool {}: routed {:>3}, makespan {}, swaps {}",
                pool.id, pool.routed, pool.cluster.makespan, pool.cluster.total_swaps
            );
        }
        snap
    };

    // Experiment 1: placement policy. Round-robin sprays a third of the
    // SHA-1-heavy stream onto the Bit32 pool, where it can only run in
    // software; cost-model routing prices each pool's queueing delay
    // plus its per-kernel serving estimate (reconfiguration EWMA
    // amortized over a flush batch) and keeps SHA-1 on 64-bit regions.
    let rr = run(
        FedPolicy::RoundRobin,
        threads,
        rtr_trace::Tracer::disabled(),
        rtr_telemetry::Telemetry::disabled(),
    );
    let cost = run(
        FedPolicy::CostModel,
        threads,
        tracer.clone(),
        telemetry.clone(),
    );
    // The headline claims are asserted on the reference workload (the
    // CI gate); custom --requests/--seed/watermark runs only report, so
    // the bin stays usable for exploration. Determinism is asserted
    // unconditionally below — it must hold for every workload.
    let reference =
        requests == 120 && seed == 0xFED_2026 && shed_watermark == 9 && steal_watermark == 12;
    if reference {
        assert!(
            cost.makespan < rr.makespan,
            "cost-model makespan {} must undercut round-robin {}",
            cost.makespan,
            rr.makespan
        );
        assert!(
            cost.total.latency_p99_deadline < rr.total.latency_p99_deadline,
            "cost-model deadline p99 {} must undercut round-robin {}",
            cost.total.latency_p99_deadline,
            rr.total.latency_p99_deadline
        );
        assert!(
            cost.steal_events > 0,
            "the flash crowd must engage work stealing"
        );
        assert!(
            cost.sheds > 0,
            "the backed-up home pool must shed deadline traffic"
        );
    }

    // Experiment 2: the determinism contract — the same cost-model run
    // inline must match the pooled run above byte-for-byte.
    let inline = run(
        FedPolicy::CostModel,
        1,
        rtr_trace::Tracer::disabled(),
        rtr_telemetry::Telemetry::disabled(),
    );
    let snap_pool = cost.to_json().render_pretty();
    let snap_inline = inline.to_json().render_pretty();
    assert_eq!(
        snap_inline, snap_pool,
        "federated snapshot must be byte-identical at any thread count"
    );
    if let Some(path) = &snapshot_out {
        // Pure simulated state — no wall clock — so invocations at
        // different thread counts must write equal bytes.
        std::fs::write(path, &snap_pool).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("[federation] wrote {path}");
    }

    let summary = Json::obj().field(
        "federation_scenarios",
        Json::obj()
            .field("requests", requests)
            .field("seed", seed)
            .field("threads", threads)
            .field("pool_count", 3u64)
            .field(
                "cost_model_beats_round_robin",
                cost.makespan < rr.makespan
                    && cost.total.latency_p99_deadline < rr.total.latency_p99_deadline,
            )
            .field("steal_engaged", cost.steal_events > 0)
            .field("shed_engaged", cost.sheds > 0)
            .field("identical", true)
            .field(
                "makespan_ratio",
                cost.makespan.as_ps() as f64 / rr.makespan.as_ps().max(1) as f64,
            )
            .field("round_robin", fed_summary_json(&rr))
            .field("cost_model", fed_summary_json(&cost)),
    );
    scenario::emit("federation", json_path.as_deref(), &summary);
    scenario::export_trace("federation", &args, &tracer);
    scenario::export_telemetry("federation", &args, &telemetry);
}
