//! Compares the batch-scheduling policies on one interleaved
//! mixed-kernel workload and emits a machine-readable JSON summary —
//! the scheduling counterpart of `service_scenario`.
//!
//! One seeded arrival schedule, three services that differ only in
//! [`BatchPolicy`]:
//!
//! * **fcfs_drain** — drain the queue whose head arrived earliest (the
//!   pre-policy baseline).
//! * **swap_aware** — stay with the resident module until another
//!   kernel's queue matures past its break-even depth, where maturity
//!   charges a round trip (swap there and back) whenever switching
//!   would strand live resident work. Must beat FCFS on both makespan
//!   and swap count (asserted; CI greps the `swap_aware_beats_fcfs`
//!   field).
//! * **lanes** — priority/deadline scheduling over the same traffic,
//!   which carries a slice of deadline and high-priority requests. The
//!   summary reports how many deadlines each policy met so the lanes
//!   win is visible, not just asserted.
//!
//! The swap-aware run is journaled when `--trace`/`--profile` is given,
//! so every scheduler decision (candidate set + chosen kernel) lands in
//! the export for `trace_lint` to check.
//!
//! ```text
//! sched_scenario                   # default workload
//! sched_scenario --requests 128    # heavier run
//! sched_scenario --json out.json   # write the summary to a file
//! ```

use rtr_apps::request::{Kernel, Request};
use rtr_bench::scenario::{self, ScenarioArgs};
use rtr_core::SystemKind;
use rtr_service::{BatchPolicy, MetricsSnapshot, Service, ServiceConfig, TrafficConfig};
use rtr_trace::Tracer;
use vp2_sim::{Json, SimTime};

/// Runs one service under the given policy over the shared schedule.
fn run(
    kind: SystemKind,
    kernels: &[Kernel],
    batch: BatchPolicy,
    schedule: &[(SimTime, Request)],
    trace: Tracer,
    telemetry: rtr_telemetry::Telemetry,
) -> MetricsSnapshot {
    let mut svc = Service::new(ServiceConfig {
        batch,
        kernels: kernels.to_vec(),
        trace,
        telemetry,
        ..ServiceConfig::new(kind)
    });
    let snap = svc.process(schedule).expect("generated traffic is sorted");
    assert_eq!(
        snap.completed as usize,
        schedule.len(),
        "all requests served"
    );
    assert_eq!(snap.verify_failures, 0, "responses must verify");
    snap
}

fn main() {
    let args = ScenarioArgs::parse();
    let requests: usize = args.parsed_or("--requests", 128);
    let seed: u64 = args.parsed_or("--seed", 0x0007_AF1C_2026);
    let json_path = args.json_path();
    let tracer = args.tracer();
    let telemetry = args.telemetry();

    // Interleaved mix on the 64-bit system, tuned to the band where the
    // policies genuinely diverge. PatMatch is the anchor: its software
    // fallback is catastrophic (~100x), so it earns and holds the
    // region. Sha1 is the competitor: hardware saves ~2.8 ms per 8-16 KB
    // item against a ~6 ms reconfiguration, so a shallow sha1 batch
    // tempts FCFS into a swap that barely pays one way and not at all
    // once the region swaps back. Jenkins is ballast — software is
    // nearly free, hardware never pays. At a ~3.2 ms mean gap the
    // service runs near capacity: queues are deep enough to mature but
    // the backlog never drowns the decision (in deep overload every
    // policy degenerates to FCFS-among-mature and the comparison says
    // nothing). A slice of the traffic carries deadlines and high
    // priority so the lanes run has something to reorder (the other
    // policies see the very same requests and simply ignore the lane).
    let kernels = vec![Kernel::PatMatch, Kernel::Sha1, Kernel::Jenkins];
    let traffic = TrafficConfig {
        seed,
        requests,
        kernels: kernels.clone(),
        mean_gap: SimTime::from_us(3200),
        burst_percent: 0,
        min_payload: 8 * 1024,
        max_payload: 16 * 1024,
        deadline_percent: 20,
        deadline_budget: SimTime::from_ms(10),
        high_percent: 10,
        ..TrafficConfig::default()
    }
    .generate();

    let policies = [
        BatchPolicy::FcfsDrain,
        BatchPolicy::swap_aware(),
        BatchPolicy::Lanes,
    ];
    let mut snaps = Vec::new();
    for batch in policies {
        eprintln!("[sched] {} / {requests} requests...", batch.name());
        let (trace, tl) = if batch == BatchPolicy::swap_aware() {
            (tracer.clone(), telemetry.clone())
        } else {
            (Tracer::disabled(), rtr_telemetry::Telemetry::disabled())
        };
        let snap = run(SystemKind::Bit64, &kernels, batch, &traffic, trace, tl);
        eprintln!(
            "[sched]   makespan {}, swaps {}, hw {} / sw {}, deadlines {} met / {} missed",
            snap.elapsed,
            snap.swaps,
            snap.hw_items,
            snap.sw_items,
            snap.deadline_met,
            snap.deadline_missed
        );
        snaps.push((batch, snap));
    }
    let fcfs = &snaps[0].1;
    let swap = &snaps[1].1;
    let lanes = &snaps[2].1;

    // The headline claim, asserted here and re-checked by CI on the
    // JSON: swap-aware strictly beats the FCFS baseline on makespan AND
    // on ICAP traffic for the interleaved mix.
    assert!(
        swap.elapsed < fcfs.elapsed,
        "swap-aware makespan {} must undercut fcfs {}",
        swap.elapsed,
        fcfs.elapsed
    );
    assert!(
        swap.swaps < fcfs.swaps,
        "swap-aware swaps {} must undercut fcfs {}",
        swap.swaps,
        fcfs.swaps
    );

    // Same seed, same policy: the rerun must be byte-identical (the
    // journal is off for the rerun, which must not matter).
    let rerun = run(
        SystemKind::Bit64,
        &kernels,
        BatchPolicy::swap_aware(),
        &traffic,
        Tracer::disabled(),
        rtr_telemetry::Telemetry::disabled(),
    );
    assert_eq!(
        rerun.to_json().render(),
        swap.to_json().render(),
        "equal seeds must give byte-identical results"
    );

    let summary = Json::obj().field(
        "sched_scenario",
        Json::obj()
            .field("system", "Bit64")
            .field("requests", requests)
            .field("seed", seed)
            .field(
                "kernels",
                Json::Arr(
                    kernels
                        .iter()
                        .map(|k| Json::Str(k.module_name().into()))
                        .collect(),
                ),
            )
            .field("swap_aware_beats_fcfs", true)
            .field(
                "swap_aware_makespan_ratio",
                swap.elapsed.as_ps() as f64 / fcfs.elapsed.as_ps().max(1) as f64,
            )
            .field("swap_aware_swaps_saved", fcfs.swaps - swap.swaps)
            .field(
                "lanes_deadline_misses_vs_fcfs",
                Json::obj()
                    .field("lanes", lanes.deadline_missed)
                    .field("fcfs_drain", fcfs.deadline_missed),
            )
            .field(
                "policies",
                Json::Arr(
                    snaps
                        .iter()
                        .map(|(p, s)| {
                            Json::obj()
                                .field("policy", p.name())
                                .field("metrics", s.to_json())
                        })
                        .collect(),
                ),
            ),
    );
    scenario::emit("sched", json_path.as_deref(), &summary);
    scenario::export_trace("sched", &args, &tracer);
    scenario::export_telemetry("sched", &args, &telemetry);
}
