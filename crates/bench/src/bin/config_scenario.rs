//! Exercises the configuration plane — bitstream cache, differential
//! frame compression, multi-module sub-slots — and asserts its headline
//! claims, emitting a machine-readable JSON summary (the configuration
//! counterpart of `sched_scenario`).
//!
//! Four claims, each asserted here and re-checkable by CI on the JSON:
//!
//! * **Differential + cache win** — on a repeated-swap workload the warm
//!   plane (cache + differential + compression) moves strictly fewer
//!   ICAP words and spends strictly less total reconfiguration time
//!   than the plane-off path.
//! * **Multi-module win** — two slot-sized kernels alternating in a
//!   two-slot floorplan complete with strictly fewer full-region swaps
//!   than the same alternation through one region-wide slot (repeat
//!   loads are dock re-activations, zero ICAP traffic).
//! * **Determinism** — equal seeds give byte-identical service JSON,
//!   plane on or off, journaled or not.
//! * **Baseline identity** — FCFS with every plane feature off renders
//!   byte-identical JSON to the default service configuration and
//!   carries no `configplane` section: the plane's off state is the
//!   pre-plane service, not a new code path.
//!
//! The warm service run and the manager-level sub-slot runs are
//! journaled when `--trace`/`--profile` is given, so the cache-lookup /
//! diff-swap / slot-activate / slot-evict instants land in the export
//! for `trace_lint` to check.
//!
//! ```text
//! config_scenario                   # default workload
//! config_scenario --swaps 16        # longer alternation
//! config_scenario --json out.json   # write the summary to a file
//! ```

use rtr_apps::request::{component_for, component_for_slot, factory_for, Kernel, Request};
use rtr_bench::scenario::{self, ScenarioArgs};
use rtr_configplane::{ConfigPlaneConfig, ConfigPlaneStats};
use rtr_core::{build_system, LoadOutcome, ModuleManager, SystemKind};
use rtr_service::{BatchPolicy, MetricsSnapshot, Service, ServiceConfig};
use rtr_trace::Tracer;
use vp2_sim::{Json, SimTime, SplitMix64};

/// What one manager-level alternation run cost.
struct SwapRun {
    /// Cumulative reconfiguration time.
    reconfig_time: SimTime,
    /// Words shifted through the ICAP over the whole run.
    icap_words: u64,
    /// Full (bitstream-feeding) swaps performed.
    reconfigurations: u64,
    /// The plane's own counters.
    stats: ConfigPlaneStats,
}

/// Boots a machine + manager under `plane`, registers `kernels` (sized to
/// `slot_width` columns when given, region-wide otherwise) and loads them
/// in rotation `loads` times. Every load must end verified — this is a
/// fault-free fabric.
fn alternating_loads(
    kind: SystemKind,
    plane: ConfigPlaneConfig,
    slot_width: Option<u16>,
    kernels: &[Kernel],
    loads: usize,
    tracer: Tracer,
) -> SwapRun {
    let mut machine = build_system(kind);
    let mut mgr = ModuleManager::new(kind);
    mgr.configure_plane(plane).expect("valid slot plan");
    mgr.set_tracer(tracer);
    for &k in kernels {
        let comp = match slot_width {
            Some(w) => component_for_slot(k, kind, w).expect("kernel fits the sub-slot"),
            None => component_for(k, kind).expect("kernel has a hardware form"),
        };
        mgr.register(comp, (0, 0), factory_for(k))
            .expect("registration links");
    }
    for i in 0..loads {
        let k = kernels[i % kernels.len()];
        let out = mgr
            .load(&mut machine, k.module_name())
            .expect("known module");
        assert!(
            !matches!(out, LoadOutcome::Degraded { .. }),
            "fault-free loads must verify"
        );
    }
    SwapRun {
        reconfig_time: mgr.total_reconfig_time,
        icap_words: machine.platform.icap.words_shifted,
        reconfigurations: mgr.reconfigurations,
        stats: mgr.plane_stats(),
    }
}

/// One round of the repeated-swap service workload: a pattern-matching
/// batch then a deep fade batch. Both amortize a cold swap, so every
/// round forces a swap to fade and (next round) back to pattern matching.
fn service_round(seed: u64) -> Vec<(SimTime, Request)> {
    let mut rng = SplitMix64::new(seed);
    let mut sched = Vec::new();
    for i in 0..6 {
        sched.push((
            SimTime::from_ns(i),
            Request::synthetic(Kernel::PatMatch, 1024, &mut rng),
        ));
    }
    for i in 6..16 {
        sched.push((
            SimTime::from_ns(i),
            Request::synthetic(Kernel::Fade, 16384, &mut rng),
        ));
    }
    sched
}

/// Serves `rounds` rounds of the repeated-swap workload under `plane` and
/// returns the lifetime snapshot.
fn run_service(
    plane: ConfigPlaneConfig,
    rounds: usize,
    round: &[(SimTime, Request)],
    trace: Tracer,
    telemetry: rtr_telemetry::Telemetry,
) -> MetricsSnapshot {
    let mut svc = Service::new(ServiceConfig {
        kernels: vec![Kernel::PatMatch, Kernel::Fade],
        plane,
        trace,
        telemetry,
        ..ServiceConfig::new(SystemKind::Bit32)
    });
    for _ in 0..rounds {
        let snap = svc.process(round).expect("sorted schedule");
        assert_eq!(snap.completed as usize, round.len(), "all requests served");
        assert_eq!(snap.verify_failures, 0, "responses must verify");
    }
    svc.lifetime()
}

fn main() {
    let args = ScenarioArgs::parse();
    let loads: usize = args.parsed_or("--swaps", 8);
    let rounds: usize = args.parsed_or("--rounds", 3);
    let seed: u64 = args.parsed_or("--seed", 11);
    let json_path = args.json_path();
    let tracer = args.tracer();
    // Telemetry covers the service-level warm run (claim 3) — the only
    // stage with a service to sample.
    let telemetry = args.telemetry();
    let kind = SystemKind::Bit32;

    // ------------------------------------------------------------------
    // Claim 1 — differential + cache strictly cut time and ICAP words.
    // Region-wide pattern-match / fade alternation: every load is a real
    // swap, so the plane-off run pays the full image each time while the
    // warm plane diffs, compresses, and (from the second lap) replays
    // cached transfer images.
    // ------------------------------------------------------------------
    let full_kernels = [Kernel::PatMatch, Kernel::Fade];
    eprintln!("[config] {loads} alternating region-wide swaps, plane off...");
    let cold = alternating_loads(
        kind,
        ConfigPlaneConfig::default(),
        None,
        &full_kernels,
        loads,
        Tracer::disabled(),
    );
    eprintln!("[config] {loads} alternating region-wide swaps, plane on...");
    let warm = alternating_loads(
        kind,
        ConfigPlaneConfig::full(),
        None,
        &full_kernels,
        loads,
        tracer.with_shard(1),
    );
    assert!(
        warm.reconfig_time < cold.reconfig_time,
        "differential + cache must cut total reconfiguration time: {} vs {}",
        warm.reconfig_time,
        cold.reconfig_time
    );
    assert!(
        warm.icap_words < cold.icap_words,
        "differential + cache must move fewer ICAP words: {} vs {}",
        warm.icap_words,
        cold.icap_words
    );
    assert!(warm.stats.cache_hits >= 1, "repeat transitions replay");
    assert!(warm.stats.diff_ratio() < 1.0, "diffing must drop words");
    eprintln!(
        "[config]   time {} -> {} ({:.1}%), words {} -> {} ({:.1}%), {} cache hits",
        cold.reconfig_time,
        warm.reconfig_time,
        100.0 * warm.reconfig_time.as_ps() as f64 / cold.reconfig_time.as_ps().max(1) as f64,
        cold.icap_words,
        warm.icap_words,
        100.0 * warm.icap_words as f64 / cold.icap_words.max(1) as f64,
        warm.stats.cache_hits
    );

    // ------------------------------------------------------------------
    // Claim 2 — a two-slot floorplan turns repeat loads into dock
    // re-activations. Same two slot-sized kernels, same alternation;
    // only the floorplan differs. (Other plane features stay off so the
    // comparison isolates the sub-slots.)
    // ------------------------------------------------------------------
    let slot_kernels = [Kernel::Jenkins, Kernel::Brightness];
    let slot_width = kind.region().width() / 2;
    eprintln!("[config] {loads} alternating loads through one region-wide slot...");
    let single = alternating_loads(
        kind,
        ConfigPlaneConfig::default(),
        Some(slot_width),
        &slot_kernels,
        loads,
        Tracer::disabled(),
    );
    eprintln!("[config] {loads} alternating loads across two {slot_width}-column sub-slots...");
    let multi = alternating_loads(
        kind,
        ConfigPlaneConfig {
            slot_widths: vec![slot_width, slot_width],
            ..ConfigPlaneConfig::default()
        },
        Some(slot_width),
        &slot_kernels,
        loads,
        tracer.with_shard(2),
    );
    assert!(
        multi.reconfigurations < single.reconfigurations,
        "co-residency must need fewer full swaps: {} vs {}",
        multi.reconfigurations,
        single.reconfigurations
    );
    assert_eq!(
        multi.reconfigurations as usize,
        slot_kernels.len(),
        "each kernel configures its sub-slot exactly once"
    );
    assert_eq!(
        multi.stats.activations as usize,
        loads - slot_kernels.len(),
        "every repeat load is a zero-ICAP re-activation"
    );
    assert!(multi.icap_words < single.icap_words);
    eprintln!(
        "[config]   full swaps {} -> {}, {} activations",
        single.reconfigurations, multi.reconfigurations, multi.stats.activations
    );

    // A third slot-sized kernel forces LRU eviction in the two-slot plan,
    // putting the slot-evict instant into the journal as well.
    let evict = alternating_loads(
        kind,
        ConfigPlaneConfig {
            slot_widths: vec![slot_width, slot_width],
            ..ConfigPlaneConfig::default()
        },
        Some(slot_width),
        &[Kernel::Jenkins, Kernel::Brightness, Kernel::Blend],
        3,
        tracer.with_shard(3),
    );
    assert_eq!(evict.stats.slot_evictions, 1, "third tenant displaces one");

    // ------------------------------------------------------------------
    // Claim 3 — the service-level win, plus determinism. The warm run is
    // journaled; the rerun is not, and tracing must not change a byte.
    // ------------------------------------------------------------------
    let round = service_round(seed);
    eprintln!("[config] service: {rounds} repeated-swap rounds, plane off...");
    let svc_cold = run_service(
        ConfigPlaneConfig::default(),
        rounds,
        &round,
        Tracer::disabled(),
        rtr_telemetry::Telemetry::disabled(),
    );
    eprintln!("[config] service: {rounds} repeated-swap rounds, plane on...");
    let svc_warm = run_service(
        ConfigPlaneConfig::full(),
        rounds,
        &round,
        tracer.with_shard(0),
        telemetry.with_shard(0),
    );
    assert!(svc_cold.plane.is_none(), "plane off exports no counters");
    let plane_stats = svc_warm.plane.expect("plane on exports counters");
    assert!(svc_cold.swaps >= 1 && svc_warm.swaps >= 1);
    // Cheap swaps change the cost model's decisions (that is the point),
    // so the robust cross-run comparison is the mean cost per swap.
    let mean_swap = |s: &MetricsSnapshot| s.reconfig_time.as_ps() / s.swaps;
    assert!(
        mean_swap(&svc_warm) < mean_swap(&svc_cold),
        "the plane must shrink the mean swap cost: {} vs {}",
        mean_swap(&svc_warm),
        mean_swap(&svc_cold)
    );
    assert!(plane_stats.words_sent < plane_stats.words_full);
    let rerun = run_service(
        ConfigPlaneConfig::full(),
        rounds,
        &round,
        Tracer::disabled(),
        rtr_telemetry::Telemetry::disabled(),
    );
    assert_eq!(
        rerun.to_json().render(),
        svc_warm.to_json().render(),
        "equal seeds must give byte-identical results"
    );
    eprintln!(
        "[config]   mean swap {} -> {} ps, diff ratio {:.3}, {} cache hits",
        mean_swap(&svc_cold),
        mean_swap(&svc_warm),
        plane_stats.diff_ratio(),
        plane_stats.cache_hits
    );

    // ------------------------------------------------------------------
    // Claim 4 — every feature off is the pre-plane service, bit for bit.
    // ------------------------------------------------------------------
    let baseline = run_service(
        ConfigPlaneConfig::default(),
        1,
        &round,
        Tracer::disabled(),
        rtr_telemetry::Telemetry::disabled(),
    );
    let mut svc = Service::new(ServiceConfig {
        kernels: vec![Kernel::PatMatch, Kernel::Fade],
        batch: BatchPolicy::FcfsDrain,
        plane: ConfigPlaneConfig::default(),
        ..ServiceConfig::new(kind)
    });
    svc.process(&round).expect("sorted schedule");
    let explicit = svc.lifetime();
    assert_eq!(
        explicit.to_json().render(),
        baseline.to_json().render(),
        "plane-off FCFS must match the default service byte for byte"
    );
    assert!(
        !baseline.to_json().render().contains("\"configplane\""),
        "the off state must not grow a configplane section"
    );

    let summary = Json::obj().field(
        "config_scenario",
        Json::obj()
            .field("system", format!("{kind:?}"))
            .field("swaps", loads)
            .field("rounds", rounds)
            .field("seed", seed)
            .field("plane_beats_baseline", true)
            .field(
                "differential",
                Json::obj()
                    .field("cold_reconfig_us", cold.reconfig_time.as_us_f64())
                    .field("warm_reconfig_us", warm.reconfig_time.as_us_f64())
                    .field("cold_icap_words", cold.icap_words)
                    .field("warm_icap_words", warm.icap_words)
                    .field(
                        "word_ratio",
                        warm.icap_words as f64 / cold.icap_words.max(1) as f64,
                    )
                    .field("cache_hits", warm.stats.cache_hits)
                    .field("diff_ratio", warm.stats.diff_ratio()),
            )
            .field(
                "multi_module",
                Json::obj()
                    .field("single_full_swaps", single.reconfigurations)
                    .field("multi_full_swaps", multi.reconfigurations)
                    .field("activations", multi.stats.activations)
                    .field("slot_evictions", evict.stats.slot_evictions),
            )
            .field(
                "service",
                Json::obj()
                    .field("cold_mean_swap_ps", mean_swap(&svc_cold))
                    .field("warm_mean_swap_ps", mean_swap(&svc_warm))
                    .field(
                        "mean_swap_ratio",
                        mean_swap(&svc_warm) as f64 / mean_swap(&svc_cold).max(1) as f64,
                    )
                    .field("cold", svc_cold.to_json())
                    .field("warm", svc_warm.to_json()),
            ),
    );
    scenario::emit("config", json_path.as_deref(), &summary);
    scenario::export_trace("config", &args, &tracer);
    scenario::export_telemetry("config", &args, &telemetry);
}
