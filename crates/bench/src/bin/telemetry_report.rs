//! Summarizes a merged telemetry stream as per-phase text tables with
//! sparklines — the human-readable view of what `--telemetry` recorded.
//!
//! The merged `.tl.jsonl` stream is grouped by `(shard, scope, gauge)`
//! into one series per gauge. The tick span of the whole run is split
//! into `--phases` equal windows and each series reports its per-phase
//! means next to a min/mean/max summary and a sparkline, so a drift
//! (a queue filling up, a cache warming, a backlog draining) is visible
//! at a glance without plotting anything.
//!
//! ```text
//! telemetry_report --input t.merged.tl.jsonl              # text tables
//! telemetry_report --input t.merged.tl.jsonl --phases 8   # finer windows
//! telemetry_report --input t.merged.tl.jsonl --json out.json
//! ```
//!
//! `--json` writes the same summary machine-readably (CI stores it as
//! `BENCH_telemetry.json` so the gauge inventory lands in the bench
//! artifact set alongside the scenario summaries).

use std::collections::BTreeMap;
use std::process::ExitCode;

use rtr_bench::scenario::{self, ScenarioArgs};
use vp2_sim::Json;

/// Sparkline ramp, lowest to highest.
const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// One gauge's samples, in stream order.
#[derive(Default)]
struct Series {
    ticks: Vec<u64>,
    values: Vec<f64>,
}

/// Renders per-phase means as a sparkline; phases with no samples show
/// as `·` so gaps stay distinguishable from low values.
fn sparkline(phases: &[Option<f64>]) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in phases.iter().flatten() {
        lo = lo.min(*v);
        hi = hi.max(*v);
    }
    phases
        .iter()
        .map(|v| match v {
            None => '·',
            Some(_) if hi <= lo => RAMP[0],
            Some(v) => {
                let t = (v - lo) / (hi - lo);
                RAMP[((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)]
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let args = ScenarioArgs::parse();
    let Some(input) = args.value_of("--input") else {
        eprintln!(
            "usage: telemetry_report --input t.merged.tl.jsonl [--phases 4] [--json out.json]"
        );
        return ExitCode::from(2);
    };
    let phases: usize = args.parsed_or("--phases", 4);
    let phases = phases.max(1);
    let json_path = args.json_path();

    let text = match std::fs::read_to_string(&input) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("[report] {input}: cannot read: {e}");
            return ExitCode::FAILURE;
        }
    };
    // (shard, scope, gauge) -> series, BTreeMap for deterministic order.
    let mut series: BTreeMap<(u64, String, String), Series> = BTreeMap::new();
    let (mut min_tick, mut max_tick) = (u64::MAX, 0u64);
    let mut rows = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = match Json::parse(line) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("[report] {input}: line {}: not valid JSON: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        };
        let num = |key: &str| ev.get(key).and_then(Json::as_f64);
        let (Some(tick), Some(shard), Some(scope), Some(Json::Obj(gauges))) = (
            num("tick"),
            num("shard"),
            ev.get("scope").and_then(Json::as_str),
            ev.get("gauges"),
        ) else {
            eprintln!("[report] {input}: line {}: not a telemetry row", i + 1);
            return ExitCode::FAILURE;
        };
        rows += 1;
        let tick = tick as u64;
        min_tick = min_tick.min(tick);
        max_tick = max_tick.max(tick);
        for (name, value) in gauges {
            let Some(value) = value.as_f64() else {
                continue;
            };
            let entry = series
                .entry((shard as u64, scope.to_string(), name.clone()))
                .or_default();
            entry.ticks.push(tick);
            entry.values.push(value);
        }
    }
    if rows == 0 {
        eprintln!("[report] {input}: telemetry stream is empty");
        return ExitCode::FAILURE;
    }

    // Phase windows split the run's tick span evenly; the last window
    // absorbs the remainder so every sample lands in exactly one phase.
    let span = max_tick - min_tick + 1;
    let width = span.div_ceil(phases as u64).max(1);
    let phase_of = |tick: u64| (((tick - min_tick) / width) as usize).min(phases - 1);

    eprintln!(
        "[report] {input}: {rows} samples, {} series, ticks {min_tick}..{max_tick}, \
         {phases} phase(s) of {width} tick(s)",
        series.len()
    );
    println!(
        "{:>5}  {:<10} {:<18} {:>12} {:>12} {:>12}  {:<8}  per-phase means",
        "shard", "scope", "gauge", "min", "mean", "max", "trend"
    );
    let mut out_series = Vec::new();
    for ((shard, scope, gauge), s) in &series {
        let (mut sums, mut counts) = (vec![0.0f64; phases], vec![0usize; phases]);
        for (tick, value) in s.ticks.iter().zip(&s.values) {
            let p = phase_of(*tick);
            sums[p] += value;
            counts[p] += 1;
        }
        let phase_means: Vec<Option<f64>> = sums
            .iter()
            .zip(&counts)
            .map(|(sum, n)| (*n > 0).then(|| sum / *n as f64))
            .collect();
        let min = s.values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = s.values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = s.values.iter().sum::<f64>() / s.values.len() as f64;
        let means_text: Vec<String> = phase_means
            .iter()
            .map(|v| v.map_or_else(|| "·".to_string(), |v| format!("{v:.3}")))
            .collect();
        println!(
            "{shard:>5}  {scope:<10} {gauge:<18} {min:>12.3} {mean:>12.3} {max:>12.3}  \
             {:<8}  {}",
            sparkline(&phase_means),
            means_text.join(" ")
        );
        out_series.push(
            Json::obj()
                .field("shard", *shard)
                .field("scope", scope.as_str())
                .field("gauge", gauge.as_str())
                .field("samples", s.values.len())
                .field("min", min)
                .field("mean", mean)
                .field("max", max)
                .field(
                    "phase_means",
                    Json::Arr(
                        phase_means
                            .iter()
                            .map(|v| v.map_or(Json::Null, Json::Num))
                            .collect(),
                    ),
                ),
        );
    }

    let summary = Json::obj().field(
        "telemetry_report",
        Json::obj()
            .field("input", input.as_str())
            .field("samples", rows)
            .field("tick_min", min_tick)
            .field("tick_max", max_tick)
            .field("phases", phases)
            .field("series", Json::Arr(out_series)),
    );
    scenario::emit("report", json_path.as_deref(), &summary);
    ExitCode::SUCCESS
}
