//! # rtr-bench — regenerating the paper's evaluation
//!
//! One function per table (and figure) of the paper. Each returns a
//! rendered [`TextTable`] plus a machine-readable [`TableResult`] that the
//! `tables` binary serialises for EXPERIMENTS.md and that the shape-claim
//! integration tests assert against.
//!
//! Two kinds of benchmarks live in this crate:
//!
//! * the **paper harness** (this library + the `tables` binary) reports
//!   *simulated* time — the paper's metric;
//! * the **host-side benches** under `benches/` measure the simulator's
//!   own throughput (how fast the reproduction runs), which is the
//!   conventional meaning of `cargo bench`.

pub mod scenario;

use rtr_apps::harness::Comparison;
use rtr_apps::{imaging, jenkins, patmatch, sha1};
use rtr_core::measure::{self, TransferKind};
use rtr_core::{build_system, SystemKind};
use vp2_sim::table::{fmt_sig, TextTable};
use vp2_sim::{Json, SimTime};

/// Scaling knob: `Quick` for tests/CI, `Full` for the printed tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small inputs (seconds).
    Quick,
    /// Paper-like input sweeps.
    Full,
}

/// One measured row in machine-readable form.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Row label (workload / transfer kind / size).
    pub label: String,
    /// Software time (µs), if applicable.
    pub sw_us: Option<f64>,
    /// Hardware time (µs), if applicable.
    pub hw_us: Option<f64>,
    /// Data-preparation time (µs), when reported separately.
    pub prep_us: Option<f64>,
    /// Speedup (sw / hw), if applicable.
    pub speedup: Option<f64>,
    /// Free-form metric value (per-transfer µs, slices, …).
    pub value: Option<f64>,
}

/// A regenerated table.
#[derive(Debug, Clone)]
pub struct TableResult {
    /// Paper table number (1..=12).
    pub number: u32,
    /// Table title.
    pub title: String,
    /// Rows.
    pub rows: Vec<MeasuredRow>,
    /// Rendered text form.
    pub rendered: String,
}

impl MeasuredRow {
    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("label", self.label.as_str())
            .field("sw_us", self.sw_us)
            .field("hw_us", self.hw_us)
            .field("prep_us", self.prep_us)
            .field("speedup", self.speedup)
            .field("value", self.value)
    }
}

impl TableResult {
    /// Machine-readable form (what `tables --json` writes).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("number", self.number)
            .field("title", self.title.as_str())
            .field(
                "rows",
                Json::Arr(self.rows.iter().map(MeasuredRow::to_json).collect()),
            )
            .field("rendered", self.rendered.as_str())
    }
}

fn us(t: SimTime) -> f64 {
    t.as_us_f64()
}

fn cmp_row(label: impl Into<String>, c: &Comparison) -> MeasuredRow {
    MeasuredRow {
        label: label.into(),
        sw_us: Some(us(c.sw)),
        hw_us: Some(us(c.hw)),
        prep_us: if c.prep.is_zero() {
            None
        } else {
            Some(us(c.prep))
        },
        speedup: Some(c.speedup()),
        value: None,
    }
}

/// Tables 1 and 6: resource usage, including measured module areas.
pub fn table_resources(kind: SystemKind) -> TableResult {
    let number = match kind {
        SystemKind::Bit32 => 1,
        SystemKind::Bit64 => 6,
    };
    let mut t = rtr_core::resources::resource_table(kind);
    // Append the measured areas of the actual dynamic modules.
    let mut rows: Vec<MeasuredRow> = rtr_core::resources::inventory(kind)
        .iter()
        .map(|r| MeasuredRow {
            label: r.module.to_string(),
            sw_us: None,
            hw_us: None,
            prep_us: None,
            speedup: None,
            value: Some(f64::from(r.slices)),
        })
        .collect();
    let region = kind.region();
    let modules: Vec<(String, usize)> = {
        let mut v = vec![(
            "  (module) patmatch8x8".to_string(),
            patmatch::patmatch_component(region.width(), region.height()).slices_used(),
        )];
        for task in [
            imaging::Task::Brightness,
            imaging::Task::Blend,
            imaging::Task::Fade,
        ] {
            let nl = imaging::imaging_netlist(task);
            v.push((format!("  (module) {}", nl.name), nl.slice_estimate()));
        }
        if kind == SystemKind::Bit64 {
            let nl = sha1::sha1_netlist();
            v.push(("  (module) sha1-unroll8".to_string(), nl.slice_estimate()));
        }
        v
    };
    for (name, slices) in modules {
        t.row(&[
            name.clone(),
            slices.to_string(),
            format!(
                "{:.1}",
                100.0 * slices as f64 / f64::from(kind.device().slice_count())
            ),
            "-".to_string(),
        ]);
        rows.push(MeasuredRow {
            label: name,
            sw_us: None,
            hw_us: None,
            prep_us: None,
            speedup: None,
            value: Some(slices as f64),
        });
    }
    TableResult {
        number,
        title: t.title().to_string(),
        rows,
        rendered: t.render(),
    }
}

/// Table 2 / 7: program-controlled transfer times.
pub fn table_transfers_cpu(kind: SystemKind, effort: Effort) -> TableResult {
    let number = match kind {
        SystemKind::Bit32 => 2,
        SystemKind::Bit64 => 7,
    };
    let n = match effort {
        Effort::Quick => 1024,
        Effort::Full => 16 * 1024,
    };
    let title = match kind {
        SystemKind::Bit32 => {
            "Table 2. Measured times for data transfers between dynamic region and external memory (32 bit)"
        }
        SystemKind::Bit64 => {
            "Table 7. Measured times for 32-bit data transfers between dynamic region and external memory (CPU controlled)"
        }
    };
    let mut t = TextTable::new(title, &["transfer type", "avg time per transfer (us)"]);
    let mut rows = Vec::new();
    for k in [
        TransferKind::Write,
        TransferKind::Read,
        TransferKind::WriteRead,
    ] {
        let mut m = build_system(kind);
        let per = measure::program_transfer_time(&mut m, k, n);
        t.row(&[k.label().to_string(), fmt_sig(us(per))]);
        rows.push(MeasuredRow {
            label: k.label().to_string(),
            sw_us: None,
            hw_us: None,
            prep_us: None,
            speedup: None,
            value: Some(us(per)),
        });
    }
    TableResult {
        number,
        title: title.to_string(),
        rows,
        rendered: t.render(),
    }
}

/// Table 8: DMA-controlled 64-bit transfers.
pub fn table_transfers_dma(effort: Effort) -> TableResult {
    let n = match effort {
        Effort::Quick => 2048,
        Effort::Full => 16 * 1024,
    };
    let title = "Table 8. Measured times for 64-bit data transfers between dynamic region and external memory (DMA-controlled)";
    let mut t = TextTable::new(title, &["transfer type", "avg time per transfer (us)"]);
    let mut rows = Vec::new();
    for k in [
        TransferKind::Write,
        TransferKind::Read,
        TransferKind::WriteRead,
    ] {
        let mut m = build_system(SystemKind::Bit64);
        let per = measure::dma_transfer_time(&mut m, k, n);
        let label = match k {
            TransferKind::WriteRead => "block-interleaved write/read (2047-deep FIFO)".to_string(),
            other => other.label().to_string(),
        };
        t.row(&[label.clone(), fmt_sig(us(per))]);
        rows.push(MeasuredRow {
            label,
            sw_us: None,
            hw_us: None,
            prep_us: None,
            speedup: None,
            value: Some(us(per)),
        });
    }
    TableResult {
        number: 8,
        title: title.to_string(),
        rows,
        rendered: t.render(),
    }
}

/// Tables 3 / 9: pattern matching.
pub fn table_patmatch(kind: SystemKind, effort: Effort) -> TableResult {
    let number = match kind {
        SystemKind::Bit32 => 3,
        SystemKind::Bit64 => 9,
    };
    let sizes: &[usize] = match effort {
        Effort::Quick => &[64],
        Effort::Full => &[64, 128, 256],
    };
    let title = match kind {
        SystemKind::Bit32 => "Table 3. Results for pattern matching in binary images (32 bit)",
        SystemKind::Bit64 => "Table 9. Results for pattern matching in binary images (64 bit)",
    };
    let mut t = TextTable::new(title, &["image", "sw (us)", "hw/sw (us)", "speedup"]);
    let mut rows = Vec::new();
    let pattern = [0xA5u8, 0x3C, 0x7E, 0x81, 0x42, 0x99, 0x18, 0xE7];
    for &s in sizes {
        let img = patmatch::BinaryImage::random(s, s, s as u64);
        let c = patmatch::compare(kind, &img, &pattern);
        let label = format!("{s}x{s}");
        t.row(&[
            label.clone(),
            fmt_sig(us(c.sw)),
            fmt_sig(us(c.hw)),
            fmt_sig(c.speedup()),
        ]);
        rows.push(cmp_row(label, &c));
    }
    TableResult {
        number,
        title: title.to_string(),
        rows,
        rendered: t.render(),
    }
}

/// Tables 4 / 10: Jenkins hash.
pub fn table_jenkins(kind: SystemKind, effort: Effort) -> TableResult {
    let number = match kind {
        SystemKind::Bit32 => 4,
        SystemKind::Bit64 => 10,
    };
    let sizes: &[usize] = match effort {
        Effort::Quick => &[4096],
        Effort::Full => &[256, 4096, 65536],
    };
    let title = match kind {
        SystemKind::Bit32 => "Table 4. Results for hash function (32 bit)",
        SystemKind::Bit64 => "Table 10. Results for a hash function implementation (64 bit)",
    };
    let mut t = TextTable::new(title, &["key size", "sw (us)", "hw/sw (us)", "speedup"]);
    let mut rows = Vec::new();
    for &s in sizes {
        let c = jenkins::compare(kind, s, s as u64);
        let label = format!("{s} B");
        t.row(&[
            label.clone(),
            fmt_sig(us(c.sw)),
            fmt_sig(us(c.hw)),
            fmt_sig(c.speedup()),
        ]);
        rows.push(cmp_row(label, &c));
    }
    TableResult {
        number,
        title: title.to_string(),
        rows,
        rendered: t.render(),
    }
}

/// Table 11: SHA-1 (64-bit system only).
pub fn table_sha1(effort: Effort) -> TableResult {
    let sizes: &[usize] = match effort {
        Effort::Quick => &[64, 2048],
        Effort::Full => &[64, 1024, 16384, 262_144],
    };
    let title = "Table 11. Results for SHA-1 implementation";
    let mut t = TextTable::new(title, &["message size", "sw (us)", "hw/sw (us)", "speedup"]);
    let mut rows = Vec::new();
    for &s in sizes {
        let c = sha1::compare(SystemKind::Bit64, s, s as u64);
        let label = format!("{s} B");
        t.row(&[
            label.clone(),
            fmt_sig(us(c.sw)),
            fmt_sig(us(c.hw)),
            fmt_sig(c.speedup()),
        ]);
        rows.push(cmp_row(label, &c));
    }
    TableResult {
        number: 11,
        title: title.to_string(),
        rows,
        rendered: t.render(),
    }
}

/// Table 5: image-processing speedups, 32-bit system (CPU-controlled).
pub fn table_imaging32(effort: Effort) -> TableResult {
    let n = match effort {
        Effort::Quick => 4096,
        Effort::Full => 65536,
    };
    let title = "Table 5. Speedups for simple image processing tasks (32 bit)";
    let mut t = TextTable::new(title, &["task", "sw (us)", "hw/sw (us)", "speedup"]);
    let mut rows = Vec::new();
    for task in [
        imaging::Task::Brightness,
        imaging::Task::Blend,
        imaging::Task::Fade,
    ] {
        let c = imaging::compare(SystemKind::Bit32, task, n, n as u64);
        t.row(&[
            task.label().to_string(),
            fmt_sig(us(c.sw)),
            fmt_sig(us(c.hw)),
            fmt_sig(c.speedup()),
        ]);
        rows.push(cmp_row(task.label(), &c));
    }
    TableResult {
        number: 5,
        title: title.to_string(),
        rows,
        rendered: t.render(),
    }
}

/// Table 12: image-processing on the 64-bit DMA path, with the data
/// preparation column.
pub fn table_imaging64(effort: Effort) -> TableResult {
    let n = match effort {
        Effort::Quick => 4096,
        Effort::Full => 65536,
    };
    let title = "Table 12. Results for simple image processing tasks (64 bit)";
    let mut t = TextTable::new(
        title,
        &[
            "task",
            "sw (us)",
            "hw total (us)",
            "data preparation (us)",
            "speedup",
        ],
    );
    let mut rows = Vec::new();
    for task in [
        imaging::Task::Brightness,
        imaging::Task::Blend,
        imaging::Task::Fade,
    ] {
        let c = imaging::compare_dma(task, n, n as u64);
        t.row(&[
            task.label().to_string(),
            fmt_sig(us(c.sw)),
            fmt_sig(us(c.hw)),
            if c.prep.is_zero() {
                "-".to_string()
            } else {
                fmt_sig(us(c.prep))
            },
            fmt_sig(c.speedup()),
        ]);
        rows.push(cmp_row(task.label(), &c));
    }
    TableResult {
        number: 12,
        title: title.to_string(),
        rows,
        rendered: t.render(),
    }
}

/// Regenerates one table by number.
pub fn table(number: u32, effort: Effort) -> TableResult {
    match number {
        1 => table_resources(SystemKind::Bit32),
        2 => table_transfers_cpu(SystemKind::Bit32, effort),
        3 => table_patmatch(SystemKind::Bit32, effort),
        4 => table_jenkins(SystemKind::Bit32, effort),
        5 => table_imaging32(effort),
        6 => table_resources(SystemKind::Bit64),
        7 => table_transfers_cpu(SystemKind::Bit64, effort),
        8 => table_transfers_dma(effort),
        9 => table_patmatch(SystemKind::Bit64, effort),
        10 => table_jenkins(SystemKind::Bit64, effort),
        11 => table_sha1(effort),
        12 => table_imaging64(effort),
        other => panic!("the paper has tables 1..=12, not {other}"),
    }
}

/// Regenerates one figure by number (as text).
pub fn figure(number: u32) -> String {
    match number {
        1 => rtr_core::system::generic_architecture(),
        2 => rtr_core::system::busmacro_figure(SystemKind::Bit32),
        3 => rtr_core::system::floorplan_string(SystemKind::Bit32),
        4 => rtr_core::system::floorplan_string(SystemKind::Bit64),
        other => panic!("the paper has figures 1..=4, not {other}"),
    }
}

/// Ablation: reconfiguration time, complete (BitLinker) vs differential
/// partial bitstreams — the trade-off section 2.2 discusses.
pub fn ablation_reconfig() -> TextTable {
    use rtr_core::manager::{LoadOutcome, ModuleManager};
    let kind = SystemKind::Bit32;
    let mut t = TextTable::new(
        "Ablation: reconfiguration time (32-bit system, pattern matcher)",
        &["configuration style", "words", "time (ms)"],
    );
    let region = kind.region();
    let comp = patmatch::patmatch_component(region.width(), region.height());

    // Complete configuration through the module manager.
    let mut machine = build_system(kind);
    let mut mgr = ModuleManager::new(kind);
    mgr.register(
        comp.clone(),
        (0, 0),
        Box::new(|| Box::new(patmatch::PatMatchModule::new())),
    )
    .expect("registers");
    let out = mgr.load(&mut machine, "patmatch8x8").expect("loads");
    if let LoadOutcome::Loaded {
        reconfig_time,
        words,
        ..
    } = out
    {
        t.row(&[
            "complete (BitLinker)".to_string(),
            words.to_string(),
            fmt_sig(reconfig_time.as_ms_f64()),
        ]);
    }

    // Differential against the blank-region state.
    let linker = rtr_core::system::bitlinker_for(kind);
    let blank_state = linker.expected_state(&[]).expect("blank state");
    let (diff_bs, _) = linker
        .link_differential(&comp, (0, 0), &blank_state)
        .expect("links");
    // Feed time: same per-word path as the manager uses.
    let mut machine = build_system(kind);
    use ppc405_sim::mem::MemoryPort;
    let start = machine.cpu.now();
    let mut tm = start;
    for &w in &diff_bs.words {
        tm += machine.platform.write(
            tm,
            coreconnect_sim::map::HWICAP_BASE + coreconnect_sim::map::HWICAP_DATA,
            4,
            w,
        );
    }
    tm += machine.platform.write(
        tm,
        coreconnect_sim::map::HWICAP_BASE + coreconnect_sim::map::HWICAP_CTL,
        4,
        1,
    );
    let done = tm.max(machine.platform.icap.busy_until());
    t.row(&[
        "differential (assumes blank region)".to_string(),
        diff_bs.word_count().to_string(),
        fmt_sig((done - start).as_ms_f64()),
    ]);
    t
}

/// Ablation: software-baseline quality. The headline pattern-matching
/// speedup is measured against the paper-style straightforward C
/// translation; this quantifies what a hand-optimised (table-driven)
/// software version does to it.
pub fn ablation_sw_quality() -> TextTable {
    let kind = SystemKind::Bit32;
    let img = patmatch::BinaryImage::random(96, 24, 17);
    let pattern = [0xA5u8, 0x3C, 0x7E, 0x81, 0x42, 0x99, 0x18, 0xE7];
    let reference = patmatch::match_counts_reference(&img, &pattern);

    let mut m = build_system(kind);
    let (t_naive, c1) = patmatch::sw_run(&mut m, &img, &pattern);
    assert_eq!(c1, reference);
    let mut m = build_system(kind);
    let (t_opt, c2) = patmatch::sw_run_optimized(&mut m, &img, &pattern);
    assert_eq!(c2, reference);
    let mut m = build_system(kind);
    let (t_hw, c3) = patmatch::hw_run(&mut m, &img, &pattern);
    assert_eq!(c3, reference);

    let mut t = TextTable::new(
        "Ablation: software-baseline quality (pattern matching, 32-bit system, 96x24)",
        &["implementation", "time (us)", "hw speedup vs it"],
    );
    for (label, time) in [
        ("sw, straightforward C translation", t_naive),
        ("sw, popcount-table optimised", t_opt),
        ("hw (dynamic region)", t_hw),
    ] {
        t.row(&[
            label.to_string(),
            fmt_sig(us(time)),
            fmt_sig(time.as_ps() as f64 / t_hw.as_ps() as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sw_quality_ablation_orders_correctly() {
        let t = ablation_sw_quality();
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn every_table_regenerates_quick() {
        for n in 1..=12 {
            let r = table(n, Effort::Quick);
            assert_eq!(r.number, n);
            assert!(!r.rows.is_empty(), "table {n} has rows");
            assert!(r.rendered.contains("Table"), "table {n} renders");
        }
    }

    #[test]
    fn every_figure_renders() {
        for n in 1..=4 {
            assert!(!figure(n).is_empty());
        }
    }

    #[test]
    fn reconfig_ablation_shows_differential_smaller() {
        let t = ablation_reconfig();
        assert_eq!(t.row_count(), 2);
    }
}
