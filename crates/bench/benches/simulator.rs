//! Criterion benchmarks — host-side performance of the reproduction's
//! subsystems (how fast the simulator itself runs). The *paper's* numbers
//! (simulated time) come from the `tables` binary; see EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rtr_apps::{imaging, jenkins, patmatch, sha1};
use rtr_core::measure::{dma_transfer_time, program_transfer_time, TransferKind};
use rtr_core::{build_system, SystemKind};

/// Table 2 / 7: program-controlled transfer experiment, both systems.
fn bench_transfers_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("transfers_cpu");
    g.sample_size(10);
    for kind in [SystemKind::Bit32, SystemKind::Bit64] {
        g.bench_function(format!("{kind:?}_write_1k"), |b| {
            b.iter(|| {
                let mut m = build_system(kind);
                black_box(program_transfer_time(&mut m, TransferKind::Write, 1024))
            })
        });
    }
    g.finish();
}

/// Table 8: DMA transfer experiment.
fn bench_transfers_dma(c: &mut Criterion) {
    let mut g = c.benchmark_group("transfers_dma");
    g.sample_size(10);
    for kind in [TransferKind::Write, TransferKind::WriteRead] {
        g.bench_function(format!("{kind:?}_1k"), |b| {
            b.iter(|| {
                let mut m = build_system(SystemKind::Bit64);
                black_box(dma_transfer_time(&mut m, kind, 1024))
            })
        });
    }
    g.finish();
}

/// Tables 3 / 9: pattern matching, sw and hw paths.
fn bench_patmatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("patmatch");
    g.sample_size(10);
    let img = patmatch::BinaryImage::random(64, 16, 1);
    let pat = [0xA5u8, 0x3C, 0x7E, 0x81, 0x42, 0x99, 0x18, 0xE7];
    g.bench_function("sw_64x16_bit32", |b| {
        b.iter(|| {
            let mut m = build_system(SystemKind::Bit32);
            black_box(patmatch::sw_run(&mut m, &img, &pat))
        })
    });
    g.bench_function("hw_64x16_bit32", |b| {
        b.iter(|| {
            let mut m = build_system(SystemKind::Bit32);
            black_box(patmatch::hw_run(&mut m, &img, &pat))
        })
    });
    g.finish();
}

/// Tables 4 / 10 / 11: hashing workloads.
fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashing");
    g.sample_size(10);
    let key = vec![0xABu8; 4096];
    g.bench_function("jenkins_sw_4k_bit32", |b| {
        b.iter(|| {
            let mut m = build_system(SystemKind::Bit32);
            black_box(jenkins::sw_run(&mut m, &key, 0))
        })
    });
    g.bench_function("jenkins_hw_4k_bit32", |b| {
        b.iter(|| {
            let mut m = build_system(SystemKind::Bit32);
            black_box(jenkins::hw_run(&mut m, &key, 0))
        })
    });
    g.bench_function("sha1_sw_2k_bit64", |b| {
        b.iter(|| {
            let mut m = build_system(SystemKind::Bit64);
            black_box(sha1::sw_run(&mut m, &key[..2048]))
        })
    });
    g.bench_function("sha1_hw_2k_bit64", |b| {
        b.iter(|| {
            let mut m = build_system(SystemKind::Bit64);
            black_box(sha1::hw_run(&mut m, &key[..2048]))
        })
    });
    g.finish();
}

/// Tables 5 / 12: imaging workloads (CPU-controlled and DMA paths).
fn bench_imaging(c: &mut Criterion) {
    let mut g = c.benchmark_group("imaging");
    g.sample_size(10);
    let a = vec![0x80u8; 4096];
    let b2 = vec![0x40u8; 4096];
    for task in [imaging::Task::Brightness, imaging::Task::Fade] {
        g.bench_function(format!("{task:?}_cpu_bit32"), |b| {
            b.iter(|| {
                let mut m = build_system(SystemKind::Bit32);
                black_box(imaging::hw_run(&mut m, task, &a, &b2, 25))
            })
        });
        g.bench_function(format!("{task:?}_dma_bit64"), |b| {
            b.iter(|| {
                let mut m = build_system(SystemKind::Bit64);
                black_box(imaging::dma_run(&mut m, task, &a, &b2, 25))
            })
        });
    }
    g.finish();
}

/// The configuration plane: BitLinker assembly and ICAP apply (the
/// reconfiguration-time ablation's building blocks).
fn bench_reconfiguration(c: &mut Criterion) {
    let mut g = c.benchmark_group("reconfiguration");
    g.sample_size(10);
    let kind = SystemKind::Bit32;
    let region = kind.region();
    let comp = patmatch::patmatch_component(region.width(), region.height());
    let linker = rtr_core::system::bitlinker_for(kind);
    g.bench_function("bitlinker_link_complete", |b| {
        b.iter(|| black_box(linker.link(&comp, (0, 0)).unwrap()))
    });
    let (bs, _) = linker.link(&comp, (0, 0)).unwrap();
    g.bench_function("apply_bitstream", |b| {
        b.iter(|| {
            let mut mem = rtr_core::system::static_base(kind);
            black_box(
                vp2_bitstream::apply_bitstream(&bs, &mut mem, vp2_bitstream::IDCODE_XC2VP7)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

/// Gate-level simulation throughput (the equivalence-test workhorse).
fn bench_gate_level(c: &mut Criterion) {
    let mut g = c.benchmark_group("gate_level");
    g.sample_size(10);
    let nl = patmatch::patmatch_netlist();
    g.bench_function("patmatch_1k_strobes", |b| {
        use dock::DynamicModule;
        b.iter(|| {
            let mut m = dock::GateLevelModule::new(&nl).unwrap();
            for i in 0..1000u64 {
                black_box(m.poke_at(0, i));
            }
        })
    });
    let sha = sha1::sha1_netlist();
    g.bench_function("sha1_one_block", |b| {
        use dock::DynamicModule;
        b.iter(|| {
            let mut m = dock::GateLevelModule::new(&sha).unwrap();
            m.poke_at(4, 0);
            for i in 0..16u64 {
                black_box(m.poke_at(0, i));
            }
        })
    });
    g.finish();
}

/// CPU interpreter throughput.
fn bench_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu");
    g.sample_size(10);
    g.bench_function("interpreter_100k_instrs", |b| {
        let prog = ppc405_sim::assemble(
            "entry:\n  li r3, 0\n  lis r4, 2\nloop:\n  addi r3, r3, 1\n  cmpw r3, r4\n  blt loop\n  halt\n",
            0x1000,
        )
        .unwrap();
        b.iter(|| {
            let mut m = build_system(SystemKind::Bit64);
            m.load_program(&prog);
            black_box(m.call(prog.label("entry"), &[], 1_000_000))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_transfers_cpu,
    bench_transfers_dma,
    bench_patmatch,
    bench_hashing,
    bench_imaging,
    bench_reconfiguration,
    bench_gate_level,
    bench_cpu
);
criterion_main!(benches);
