//! Host-side micro-benchmarks — how fast the reproduction's subsystems run
//! on the host. The *paper's* numbers (simulated time) come from the
//! `tables` binary; see EXPERIMENTS.md.
//!
//! Dependency-free harness (`harness = false`): each benchmark runs a short
//! warm-up, then a fixed number of timed iterations, and reports the mean
//! wall-clock time per iteration.
//!
//! ```text
//! cargo bench                    # all benchmarks
//! cargo bench -- patmatch        # names containing "patmatch"
//! ```

use std::hint::black_box;
use std::time::Instant;

use rtr_apps::{imaging, jenkins, patmatch, sha1};
use rtr_core::measure::{dma_transfer_time, program_transfer_time, TransferKind};
use rtr_core::{build_system, SystemKind};

const WARMUP: u32 = 2;
const ITERS: u32 = 10;

struct Harness {
    filter: Option<String>,
}

impl Harness {
    fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        for _ in 0..WARMUP {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        let per_iter = start.elapsed() / ITERS;
        println!("{name:<44} {per_iter:>12.2?}/iter  ({ITERS} iters)");
    }
}

fn main() {
    // `cargo bench -- <filter>`: the filter is the first non-flag argument;
    // harness-style flags (`--bench` etc.) are ignored.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let h = Harness { filter };

    // Table 2 / 7: program-controlled transfer experiment, both systems.
    for kind in [SystemKind::Bit32, SystemKind::Bit64] {
        h.bench(&format!("transfers_cpu/{kind:?}_write_1k"), || {
            let mut m = build_system(kind);
            program_transfer_time(&mut m, TransferKind::Write, 1024)
        });
    }

    // Table 8: DMA transfer experiment.
    for kind in [TransferKind::Write, TransferKind::WriteRead] {
        h.bench(&format!("transfers_dma/{kind:?}_1k"), || {
            let mut m = build_system(SystemKind::Bit64);
            dma_transfer_time(&mut m, kind, 1024)
        });
    }

    // Tables 3 / 9: pattern matching, sw and hw paths.
    let img = patmatch::BinaryImage::random(64, 16, 1);
    let pat = [0xA5u8, 0x3C, 0x7E, 0x81, 0x42, 0x99, 0x18, 0xE7];
    h.bench("patmatch/sw_64x16_bit32", || {
        let mut m = build_system(SystemKind::Bit32);
        patmatch::sw_run(&mut m, &img, &pat)
    });
    h.bench("patmatch/hw_64x16_bit32", || {
        let mut m = build_system(SystemKind::Bit32);
        patmatch::hw_run(&mut m, &img, &pat)
    });

    // Tables 4 / 10 / 11: hashing workloads.
    let key = vec![0xABu8; 4096];
    h.bench("hashing/jenkins_sw_4k_bit32", || {
        let mut m = build_system(SystemKind::Bit32);
        jenkins::sw_run(&mut m, &key, 0)
    });
    h.bench("hashing/jenkins_hw_4k_bit32", || {
        let mut m = build_system(SystemKind::Bit32);
        jenkins::hw_run(&mut m, &key, 0)
    });
    h.bench("hashing/sha1_sw_2k_bit64", || {
        let mut m = build_system(SystemKind::Bit64);
        sha1::sw_run(&mut m, &key[..2048])
    });
    h.bench("hashing/sha1_hw_2k_bit64", || {
        let mut m = build_system(SystemKind::Bit64);
        sha1::hw_run(&mut m, &key[..2048])
    });

    // Tables 5 / 12: imaging workloads (CPU-controlled and DMA paths).
    let a = vec![0x80u8; 4096];
    let b2 = vec![0x40u8; 4096];
    for task in [imaging::Task::Brightness, imaging::Task::Fade] {
        h.bench(&format!("imaging/{task:?}_cpu_bit32"), || {
            let mut m = build_system(SystemKind::Bit32);
            imaging::hw_run(&mut m, task, &a, &b2, 25)
        });
        h.bench(&format!("imaging/{task:?}_dma_bit64"), || {
            let mut m = build_system(SystemKind::Bit64);
            imaging::dma_run(&mut m, task, &a, &b2, 25)
        });
    }

    // The configuration plane: BitLinker assembly and ICAP apply (the
    // reconfiguration-time ablation's building blocks).
    let kind = SystemKind::Bit32;
    let region = kind.region();
    let comp = patmatch::patmatch_component(region.width(), region.height());
    let linker = rtr_core::system::bitlinker_for(kind);
    h.bench("reconfiguration/bitlinker_link_complete", || {
        linker.link(&comp, (0, 0)).unwrap()
    });
    let (bs, _) = linker.link(&comp, (0, 0)).unwrap();
    h.bench("reconfiguration/apply_bitstream", || {
        let mut mem = rtr_core::system::static_base(kind);
        vp2_bitstream::apply_bitstream(&bs, &mut mem, vp2_bitstream::IDCODE_XC2VP7).unwrap()
    });

    // Gate-level simulation throughput (the equivalence-test workhorse).
    {
        use dock::DynamicModule;
        let nl = patmatch::patmatch_netlist();
        h.bench("gate_level/patmatch_1k_strobes", || {
            let mut m = dock::GateLevelModule::new(&nl).unwrap();
            for i in 0..1000u64 {
                black_box(m.poke_at(0, i));
            }
        });
        let sha = sha1::sha1_netlist();
        h.bench("gate_level/sha1_one_block", || {
            let mut m = dock::GateLevelModule::new(&sha).unwrap();
            m.poke_at(4, 0);
            for i in 0..16u64 {
                black_box(m.poke_at(0, i));
            }
        });
    }

    // CPU interpreter throughput.
    let prog = ppc405_sim::assemble(
        "entry:\n  li r3, 0\n  lis r4, 2\nloop:\n  addi r3, r3, 1\n  cmpw r3, r4\n  blt loop\n  halt\n",
        0x1000,
    )
    .unwrap();
    h.bench("cpu/interpreter_100k_instrs", || {
        let mut m = build_system(SystemKind::Bit64);
        m.load_program(&prog);
        m.call(prog.label("entry"), &[], 1_000_000)
    });
}
