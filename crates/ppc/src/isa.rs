//! Instruction set: definition, encoding, decoding.
//!
//! Fixed 32-bit encoding: opcode in bits [31:26], `rD` [25:21], `rA`
//! [20:16], `rB`/shift-amount [15:11], 16-bit immediate [15:0]. Branch
//! displacements are signed word offsets relative to the branch's own
//! address.

/// A register index (0..32). `r0` reads as zero.
pub type Reg = u8;

/// Decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Stop execution (test/measurement harness).
    Halt,
    /// `rD = rA + sext(imm)`
    Addi { rd: Reg, ra: Reg, imm: i16 },
    /// `rD = rA + (imm << 16)` (with `ra = r0` this is `lis`)
    Addis { rd: Reg, ra: Reg, imm: i16 },
    /// `rD = rA + rB`
    Add { rd: Reg, ra: Reg, rb: Reg },
    /// `rD = rA - rB`
    Sub { rd: Reg, ra: Reg, rb: Reg },
    /// `rD = (rA * rB) & 0xffff_ffff` (4 cycles)
    Mullw { rd: Reg, ra: Reg, rb: Reg },
    /// `rD = rA & rB`
    And { rd: Reg, ra: Reg, rb: Reg },
    /// `rD = rA | rB`
    Or { rd: Reg, ra: Reg, rb: Reg },
    /// `rD = rA ^ rB`
    Xor { rd: Reg, ra: Reg, rb: Reg },
    /// `rD = !(rA | rB)`
    Nor { rd: Reg, ra: Reg, rb: Reg },
    /// `rD = rA & zext(imm)`
    Andi { rd: Reg, ra: Reg, imm: u16 },
    /// `rD = rA | zext(imm)`
    Ori { rd: Reg, ra: Reg, imm: u16 },
    /// `rD = rA ^ zext(imm)`
    Xori { rd: Reg, ra: Reg, imm: u16 },
    /// `rD = rA << (rB & 31)`
    Slw { rd: Reg, ra: Reg, rb: Reg },
    /// `rD = rA >> (rB & 31)` (logical)
    Srw { rd: Reg, ra: Reg, rb: Reg },
    /// `rD = rA << sh`
    Slwi { rd: Reg, ra: Reg, sh: u8 },
    /// `rD = rA >> sh` (logical)
    Srwi { rd: Reg, ra: Reg, sh: u8 },
    /// `rD = ((i32)rA) >> sh` (arithmetic)
    Srawi { rd: Reg, ra: Reg, sh: u8 },
    /// `rD = rotl(rA, sh)`
    Rotlwi { rd: Reg, ra: Reg, sh: u8 },
    /// `rD = mem32[rA + sext(imm)]`
    Lwz { rd: Reg, ra: Reg, imm: i16 },
    /// `rD = mem8[rA + sext(imm)]` (zero-extended)
    Lbz { rd: Reg, ra: Reg, imm: i16 },
    /// `rD = mem16[rA + sext(imm)]` (zero-extended)
    Lhz { rd: Reg, ra: Reg, imm: i16 },
    /// `mem32[rA + sext(imm)] = rD`
    Stw { rd: Reg, ra: Reg, imm: i16 },
    /// `mem8[rA + sext(imm)] = rD & 0xff`
    Stb { rd: Reg, ra: Reg, imm: i16 },
    /// `mem16[rA + sext(imm)] = rD & 0xffff`
    Sth { rd: Reg, ra: Reg, imm: i16 },
    /// `rD = mem32[rA + rB]`
    Lwzx { rd: Reg, ra: Reg, rb: Reg },
    /// `mem32[rA + rB] = rD`
    Stwx { rd: Reg, ra: Reg, rb: Reg },
    /// `rD = mem8[rA + rB]`
    Lbzx { rd: Reg, ra: Reg, rb: Reg },
    /// `mem8[rA + rB] = rD & 0xff`
    Stbx { rd: Reg, ra: Reg, rb: Reg },
    /// `rD = mem16[rA + rB]`
    Lhzx { rd: Reg, ra: Reg, rb: Reg },
    /// Signed compare `rA ? rB` → CR0
    Cmpw { ra: Reg, rb: Reg },
    /// Unsigned compare `rA ? rB` → CR0
    Cmplw { ra: Reg, rb: Reg },
    /// Signed compare `rA ? sext(imm)` → CR0
    Cmpwi { ra: Reg, imm: i16 },
    /// Unsigned compare `rA ? zext(imm)` → CR0
    Cmplwi { ra: Reg, imm: u16 },
    /// Unconditional branch (word offset).
    B { off: i16 },
    /// Branch and link.
    Bl { off: i16 },
    /// Return through the link register.
    Blr,
    /// Branch if equal.
    Beq { off: i16 },
    /// Branch if not equal.
    Bne { off: i16 },
    /// Branch if less-than.
    Blt { off: i16 },
    /// Branch if greater-or-equal.
    Bge { off: i16 },
    /// Branch if greater-than.
    Bgt { off: i16 },
    /// Branch if less-or-equal.
    Ble { off: i16 },
    /// Flush (write back + invalidate) the D-cache line containing
    /// `rA + sext(imm)`.
    Dcbf { ra: Reg, imm: i16 },
    /// Invalidate (no write-back) the D-cache line containing
    /// `rA + sext(imm)`.
    Dcbi { ra: Reg, imm: i16 },
    /// Write external-interrupt enable (imm 0/1).
    Wrteei { imm: u16 },
    /// Return from interrupt.
    Rfi,
    /// `rD = LR`
    Mflr { rd: Reg },
    /// `LR = rA`
    Mtlr { ra: Reg },
    /// Memory barrier (1 cycle; ordering is already strict in this model).
    Sync,
    /// No operation.
    Nop,
}

macro_rules! ops {
    ($($num:literal => $name:ident),* $(,)?) => {
        mod opnum { $(pub const $name: u32 = $num;)* }
    };
}

ops! {
    0 => HALT, 1 => ADDI, 2 => ADDIS, 3 => ADD, 4 => SUB, 5 => MULLW,
    6 => AND, 7 => OR, 8 => XOR, 9 => NOR, 10 => ANDI, 11 => ORI,
    12 => XORI, 13 => SLW, 14 => SRW, 15 => LHZX, 16 => SLWI, 17 => SRWI, 18 => SRAWI,
    19 => ROTLWI, 20 => LWZ, 21 => LBZ, 22 => LHZ, 23 => STW, 24 => STB,
    25 => STH, 26 => CMPW, 27 => CMPLW, 28 => CMPWI, 29 => CMPLWI,
    30 => B, 31 => BL, 32 => BLR, 33 => BEQ, 34 => BNE, 35 => BLT,
    36 => BGE, 37 => BGT, 38 => BLE, 39 => DCBF, 40 => DCBI, 41 => WRTEEI,
    42 => RFI, 43 => MFLR, 44 => MTLR, 45 => SYNC, 46 => LWZX, 47 => STWX,
    48 => LBZX, 49 => STBX, 50 => NOP,
}

#[inline]
fn pack(op: u32, rd: u8, ra: u8, rb: u8, imm: u16) -> u32 {
    debug_assert!(rd < 32 && ra < 32 && rb < 32);
    (op << 26)
        | (u32::from(rd) << 21)
        | (u32::from(ra) << 16)
        | ((u32::from(rb) & 0x1F) << 11)
        | (u32::from(imm) & 0xFFFF)
}

// rb and imm overlap in the encoding: register-register forms put rb in
// [15:11] and leave [10:0] zero; immediate forms use the full [15:0].
// Shift-immediate forms carry the shift amount in the imm field.

/// Encodes an instruction.
pub fn encode(i: Instr) -> u32 {
    use opnum::*;
    match i {
        Instr::Halt => pack(HALT, 0, 0, 0, 0),
        Instr::Addi { rd, ra, imm } => pack(ADDI, rd, ra, 0, imm as u16),
        Instr::Addis { rd, ra, imm } => pack(ADDIS, rd, ra, 0, imm as u16),
        Instr::Add { rd, ra, rb } => pack(ADD, rd, ra, rb, u16::from(rb) << 11),
        Instr::Sub { rd, ra, rb } => pack(SUB, rd, ra, rb, u16::from(rb) << 11),
        Instr::Mullw { rd, ra, rb } => pack(MULLW, rd, ra, rb, u16::from(rb) << 11),
        Instr::And { rd, ra, rb } => pack(AND, rd, ra, rb, u16::from(rb) << 11),
        Instr::Or { rd, ra, rb } => pack(OR, rd, ra, rb, u16::from(rb) << 11),
        Instr::Xor { rd, ra, rb } => pack(XOR, rd, ra, rb, u16::from(rb) << 11),
        Instr::Nor { rd, ra, rb } => pack(NOR, rd, ra, rb, u16::from(rb) << 11),
        Instr::Andi { rd, ra, imm } => pack(ANDI, rd, ra, 0, imm),
        Instr::Ori { rd, ra, imm } => pack(ORI, rd, ra, 0, imm),
        Instr::Xori { rd, ra, imm } => pack(XORI, rd, ra, 0, imm),
        Instr::Slw { rd, ra, rb } => pack(SLW, rd, ra, rb, u16::from(rb) << 11),
        Instr::Srw { rd, ra, rb } => pack(SRW, rd, ra, rb, u16::from(rb) << 11),
        Instr::Slwi { rd, ra, sh } => pack(SLWI, rd, ra, 0, u16::from(sh)),
        Instr::Srwi { rd, ra, sh } => pack(SRWI, rd, ra, 0, u16::from(sh)),
        Instr::Srawi { rd, ra, sh } => pack(SRAWI, rd, ra, 0, u16::from(sh)),
        Instr::Rotlwi { rd, ra, sh } => pack(ROTLWI, rd, ra, 0, u16::from(sh)),
        Instr::Lwz { rd, ra, imm } => pack(LWZ, rd, ra, 0, imm as u16),
        Instr::Lbz { rd, ra, imm } => pack(LBZ, rd, ra, 0, imm as u16),
        Instr::Lhz { rd, ra, imm } => pack(LHZ, rd, ra, 0, imm as u16),
        Instr::Stw { rd, ra, imm } => pack(STW, rd, ra, 0, imm as u16),
        Instr::Stb { rd, ra, imm } => pack(STB, rd, ra, 0, imm as u16),
        Instr::Sth { rd, ra, imm } => pack(STH, rd, ra, 0, imm as u16),
        Instr::Lwzx { rd, ra, rb } => pack(LWZX, rd, ra, rb, u16::from(rb) << 11),
        Instr::Stwx { rd, ra, rb } => pack(STWX, rd, ra, rb, u16::from(rb) << 11),
        Instr::Lbzx { rd, ra, rb } => pack(LBZX, rd, ra, rb, u16::from(rb) << 11),
        Instr::Stbx { rd, ra, rb } => pack(STBX, rd, ra, rb, u16::from(rb) << 11),
        Instr::Lhzx { rd, ra, rb } => pack(LHZX, rd, ra, rb, u16::from(rb) << 11),
        Instr::Cmpw { ra, rb } => pack(CMPW, 0, ra, rb, u16::from(rb) << 11),
        Instr::Cmplw { ra, rb } => pack(CMPLW, 0, ra, rb, u16::from(rb) << 11),
        Instr::Cmpwi { ra, imm } => pack(CMPWI, 0, ra, 0, imm as u16),
        Instr::Cmplwi { ra, imm } => pack(CMPLWI, 0, ra, 0, imm),
        Instr::B { off } => pack(B, 0, 0, 0, off as u16),
        Instr::Bl { off } => pack(BL, 0, 0, 0, off as u16),
        Instr::Blr => pack(BLR, 0, 0, 0, 0),
        Instr::Beq { off } => pack(BEQ, 0, 0, 0, off as u16),
        Instr::Bne { off } => pack(BNE, 0, 0, 0, off as u16),
        Instr::Blt { off } => pack(BLT, 0, 0, 0, off as u16),
        Instr::Bge { off } => pack(BGE, 0, 0, 0, off as u16),
        Instr::Bgt { off } => pack(BGT, 0, 0, 0, off as u16),
        Instr::Ble { off } => pack(BLE, 0, 0, 0, off as u16),
        Instr::Dcbf { ra, imm } => pack(DCBF, 0, ra, 0, imm as u16),
        Instr::Dcbi { ra, imm } => pack(DCBI, 0, ra, 0, imm as u16),
        Instr::Wrteei { imm } => pack(WRTEEI, 0, 0, 0, imm),
        Instr::Rfi => pack(RFI, 0, 0, 0, 0),
        Instr::Mflr { rd } => pack(MFLR, rd, 0, 0, 0),
        Instr::Mtlr { ra } => pack(MTLR, 0, ra, 0, 0),
        Instr::Sync => pack(SYNC, 0, 0, 0, 0),
        Instr::Nop => pack(NOP, 0, 0, 0, 0),
    }
}

/// Decodes a word; `None` for unknown opcodes.
pub fn decode(w: u32) -> Option<Instr> {
    use opnum::*;
    let op = w >> 26;
    let rd = ((w >> 21) & 0x1F) as u8;
    let ra = ((w >> 16) & 0x1F) as u8;
    let rb = ((w >> 11) & 0x1F) as u8;
    let immu = (w & 0xFFFF) as u16;
    let imms = immu as i16;
    let sh = (immu & 0x1F) as u8;
    Some(match op {
        HALT => Instr::Halt,
        ADDI => Instr::Addi { rd, ra, imm: imms },
        ADDIS => Instr::Addis { rd, ra, imm: imms },
        ADD => Instr::Add { rd, ra, rb },
        SUB => Instr::Sub { rd, ra, rb },
        MULLW => Instr::Mullw { rd, ra, rb },
        AND => Instr::And { rd, ra, rb },
        OR => Instr::Or { rd, ra, rb },
        XOR => Instr::Xor { rd, ra, rb },
        NOR => Instr::Nor { rd, ra, rb },
        ANDI => Instr::Andi { rd, ra, imm: immu },
        ORI => Instr::Ori { rd, ra, imm: immu },
        XORI => Instr::Xori { rd, ra, imm: immu },
        SLW => Instr::Slw { rd, ra, rb },
        SRW => Instr::Srw { rd, ra, rb },
        SLWI => Instr::Slwi { rd, ra, sh },
        SRWI => Instr::Srwi { rd, ra, sh },
        SRAWI => Instr::Srawi { rd, ra, sh },
        ROTLWI => Instr::Rotlwi { rd, ra, sh },
        LWZ => Instr::Lwz { rd, ra, imm: imms },
        LBZ => Instr::Lbz { rd, ra, imm: imms },
        LHZ => Instr::Lhz { rd, ra, imm: imms },
        STW => Instr::Stw { rd, ra, imm: imms },
        STB => Instr::Stb { rd, ra, imm: imms },
        STH => Instr::Sth { rd, ra, imm: imms },
        LWZX => Instr::Lwzx { rd, ra, rb },
        STWX => Instr::Stwx { rd, ra, rb },
        LBZX => Instr::Lbzx { rd, ra, rb },
        STBX => Instr::Stbx { rd, ra, rb },
        LHZX => Instr::Lhzx { rd, ra, rb },
        CMPW => Instr::Cmpw { ra, rb },
        CMPLW => Instr::Cmplw { ra, rb },
        CMPWI => Instr::Cmpwi { ra, imm: imms },
        CMPLWI => Instr::Cmplwi { ra, imm: immu },
        B => Instr::B { off: imms },
        BL => Instr::Bl { off: imms },
        BLR => Instr::Blr,
        BEQ => Instr::Beq { off: imms },
        BNE => Instr::Bne { off: imms },
        BLT => Instr::Blt { off: imms },
        BGE => Instr::Bge { off: imms },
        BGT => Instr::Bgt { off: imms },
        BLE => Instr::Ble { off: imms },
        DCBF => Instr::Dcbf { ra, imm: imms },
        DCBI => Instr::Dcbi { ra, imm: imms },
        WRTEEI => Instr::Wrteei { imm: immu & 1 },
        RFI => Instr::Rfi,
        MFLR => Instr::Mflr { rd },
        MTLR => Instr::Mtlr { ra },
        SYNC => Instr::Sync,
        NOP => Instr::Nop,
        _ => return None,
    })
}

/// Base cycle cost of an instruction, excluding memory-system time.
///
/// Loads charge 2 cycles: the 405's 1-cycle load-to-use latency stalls the
/// next instruction in the straight-line code every kernel here produces,
/// so folding the stall into the load is the faithful average.
pub fn base_cycles(i: Instr) -> u64 {
    match i {
        Instr::Mullw { .. } => 4,
        Instr::Lwz { .. }
        | Instr::Lbz { .. }
        | Instr::Lhz { .. }
        | Instr::Lwzx { .. }
        | Instr::Lbzx { .. }
        | Instr::Lhzx { .. } => 2,
        _ => 1,
    }
}

/// Extra cycles a taken branch costs (405 pipeline refill without a branch
/// target cache).
pub const TAKEN_BRANCH_PENALTY: u64 = 2;

#[cfg(test)]
mod tests {
    use super::*;

    fn all_samples() -> Vec<Instr> {
        vec![
            Instr::Halt,
            Instr::Addi {
                rd: 3,
                ra: 4,
                imm: -7,
            },
            Instr::Addis {
                rd: 31,
                ra: 0,
                imm: 0x7FFF,
            },
            Instr::Add {
                rd: 1,
                ra: 2,
                rb: 3,
            },
            Instr::Sub {
                rd: 4,
                ra: 5,
                rb: 6,
            },
            Instr::Mullw {
                rd: 7,
                ra: 8,
                rb: 9,
            },
            Instr::And {
                rd: 10,
                ra: 11,
                rb: 12,
            },
            Instr::Or {
                rd: 13,
                ra: 14,
                rb: 15,
            },
            Instr::Xor {
                rd: 16,
                ra: 17,
                rb: 18,
            },
            Instr::Nor {
                rd: 19,
                ra: 20,
                rb: 21,
            },
            Instr::Andi {
                rd: 1,
                ra: 2,
                imm: 0xFFFF,
            },
            Instr::Ori {
                rd: 3,
                ra: 4,
                imm: 0x00FF,
            },
            Instr::Xori {
                rd: 5,
                ra: 6,
                imm: 0xA5A5,
            },
            Instr::Slw {
                rd: 1,
                ra: 2,
                rb: 3,
            },
            Instr::Srw {
                rd: 4,
                ra: 5,
                rb: 6,
            },
            Instr::Slwi {
                rd: 7,
                ra: 8,
                sh: 31,
            },
            Instr::Srwi {
                rd: 9,
                ra: 10,
                sh: 1,
            },
            Instr::Srawi {
                rd: 11,
                ra: 12,
                sh: 16,
            },
            Instr::Rotlwi {
                rd: 13,
                ra: 14,
                sh: 5,
            },
            Instr::Lwz {
                rd: 3,
                ra: 4,
                imm: 1024,
            },
            Instr::Lbz {
                rd: 5,
                ra: 6,
                imm: -1,
            },
            Instr::Lhz {
                rd: 7,
                ra: 8,
                imm: 2,
            },
            Instr::Stw {
                rd: 9,
                ra: 10,
                imm: -4,
            },
            Instr::Stb {
                rd: 11,
                ra: 12,
                imm: 0,
            },
            Instr::Sth {
                rd: 13,
                ra: 14,
                imm: 6,
            },
            Instr::Lwzx {
                rd: 1,
                ra: 2,
                rb: 3,
            },
            Instr::Stwx {
                rd: 4,
                ra: 5,
                rb: 6,
            },
            Instr::Lbzx {
                rd: 7,
                ra: 8,
                rb: 9,
            },
            Instr::Lhzx {
                rd: 1,
                ra: 2,
                rb: 3,
            },
            Instr::Stbx {
                rd: 10,
                ra: 11,
                rb: 12,
            },
            Instr::Cmpw { ra: 1, rb: 2 },
            Instr::Cmplw { ra: 3, rb: 4 },
            Instr::Cmpwi { ra: 5, imm: -100 },
            Instr::Cmplwi { ra: 6, imm: 100 },
            Instr::B { off: -2 },
            Instr::Bl { off: 10 },
            Instr::Blr,
            Instr::Beq { off: 1 },
            Instr::Bne { off: -1 },
            Instr::Blt { off: 5 },
            Instr::Bge { off: -5 },
            Instr::Bgt { off: 3 },
            Instr::Ble { off: -3 },
            Instr::Dcbf { ra: 3, imm: 32 },
            Instr::Dcbi { ra: 4, imm: -32 },
            Instr::Wrteei { imm: 1 },
            Instr::Rfi,
            Instr::Mflr { rd: 30 },
            Instr::Mtlr { ra: 29 },
            Instr::Sync,
            Instr::Nop,
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for i in all_samples() {
            let w = encode(i);
            assert_eq!(decode(w), Some(i), "word {w:#010x}");
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(decode(63 << 26), None);
    }

    #[test]
    fn encodings_are_distinct() {
        let words: Vec<u32> = all_samples().iter().map(|&i| encode(i)).collect();
        let mut dedup = words.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(words.len(), dedup.len());
    }

    #[test]
    fn cycle_costs() {
        assert_eq!(
            base_cycles(Instr::Mullw {
                rd: 0,
                ra: 0,
                rb: 0
            }),
            4
        );
        assert_eq!(
            base_cycles(Instr::Add {
                rd: 0,
                ra: 0,
                rb: 0
            }),
            1
        );
    }

    #[test]
    fn negative_immediates_survive() {
        let i = Instr::Addi {
            rd: 1,
            ra: 2,
            imm: -32768,
        };
        assert_eq!(decode(encode(i)), Some(i));
        let b = Instr::B { off: -32768 };
        assert_eq!(decode(encode(b)), Some(b));
    }
}
