//! The CPU core: fetch/decode/execute with cycle accounting.
//!
//! The core executes one instruction at a time, advancing its own
//! [`SimTime`] by the instruction's base cycles plus whatever time the
//! memory system reports for cache misses and uncached (MMIO) accesses.
//! `rtr-core` interleaves the core with the rest of the machine by running
//! it up to the next discrete event (`run_until`).

use crate::cache::Cache;
use crate::isa::{base_cycles, decode, Instr};
use crate::mem::MemoryPort;
use vp2_sim::{ClockDomain, SimTime};

/// Condition register field (CR0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cr {
    /// Less-than.
    pub lt: bool,
    /// Greater-than.
    pub gt: bool,
    /// Equal.
    pub eq: bool,
}

/// CPU configuration.
#[derive(Debug, Clone)]
pub struct CpuConfig {
    /// Core clock domain (200 MHz on the 32-bit system, 300 MHz on the
    /// 64-bit system).
    pub clock: ClockDomain,
    /// Enable the I/D caches (the software baselines run with caches on;
    /// the cache-off configuration is an ablation).
    pub caches_enabled: bool,
    /// Instruction cache size in bytes.
    pub icache_bytes: usize,
    /// Data cache size in bytes.
    pub dcache_bytes: usize,
    /// Associativity of both caches.
    pub ways: usize,
    /// External-interrupt vector address.
    pub irq_vector: u32,
}

impl CpuConfig {
    /// The 405 configuration at a given core clock.
    pub fn ppc405(clock: ClockDomain) -> Self {
        CpuConfig {
            clock,
            caches_enabled: true,
            icache_bytes: 16 * 1024,
            dcache_bytes: 16 * 1024,
            ways: 2,
            irq_vector: 0x0000_0500,
        }
    }
}

/// Outcome of a single step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired.
    Executed,
    /// The `halt` instruction was reached (idempotent afterwards).
    Halted,
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuStats {
    /// Instructions retired.
    pub retired: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Loads + stores executed.
    pub mem_ops: u64,
    /// Interrupts taken.
    pub interrupts: u64,
}

/// The CPU core.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; 32],
    lr: u32,
    pc: u32,
    cr: Cr,
    now: SimTime,
    halted: bool,
    msr_ee: bool,
    srr0: u32,
    srr1_ee: bool,
    irq_line: bool,
    cfg: CpuConfig,
    /// Instruction cache.
    pub icache: Cache,
    /// Data cache.
    pub dcache: Cache,
    /// Statistics.
    pub stats: CpuStats,
}

impl Cpu {
    /// Builds a core; PC starts at 0.
    pub fn new(cfg: CpuConfig) -> Self {
        let icache = Cache::new(cfg.icache_bytes, cfg.ways);
        let dcache = Cache::new(cfg.dcache_bytes, cfg.ways);
        Cpu {
            regs: [0; 32],
            lr: 0,
            pc: 0,
            cr: Cr::default(),
            now: SimTime::ZERO,
            halted: false,
            msr_ee: false,
            srr0: 0,
            srr1_ee: false,
            irq_line: false,
            cfg,
            icache,
            dcache,
            stats: CpuStats::default(),
        }
    }

    /// Reads a register (`r0` is hard zero).
    #[inline]
    pub fn reg(&self, r: u8) -> u32 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Writes a register (writes to `r0` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: u8, v: u32) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter (program entry).
    pub fn set_pc(&mut self, pc: u32) {
        assert_eq!(pc % 4, 0, "PC must be word-aligned");
        self.pc = pc;
        self.halted = false;
    }

    /// The core's local time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the core's local time (used when the machine stalls the CPU,
    /// e.g. while it sleeps waiting for a DMA interrupt).
    pub fn advance_time_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "time must be monotone");
        self.now = t;
    }

    /// Has `halt` been executed?
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Drives the external interrupt line.
    pub fn set_irq(&mut self, level: bool) {
        self.irq_line = level;
    }

    /// Is the external interrupt line high?
    pub fn irq_line(&self) -> bool {
        self.irq_line
    }

    /// Are external interrupts enabled (MSR[EE])?
    pub fn interrupts_enabled(&self) -> bool {
        self.msr_ee
    }

    /// Core clock domain.
    pub fn clock(&self) -> ClockDomain {
        self.cfg.clock
    }

    fn charge(&mut self, cycles: u64, mem_time: SimTime) {
        self.now += self.cfg.clock.cycles(cycles) + mem_time;
    }

    fn load(&mut self, addr: u32, size: u8, mem: &mut dyn MemoryPort) -> u32 {
        assert_eq!(
            addr % u32::from(size),
            0,
            "unaligned {size}-byte load at {addr:#010x}"
        );
        self.stats.mem_ops += 1;
        if self.cfg.caches_enabled && mem.is_cacheable(addr) {
            let (v, t) = self.dcache.read(self.now, addr, size, mem);
            self.now += t;
            v
        } else {
            let (v, t) = mem.read(self.now, addr, size);
            self.now += t;
            v
        }
    }

    fn store(&mut self, addr: u32, size: u8, data: u32, mem: &mut dyn MemoryPort) {
        assert_eq!(
            addr % u32::from(size),
            0,
            "unaligned {size}-byte store at {addr:#010x}"
        );
        self.stats.mem_ops += 1;
        if self.cfg.caches_enabled && mem.is_cacheable(addr) {
            let t = self.dcache.write(self.now, addr, size, data, mem);
            self.now += t;
        } else {
            let t = mem.write(self.now, addr, size, data);
            self.now += t;
        }
    }

    fn fetch(&mut self, mem: &mut dyn MemoryPort) -> u32 {
        if self.cfg.caches_enabled && mem.is_cacheable(self.pc) {
            let (w, t) = self.icache.read(self.now, self.pc, 4, mem);
            self.now += t;
            w
        } else {
            let (w, t) = mem.read(self.now, self.pc, 4);
            self.now += t;
            w
        }
    }

    fn set_cr_signed(&mut self, a: i32, b: i32) {
        self.cr = Cr {
            lt: a < b,
            gt: a > b,
            eq: a == b,
        };
    }

    fn set_cr_unsigned(&mut self, a: u32, b: u32) {
        self.cr = Cr {
            lt: a < b,
            gt: a > b,
            eq: a == b,
        };
    }

    fn branch(&mut self, off: i16, taken: bool) {
        if taken {
            self.pc = self.pc.wrapping_add((i32::from(off) * 4) as u32);
            self.stats.taken_branches += 1;
            // Pipeline refill penalty.
            self.now += self.cfg.clock.cycles(crate::isa::TAKEN_BRANCH_PENALTY);
        } else {
            self.pc = self.pc.wrapping_add(4);
        }
    }

    /// Executes one instruction (or takes a pending interrupt).
    pub fn step(&mut self, mem: &mut dyn MemoryPort) -> StepOutcome {
        if self.halted {
            return StepOutcome::Halted;
        }
        // External interrupt?
        if self.msr_ee && self.irq_line {
            self.srr0 = self.pc;
            self.srr1_ee = self.msr_ee;
            self.msr_ee = false;
            self.pc = self.cfg.irq_vector;
            self.stats.interrupts += 1;
            // Exception entry latency.
            self.now += self.cfg.clock.cycles(4);
        }

        let word = self.fetch(mem);
        let instr = decode(word)
            .unwrap_or_else(|| panic!("illegal instruction {word:#010x} at {:#010x}", self.pc));
        self.stats.retired += 1;
        self.charge(base_cycles(instr), SimTime::ZERO);

        use Instr::*;
        match instr {
            Halt => {
                self.halted = true;
                return StepOutcome::Halted;
            }
            Addi { rd, ra, imm } => {
                let v = self.reg(ra).wrapping_add(imm as i32 as u32);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Addis { rd, ra, imm } => {
                let v = self.reg(ra).wrapping_add((imm as i32 as u32) << 16);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Add { rd, ra, rb } => {
                let v = self.reg(ra).wrapping_add(self.reg(rb));
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Sub { rd, ra, rb } => {
                let v = self.reg(ra).wrapping_sub(self.reg(rb));
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Mullw { rd, ra, rb } => {
                let v = self.reg(ra).wrapping_mul(self.reg(rb));
                self.set_reg(rd, v);
                self.pc += 4;
            }
            And { rd, ra, rb } => {
                let v = self.reg(ra) & self.reg(rb);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Or { rd, ra, rb } => {
                let v = self.reg(ra) | self.reg(rb);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Xor { rd, ra, rb } => {
                let v = self.reg(ra) ^ self.reg(rb);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Nor { rd, ra, rb } => {
                let v = !(self.reg(ra) | self.reg(rb));
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Andi { rd, ra, imm } => {
                let v = self.reg(ra) & u32::from(imm);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Ori { rd, ra, imm } => {
                let v = self.reg(ra) | u32::from(imm);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Xori { rd, ra, imm } => {
                let v = self.reg(ra) ^ u32::from(imm);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Slw { rd, ra, rb } => {
                let v = self.reg(ra) << (self.reg(rb) & 31);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Srw { rd, ra, rb } => {
                let v = self.reg(ra) >> (self.reg(rb) & 31);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Slwi { rd, ra, sh } => {
                let v = self.reg(ra) << sh;
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Srwi { rd, ra, sh } => {
                let v = self.reg(ra) >> sh;
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Srawi { rd, ra, sh } => {
                let v = ((self.reg(ra) as i32) >> sh) as u32;
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Rotlwi { rd, ra, sh } => {
                let v = self.reg(ra).rotate_left(u32::from(sh));
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Lwz { rd, ra, imm } => {
                let addr = self.reg(ra).wrapping_add(imm as i32 as u32);
                let v = self.load(addr, 4, mem);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Lbz { rd, ra, imm } => {
                let addr = self.reg(ra).wrapping_add(imm as i32 as u32);
                let v = self.load(addr, 1, mem);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Lhz { rd, ra, imm } => {
                let addr = self.reg(ra).wrapping_add(imm as i32 as u32);
                let v = self.load(addr, 2, mem);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Stw { rd, ra, imm } => {
                let addr = self.reg(ra).wrapping_add(imm as i32 as u32);
                let v = self.reg(rd);
                self.store(addr, 4, v, mem);
                self.pc += 4;
            }
            Stb { rd, ra, imm } => {
                let addr = self.reg(ra).wrapping_add(imm as i32 as u32);
                let v = self.reg(rd);
                self.store(addr, 1, v, mem);
                self.pc += 4;
            }
            Sth { rd, ra, imm } => {
                let addr = self.reg(ra).wrapping_add(imm as i32 as u32);
                let v = self.reg(rd);
                self.store(addr, 2, v, mem);
                self.pc += 4;
            }
            Lwzx { rd, ra, rb } => {
                let addr = self.reg(ra).wrapping_add(self.reg(rb));
                let v = self.load(addr, 4, mem);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Stwx { rd, ra, rb } => {
                let addr = self.reg(ra).wrapping_add(self.reg(rb));
                let v = self.reg(rd);
                self.store(addr, 4, v, mem);
                self.pc += 4;
            }
            Lbzx { rd, ra, rb } => {
                let addr = self.reg(ra).wrapping_add(self.reg(rb));
                let v = self.load(addr, 1, mem);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Lhzx { rd, ra, rb } => {
                let addr = self.reg(ra).wrapping_add(self.reg(rb));
                let v = self.load(addr, 2, mem);
                self.set_reg(rd, v);
                self.pc += 4;
            }
            Stbx { rd, ra, rb } => {
                let addr = self.reg(ra).wrapping_add(self.reg(rb));
                let v = self.reg(rd);
                self.store(addr, 1, v, mem);
                self.pc += 4;
            }
            Cmpw { ra, rb } => {
                self.set_cr_signed(self.reg(ra) as i32, self.reg(rb) as i32);
                self.pc += 4;
            }
            Cmplw { ra, rb } => {
                self.set_cr_unsigned(self.reg(ra), self.reg(rb));
                self.pc += 4;
            }
            Cmpwi { ra, imm } => {
                self.set_cr_signed(self.reg(ra) as i32, i32::from(imm));
                self.pc += 4;
            }
            Cmplwi { ra, imm } => {
                self.set_cr_unsigned(self.reg(ra), u32::from(imm));
                self.pc += 4;
            }
            B { off } => self.branch(off, true),
            Bl { off } => {
                self.lr = self.pc + 4;
                self.branch(off, true);
            }
            Blr => {
                self.pc = self.lr;
                self.stats.taken_branches += 1;
                self.now += self.cfg.clock.cycles(crate::isa::TAKEN_BRANCH_PENALTY);
            }
            Beq { off } => self.branch(off, self.cr.eq),
            Bne { off } => self.branch(off, !self.cr.eq),
            Blt { off } => self.branch(off, self.cr.lt),
            Bge { off } => self.branch(off, !self.cr.lt),
            Bgt { off } => self.branch(off, self.cr.gt),
            Ble { off } => self.branch(off, !self.cr.gt),
            Dcbf { ra, imm } => {
                let addr = self.reg(ra).wrapping_add(imm as i32 as u32);
                if self.cfg.caches_enabled {
                    let t = self.dcache.flush_line(self.now, addr, mem);
                    self.now += t;
                }
                self.pc += 4;
            }
            Dcbi { ra, imm } => {
                let addr = self.reg(ra).wrapping_add(imm as i32 as u32);
                if self.cfg.caches_enabled {
                    self.dcache.invalidate_line(addr);
                }
                self.pc += 4;
            }
            Wrteei { imm } => {
                self.msr_ee = imm & 1 == 1;
                self.pc += 4;
            }
            Rfi => {
                self.pc = self.srr0;
                self.msr_ee = self.srr1_ee;
                self.now += self.cfg.clock.cycles(2);
            }
            Mflr { rd } => {
                let lr = self.lr;
                self.set_reg(rd, lr);
                self.pc += 4;
            }
            Mtlr { ra } => {
                self.lr = self.reg(ra);
                self.pc += 4;
            }
            Sync | Nop => {
                self.pc += 4;
            }
        }
        StepOutcome::Executed
    }

    /// Runs until `halt` or `max_instrs` retire. Returns `true` if halted.
    pub fn run_until_halt(&mut self, mem: &mut dyn MemoryPort, max_instrs: u64) -> bool {
        for _ in 0..max_instrs {
            if self.step(mem) == StepOutcome::Halted {
                return true;
            }
        }
        self.halted
    }

    /// Runs while the core's local time is before `deadline` and it has not
    /// halted. Returns the number of instructions retired.
    pub fn run_until(&mut self, mem: &mut dyn MemoryPort, deadline: SimTime) -> u64 {
        let mut n = 0;
        while self.now < deadline && !self.halted {
            if self.step(mem) == StepOutcome::Halted {
                break;
            }
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::isa::encode;
    use crate::mem::FlatMem;

    fn load_program(mem: &mut FlatMem, base: u32, instrs: &[Instr]) {
        for (i, &ins) in instrs.iter().enumerate() {
            mem.store_u32(base + 4 * i as u32, encode(ins));
        }
    }

    fn cpu200() -> Cpu {
        Cpu::new(CpuConfig::ppc405(ClockDomain::from_mhz("cpu", 200)))
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut mem = FlatMem::new(4096);
        load_program(
            &mut mem,
            0,
            &[
                Instr::Addi {
                    rd: 3,
                    ra: 0,
                    imm: 40,
                },
                Instr::Addi {
                    rd: 4,
                    ra: 0,
                    imm: 2,
                },
                Instr::Add {
                    rd: 5,
                    ra: 3,
                    rb: 4,
                },
                Instr::Halt,
            ],
        );
        let mut cpu = cpu200();
        assert!(cpu.run_until_halt(&mut mem, 100));
        assert_eq!(cpu.reg(5), 42);
        assert_eq!(cpu.stats.retired, 4);
    }

    #[test]
    fn r0_is_hard_zero() {
        let mut mem = FlatMem::new(4096);
        load_program(
            &mut mem,
            0,
            &[
                Instr::Addi {
                    rd: 0,
                    ra: 0,
                    imm: 99,
                },
                Instr::Add {
                    rd: 3,
                    ra: 0,
                    rb: 0,
                },
                Instr::Halt,
            ],
        );
        let mut cpu = cpu200();
        cpu.run_until_halt(&mut mem, 10);
        assert_eq!(cpu.reg(0), 0);
        assert_eq!(cpu.reg(3), 0);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let mut mem = FlatMem::new(4096);
        mem.store_u32(256, 0x1234_5678);
        load_program(
            &mut mem,
            0,
            &[
                Instr::Addi {
                    rd: 3,
                    ra: 0,
                    imm: 256,
                },
                Instr::Lwz {
                    rd: 4,
                    ra: 3,
                    imm: 0,
                },
                Instr::Stw {
                    rd: 4,
                    ra: 3,
                    imm: 4,
                },
                Instr::Lbz {
                    rd: 5,
                    ra: 3,
                    imm: 1,
                },
                Instr::Lhz {
                    rd: 6,
                    ra: 3,
                    imm: 2,
                },
                Instr::Halt,
            ],
        );
        let mut cpu = cpu200();
        cpu.run_until_halt(&mut mem, 100);
        assert_eq!(cpu.reg(4), 0x1234_5678);
        assert_eq!(cpu.reg(5), 0x34);
        assert_eq!(cpu.reg(6), 0x5678);
        // The store went through the (write-back) cache.
        cpu.dcache.flush_line(cpu.now(), 260, &mut mem);
        assert_eq!(mem.load_u32(260), 0x1234_5678);
    }

    #[test]
    fn branch_loop_counts() {
        // r3 = 10; loop: r4 += r3; r3 -= 1; bne loop
        let mut mem = FlatMem::new(4096);
        load_program(
            &mut mem,
            0,
            &[
                Instr::Addi {
                    rd: 3,
                    ra: 0,
                    imm: 10,
                },
                Instr::Add {
                    rd: 4,
                    ra: 4,
                    rb: 3,
                },
                Instr::Addi {
                    rd: 3,
                    ra: 3,
                    imm: -1,
                },
                Instr::Cmpwi { ra: 3, imm: 0 },
                Instr::Bne { off: -3 },
                Instr::Halt,
            ],
        );
        let mut cpu = cpu200();
        cpu.run_until_halt(&mut mem, 1000);
        assert_eq!(cpu.reg(4), 55);
        assert_eq!(cpu.stats.taken_branches, 9);
    }

    #[test]
    fn call_and_return() {
        // main: bl f; halt   f: addi r3,r0,7; blr
        let mut mem = FlatMem::new(4096);
        load_program(
            &mut mem,
            0,
            &[
                Instr::Bl { off: 2 },
                Instr::Halt,
                Instr::Addi {
                    rd: 3,
                    ra: 0,
                    imm: 7,
                },
                Instr::Blr,
            ],
        );
        let mut cpu = cpu200();
        cpu.run_until_halt(&mut mem, 10);
        assert_eq!(cpu.reg(3), 7);
    }

    #[test]
    fn signed_vs_unsigned_compare() {
        let mut mem = FlatMem::new(4096);
        load_program(
            &mut mem,
            0,
            &[
                Instr::Addi {
                    rd: 3,
                    ra: 0,
                    imm: -1,
                }, // 0xFFFF_FFFF
                Instr::Cmpwi { ra: 3, imm: 0 },
                Instr::Blt { off: 2 }, // signed: -1 < 0, taken
                Instr::Halt,
                Instr::Cmplwi { ra: 3, imm: 0 },
                Instr::Bgt { off: 2 }, // unsigned: max > 0, taken
                Instr::Halt,
                Instr::Addi {
                    rd: 4,
                    ra: 0,
                    imm: 1,
                },
                Instr::Halt,
            ],
        );
        let mut cpu = cpu200();
        cpu.run_until_halt(&mut mem, 100);
        assert_eq!(cpu.reg(4), 1, "both branches taken");
    }

    #[test]
    fn timing_counts_cycles_and_memory() {
        let mut mem = FlatMem::new(4096);
        load_program(
            &mut mem,
            0,
            &[
                Instr::Addi {
                    rd: 3,
                    ra: 0,
                    imm: 1,
                },
                Instr::Mullw {
                    rd: 3,
                    ra: 3,
                    rb: 3,
                },
                Instr::Halt,
            ],
        );
        let mut cpu = cpu200();
        cpu.run_until_halt(&mut mem, 10);
        // 1 (addi) + 4 (mullw) + 1 (halt) = 6 cycles @5ns = 30ns, plus one
        // icache line fill (40ns in FlatMem).
        assert_eq!(cpu.now(), SimTime::from_ns(30 + 40));
        assert_eq!(cpu.icache.stats.misses, 1);
    }

    #[test]
    fn uncached_mmio_bypasses_dcache() {
        let mut mem = FlatMem::new(8192);
        mem.uncached_base = 0x1000;
        load_program(
            &mut mem,
            0,
            &[
                Instr::Addis {
                    rd: 3,
                    ra: 0,
                    imm: 0,
                },
                Instr::Ori {
                    rd: 3,
                    ra: 3,
                    imm: 0x1000,
                },
                Instr::Addi {
                    rd: 4,
                    ra: 0,
                    imm: 0x5A,
                },
                Instr::Stw {
                    rd: 4,
                    ra: 3,
                    imm: 0,
                },
                Instr::Lwz {
                    rd: 5,
                    ra: 3,
                    imm: 0,
                },
                Instr::Halt,
            ],
        );
        let mut cpu = cpu200();
        cpu.run_until_halt(&mut mem, 100);
        assert_eq!(cpu.reg(5), 0x5A);
        assert_eq!(cpu.dcache.stats.misses, 0, "MMIO must not allocate");
        assert_eq!(mem.load_u32(0x1000), 0x5A, "write went straight to memory");
    }

    #[test]
    fn interrupt_entry_and_rfi() {
        let mut mem = FlatMem::new(8192);
        // Main at 0: enable irqs, spin incrementing r3.
        load_program(
            &mut mem,
            0,
            &[
                Instr::Wrteei { imm: 1 },
                Instr::Addi {
                    rd: 3,
                    ra: 3,
                    imm: 1,
                },
                Instr::Cmpwi { ra: 4, imm: 1 },
                Instr::Bne { off: -2 },
                Instr::Halt,
            ],
        );
        // Handler at the vector: set r4 = 1, rfi.
        load_program(
            &mut mem,
            0x500,
            &[
                Instr::Addi {
                    rd: 4,
                    ra: 0,
                    imm: 1,
                },
                Instr::Rfi,
            ],
        );
        let mut cpu = cpu200();
        // Run a few instructions, then raise the line.
        for _ in 0..10 {
            cpu.step(&mut mem);
        }
        assert_eq!(cpu.reg(4), 0);
        cpu.set_irq(true);
        cpu.step(&mut mem); // vectors + executes handler first instr
        cpu.set_irq(false); // handler "acknowledged" the source
        assert!(cpu.run_until_halt(&mut mem, 100));
        assert_eq!(cpu.reg(4), 1);
        assert_eq!(cpu.stats.interrupts, 1);
    }

    #[test]
    fn interrupts_masked_until_enabled() {
        let mut mem = FlatMem::new(8192);
        load_program(
            &mut mem,
            0,
            &[
                Instr::Addi {
                    rd: 3,
                    ra: 0,
                    imm: 5,
                },
                Instr::Addi {
                    rd: 3,
                    ra: 3,
                    imm: -1,
                },
                Instr::Cmpwi { ra: 3, imm: 0 },
                Instr::Bne { off: -2 },
                Instr::Halt,
            ],
        );
        let mut cpu = cpu200();
        cpu.set_irq(true); // line high, but EE = 0
        assert!(cpu.run_until_halt(&mut mem, 100));
        assert_eq!(cpu.stats.interrupts, 0);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut mem = FlatMem::new(4096);
        // Infinite loop.
        load_program(&mut mem, 0, &[Instr::B { off: 0 }]);
        let mut cpu = cpu200();
        let retired = cpu.run_until(&mut mem, SimTime::from_us(1));
        assert!(retired > 0);
        assert!(cpu.now() >= SimTime::from_us(1));
        assert!(!cpu.halted());
    }

    #[test]
    fn asm_program_executes() {
        // End-to-end: assemble text, run, check result (sum 1..=100).
        let src = r#"
            # sum the integers 1..=100
            addi r3, r0, 0       ; acc
            addi r4, r0, 100     ; n
        loop:
            add  r3, r3, r4
            addi r4, r4, -1
            cmpwi r4, 0
            bne loop
            halt
        "#;
        let prog = assemble(src, 0).unwrap();
        let mut mem = FlatMem::new(65536);
        for (i, w) in prog.words.iter().enumerate() {
            mem.store_u32(prog.base + 4 * i as u32, *w);
        }
        let mut cpu = cpu200();
        cpu.set_pc(prog.base);
        assert!(cpu.run_until_halt(&mut mem, 100_000));
        assert_eq!(cpu.reg(3), 5050);
    }
}
