//! Two-pass text assembler.
//!
//! All software baselines in the reproduction (the paper's "software-only
//! implementations running on the embedded CPU") are written in this
//! assembly dialect. Syntax:
//!
//! ```text
//! # comment            ; also a comment
//! label:
//!     addi  r3, r0, 42
//!     lwz   r4, 8(r3)       # displacement addressing
//!     lwzx  r5, r3, r4      # indexed addressing
//!     cmpwi r4, 0
//!     bne   label           # branch to label
//!     li    r6, 7           # pseudo: addi r6, r0, 7
//!     lis   r7, 0x1234      # pseudo: addis r7, r0, 0x1234
//!     mr    r8, r7          # pseudo: or r8, r7, r7
//!     .word 0xDEADBEEF      # literal data
//!     halt
//! ```

use crate::isa::{encode, Instr};
use std::collections::HashMap;

/// An assembled program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Load address of the first word.
    pub base: u32,
    /// Instruction/data words.
    pub words: Vec<u32>,
    /// Label → absolute address.
    pub labels: HashMap<String, u32>,
}

impl Program {
    /// Program size in bytes.
    pub fn byte_len(&self) -> usize {
        self.words.len() * 4
    }

    /// Address of a label.
    ///
    /// # Panics
    /// Panics if the label is unknown (test ergonomics).
    pub fn label(&self, name: &str) -> u32 {
        *self
            .labels
            .get(name)
            .unwrap_or_else(|| panic!("unknown label '{name}'"))
    }
}

/// Assembly errors with line numbers (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// Source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// One statement after lexing.
#[derive(Debug)]
enum Stmt {
    Instr {
        mnemonic: String,
        operands: Vec<String>,
        line: usize,
    },
    Word(u32),
}

fn parse_reg(s: &str, line: usize) -> Result<u8, AsmError> {
    let s = s.trim();
    let num = s
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected register, got '{s}'")))?;
    let n: u8 = num
        .parse()
        .map_err(|_| err(line, format!("bad register '{s}'")))?;
    if n > 31 {
        return Err(err(line, format!("register out of range '{s}'")));
    }
    Ok(n)
}

fn parse_imm(s: &str, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad immediate '{s}'")))?;
    Ok(if neg { -v } else { v })
}

fn imm_i16(v: i64, line: usize) -> Result<i16, AsmError> {
    // Accept both signed [-32768, 32767] and unsigned-style [0, 65535].
    if (-32768..=65535).contains(&v) {
        Ok(v as u16 as i16)
    } else {
        Err(err(line, format!("immediate {v} does not fit 16 bits")))
    }
}

fn imm_u16(v: i64, line: usize) -> Result<u16, AsmError> {
    if (0..=65535).contains(&v) {
        Ok(v as u16)
    } else if (-32768..0).contains(&v) {
        Ok(v as i16 as u16)
    } else {
        Err(err(line, format!("immediate {v} does not fit 16 bits")))
    }
}

fn imm_sh(v: i64, line: usize) -> Result<u8, AsmError> {
    if (0..=31).contains(&v) {
        Ok(v as u8)
    } else {
        Err(err(line, format!("shift amount {v} out of range")))
    }
}

/// Splits `disp(rA)` into (disp, reg).
fn parse_mem(s: &str, line: usize) -> Result<(i64, u8), AsmError> {
    let open = s
        .find('(')
        .ok_or_else(|| err(line, format!("expected disp(rA), got '{s}'")))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| err(line, format!("missing ')' in '{s}'")))?;
    let disp = if s[..open].trim().is_empty() {
        0
    } else {
        parse_imm(&s[..open], line)?
    };
    let reg = parse_reg(&s[open + 1..close], line)?;
    Ok((disp, reg))
}

/// Assembles `src` at load address `base`.
pub fn assemble(src: &str, base: u32) -> Result<Program, AsmError> {
    assert_eq!(base % 4, 0, "base must be word-aligned");
    // Pass 1: lex statements, record label addresses.
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = raw;
        if let Some(p) = text.find(['#', ';']) {
            text = &text[..p];
        }
        let mut text = text.trim();
        // Labels (possibly several, though style uses one).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                return Err(err(line_no, format!("bad label '{label}'")));
            }
            let addr = base + 4 * stmts.len() as u32;
            if labels.insert(label.to_string(), addr).is_some() {
                return Err(err(line_no, format!("duplicate label '{label}'")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix(".word") {
            let v = parse_imm(rest.trim(), line_no)?;
            stmts.push(Stmt::Word(v as u32));
            continue;
        }
        let (mnemonic, ops) = match text.find(char::is_whitespace) {
            Some(p) => (&text[..p], text[p..].trim()),
            None => (text, ""),
        };
        let operands: Vec<String> = if ops.is_empty() {
            Vec::new()
        } else {
            ops.split(',').map(|s| s.trim().to_string()).collect()
        };
        stmts.push(Stmt::Instr {
            mnemonic: mnemonic.to_ascii_lowercase(),
            operands,
            line: line_no,
        });
    }

    // Pass 2: encode.
    let mut words = Vec::with_capacity(stmts.len());
    for (i, stmt) in stmts.iter().enumerate() {
        let pc = base + 4 * i as u32;
        match stmt {
            Stmt::Word(w) => words.push(*w),
            Stmt::Instr {
                mnemonic,
                operands,
                line,
            } => {
                let instr = encode_stmt(mnemonic, operands, pc, &labels, *line)?;
                words.push(encode(instr));
            }
        }
    }
    Ok(Program {
        base,
        words,
        labels,
    })
}

/// Resolves a branch target operand (label or numeric offset) to a word
/// offset relative to `pc`.
fn branch_off(
    op: &str,
    pc: u32,
    labels: &HashMap<String, u32>,
    line: usize,
) -> Result<i16, AsmError> {
    if let Some(&target) = labels.get(op.trim()) {
        let delta = (i64::from(target) - i64::from(pc)) / 4;
        if !(-32768..=32767).contains(&delta) {
            return Err(err(line, format!("branch to '{op}' out of range")));
        }
        Ok(delta as i16)
    } else {
        let v = parse_imm(op, line)?;
        if !(-32768..=32767).contains(&v) {
            return Err(err(line, "branch offset out of range"));
        }
        Ok(v as i16)
    }
}

#[allow(clippy::too_many_lines)]
fn encode_stmt(
    mnemonic: &str,
    ops: &[String],
    pc: u32,
    labels: &HashMap<String, u32>,
    line: usize,
) -> Result<Instr, AsmError> {
    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("'{mnemonic}' expects {n} operands, got {}", ops.len()),
            ))
        }
    };
    let rrr = |f: fn(u8, u8, u8) -> Instr| -> Result<Instr, AsmError> {
        need(3)?;
        Ok(f(
            parse_reg(&ops[0], line)?,
            parse_reg(&ops[1], line)?,
            parse_reg(&ops[2], line)?,
        ))
    };
    let rri = |f: fn(u8, u8, i16) -> Instr| -> Result<Instr, AsmError> {
        need(3)?;
        Ok(f(
            parse_reg(&ops[0], line)?,
            parse_reg(&ops[1], line)?,
            imm_i16(parse_imm(&ops[2], line)?, line)?,
        ))
    };
    let rru = |f: fn(u8, u8, u16) -> Instr| -> Result<Instr, AsmError> {
        need(3)?;
        Ok(f(
            parse_reg(&ops[0], line)?,
            parse_reg(&ops[1], line)?,
            imm_u16(parse_imm(&ops[2], line)?, line)?,
        ))
    };
    let rrsh = |f: fn(u8, u8, u8) -> Instr| -> Result<Instr, AsmError> {
        need(3)?;
        Ok(f(
            parse_reg(&ops[0], line)?,
            parse_reg(&ops[1], line)?,
            imm_sh(parse_imm(&ops[2], line)?, line)?,
        ))
    };
    let mem_form = |f: fn(u8, u8, i16) -> Instr| -> Result<Instr, AsmError> {
        need(2)?;
        let rd = parse_reg(&ops[0], line)?;
        let (disp, ra) = parse_mem(&ops[1], line)?;
        Ok(f(rd, ra, imm_i16(disp, line)?))
    };
    let branch = |f: fn(i16) -> Instr| -> Result<Instr, AsmError> {
        need(1)?;
        Ok(f(branch_off(&ops[0], pc, labels, line)?))
    };

    Ok(match mnemonic {
        "halt" => {
            need(0)?;
            Instr::Halt
        }
        "nop" => {
            need(0)?;
            Instr::Nop
        }
        "sync" => {
            need(0)?;
            Instr::Sync
        }
        "addi" => rri(|rd, ra, imm| Instr::Addi { rd, ra, imm })?,
        "addis" => rri(|rd, ra, imm| Instr::Addis { rd, ra, imm })?,
        "li" => {
            need(2)?;
            Instr::Addi {
                rd: parse_reg(&ops[0], line)?,
                ra: 0,
                imm: imm_i16(parse_imm(&ops[1], line)?, line)?,
            }
        }
        "lis" => {
            need(2)?;
            Instr::Addis {
                rd: parse_reg(&ops[0], line)?,
                ra: 0,
                imm: imm_i16(parse_imm(&ops[1], line)?, line)?,
            }
        }
        "mr" => {
            need(2)?;
            let rd = parse_reg(&ops[0], line)?;
            let ra = parse_reg(&ops[1], line)?;
            Instr::Or { rd, ra, rb: ra }
        }
        "add" => rrr(|rd, ra, rb| Instr::Add { rd, ra, rb })?,
        "sub" | "subf" => rrr(|rd, ra, rb| Instr::Sub { rd, ra, rb })?,
        "mullw" => rrr(|rd, ra, rb| Instr::Mullw { rd, ra, rb })?,
        "and" => rrr(|rd, ra, rb| Instr::And { rd, ra, rb })?,
        "or" => rrr(|rd, ra, rb| Instr::Or { rd, ra, rb })?,
        "xor" => rrr(|rd, ra, rb| Instr::Xor { rd, ra, rb })?,
        "nor" => rrr(|rd, ra, rb| Instr::Nor { rd, ra, rb })?,
        "slw" => rrr(|rd, ra, rb| Instr::Slw { rd, ra, rb })?,
        "srw" => rrr(|rd, ra, rb| Instr::Srw { rd, ra, rb })?,
        "andi" => rru(|rd, ra, imm| Instr::Andi { rd, ra, imm })?,
        "ori" => rru(|rd, ra, imm| Instr::Ori { rd, ra, imm })?,
        "xori" => rru(|rd, ra, imm| Instr::Xori { rd, ra, imm })?,
        "slwi" => rrsh(|rd, ra, sh| Instr::Slwi { rd, ra, sh })?,
        "srwi" => rrsh(|rd, ra, sh| Instr::Srwi { rd, ra, sh })?,
        "srawi" => rrsh(|rd, ra, sh| Instr::Srawi { rd, ra, sh })?,
        "rotlwi" => rrsh(|rd, ra, sh| Instr::Rotlwi { rd, ra, sh })?,
        "lwz" => mem_form(|rd, ra, imm| Instr::Lwz { rd, ra, imm })?,
        "lbz" => mem_form(|rd, ra, imm| Instr::Lbz { rd, ra, imm })?,
        "lhz" => mem_form(|rd, ra, imm| Instr::Lhz { rd, ra, imm })?,
        "stw" => mem_form(|rd, ra, imm| Instr::Stw { rd, ra, imm })?,
        "stb" => mem_form(|rd, ra, imm| Instr::Stb { rd, ra, imm })?,
        "sth" => mem_form(|rd, ra, imm| Instr::Sth { rd, ra, imm })?,
        "lwzx" => rrr(|rd, ra, rb| Instr::Lwzx { rd, ra, rb })?,
        "stwx" => rrr(|rd, ra, rb| Instr::Stwx { rd, ra, rb })?,
        "lbzx" => rrr(|rd, ra, rb| Instr::Lbzx { rd, ra, rb })?,
        "lhzx" => rrr(|rd, ra, rb| Instr::Lhzx { rd, ra, rb })?,
        "stbx" => rrr(|rd, ra, rb| Instr::Stbx { rd, ra, rb })?,
        "cmpw" => {
            need(2)?;
            Instr::Cmpw {
                ra: parse_reg(&ops[0], line)?,
                rb: parse_reg(&ops[1], line)?,
            }
        }
        "cmplw" => {
            need(2)?;
            Instr::Cmplw {
                ra: parse_reg(&ops[0], line)?,
                rb: parse_reg(&ops[1], line)?,
            }
        }
        "cmpwi" => {
            need(2)?;
            Instr::Cmpwi {
                ra: parse_reg(&ops[0], line)?,
                imm: imm_i16(parse_imm(&ops[1], line)?, line)?,
            }
        }
        "cmplwi" => {
            need(2)?;
            Instr::Cmplwi {
                ra: parse_reg(&ops[0], line)?,
                imm: imm_u16(parse_imm(&ops[1], line)?, line)?,
            }
        }
        "b" => branch(|off| Instr::B { off })?,
        "bl" => branch(|off| Instr::Bl { off })?,
        "blr" => {
            need(0)?;
            Instr::Blr
        }
        "beq" => branch(|off| Instr::Beq { off })?,
        "bne" => branch(|off| Instr::Bne { off })?,
        "blt" => branch(|off| Instr::Blt { off })?,
        "bge" => branch(|off| Instr::Bge { off })?,
        "bgt" => branch(|off| Instr::Bgt { off })?,
        "ble" => branch(|off| Instr::Ble { off })?,
        "dcbf" => {
            need(1)?;
            let (disp, ra) = parse_mem(&ops[0], line)?;
            Instr::Dcbf {
                ra,
                imm: imm_i16(disp, line)?,
            }
        }
        "dcbi" => {
            need(1)?;
            let (disp, ra) = parse_mem(&ops[0], line)?;
            Instr::Dcbi {
                ra,
                imm: imm_i16(disp, line)?,
            }
        }
        "wrteei" => {
            need(1)?;
            Instr::Wrteei {
                imm: imm_u16(parse_imm(&ops[0], line)?, line)? & 1,
            }
        }
        "rfi" => {
            need(0)?;
            Instr::Rfi
        }
        "mflr" => {
            need(1)?;
            Instr::Mflr {
                rd: parse_reg(&ops[0], line)?,
            }
        }
        "mtlr" => {
            need(1)?;
            Instr::Mtlr {
                ra: parse_reg(&ops[0], line)?,
            }
        }
        other => return Err(err(line, format!("unknown mnemonic '{other}'"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::decode;

    #[test]
    fn basic_program() {
        let p = assemble("start:\n  li r3, 5\n  addi r3, r3, 1\n  halt\n", 0x100).unwrap();
        assert_eq!(p.base, 0x100);
        assert_eq!(p.words.len(), 3);
        assert_eq!(p.label("start"), 0x100);
        assert_eq!(
            decode(p.words[0]),
            Some(Instr::Addi {
                rd: 3,
                ra: 0,
                imm: 5
            })
        );
    }

    #[test]
    fn labels_and_branches() {
        let p = assemble(
            r#"
            li r3, 3
        top:
            addi r3, r3, -1
            cmpwi r3, 0
            bne top
            halt
        "#,
            0,
        )
        .unwrap();
        // bne at word 3 targets word 1: offset -2.
        assert_eq!(decode(p.words[3]), Some(Instr::Bne { off: -2 }));
    }

    #[test]
    fn forward_references() {
        let p = assemble("  b end\n  halt\nend:\n  halt\n", 0).unwrap();
        assert_eq!(decode(p.words[0]), Some(Instr::B { off: 2 }));
    }

    #[test]
    fn memory_operands() {
        let p = assemble("  lwz r3, 8(r4)\n  stw r3, -4(r5)\n  lwz r6, (r7)\n", 0).unwrap();
        assert_eq!(
            decode(p.words[0]),
            Some(Instr::Lwz {
                rd: 3,
                ra: 4,
                imm: 8
            })
        );
        assert_eq!(
            decode(p.words[1]),
            Some(Instr::Stw {
                rd: 3,
                ra: 5,
                imm: -4
            })
        );
        assert_eq!(
            decode(p.words[2]),
            Some(Instr::Lwz {
                rd: 6,
                ra: 7,
                imm: 0
            })
        );
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("  li r3, 0xFF\n  li r4, -1\n  andi r5, r3, 0xF0F0\n", 0).unwrap();
        assert_eq!(
            decode(p.words[2]),
            Some(Instr::Andi {
                rd: 5,
                ra: 3,
                imm: 0xF0F0
            })
        );
        assert_eq!(
            decode(p.words[1]),
            Some(Instr::Addi {
                rd: 4,
                ra: 0,
                imm: -1
            })
        );
    }

    #[test]
    fn comments_both_styles() {
        let p = assemble("  li r3, 1 # hash\n  li r4, 2 ; semi\n", 0).unwrap();
        assert_eq!(p.words.len(), 2);
    }

    #[test]
    fn word_directive() {
        let p = assemble("data:\n  .word 0xCAFEBABE\n", 0x40).unwrap();
        assert_eq!(p.words[0], 0xCAFE_BABE);
        assert_eq!(p.label("data"), 0x40);
    }

    #[test]
    fn error_reporting() {
        let e = assemble("  bogus r1\n", 0).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("bogus"));
        let e = assemble("\n  addi r3, r0\n", 0).unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble("  li r99, 0\n", 0).unwrap_err();
        assert!(e.message.contains("register"));
        let e = assemble("  b nowhere_special_9\n", 0).unwrap_err();
        assert!(e.message.contains("bad immediate") || e.message.contains("branch"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a:\n  nop\na:\n  nop\n", 0).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn pseudo_ops() {
        let p = assemble("  mr r3, r4\n  lis r5, 0x1000\n", 0).unwrap();
        assert_eq!(
            decode(p.words[0]),
            Some(Instr::Or {
                rd: 3,
                ra: 4,
                rb: 4
            })
        );
        assert_eq!(
            decode(p.words[1]),
            Some(Instr::Addis {
                rd: 5,
                ra: 0,
                imm: 0x1000
            })
        );
    }

    #[test]
    fn cache_ops_and_irq_ops() {
        let p = assemble("  dcbf (r3)\n  dcbi 32(r4)\n  wrteei 1\n  rfi\n", 0).unwrap();
        assert_eq!(decode(p.words[0]), Some(Instr::Dcbf { ra: 3, imm: 0 }));
        assert_eq!(decode(p.words[1]), Some(Instr::Dcbi { ra: 4, imm: 32 }));
        assert_eq!(decode(p.words[2]), Some(Instr::Wrteei { imm: 1 }));
        assert_eq!(decode(p.words[3]), Some(Instr::Rfi));
    }
}
