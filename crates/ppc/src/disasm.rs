//! Disassembler: renders instruction words back into the assembler's
//! syntax. Round-trips with [`crate::asm::assemble`] (property-tested), and
//! backs the machine's debugging output.

use crate::isa::{decode, Instr};

/// Disassembles one word, or `None` for an illegal encoding.
pub fn disassemble(word: u32) -> Option<String> {
    Some(render(decode(word)?))
}

/// Renders a decoded instruction in assembler syntax. Branch offsets are
/// rendered numerically (labels are an assembler-level concept).
pub fn render(i: Instr) -> String {
    use Instr::*;
    match i {
        Halt => "halt".to_string(),
        Nop => "nop".to_string(),
        Sync => "sync".to_string(),
        Blr => "blr".to_string(),
        Rfi => "rfi".to_string(),
        Addi { rd, ra, imm } => format!("addi r{rd}, r{ra}, {imm}"),
        Addis { rd, ra, imm } => format!("addis r{rd}, r{ra}, {imm}"),
        Add { rd, ra, rb } => format!("add r{rd}, r{ra}, r{rb}"),
        Sub { rd, ra, rb } => format!("sub r{rd}, r{ra}, r{rb}"),
        Mullw { rd, ra, rb } => format!("mullw r{rd}, r{ra}, r{rb}"),
        And { rd, ra, rb } => format!("and r{rd}, r{ra}, r{rb}"),
        Or { rd, ra, rb } => format!("or r{rd}, r{ra}, r{rb}"),
        Xor { rd, ra, rb } => format!("xor r{rd}, r{ra}, r{rb}"),
        Nor { rd, ra, rb } => format!("nor r{rd}, r{ra}, r{rb}"),
        Andi { rd, ra, imm } => format!("andi r{rd}, r{ra}, {imm}"),
        Ori { rd, ra, imm } => format!("ori r{rd}, r{ra}, {imm}"),
        Xori { rd, ra, imm } => format!("xori r{rd}, r{ra}, {imm}"),
        Slw { rd, ra, rb } => format!("slw r{rd}, r{ra}, r{rb}"),
        Srw { rd, ra, rb } => format!("srw r{rd}, r{ra}, r{rb}"),
        Slwi { rd, ra, sh } => format!("slwi r{rd}, r{ra}, {sh}"),
        Srwi { rd, ra, sh } => format!("srwi r{rd}, r{ra}, {sh}"),
        Srawi { rd, ra, sh } => format!("srawi r{rd}, r{ra}, {sh}"),
        Rotlwi { rd, ra, sh } => format!("rotlwi r{rd}, r{ra}, {sh}"),
        Lwz { rd, ra, imm } => format!("lwz r{rd}, {imm}(r{ra})"),
        Lbz { rd, ra, imm } => format!("lbz r{rd}, {imm}(r{ra})"),
        Lhz { rd, ra, imm } => format!("lhz r{rd}, {imm}(r{ra})"),
        Stw { rd, ra, imm } => format!("stw r{rd}, {imm}(r{ra})"),
        Stb { rd, ra, imm } => format!("stb r{rd}, {imm}(r{ra})"),
        Sth { rd, ra, imm } => format!("sth r{rd}, {imm}(r{ra})"),
        Lwzx { rd, ra, rb } => format!("lwzx r{rd}, r{ra}, r{rb}"),
        Stwx { rd, ra, rb } => format!("stwx r{rd}, r{ra}, r{rb}"),
        Lbzx { rd, ra, rb } => format!("lbzx r{rd}, r{ra}, r{rb}"),
        Stbx { rd, ra, rb } => format!("stbx r{rd}, r{ra}, r{rb}"),
        Lhzx { rd, ra, rb } => format!("lhzx r{rd}, r{ra}, r{rb}"),
        Cmpw { ra, rb } => format!("cmpw r{ra}, r{rb}"),
        Cmplw { ra, rb } => format!("cmplw r{ra}, r{rb}"),
        Cmpwi { ra, imm } => format!("cmpwi r{ra}, {imm}"),
        Cmplwi { ra, imm } => format!("cmplwi r{ra}, {imm}"),
        B { off } => format!("b {off}"),
        Bl { off } => format!("bl {off}"),
        Beq { off } => format!("beq {off}"),
        Bne { off } => format!("bne {off}"),
        Blt { off } => format!("blt {off}"),
        Bge { off } => format!("bge {off}"),
        Bgt { off } => format!("bgt {off}"),
        Ble { off } => format!("ble {off}"),
        Dcbf { ra, imm } => format!("dcbf {imm}(r{ra})"),
        Dcbi { ra, imm } => format!("dcbi {imm}(r{ra})"),
        Wrteei { imm } => format!("wrteei {imm}"),
        Mflr { rd } => format!("mflr r{rd}"),
        Mtlr { ra } => format!("mtlr r{ra}"),
    }
}

/// Disassembles a program region (diagnostics helper).
pub fn disassemble_block(base: u32, words: &[u32]) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let addr = base + 4 * i as u32;
        let text = disassemble(w).unwrap_or_else(|| format!(".word 0x{w:08X}"));
        out.push_str(&format!("{addr:08x}:  {text}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::isa::encode;

    #[test]
    fn renders_known_forms() {
        assert_eq!(
            disassemble(encode(Instr::Addi {
                rd: 3,
                ra: 0,
                imm: -7
            }))
            .unwrap(),
            "addi r3, r0, -7"
        );
        assert_eq!(
            disassemble(encode(Instr::Lwz {
                rd: 4,
                ra: 5,
                imm: 8
            }))
            .unwrap(),
            "lwz r4, 8(r5)"
        );
        assert_eq!(disassemble(encode(Instr::Blr)).unwrap(), "blr");
        assert_eq!(disassemble(63 << 26), None, "illegal encoding");
    }

    #[test]
    fn block_disassembly_includes_addresses() {
        let words = vec![
            encode(Instr::Nop),
            encode(Instr::Halt),
            0xFFFF_FFFF, // illegal → .word
        ];
        let s = disassemble_block(0x1000, &words);
        assert!(s.contains("00001000:  nop"));
        assert!(s.contains("00001004:  halt"));
        assert!(s.contains(".word 0xFFFFFFFF"));
    }

    /// Every renderable instruction reassembles to the same word
    /// (assembler → disassembler → assembler fixpoint).
    #[test]
    fn roundtrip_through_the_assembler() {
        let samples = [
            Instr::Addi {
                rd: 1,
                ra: 2,
                imm: -32768,
            },
            Instr::Slwi {
                rd: 7,
                ra: 8,
                sh: 31,
            },
            Instr::Stw {
                rd: 9,
                ra: 10,
                imm: -4,
            },
            Instr::Lhzx {
                rd: 1,
                ra: 2,
                rb: 3,
            },
            Instr::Cmplwi { ra: 6, imm: 65535 },
            Instr::Bne { off: -100 },
            Instr::Dcbf { ra: 3, imm: 32 },
            Instr::Wrteei { imm: 1 },
            Instr::Mtlr { ra: 29 },
        ];
        for i in samples {
            let text = render(i);
            let prog = assemble(&format!("  {text}\n"), 0)
                .unwrap_or_else(|e| panic!("'{text}' failed to reassemble: {e}"));
            assert_eq!(prog.words[0], encode(i), "'{text}'");
        }
    }

    /// Random word: either both decode+render+reassemble agree, or the
    /// word is illegal for the disassembler too.
    #[test]
    fn random_words_roundtrip() {
        let mut rng = vp2_sim::SplitMix64::new(0xD15A_53B1);
        for _ in 0..4096 {
            let w = rng.next_u32();
            if let Some(text) = disassemble(w) {
                // Branch offsets render numerically; negative offsets are
                // legal operands for the assembler.
                let prog =
                    assemble(&format!("  {text}\n"), 0).unwrap_or_else(|e| panic!("'{text}': {e}"));
                // Re-encoding must produce a word that decodes identically
                // (unused encoding bits may differ).
                assert_eq!(crate::isa::decode(prog.words[0]), crate::isa::decode(w));
            }
        }
    }
}
