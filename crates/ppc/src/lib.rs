//! # ppc405-sim — embedded CPU model
//!
//! A PowerPC-405-flavoured 32-bit embedded CPU: scalar, in-order, with the
//! 405's cache organisation (16 KB 2-way set-associative instruction and
//! data caches, 32-byte lines, write-back data cache) and an external
//! interrupt input. The software sides of every experiment in the paper run
//! as real programs on this interpreter, so loop overheads, 32-bit-only
//! load/store widths (the architectural limit that motivates the paper's DMA
//! design) and cache behaviour are all emergent rather than estimated.
//!
//! Deliberate simplifications, documented here and in DESIGN.md:
//!
//! * the instruction *encoding* is our own fixed 32-bit format, not the real
//!   PowerPC encoding (mnemonics follow PPC conventions);
//! * `r0` reads as hard zero (RISC-V style) instead of PPC's "r0 is zero
//!   only in addressing" rule — it keeps hand-written kernels honest;
//! * one condition-register field (CR0) instead of eight;
//! * timing: 1 cycle per instruction, 4 for `mullw`, +1 for taken branches,
//!   plus memory-system time for cache misses and uncached accesses — a
//!   reasonable stand-in for the 405's 5-stage pipeline.

pub mod asm;
pub mod cache;
pub mod cpu;
pub mod disasm;
pub mod isa;
pub mod mem;

pub use asm::{assemble, AsmError, Program};
pub use cache::Cache;
pub use cpu::{Cpu, CpuConfig, StepOutcome};
pub use disasm::{disassemble, disassemble_block};
pub use isa::{decode, encode, Instr};
pub use mem::{FlatMem, MemoryPort};
