//! Set-associative cache model (the 405's 16 KB, 2-way, 32-byte-line
//! organisation by default; the data cache is write-back with
//! write-allocate).
//!
//! The cache owns no memory — misses and writebacks go through the
//! [`MemoryPort`](crate::mem::MemoryPort) and the consumed time is returned
//! to the CPU, so a D-cache miss on the 32-bit system is automatically more
//! expensive than on the 64-bit system (slower bus, bridge crossing).

use crate::mem::{MemoryPort, LINE_BYTES};
use vp2_sim::SimTime;

#[derive(Debug, Clone)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    data: [u8; LINE_BYTES],
    /// Higher = more recently used.
    lru: u64,
}

impl Line {
    fn empty() -> Self {
        Line {
            valid: false,
            dirty: false,
            tag: 0,
            data: [0; LINE_BYTES],
            lru: 0,
        }
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Hits.
    pub hits: u64,
    /// Misses (fills).
    pub misses: u64,
    /// Dirty-line writebacks.
    pub writebacks: u64,
}

/// A set-associative write-back cache.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    set_shift: u32,
    set_mask: u32,
    tick: u64,
    /// Statistics.
    pub stats: CacheStats,
}

impl Cache {
    /// Builds a cache of `size_bytes` with `ways` ways and 32-byte lines.
    ///
    /// # Panics
    /// Panics unless `size_bytes` is a power-of-two multiple of
    /// `ways * 32`.
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        let lines = size_bytes / LINE_BYTES;
        assert!(lines.is_multiple_of(ways), "line count must divide by ways");
        let nsets = lines / ways;
        assert!(nsets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![vec![Line::empty(); ways]; nsets],
            set_shift: LINE_BYTES.trailing_zeros(),
            set_mask: (nsets - 1) as u32,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The 405's 16 KB 2-way configuration.
    pub fn ppc405() -> Self {
        Cache::new(16 * 1024, 2)
    }

    #[inline]
    fn set_index(&self, addr: u32) -> usize {
        ((addr >> self.set_shift) & self.set_mask) as usize
    }

    #[inline]
    fn tag_of(&self, addr: u32) -> u32 {
        addr >> self.set_shift >> (self.set_mask.count_ones())
    }

    #[inline]
    fn line_base(addr: u32) -> u32 {
        addr & !(LINE_BYTES as u32 - 1)
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.tick += 1;
        self.sets[set][way].lru = self.tick;
    }

    fn find(&self, set: usize, tag: u32) -> Option<usize> {
        self.sets[set].iter().position(|l| l.valid && l.tag == tag)
    }

    /// Ensures the line containing `addr` is resident; returns
    /// `(way, time_spent)`.
    fn fill(&mut self, now: SimTime, addr: u32, mem: &mut dyn MemoryPort) -> (usize, SimTime) {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        if let Some(way) = self.find(set, tag) {
            self.stats.hits += 1;
            self.touch(set, way);
            return (way, SimTime::ZERO);
        }
        self.stats.misses += 1;
        // Victim: invalid first, else LRU.
        let way = self.sets[set]
            .iter()
            .position(|l| !l.valid)
            .unwrap_or_else(|| {
                self.sets[set]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .map(|(i, _)| i)
                    .expect("ways > 0")
            });
        let mut spent = SimTime::ZERO;
        let nsets = self.set_mask + 1;
        // Write back a dirty victim.
        if self.sets[set][way].valid && self.sets[set][way].dirty {
            self.stats.writebacks += 1;
            let victim_tag = self.sets[set][way].tag;
            let victim_addr = (victim_tag << (self.set_shift + nsets.trailing_zeros()))
                | ((set as u32) << self.set_shift);
            let data = self.sets[set][way].data;
            spent += mem.write_line(now + spent, victim_addr, &data);
        }
        let base = Self::line_base(addr);
        let mut buf = [0u8; LINE_BYTES];
        spent += mem.read_line(now + spent, base, &mut buf);
        let line = &mut self.sets[set][way];
        line.valid = true;
        line.dirty = false;
        line.tag = tag;
        line.data = buf;
        self.touch(set, way);
        (way, spent)
    }

    /// Cached read of `size` ∈ {1,2,4} bytes; returns `(data, time)`.
    pub fn read(
        &mut self,
        now: SimTime,
        addr: u32,
        size: u8,
        mem: &mut dyn MemoryPort,
    ) -> (u32, SimTime) {
        let (way, spent) = self.fill(now, addr, mem);
        let set = self.set_index(addr);
        let off = (addr as usize) & (LINE_BYTES - 1);
        let d = &self.sets[set][way].data;
        let v = match size {
            1 => u32::from(d[off]),
            2 => u32::from(u16::from_be_bytes(d[off..off + 2].try_into().unwrap())),
            4 => u32::from_be_bytes(d[off..off + 4].try_into().unwrap()),
            _ => panic!("bad size {size}"),
        };
        (v, spent)
    }

    /// Cached write (write-back, write-allocate); returns time spent.
    pub fn write(
        &mut self,
        now: SimTime,
        addr: u32,
        size: u8,
        data: u32,
        mem: &mut dyn MemoryPort,
    ) -> SimTime {
        let (way, spent) = self.fill(now, addr, mem);
        let set = self.set_index(addr);
        let off = (addr as usize) & (LINE_BYTES - 1);
        let line = &mut self.sets[set][way];
        match size {
            1 => line.data[off] = data as u8,
            2 => line.data[off..off + 2].copy_from_slice(&(data as u16).to_be_bytes()),
            4 => line.data[off..off + 4].copy_from_slice(&data.to_be_bytes()),
            _ => panic!("bad size {size}"),
        }
        line.dirty = true;
        spent
    }

    /// Flushes (writes back if dirty, then invalidates) the line containing
    /// `addr`; returns time spent. The `dcbf` instruction.
    pub fn flush_line(&mut self, now: SimTime, addr: u32, mem: &mut dyn MemoryPort) -> SimTime {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        if let Some(way) = self.find(set, tag) {
            let mut spent = SimTime::ZERO;
            if self.sets[set][way].dirty {
                self.stats.writebacks += 1;
                let data = self.sets[set][way].data;
                spent += mem.write_line(now, Self::line_base(addr), &data);
            }
            self.sets[set][way].valid = false;
            spent
        } else {
            SimTime::ZERO
        }
    }

    /// Invalidates (without writeback) the line containing `addr`. The
    /// `dcbi` instruction — used before reading DMA-produced buffers.
    pub fn invalidate_line(&mut self, addr: u32) {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        if let Some(way) = self.find(set, tag) {
            self.sets[set][way].valid = false;
        }
    }

    /// Invalidates everything (no writeback).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.valid = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::FlatMem;

    #[test]
    fn read_hit_after_miss() {
        let mut c = Cache::new(1024, 2);
        let mut m = FlatMem::new(4096);
        m.store_u32(64, 0xDEAD_BEEF);
        let (v, t) = c.read(SimTime::ZERO, 64, 4, &mut m);
        assert_eq!(v, 0xDEAD_BEEF);
        assert_eq!(t, m.line_time, "miss costs a line fill");
        let (v2, t2) = c.read(SimTime::ZERO, 68, 4, &mut m);
        assert_eq!(v2, 0);
        assert_eq!(t2, SimTime::ZERO, "same line: hit");
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn write_back_on_eviction() {
        // 2 sets x 2 ways x 32B = 128B cache: addresses 0, 128, 256 map to
        // set 0; third access evicts the LRU line.
        let mut c = Cache::new(128, 2);
        let mut m = FlatMem::new(4096);
        c.write(SimTime::ZERO, 0, 4, 0x1111_1111, &mut m);
        c.write(SimTime::ZERO, 128, 4, 0x2222_2222, &mut m);
        assert_eq!(m.load_u32(0), 0, "dirty data not yet in memory");
        c.read(SimTime::ZERO, 256, 4, &mut m); // evicts line 0 (LRU)
        assert_eq!(m.load_u32(0), 0x1111_1111, "writeback happened");
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn lru_replacement_order() {
        let mut c = Cache::new(128, 2);
        let mut m = FlatMem::new(4096);
        c.read(SimTime::ZERO, 0, 4, &mut m); // way A ← line 0
        c.read(SimTime::ZERO, 128, 4, &mut m); // way B ← line 128
        c.read(SimTime::ZERO, 0, 4, &mut m); // touch line 0
        c.read(SimTime::ZERO, 256, 4, &mut m); // must evict line 128
                                               // line 0 still resident:
        let (_, t) = c.read(SimTime::ZERO, 0, 4, &mut m);
        assert_eq!(t, SimTime::ZERO);
        // line 128 was evicted:
        let (_, t) = c.read(SimTime::ZERO, 128, 4, &mut m);
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn flush_line_writes_back_and_invalidates() {
        let mut c = Cache::new(1024, 2);
        let mut m = FlatMem::new(4096);
        c.write(SimTime::ZERO, 96, 4, 0xABCD_0123, &mut m);
        assert_eq!(m.load_u32(96), 0);
        let t = c.flush_line(SimTime::ZERO, 96, &mut m);
        assert!(t > SimTime::ZERO);
        assert_eq!(m.load_u32(96), 0xABCD_0123);
        // Line no longer resident.
        let (_, t2) = c.read(SimTime::ZERO, 96, 4, &mut m);
        assert!(t2 > SimTime::ZERO);
    }

    #[test]
    fn invalidate_discards_dirty_data() {
        let mut c = Cache::new(1024, 2);
        let mut m = FlatMem::new(4096);
        m.store_u32(32, 0x5555_5555);
        c.write(SimTime::ZERO, 32, 4, 0x9999_9999, &mut m);
        c.invalidate_line(32);
        let (v, _) = c.read(SimTime::ZERO, 32, 4, &mut m);
        assert_eq!(v, 0x5555_5555, "memory value restored, dirty data lost");
    }

    #[test]
    fn sub_word_writes_merge() {
        let mut c = Cache::new(1024, 2);
        let mut m = FlatMem::new(4096);
        c.write(SimTime::ZERO, 0, 4, 0x1122_3344, &mut m);
        c.write(SimTime::ZERO, 1, 1, 0xFF, &mut m);
        let (v, _) = c.read(SimTime::ZERO, 0, 4, &mut m);
        assert_eq!(v, 0x11FF_3344);
    }

    #[test]
    fn flush_of_clean_line_is_free() {
        let mut c = Cache::new(1024, 2);
        let mut m = FlatMem::new(4096);
        c.read(SimTime::ZERO, 0, 4, &mut m);
        let t = c.flush_line(SimTime::ZERO, 0, &mut m);
        assert_eq!(t, SimTime::ZERO, "clean line: no writeback");
    }

    #[test]
    fn victim_writeback_address_reconstruction() {
        // Regression for tag/set address reassembly: write to a high
        // address, force eviction, verify memory got the right bytes.
        let mut c = Cache::new(128, 2); // 2 sets
        let mut m = FlatMem::new(1 << 16);
        let addr = 0x0000_1F20; // set = (0x1F20 >> 5) & 1 = 1
        c.write(SimTime::ZERO, addr, 4, 0x0BAD_F00D, &mut m);
        // Two more distinct lines in the same set to evict it.
        c.read(SimTime::ZERO, addr + 64, 4, &mut m);
        c.read(SimTime::ZERO, addr + 128, 4, &mut m);
        assert_eq!(m.load_u32(addr), 0x0BAD_F00D);
    }
}
